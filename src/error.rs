//! A single error type unifying the workspace's per-crate errors.
//!
//! Each layer of the workspace reports failures in its own vocabulary —
//! graph-structure problems ([`CaseError`]), claim-calculus problems
//! ([`ConfidenceError`]), belief-distribution problems ([`DistError`]),
//! and numerical-routine problems ([`NumericsError`]). Applications that
//! cross those layers previously had to thread four error types (or box
//! everything). [`Error`] wraps all of them with `From` conversions, so
//! `?` works uniformly against [`Result`].

use crate::assurance::CaseError;
use crate::confidence::ConfidenceError;
use crate::distributions::DistError;
use crate::numerics::NumericsError;
use std::fmt;

/// Unified error for operations spanning the `depcase` workspace.
///
/// ```
/// use depcase::prelude::*;
///
/// fn build_and_rank() -> Result<()> {
///     let mut case = Case::new("demo");
///     let g = case.add_goal("G", "pfd < 1e-3")?; // CaseError → Error
///     let e = case.add_evidence("E", "testing", 0.95)?;
///     case.support(g, e)?;
///     let required = WorstCaseBound::required_confidence(1e-2, 1e-3)?; // ConfidenceError → Error
///     assert!(required > 0.99);
///     Ok(())
/// }
/// build_and_rank().unwrap();
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// An argument-graph operation failed (structure, names, confidences).
    Case(CaseError),
    /// A claim/doubt-calculus operation failed.
    Confidence(ConfidenceError),
    /// A belief-distribution operation failed.
    Distribution(DistError),
    /// A low-level numerical routine failed.
    Numerics(NumericsError),
    /// A service or transport operation failed (wire exchange, socket
    /// I/O, a closed connection). `code` is the stable machine-readable
    /// category the assessment service speaks on the wire — e.g. `io`,
    /// `connection_closed`, `overloaded`, `deadline_exceeded` — kept as
    /// a string so the facade does not depend on the service crate.
    Service {
        /// Stable machine-readable category.
        code: String,
        /// Human-readable detail.
        message: String,
    },
}

/// Workspace-wide result alias over [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Case(e) => write!(f, "case error: {e}"),
            Error::Confidence(e) => write!(f, "confidence error: {e}"),
            Error::Distribution(e) => write!(f, "distribution error: {e}"),
            Error::Numerics(e) => write!(f, "numerics error: {e}"),
            Error::Service { code, message } => write!(f, "service error ({code}): {message}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Case(e) => Some(e),
            Error::Confidence(e) => Some(e),
            Error::Distribution(e) => Some(e),
            Error::Numerics(e) => Some(e),
            Error::Service { .. } => None,
        }
    }
}

impl Error {
    /// Builds a [`Error::Service`] from a wire code and message.
    pub fn service(code: impl Into<String>, message: impl std::fmt::Display) -> Self {
        Error::Service { code: code.into(), message: message.to_string() }
    }
}

impl From<CaseError> for Error {
    fn from(e: CaseError) -> Self {
        Error::Case(e)
    }
}

impl From<ConfidenceError> for Error {
    fn from(e: ConfidenceError) -> Self {
        Error::Confidence(e)
    }
}

impl From<DistError> for Error {
    fn from(e: DistError) -> Self {
        Error::Distribution(e)
    }
}

impl From<NumericsError> for Error {
    fn from(e: NumericsError) -> Self {
        Error::Numerics(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_the_underlying_error() {
        let case = CaseError::DuplicateName("G1".into());
        let err: Error = case.clone().into();
        assert_eq!(err, Error::Case(case));

        let num = NumericsError::Domain("x must be finite".into());
        let err: Error = num.clone().into();
        assert_eq!(err, Error::Numerics(num.clone()));
        // source() exposes the wrapped error for error-chain walkers.
        let src = std::error::Error::source(&err).expect("has a source");
        assert_eq!(src.to_string(), num.to_string());
    }

    #[test]
    fn display_labels_the_originating_layer() {
        let err = Error::Confidence(ConfidenceError::Infeasible("no margin".into()));
        let text = err.to_string();
        assert!(text.starts_with("confidence error:"), "{text}");
        assert!(text.contains("no margin"), "{text}");
    }

    #[test]
    fn service_variant_carries_code_and_message() {
        let err = Error::service("connection_closed", "server closed the connection");
        assert_eq!(
            err,
            Error::Service {
                code: "connection_closed".into(),
                message: "server closed the connection".into()
            }
        );
        let text = err.to_string();
        assert!(text.starts_with("service error (connection_closed):"), "{text}");
        assert!(std::error::Error::source(&err).is_none());
    }

    #[test]
    fn question_mark_crosses_layers() {
        fn mixed() -> Result<f64> {
            let c = crate::confidence::WorstCaseBound::required_confidence(1e-3, 1e-4)?;
            let sigma = crate::distributions::LogNormal::sigma_for_decades(1.0)?;
            Ok(c + sigma)
        }
        assert!(mixed().unwrap() > 0.0);
    }
}
