//! `depcase` — quantitative confidence for dependability cases.
//!
//! An executable reproduction of *Bloomfield, Littlewood & Wright,
//! "Confidence: its role in dependability cases for risk assessment",
//! DSN 2007*. The workspace answers, in code, the paper's questions: how
//! confident are we that a dependability claim is true, how do we express
//! that confidence quantitatively, and what does assessment uncertainty
//! do to decisions such as SIL classification?
//!
//! This facade crate re-exports the workspace members:
//!
//! - [`numerics`] — special functions, quadrature, root finding;
//! - [`distributions`] — belief distributions over failure rates/pfd;
//! - [`sil`] — IEC 61508 SIL bands and membership confidence;
//! - [`confidence`] — claim/doubt calculus, worst-case bounds, ACARP,
//!   statistical-testing updates, multi-legged arguments;
//! - [`assurance`] — GSN-style argument graphs with confidence
//!   propagation and a deterministic parallel Monte-Carlo cross-check;
//! - [`elicitation`] — the synthetic expert-panel simulator.
//!
//! On top of the re-exports the facade adds three conveniences:
//!
//! - [`prelude`] — a single `use depcase::prelude::*;` pulling in the
//!   types nearly every program touches;
//! - [`Error`]/[`Result`] — one error type unifying the per-crate
//!   errors, so `?` works across layers;
//! - `depcase-service` (separate crate) — a long-running assessment
//!   engine speaking newline-delimited JSON, started with
//!   `case_tool serve`.
//!
//! # Examples
//!
//! The paper's Section 3.4 "decade of margin" reasoning end-to-end:
//!
//! ```
//! use depcase::prelude::*;
//!
//! // To support a system claim of pfd < 1e-3 by claiming pfd < 1e-4 at
//! // high confidence, the required confidence is 99.91%:
//! let required = WorstCaseBound::required_confidence(1e-3, 1e-4)?;
//! assert!((required - 0.9991).abs() < 1e-4);
//! # Ok::<(), depcase::Error>(())
//! ```
//!
//! Cross-checking an argument graph with the deterministic parallel
//! Monte-Carlo engine — the same seed gives bit-identical estimates at
//! any thread count:
//!
//! ```
//! use depcase::prelude::*;
//!
//! let mut case = Case::new("demo");
//! let g = case.add_goal("G", "pfd < 1e-2")?;
//! let e = case.add_evidence("E", "statistical testing", 0.95)?;
//! case.support(g, e)?;
//!
//! let mc = MonteCarlo::new(50_000).seed(7).threads(4).run(&case)?;
//! let analytic = case.propagate()?.confidence(g).unwrap().independent;
//! let (lo, hi) = mc.interval(g).unwrap();
//! assert!(lo <= analytic && analytic <= hi);
//! # Ok::<(), depcase::Error>(())
//! ```

// `!(x > 0.0)`-style checks deliberately treat NaN as invalid input.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![deny(missing_docs)]
#![deny(unsafe_code)]

mod error;
pub mod prelude;

pub use error::{Error, Result};

pub use depcase_assurance as assurance;
pub use depcase_core as confidence;
pub use depcase_distributions as distributions;
pub use depcase_elicitation as elicitation;
pub use depcase_numerics as numerics;
pub use depcase_sil as sil;
