//! One-line import of the types nearly every `depcase` program touches.
//!
//! ```
//! use depcase::prelude::*;
//!
//! let mut case = Case::new("demo");
//! let g = case.add_goal("G", "pfd < 1e-2")?;
//! let e = case.add_evidence("E", "statistical testing", 0.95)?;
//! case.support(g, e)?;
//! let mc = MonteCarlo::new(10_000).seed(7).run(&case)?;
//! assert!(mc.estimate(g).is_some());
//! # Ok::<(), depcase::Error>(())
//! ```

pub use crate::assurance::{
    Case, CaseError, Combination, ConfidenceReport, EditStats, EvalPlan, Incremental, LeafKind,
    MonteCarlo, MonteCarloReport, NodeConfidence, NodeId, NodeKind,
};
pub use crate::confidence::{Claim, ConfidenceError, ConfidenceStatement, WorstCaseBound};
pub use crate::distributions::{DistError, Distribution, LogNormal, TwoPoint};
pub use crate::numerics::NumericsError;
pub use crate::sil::{BandProbabilities, DemandMode, SilAssessment, SilLevel};
pub use crate::{Error, Result};
