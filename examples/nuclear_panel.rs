//! A full panel-to-case pipeline on a Cemsis-style nuclear safety
//! function (the setting of the paper's Section 3.3 experiment).
//!
//! Twelve synthetic experts judge a safety function over the four-phase
//! protocol; their pooled belief feeds a SIL decision and a quantified
//! assurance case.
//!
//! Run with: `cargo run --example nuclear_panel`

use depcase::assurance::{Case, Combination};
use depcase::distributions::{Distribution, LogNormal};
use depcase::elicitation::experiment::{findings_of, paper_panel};
use depcase::elicitation::pooling;
use depcase::elicitation::Phase;
use depcase::sil::{DemandMode, SilAssessment, SilLevel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Run the panel (deterministic under the seed).
    let outcome = paper_panel(2026).run();
    for phase in Phase::ALL {
        let rec = outcome.phase(phase);
        println!(
            "{:<24} main-group pooled P(SIL2+) = {:.3}, pooled mean pfd = {:.2e}",
            phase.to_string(),
            rec.main_group_sil2_confidence(),
            rec.main_group_pooled_mean()
        );
    }
    let findings = findings_of(&outcome);
    println!(
        "doubters: {}, final pooled pfd: {:.2e}, asymmetric: {}",
        findings.doubters, findings.final_pooled_pfd, findings.asymmetric
    );

    // 2. Fit a single log-normal to the final main group by log pooling.
    let beliefs: Vec<LogNormal> = outcome.final_phase().main_group_beliefs()?;
    let pooled = pooling::log_pool_lognormals(&beliefs, None)?;
    let a = SilAssessment::new(&pooled, DemandMode::LowDemand);
    println!(
        "log-pooled belief: mode {:.2e}, mean {:.2e}, P(SIL2+) = {:.3}",
        pooled.mode().unwrap(),
        pooled.mean(),
        a.confidence_at_least(SilLevel::Sil2)
    );

    // 3. Cast the result as a quantified assurance case.
    let mut case = Case::new("reactor protection safety function");
    let g = case.add_goal("G1", "safety function achieves SIL2 (pfd < 1e-2)")?;
    let s =
        case.add_strategy("S1", "panel judgement + operating history legs", Combination::AnyOf)?;
    let panel_leg = case.add_evidence(
        "E1",
        "expert panel pooled judgement",
        a.confidence_at_least(SilLevel::Sil2),
    )?;
    let history_leg =
        case.add_evidence("E2", "operating history at 70% (61508-2 7.4.7.9)", 0.70)?;
    let assumption = case.add_assumption("A1", "demand profile matches assessed profile", 0.98)?;
    case.support(g, s)?;
    case.support(s, panel_leg)?;
    case.support(s, history_leg)?;
    case.support(g, assumption)?;

    let report = case.propagate()?;
    let top = report.top().expect("single root");
    println!(
        "case confidence in SIL2 claim: independent {:.4}, dependence interval [{:.4}, {:.4}]",
        top.independent, top.worst_case, top.best_case
    );
    println!("\nDOT export (render with graphviz):\n{}", case.to_dot(Some(&report)));

    Ok(())
}
