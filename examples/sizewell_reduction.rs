//! The Sizewell B-style claim reduction (paper Section 3.4).
//!
//! "Doubts about the quality of the development process of the software
//! led to an order of magnitude reduction in the judged probability of
//! failure on demand." This example encodes the mechanism: start from a
//! judgement whose evidence points at SIL3, quantify the doubt, and show
//! why the defensible claim is a decade weaker — then show what it takes
//! to win the decade back.
//!
//! Run with: `cargo run --example sizewell_reduction`

use depcase::confidence::acarp::AcarpPlan;
use depcase::confidence::WorstCaseBound;
use depcase::distributions::{Distribution, LogNormal};
use depcase::sil::{discounted_sil, ArgumentRigour, DemandMode, SilAssessment, SilLevel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Evidence points at a pfd of ~3e-4 (SIL3 band) but process-quality
    // doubts widen the judgement considerably.
    let belief = LogNormal::from_mode_confidence(3e-4, 1e-3, 0.60)?;
    let a = SilAssessment::new(&belief, DemandMode::LowDemand);
    println!("judged mode    : {:.2e} (SIL3 band)", belief.mode().unwrap());
    println!("P(SIL3+)       : {:.3}", a.confidence_at_least(SilLevel::Sil3));
    println!("mean pfd       : {:.2e} -> SIL of mean = {:?}", belief.mean(), a.sil_of_mean());

    // The assessors' heuristic: judged most likely SIL n+1, claim SIL n.
    println!(
        "claimable at 99% confidence: {:?} (one level below the most-likely band)",
        a.claimable_at_confidence(0.99)
    );

    // The paper's standards proposal: a process-compliance argument for a
    // judged SIL3 should be discounted two levels.
    println!(
        "process-based argument for judged SIL3 claims: {:?}",
        discounted_sil(SilLevel::Sil3, ArgumentRigour::ProcessCompliance)
    );

    // Conservative reading: what confidence would the reduced claim need
    // to support the original SIL3 bound (1e-3) outright?
    let needed = WorstCaseBound::required_confidence(1e-3, 1e-4)?;
    println!("worst-case route to pfd<1e-3 via 1e-4 claim needs {needed:.4} confidence");

    // And the ACARP route: buy the confidence back with statistical
    // testing of the as-built system.
    let plan = AcarpPlan::new(&belief, 1e-3);
    for target in [0.90, 0.95, 0.99] {
        match plan.demands_for_confidence(target) {
            Ok(n) => println!("failure-free demands for P(pfd<1e-3) = {target:.2}: {n}"),
            Err(e) => println!("target {target:.2}: {e}"),
        }
    }

    Ok(())
}
