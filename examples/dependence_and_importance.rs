//! Extensions tour: copula dependence, evidence importance, Monte-Carlo
//! cross-checking, and the reliability-growth route to a SIL.
//!
//! Run with: `cargo run --example dependence_and_importance`

use depcase::assurance::{importance, Case, Combination, MonteCarlo};
use depcase::confidence::copula;
use depcase::confidence::growth::{simulate_power_law, PowerLawGrowth};
use depcase::confidence::multileg::Leg;
use depcase::sil::{DemandMode, SilAssessment};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Copula dependence: how fast does a second leg's value erode?
    let a = Leg::with_confidence(0.95)?;
    let b = Leg::with_confidence(0.90)?;
    println!("combined doubt of (0.95, 0.90) legs under latent correlation:");
    for p in copula::sweep(a, b, &[0.0, 0.3, 0.6, 0.9])? {
        println!(
            "  rho = {:.1}: doubt = {:.5}, gain over best single leg = {:.1}x",
            p.rho, p.combined_doubt, p.gain_over_single
        );
    }
    let rho_max = copula::tolerable_correlation(a, b, 0.02)?;
    println!("dependence tolerable before doubt exceeds 0.02: rho <= {rho_max:.2}");

    // 2. Importance: where to spend the next assurance pound.
    let mut case = Case::new("importance demo");
    let g = case.add_goal("G1", "pfd < 1e-2")?;
    let s = case.add_strategy("S1", "conjunctive decomposition", Combination::AllOf)?;
    let e1 = case.add_evidence("E1", "statistical testing", 0.97)?;
    let e2 = case.add_evidence("E2", "code review", 0.80)?;
    let e3 = case.add_evidence("E3", "field history", 0.92)?;
    case.support(g, s)?;
    for e in [e1, e2, e3] {
        case.support(s, e)?;
    }
    println!("\nevidence ranked by improvement value:");
    for li in importance::birnbaum_importance(&case)? {
        println!(
            "  {}: confidence {:.2}, Birnbaum {:.3}, gain-if-certain {:.3}",
            li.name, li.confidence, li.birnbaum, li.gain_if_certain
        );
    }

    // 3. Monte-Carlo cross-check of the analytic propagation.
    let mut rng = StdRng::seed_from_u64(2026);
    let mc = MonteCarlo::new(50_000).run_sequential(&case, &mut rng)?;
    let analytic = case.propagate()?.top().expect("single root");
    println!(
        "\nanalytic root confidence {:.4} vs Monte-Carlo {:.4} ± {:.4}",
        analytic.independent,
        mc.estimate(g).expect("estimated"),
        mc.half_width(g).expect("estimated")
    );

    // 4. Growth route: fit Crow–AMSAA to simulated dangerous failures.
    let total_hours = 50_000.0;
    let times = simulate_power_law(&mut rng, 0.5, 0.6, total_hours)?;
    let fit = PowerLawGrowth::fit(&times, total_hours)?;
    let belief = fit.belief()?;
    let assess = SilAssessment::new(&belief, DemandMode::HighDemand);
    println!(
        "\ngrowth fit: {} failures, beta = {:.2} ({}), u-plot KS = {:.3}",
        fit.n_failures(),
        fit.beta(),
        if fit.is_growing() { "improving" } else { "deteriorating" },
        fit.ks_distance()
    );
    println!(
        "rate {:.2e}/h, margin-adjusted {:.2e}/h -> judged {:?} (high demand)",
        fit.current_intensity(),
        fit.margin_adjusted_intensity(),
        assess.sil_of_mean()
    );
    println!(
        "(a system with enough failures to *fit* a growth model rarely has a rate \
         low enough to *claim* a SIL — the paper's point about the limits of \
         failure-data arguments, quantified)"
    );

    Ok(())
}
