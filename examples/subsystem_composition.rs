//! Composing subsystem claims (the paper's "composability" obstacle).
//!
//! A 1e-3 system pfd target is allocated across three subsystems; each
//! subsystem's case must then deliver its claim at a stiff confidence,
//! and the composed conservatism is compared with the single-system
//! route.
//!
//! Run with: `cargo run --example subsystem_composition`

use depcase::confidence::allocation::{
    allocate_series, compose_series_bound, required_subsystem_confidences,
};
use depcase::confidence::reduction;
use depcase::confidence::{ConfidenceStatement, WorstCaseBound};
use depcase::distributions::LogNormal;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system_target = 1e-3;

    // 1. Allocate: sensor gets half the budget, logic and actuator a
    //    quarter each.
    let budgets = allocate_series(system_target, &[2.0, 1.0, 1.0])?;
    println!("system target pfd < {system_target:e}, allocated budgets:");
    for (name, y) in ["sensor", "logic", "actuator"].iter().zip(&budgets) {
        println!("  {name:<9} pfd < {y:.3e}");
    }

    // 2. Each subsystem claims a decade inside its budget; what
    //    confidence must each case deliver for the composition to hold?
    let claims: Vec<f64> = budgets.iter().map(|y| y / 10.0).collect();
    let confs = required_subsystem_confidences(system_target, &claims)?;
    println!("\nper-subsystem claims (a decade of margin) and required confidence:");
    for ((name, y), c) in ["sensor", "logic", "actuator"].iter().zip(&claims).zip(&confs) {
        println!("  {name:<9} claim pfd < {y:.2e} at confidence {c:.5}");
    }

    // 3. Verify the composition and compare with the single-system route.
    let statements: Vec<ConfidenceStatement> = claims
        .iter()
        .zip(&confs)
        .map(|(&y, &c)| ConfidenceStatement::new(y, c))
        .collect::<Result<_, _>>()?;
    let composed = compose_series_bound(&statements)?;
    println!("\ncomposed worst-case system bound: {composed:.4e} (target {system_target:e})");
    let single = WorstCaseBound::required_confidence(system_target, system_target / 10.0)?;
    println!(
        "single-system route would need {single:.5}; every subsystem needs more — \
         conservatism compounds across the composition"
    );

    // 4. And the reduction view of one subsystem's belief.
    let sensor_belief = LogNormal::from_mode_confidence(claims[0] / 3.0, claims[0], 0.8)?;
    let report = reduction::analyse(&sensor_belief, 0.99);
    println!(
        "\nsensor belief: most likely {:?}, claimable at 99% = {:?} ({} level(s) reduced)",
        report.most_likely,
        report.recommended_claim,
        report.levels_reduced.map_or_else(|| "?".into(), |l| l.to_string())
    );

    Ok(())
}
