//! ACARP in action (paper Section 4.1): buying confidence with
//! failure-free operating experience, and the provisional-SIL strategy.
//!
//! Run with: `cargo run --example acarp_testing`

use depcase::confidence::acarp::{provisional_then_upgraded, AcarpPlan};
use depcase::confidence::testing::{
    conservative_predictive_bound, demands_needed_uniform_prior, worst_case_doubt_after_demands,
};
use depcase::distributions::LogNormal;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The widest Figure 1 judgement: 67% confident in SIL2.
    let prior = LogNormal::from_mode_mean(0.003, 0.01)?;
    let plan = AcarpPlan::new(&prior, 1e-2);

    println!("confidence/mean trajectory under failure-free demands:");
    for p in plan.trajectory(&[0, 10, 100, 1000, 10_000])? {
        println!(
            "  n = {:>6}: P(SIL2+) = {:.4}, posterior mean pfd = {:.3e}",
            p.demands, p.confidence, p.mean
        );
    }

    for target in [0.70, 0.90, 0.95, 0.99] {
        let n = plan.demands_for_confidence(target)?;
        println!("demands to reach {target:.0}% SIL2 confidence: {n}", target = target * 100.0);
    }

    // Provisional SIL now, upgraded after an operating period.
    let (now, later) = provisional_then_upgraded(&prior, 5000)?;
    println!("provisional SIL (mean-based): {now:?}; after 5000 demands: {later:?}");

    // From-nothing comparison: a uniform prior needs the folklore ~4600
    // demands for 99% in pfd < 1e-3.
    let n = demands_needed_uniform_prior(1e-3, 0.99)?;
    println!("uniform prior -> 99% confidence in pfd < 1e-3 needs {n} demands");

    // The worst-case doubt decay (conservative two-point prior, the
    // paper's factor-100 refinement).
    for n in [0u64, 1000, 10_000] {
        let x = worst_case_doubt_after_demands(0.33, 3e-3, 0.3, n)?;
        println!("worst-case doubt after {n} demands: {x:.3e}");
    }

    // The universal conservative predictive bound (future-work analogue
    // of Bishop & Bloomfield's MTBF bound).
    for n in [100u64, 1000, 10_000] {
        println!(
            "P(survive {n} demands then fail on the next) <= {:.3e} whatever the prior",
            conservative_predictive_bound(n)?
        );
    }

    Ok(())
}
