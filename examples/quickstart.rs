//! Quickstart: the paper's core pipeline in ~40 lines.
//!
//! An assessor judges a protection system's pfd most likely to be 0.003
//! (mid-SIL2) but, given the evidence, its mean could be as high as 0.01.
//! What may actually be claimed, and at what confidence?
//!
//! Run with: `cargo run --example quickstart`

use depcase::confidence::decision;
use depcase::confidence::WorstCaseBound;
use depcase::distributions::{Distribution, LogNormal};
use depcase::sil::{DemandMode, SilAssessment, SilLevel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The judged belief: log-normal with mode 0.003, mean 0.01 —
    //    the widest judgement in the paper's Figure 1.
    let belief = LogNormal::from_mode_mean(0.003, 0.01)?;
    println!(
        "judged belief: mode = {:.4}, mean = {:.4}, sigma = {:.3}",
        belief.mode().unwrap(),
        belief.mean(),
        belief.sigma()
    );

    // 2. SIL assessment: most likely SIL2, but the mean is SIL1.
    let assessment = SilAssessment::new(&belief, DemandMode::LowDemand);
    println!("most-likely SIL : {:?}", assessment.sil_of_mode());
    println!("SIL of the mean : {:?}", assessment.sil_of_mean());
    println!(
        "P(SIL2 or better) = {:.3}, P(SIL1 or better) = {:.4}",
        assessment.confidence_at_least(SilLevel::Sil2),
        assessment.confidence_at_least(SilLevel::Sil1)
    );

    // 3. The decision summary a regulator would ask for.
    let summary = decision::summarize(&belief);
    println!(
        "unconditional P(failure on random demand) = {:.4} (paper Eq. 4)",
        summary.failure_probability
    );
    println!("claimable at 70% confidence (61508): {:?}", summary.claimable_at_70);

    // 4. The conservative route (paper Section 3.4): to support a system
    //    requirement of pfd < 1e-3 by claiming a decade of margin, the
    //    expert needs 99.91% confidence.
    let required = WorstCaseBound::required_confidence(1e-3, 1e-4)?;
    println!("claiming pfd < 1e-4 to support 1e-3 needs confidence = {required:.4}");

    Ok(())
}
