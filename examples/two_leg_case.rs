//! Multi-legged arguments and dependence (paper Section 4.2).
//!
//! Shows how much a second argument leg buys under independence, how
//! little it may buy under unfavourable dependence, and how a shared
//! assumption caps the benefit — first with the algebra, then as an
//! assurance-case graph.
//!
//! Run with: `cargo run --example two_leg_case`

use depcase::assurance::{Case, Combination};
use depcase::confidence::multileg::{
    combine_two_legs, combine_with_shared_assumption, required_second_leg, Leg,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Leg A: statistical testing at 95% confidence.
    // Leg B: static analysis at 90% confidence.
    let a = Leg::with_confidence(0.95)?;
    let b = Leg::with_confidence(0.90)?;

    let c = combine_two_legs(a, b);
    println!("two independent legs (0.95, 0.90):");
    println!("  independent doubt : {:.4}", c.independent);
    println!("  dependence range  : [{:.4}, {:.4}]", c.best_case, c.worst_case);
    println!(
        "  spread            : {:.4} (what not knowing the dependence costs)",
        c.dependence_spread()
    );

    // A shared assumption (both legs trust the same requirements spec).
    let shared = combine_with_shared_assumption(a, b, 0.02)?;
    println!("same legs with 2% shared assumption doubt:");
    println!("  independent doubt : {:.4} (floor 0.02)", shared.independent);

    // Inverse planning: how strong must a second leg be to reach 99.9%?
    let needed = required_second_leg(a.doubt(), 0.001)?;
    println!(
        "to reach combined doubt 0.001 next to a 0.95 leg, the second leg needs confidence {:.3}",
        needed.confidence()
    );

    // The same structure as an assurance case.
    let mut case = Case::new("two-legged SIL2 argument");
    let g = case.add_goal("G1", "pfd < 1e-2")?;
    let s = case.add_strategy("S1", "independent argument legs", Combination::AnyOf)?;
    let e1 = case.add_evidence("E1", "statistical testing", 0.95)?;
    let e2 = case.add_evidence("E2", "static analysis", 0.90)?;
    let a1 = case.add_assumption("A1", "requirements spec is right", 0.98)?;
    case.support(g, s)?;
    case.support(s, e1)?;
    case.support(s, e2)?;
    case.support(g, a1)?;
    let report = case.propagate()?;
    let top = report.top().expect("single root");
    println!(
        "case: confidence {:.4}, interval [{:.4}, {:.4}]",
        top.independent, top.worst_case, top.best_case
    );

    Ok(())
}
