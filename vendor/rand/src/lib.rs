//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this in-tree
//! crate provides the small API subset the workspace uses: [`RngCore`],
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`] and
//! [`rngs::StdRng`]. The generator is xoshiro256++ seeded through
//! SplitMix64, which is deterministic across platforms and thread
//! counts — the property the parallel Monte-Carlo engine relies on.
//!
//! It is **not** bit-compatible with upstream `rand`'s `StdRng`
//! (ChaCha12); seeds fix a stream of *this* crate only.

#![deny(unsafe_code)]

/// Low-level source of randomness, mirroring `rand::RngCore`.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Values [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draws one value from the generator.
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange {
    /// The element type drawn from the range.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as u64).wrapping_sub(self.start as u64);
                // Debiased via rejection from the widest multiple of `width`.
                let zone = u64::MAX - (u64::MAX - width + 1) % width;
                loop {
                    let v = rng.next_u64();
                    if v <= zone {
                        return self.start + (v % width) as $t;
                    }
                }
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                (lo..hi + 1).sample(rng)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::generate(rng)
    }
}

/// Convenience methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` (uniform in `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::generate(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Output {
        range.sample(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::generate(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (the same scheme
    /// upstream `rand` uses) and constructs the generator.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: the seed-expansion generator.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Deterministic for a fixed seed on every platform. Not
    /// bit-compatible with upstream `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        // Inlined across crates: the Monte-Carlo sampler's wide path
        // draws hundreds of millions of variates per second through a
        // concrete `StdRng`, and a call per draw would dominate it.
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            if s == [0, 0, 0, 0] {
                // xoshiro must not start from the all-zero state.
                s = [
                    0x9E3779B97F4A7C15,
                    0x6A09E667F3BCC909,
                    0xBB67AE8584CAA73B,
                    0x3C6EF372FE94F82B,
                ];
            }
            Self { s }
        }
    }

    /// Alias kept for call sites written against upstream `rand`.
    pub type SmallRng = StdRng;

    /// `W` independent [`StdRng`] streams stepped in lockstep, state
    /// held struct-of-arrays so the per-word update loops compile to
    /// SIMD on whatever vector width the target offers.
    ///
    /// Stream `k` of [`WideStdRng::next_wide`] yields **exactly** the
    /// sequence `StdRng::seed_from_u64(seeds[k])` would yield — this
    /// type changes scheduling, never bits — which is what lets the
    /// chunked Monte-Carlo engine fuse independent chunk streams into
    /// one vectorized draw loop.
    #[derive(Debug, Clone)]
    pub struct WideStdRng<const W: usize> {
        s0: [u64; W],
        s1: [u64; W],
        s2: [u64; W],
        s3: [u64; W],
    }

    impl<const W: usize> WideStdRng<W> {
        /// Seeds stream `k` exactly as `StdRng::seed_from_u64(seeds[k])`.
        #[must_use]
        pub fn from_seeds(seeds: [u64; W]) -> Self {
            let mut wide = Self { s0: [0; W], s1: [0; W], s2: [0; W], s3: [0; W] };
            for (k, &seed) in seeds.iter().enumerate() {
                let rng = StdRng::seed_from_u64(seed);
                wide.s0[k] = rng.s[0];
                wide.s1[k] = rng.s[1];
                wide.s2[k] = rng.s[2];
                wide.s3[k] = rng.s[3];
            }
            wide
        }

        /// Draws the next `u64` from every stream: `out[k]` is stream
        /// `k`'s next variate. One element-wise xoshiro256++ step — the
        /// auto-vectorizer's ideal shape.
        #[inline]
        // Indexing five arrays by one counter keeps the loop in the
        // shape the auto-vectorizer recognises; an iterator over `out`
        // alone would not.
        #[allow(clippy::needless_range_loop)]
        pub fn next_wide(&mut self, out: &mut [u64; W]) {
            for k in 0..W {
                out[k] =
                    self.s0[k].wrapping_add(self.s3[k]).rotate_left(23).wrapping_add(self.s0[k]);
                let t = self.s1[k] << 17;
                self.s2[k] ^= self.s0[k];
                self.s3[k] ^= self.s1[k];
                self.s1[k] ^= self.s2[k];
                self.s0[k] ^= self.s3[k];
                self.s2[k] ^= t;
                self.s3[k] = self.s3[k].rotate_left(45);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
        }
        let lo_only = rng.gen_range(5u64..6);
        assert_eq!(lo_only, 5);
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(11);
        let dynr: &mut dyn RngCore = &mut rng;
        let u: f64 = dynr.gen();
        assert!((0.0..1.0).contains(&u));
    }

    #[test]
    fn wide_streams_match_their_scalar_counterparts() {
        use super::rngs::WideStdRng;
        let seeds = [3u64, 1, 4, 1, 5, 9, 2, 6];
        let mut wide = WideStdRng::from_seeds(seeds);
        let mut scalars: Vec<StdRng> = seeds.iter().map(|&s| StdRng::seed_from_u64(s)).collect();
        let mut out = [0u64; 8];
        for _ in 0..1000 {
            wide.next_wide(&mut out);
            for (k, scalar) in scalars.iter_mut().enumerate() {
                assert_eq!(out[k], scalar.next_u64(), "stream {k} diverged");
            }
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut buf = [0u8; 11];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
