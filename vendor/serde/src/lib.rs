//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so this in-tree
//! crate provides the subset the workspace uses: `#[derive(Serialize,
//! Deserialize)]` on plain structs and enums, driven through a small
//! JSON-shaped [`Value`] data model that `serde_json` (also vendored)
//! prints and parses.
//!
//! The data model is deliberately tiny: it is **not** the upstream serde
//! visitor architecture, just enough structure for bit-exact JSON
//! round-trips of the workspace's case files and reports.

#![deny(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// In-memory JSON-shaped value: the intermediate form between typed data
/// and text.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (JSON number without fraction/exponent).
    I64(i64),
    /// Unsigned integer too large for `i64`.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; insertion-ordered to keep output stable.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, when this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array elements, when this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string payload, when this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view as `f64` (integers convert losslessly up to 2⁵³).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::I64(i) => Some(i as f64),
            Value::U64(u) => Some(u as f64),
            Value::F64(f) => Some(f),
            _ => None,
        }
    }

    /// Numeric view as `u64`, when exactly representable.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::I64(i) if i >= 0 => Some(i as u64),
            Value::U64(u) => Some(u),
            Value::F64(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Some(f as u64),
            _ => None,
        }
    }

    /// Numeric view as `i64`, when exactly representable.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(i) => Some(i),
            Value::U64(u) if u <= i64::MAX as u64 => Some(u as i64),
            Value::F64(f) if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 => {
                Some(f as i64)
            }
            _ => None,
        }
    }

    /// Boolean payload, when this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Looks a key up in an object value.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// Deserialization/serialization error: a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Builds an error from any displayable message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Looks up a required field of a derived struct.
///
/// # Errors
///
/// [`Error`] naming the missing field.
pub fn field<'v>(obj: &'v [(String, Value)], name: &str) -> Result<&'v Value, Error> {
    obj.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{name}`")))
}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Converts `self` into the JSON-shaped data model.
    fn to_value(&self) -> Value;
}

/// Types that can rebuild themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self`, reporting shape mismatches as [`Error`].
    ///
    /// # Errors
    ///
    /// [`Error`] describing the first mismatch encountered.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::custom("expected boolean"))
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let u = v.as_u64().ok_or_else(|| Error::custom("expected unsigned integer"))?;
                <$t>::try_from(u).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::U64(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let u = v.as_u64().ok_or_else(|| Error::custom("expected unsigned integer"))?;
        usize::try_from(u).map_err(|_| Error::custom("integer out of range"))
    }
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(i64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = v.as_i64().ok_or_else(|| Error::custom("expected integer"))?;
                <$t>::try_from(i).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        Value::I64(*self as i64)
    }
}

impl Deserialize for isize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let i = v.as_i64().ok_or_else(|| Error::custom("expected integer"))?;
        isize::try_from(i).map_err(|_| Error::custom("integer out of range"))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(f64::NAN),
            _ => v.as_f64().ok_or_else(|| Error::custom("expected number")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_owned).ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::custom("expected single-character string"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Box::new(T::from_value(v)?))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Default + Copy, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v.as_array().ok_or_else(|| Error::custom("expected array"))?;
        if items.len() != N {
            return Err(Error::custom(format!("expected array of length {N}")));
        }
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(items) {
            *slot = T::from_value(item)?;
        }
        Ok(out)
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::custom("expected tuple array"))?;
                let mut it = items.iter();
                #[allow(unused_assignments)]
                let out = ($(
                    $name::from_value(
                        it.next().ok_or_else(|| Error::custom(concat!("tuple too short at ", $idx)))?,
                    )?,
                )+);
                if it.next().is_some() {
                    return Err(Error::custom("tuple has extra elements"));
                }
                Ok(out)
            }
        }
    )*};
}
impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Map keys must render as JSON strings.
pub trait JsonKey: Sized {
    /// The key as object-key text.
    fn to_key(&self) -> String;
    /// Parses the key back from object-key text.
    ///
    /// # Errors
    ///
    /// [`Error`] when the text does not parse as this key type.
    fn from_key(key: &str) -> Result<Self, Error>;
}

impl JsonKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, Error> {
        Ok(key.to_owned())
    }
}

macro_rules! impl_json_key_int {
    ($($t:ty),*) => {$(
        impl JsonKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Result<Self, Error> {
                key.parse().map_err(|_| Error::custom("invalid integer map key"))
            }
        }
    )*};
}
impl_json_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: JsonKey, V: Serialize, S: std::hash::BuildHasher> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.to_key(), v.to_value())).collect();
        // HashMap iteration order is unstable; sort for reproducible text.
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K: JsonKey + Eq + std::hash::Hash, V: Deserialize, S: std::hash::BuildHasher + Default>
    Deserialize for HashMap<K, V, S>
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v.as_object().ok_or_else(|| Error::custom("expected object"))?;
        let mut map = HashMap::with_capacity_and_hasher(obj.len(), S::default());
        for (k, val) in obj {
            map.insert(K::from_key(k)?, V::from_value(val)?);
        }
        Ok(map)
    }
}

impl<K: JsonKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.to_key(), v.to_value())).collect())
    }
}

impl<K: JsonKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v.as_object().ok_or_else(|| Error::custom("expected object"))?;
        let mut map = BTreeMap::new();
        for (k, val) in obj {
            map.insert(K::from_key(k)?, V::from_value(val)?);
        }
        Ok(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1usize, 2, 3];
        assert_eq!(Vec::<usize>::from_value(&v.to_value()).unwrap(), v);
        let mut m = HashMap::new();
        m.insert("a".to_string(), 1usize);
        m.insert("b".to_string(), 2usize);
        assert_eq!(HashMap::<String, usize>::from_value(&m.to_value()).unwrap(), m);
        let t = (1.5f64, "x".to_string());
        assert_eq!(<(f64, String)>::from_value(&t.to_value()).unwrap(), t);
        let arr = [0.25f64; 4];
        assert_eq!(<[f64; 4]>::from_value(&arr.to_value()).unwrap(), arr);
    }

    #[test]
    fn shape_mismatches_error() {
        assert!(bool::from_value(&Value::Str("no".into())).is_err());
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(Vec::<f64>::from_value(&Value::Bool(true)).is_err());
    }
}
