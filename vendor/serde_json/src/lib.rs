//! Offline stand-in for `serde_json`.
//!
//! Prints and parses JSON text against the vendored [`serde::Value`] data
//! model. Floats are emitted with Rust's shortest-round-trip formatting,
//! so `to_string` → `from_str` reproduces every finite `f64` bit-for-bit
//! (the guarantee the upstream `float_roundtrip` feature provides, which
//! the case-file round-trip tests rely on).

#![deny(unsafe_code)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Serialization/parse error: position (for parse errors) and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Result alias matching upstream `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Never fails for the vendored data model; the `Result` mirrors the
/// upstream signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as 2-space-indented JSON.
///
/// # Errors
///
/// Never fails for the vendored data model; the `Result` mirrors the
/// upstream signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a value from JSON text.
///
/// # Errors
///
/// [`Error`] describing the first syntax or shape problem.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(T::from_value(&value)?)
}

/// Parses the first JSON value in `text`, returning it together with
/// the byte offset just past the value (leading whitespace included in
/// the count, trailing bytes untouched).
///
/// [`from_str`] rejects trailing characters outright; this variant lets
/// callers that need to *diagnose* trailing garbage — like the service
/// wire protocol, which wants to echo the request `id` in its error —
/// recover the parsed prefix first and decide for themselves.
///
/// # Errors
///
/// [`Error`] describing the first syntax or shape problem.
pub fn from_str_prefix<T: Deserialize>(text: &str) -> Result<(T, usize)> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.parse_value()?;
    Ok((T::from_value(&value)?, p.pos))
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::F64(f) => write_f64(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            write_seq(out, items.iter(), indent, depth, ('[', ']'), |o, x, d| {
                write_value(o, x, indent, d)
            })
        }
        Value::Object(entries) => {
            write_seq(out, entries.iter(), indent, depth, ('{', '}'), |o, (k, x), d| {
                write_string(o, k);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(o, x, indent, d);
            })
        }
    }
}

fn write_seq<I: ExactSizeIterator>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    depth: usize,
    brackets: (char, char),
    mut write_item: impl FnMut(&mut String, I::Item, usize),
) {
    out.push(brackets.0);
    let len = items.len();
    for (i, item) in items.enumerate() {
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        write_item(out, item, depth + 1);
        if i + 1 < len {
            out.push(',');
        }
    }
    if len > 0 {
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * depth));
        }
    }
    out.push(brackets.1);
}

fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        // JSON has no NaN/inf; mirror upstream by emitting null.
        out.push_str("null");
        return;
    }
    let text = format!("{f}");
    out.push_str(&text);
    // Keep the number recognizably floating-point so integers and floats
    // stay distinct across a round-trip.
    if !text.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // Surrogate pair.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.parse_hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("lone surrogate"));
                                }
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid codepoint"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // char boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
        }
        text.parse::<f64>().map(Value::F64).map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_primitives() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&12usize).unwrap(), "12");
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
        assert_eq!(to_string(&"a\"b\\c\nd").unwrap(), r#""a\"b\\c\nd""#);
        let x: f64 = from_str(&to_string(&0.1f64).unwrap()).unwrap();
        assert_eq!(x, 0.1);
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for &f in &[0.1, 1.0 / 3.0, 6.02e23, 1e-300, 0.9991, f64::MIN_POSITIVE, -2.5] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{f} via {text}");
        }
    }

    #[test]
    fn whole_floats_stay_floats() {
        let text = to_string(&5.0f64).unwrap();
        assert_eq!(text, "5.0");
        let back: f64 = from_str(&text).unwrap();
        assert_eq!(back, 5.0);
    }

    #[test]
    fn containers_and_nesting() {
        let v = vec![vec![1usize, 2], vec![3]];
        let text = to_string(&v).unwrap();
        assert_eq!(text, "[[1,2],[3]]");
        let back: Vec<Vec<usize>> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_indents() {
        let v = vec![1usize, 2];
        let text = to_string_pretty(&v).unwrap();
        assert_eq!(text, "[\n  1,\n  2\n]");
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<bool>("tru").is_err());
        assert!(from_str::<Vec<f64>>("[1,").is_err());
        assert!(from_str::<f64>("1.0 x").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }

    #[test]
    fn prefix_parse_reports_the_consumed_length() {
        let (v, used) = from_str_prefix::<f64>("  1.5  trailing").unwrap();
        assert_eq!(v, 1.5);
        assert_eq!(used, 5);
        assert_eq!("  1.5  trailing"[used..].trim(), "trailing");
        let (v, used) = from_str_prefix::<Vec<usize>>("[1,2]").unwrap();
        assert_eq!((v, used), (vec![1, 2], 5));
        assert!(from_str_prefix::<f64>("  x").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let s: String = from_str(r#""é😀""#).unwrap();
        assert_eq!(s, "é😀");
        let text = to_string(&"é😀").unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, "é😀");
    }
}
