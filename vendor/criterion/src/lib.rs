//! Offline stand-in for `criterion`.
//!
//! Provides the macro and type surface the workspace's benches use —
//! [`Criterion::benchmark_group`], `bench_function`, `Bencher::iter`,
//! [`black_box`], [`criterion_group!`] and [`criterion_main!`] — with a
//! simple fixed-budget timer instead of criterion's statistical engine.
//! Each benchmark reports median ns/iteration on stdout.

#![deny(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: Option<usize>,
}

impl Criterion {
    /// Mirrors upstream's CLI-argument hook; accepted and ignored.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _parent: self }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_benchmark(name, self.sample_size, f);
        self
    }
}

/// A named group of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: Option<usize>,
    _parent: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Adjusts how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, name), self.sample_size, f);
        self
    }

    /// Ends the group (upstream flushes reports here; a no-op).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; call [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
}

impl Bencher {
    /// Times `routine`, collecting `sample_count` samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: find an iteration count lasting ≳ 1 ms.
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 30 {
                break;
            }
            iters *= 4;
        }
        self.iters_per_sample = iters;
        self.samples.clear();
        for _ in 0..self.sample_count {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(t.elapsed());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, sample_size: Option<usize>, mut f: F) {
    let mut b = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
        sample_count: sample_size.unwrap_or(20).max(3),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name}: no samples (iter was not called)");
        return;
    }
    let mut per_iter: Vec<f64> =
        b.samples.iter().map(|d| d.as_secs_f64() * 1e9 / b.iters_per_sample as f64).collect();
    per_iter.sort_by(f64::total_cmp);
    let median = per_iter[per_iter.len() / 2];
    let best = per_iter[0];
    println!("{name}: median {median:.1} ns/iter (best {best:.1})");
}

/// Declares a group-runner function, mirroring upstream's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        g.finish();
    }

    criterion_group!(benches, trivial);

    #[test]
    fn group_runs() {
        benches();
    }

    #[test]
    fn bench_function_on_criterion() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(0)));
    }
}
