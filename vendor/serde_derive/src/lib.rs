//! `#[derive(Serialize, Deserialize)]` for the vendored serde stand-in.
//!
//! The offline build has no `syn`/`quote`, so the input item is parsed by
//! walking the raw token stream directly and the impls are emitted as
//! source text. Supported shapes — the only ones the workspace uses:
//!
//! - structs with named fields;
//! - tuple structs (newtypes serialize transparently, wider tuples as
//!   arrays);
//! - enums with unit, newtype, tuple and struct variants (externally
//!   tagged, like upstream serde's default).
//!
//! Generics and `#[serde(...)]` attributes are intentionally unsupported
//! and produce a compile error naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed variant of an enum.
struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

enum Item {
    NamedStruct { name: String, fields: Vec<String> },
    TupleStruct { name: String, arity: usize },
    UnitStruct { name: String },
    Enum { name: String, variants: Vec<Variant> },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().expect("valid error tokens")
}

/// Skips `#[...]` attribute groups (doc comments included) at `pos`.
fn skip_attrs(tokens: &[TokenTree], pos: &mut usize) {
    while *pos + 1 < tokens.len() {
        match (&tokens[*pos], &tokens[*pos + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                *pos += 2;
            }
            _ => break,
        }
    }
}

/// Skips `pub` / `pub(...)` at `pos`.
fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*pos) {
        if id.to_string() == "pub" {
            *pos += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *pos += 1;
                }
            }
        }
    }
}

/// Consumes a type (everything up to a top-level `,`), tracking `<`/`>`
/// nesting so commas inside generic arguments are not mistaken for field
/// separators.
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(tok) = tokens.get(*pos) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *pos += 1;
    }
}

/// Parses `name: Type, ...` field lists (struct bodies, struct variants).
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attrs(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut pos);
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        pos += 1;
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => return Err(format!("expected `:` after field `{name}`, found {other:?}")),
        }
        skip_type(&tokens, &mut pos);
        // Either at a `,` or at the end of the stream.
        if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
            if p.as_char() == ',' {
                pos += 1;
            }
        }
        fields.push(name);
    }
    Ok(fields)
}

/// Counts top-level fields of a tuple struct / tuple variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut fields = 1;
    let mut angle_depth = 0i32;
    for tok in &tokens {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => fields += 1,
                _ => {}
            }
        }
    }
    // A trailing comma does not add a field.
    if let Some(TokenTree::Punct(p)) = tokens.last() {
        if p.as_char() == ',' {
            fields -= 1;
        }
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attrs(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        pos += 1;
        let shape = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                VariantShape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantShape::Struct(parse_named_fields(g.stream())?)
            }
            _ => VariantShape::Unit,
        };
        if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
            if p.as_char() == '=' {
                return Err(format!("explicit discriminants unsupported (variant `{name}`)"));
            }
            if p.as_char() == ',' {
                pos += 1;
            }
        }
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attrs(&tokens, &mut pos);
    skip_visibility(&tokens, &mut pos);
    let keyword = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    pos += 1;
    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    pos += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
        if p.as_char() == '<' {
            return Err(format!(
                "the vendored serde derive does not support generics (type `{name}`)"
            ));
        }
    }
    match keyword.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Item::NamedStruct { name, fields: parse_named_fields(g.stream())? })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Item::TupleStruct { name, arity: count_tuple_fields(g.stream()) })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::UnitStruct { name }),
            other => Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Item::Enum { name, variants: parse_variants(g.stream())? })
            }
            other => Err(format!("unsupported enum body: {other:?}")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

fn tuple_bindings(arity: usize) -> Vec<String> {
    (0..arity).map(|i| format!("__f{i}")).collect()
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(::std::vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "#[automatically_derived]\n\
             impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let entries: Vec<String> =
                (0..*arity).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Array(::std::vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Item::UnitStruct { name } => format!(
            "#[automatically_derived]\n\
             impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "{name}::{vname} => \
                             ::serde::Value::Str(::std::string::String::from({vname:?}))"
                        ),
                        VariantShape::Tuple(1) => format!(
                            "{name}::{vname}(__f0) => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from({vname:?}), \
                             ::serde::Serialize::to_value(__f0))])"
                        ),
                        VariantShape::Tuple(arity) => {
                            let binds = tuple_bindings(*arity);
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Object(::std::vec![(\
                                 ::std::string::String::from({vname:?}), \
                                 ::serde::Value::Array(::std::vec![{}]))])",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantShape::Struct(fields) => {
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({f:?}), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {} }} => ::serde::Value::Object(::std::vec![(\
                                 ::std::string::String::from({vname:?}), \
                                 ::serde::Value::Object(::std::vec![{}]))])",
                                fields.join(", "),
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join(", ")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("{f}: ::serde::Deserialize::from_value(::serde::field(__obj, {f:?})?)?")
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::Error> {{\n\
                         let __obj = match __v {{\n\
                             ::serde::Value::Object(__m) => __m.as_slice(),\n\
                             _ => return ::std::result::Result::Err(::serde::Error::custom(\
                                 concat!(\"expected object for \", stringify!({name})))),\n\
                         }};\n\
                         ::std::result::Result::Ok({name} {{ {} }})\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "#[automatically_derived]\n\
             impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) -> \
                     ::std::result::Result<Self, ::serde::Error> {{\n\
                     ::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))\n\
                 }}\n\
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let inits: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::Error> {{\n\
                         let __items = match __v {{\n\
                             ::serde::Value::Array(__a) if __a.len() == {arity} => __a,\n\
                             _ => return ::std::result::Result::Err(::serde::Error::custom(\
                                 concat!(\"expected array for \", stringify!({name})))),\n\
                         }};\n\
                         ::std::result::Result::Ok({name}({}))\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Item::UnitStruct { name } => format!(
            "#[automatically_derived]\n\
             impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) -> \
                     ::std::result::Result<Self, ::serde::Error> {{\n\
                     match __v {{\n\
                         ::serde::Value::Null => ::std::result::Result::Ok({name}),\n\
                         _ => ::std::result::Result::Err(::serde::Error::custom(\
                             concat!(\"expected null for \", stringify!({name})))),\n\
                     }}\n\
                 }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| {
                    let vname = &v.name;
                    format!("{vname:?} => ::std::result::Result::Ok({name}::{vname}),")
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        VariantShape::Unit => None,
                        VariantShape::Tuple(1) => Some(format!(
                            "{vname:?} => ::std::result::Result::Ok({name}::{vname}(\
                             ::serde::Deserialize::from_value(__val)?)),"
                        )),
                        VariantShape::Tuple(arity) => {
                            let inits: Vec<String> = (0..*arity)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&__items[{i}])?")
                                })
                                .collect();
                            Some(format!(
                                "{vname:?} => {{\n\
                                     let __items = match __val {{\n\
                                         ::serde::Value::Array(__a) if __a.len() == {arity} => __a,\n\
                                         _ => return ::std::result::Result::Err(\
                                             ::serde::Error::custom(\"expected variant array\")),\n\
                                     }};\n\
                                     ::std::result::Result::Ok({name}::{vname}({}))\n\
                                 }}",
                                inits.join(", ")
                            ))
                        }
                        VariantShape::Struct(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                         ::serde::field(__obj, {f:?})?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "{vname:?} => {{\n\
                                     let __obj = match __val {{\n\
                                         ::serde::Value::Object(__m) => __m.as_slice(),\n\
                                         _ => return ::std::result::Result::Err(\
                                             ::serde::Error::custom(\"expected variant object\")),\n\
                                     }};\n\
                                     ::std::result::Result::Ok({name}::{vname} {{ {} }})\n\
                                 }}",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            let str_block = if unit_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "if let ::serde::Value::Str(__s) = __v {{\n\
                         return match __s.as_str() {{\n\
                             {}\n\
                             _ => ::std::result::Result::Err(::serde::Error::custom(\
                                 concat!(\"unknown variant of \", stringify!({name})))),\n\
                         }};\n\
                     }}",
                    unit_arms.join("\n")
                )
            };
            let obj_block = if data_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "if let ::serde::Value::Object(__m) = __v {{\n\
                         if __m.len() == 1 {{\n\
                             let (__key, __val) = &__m[0];\n\
                             return match __key.as_str() {{\n\
                                 {}\n\
                                 _ => ::std::result::Result::Err(::serde::Error::custom(\
                                     concat!(\"unknown variant of \", stringify!({name})))),\n\
                             }};\n\
                         }}\n\
                     }}",
                    data_arms.join("\n")
                )
            };
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::Error> {{\n\
                         {str_block}\n\
                         {obj_block}\n\
                         ::std::result::Result::Err(::serde::Error::custom(\
                             concat!(\"expected a variant of \", stringify!({name}))))\n\
                     }}\n\
                 }}"
            )
        }
    }
}

/// Derives `serde::Serialize` (vendored data model).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().expect("generated Serialize impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

/// Derives `serde::Deserialize` (vendored data model).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item).parse().expect("generated Deserialize impl parses"),
        Err(msg) => compile_error(&msg),
    }
}
