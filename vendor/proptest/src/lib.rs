//! Offline stand-in for `proptest`.
//!
//! Implements the slice of the proptest API the workspace's property
//! tests use: the [`proptest!`] macro with an optional
//! `#![proptest_config(...)]` line, range strategies, [`any`],
//! `collection::vec`, `option::of`, and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Semantics differ from upstream in two deliberate ways:
//!
//! - no shrinking — a failing case panics with the assertion message
//!   directly;
//! - `prop_assume!` counts the case as passed instead of re-drawing, so
//!   each test runs exactly `cases` iterations.
//!
//! Inputs are drawn from a deterministic per-test RNG (seeded from the
//! test's name), so failures reproduce across runs and machines.

#![deny(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-test configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Deterministic RNG for one property test, derived from its name.
#[must_use]
pub fn test_rng(test_name: &str) -> StdRng {
    // FNV-1a over the name: stable across runs, platforms, and rustc.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

/// A source of random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.gen::<f64>()
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + (hi - lo) * rng.gen::<f64>()
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// Upstream proptest composes strategies into tuple strategies; the
// workspace's tests draw per-edit `(selector, pick, value)` triples.
macro_rules! impl_strategy_tuple {
    ($(($($s:ident . $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

/// Strategy for "any value of `T`" — see [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

/// Types usable with [`any`].
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<bool>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        // Finite, sign-balanced, spanning many magnitudes.
        let mag = rng.gen_range(-300.0..300.0f64);
        let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
        sign * 10f64.powf(mag)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy producing arbitrary values of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Inclusive-exclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { lo: r.start, hi: r.end }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    /// Strategy for vectors with element strategy `S`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vector of values from `element`, with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies (`proptest::option::of`).
pub mod option {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Strategy for optional values — see [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    /// `Some` three times out of four, `None` otherwise.
    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy(element)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.gen::<f64>() < 0.75 {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any, Arbitrary,
        ProptestConfig, Strategy,
    };
}

/// Defines property tests. See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_rng(stringify!($name));
            for __case in 0..__cfg.cases {
                let __outcome: ::std::result::Result<(), ()> = (|| {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                    ::std::result::Result::Ok(())
                })();
                // Err(()) marks a case skipped by prop_assume!.
                let _ = (__case, __outcome);
            }
        }
    )*};
}

/// Asserts a property-test condition, panicking with the inputs' message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            panic!("property failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            panic!($($fmt)+);
        }
    };
}

/// Asserts two expressions are equal inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            panic!("property failed: {:?} != {:?}", __l, __r);
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            panic!($($fmt)+);
        }
    }};
}

/// Asserts two expressions are unequal inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            panic!("property failed: {:?} == {:?}", __l, __r);
        }
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn strategies_are_deterministic_per_test_name() {
        let mut a = super::test_rng("x");
        let mut b = super::test_rng("x");
        let s = 0.0f64..1.0;
        for _ in 0..32 {
            assert_eq!(s.generate(&mut a).to_bits(), s.generate(&mut b).to_bits());
        }
    }

    #[test]
    fn vec_strategy_respects_bounds() {
        let mut rng = super::test_rng("vec");
        let s = super::collection::vec(0.0f64..1.0, 2..8);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..8).contains(&v.len()));
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    #[test]
    fn option_strategy_produces_both() {
        let mut rng = super::test_rng("opt");
        let s = super::option::of(0.0f64..1.0);
        let draws: Vec<_> = (0..200).map(|_| s.generate(&mut rng)).collect();
        assert!(draws.iter().any(Option::is_some));
        assert!(draws.iter().any(Option::is_none));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn macro_draws_in_range(x in 0.25f64..0.75, n in 1usize..5, flag in any::<bool>()) {
            prop_assert!((0.25..0.75).contains(&x));
            prop_assert!((1..5).contains(&n));
            prop_assume!(flag || n > 0);
            prop_assert_eq!(n.min(4), n);
        }
    }
}
