//! One bench group per table/figure ID: the cost of regenerating each
//! experiment end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use depcase_bench::experiments;

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiments");
    g.sample_size(20);
    g.bench_function("T1_table1", |b| b.iter(experiments::table1));
    g.bench_function("F1_fig1", |b| b.iter(experiments::fig1));
    g.bench_function("F2_fig2", |b| b.iter(experiments::fig2));
    g.bench_function("F3_fig3", |b| b.iter(experiments::fig3));
    g.bench_function("F3_crossover", |b| b.iter(experiments::fig3_crossover));
    g.bench_function("F4_fig4", |b| b.iter(experiments::fig4));
    g.bench_function("E_examples34", |b| b.iter(experiments::examples34));
    g.bench_function("S1_identity", |b| b.iter(experiments::identity));
    g.bench_function("G1_gamma_sensitivity", |b| b.iter(experiments::gamma_sensitivity));
    g.bench_function("C2_multileg", |b| b.iter(experiments::multileg));
    g.bench_function("N1_standards", |b| b.iter(experiments::standards_impact));
    g.finish();

    // The heavy ones get their own group with fewer samples.
    let mut h = c.benchmark_group("experiments_heavy");
    h.sample_size(10);
    h.bench_function("F5_fig5", |b| b.iter(|| experiments::fig5(42)));
    h.bench_function("C1_tail_cutoff", |b| b.iter(experiments::tail_cutoff));
    h.bench_function("C2p_multileg_copula", |b| b.iter(experiments::multileg_copula));
    h.bench_function("C3_growth_sil", |b| b.iter(|| experiments::growth_sil(11)));
    h.bench_function("X1_calibration", |b| b.iter(|| experiments::calibration_weights(5)));
    h.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
