//! Micro-benchmarks of the numerical kernels every experiment rests on.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use depcase_distributions::{Distribution, LogNormal};
use depcase_numerics::integrate::{adaptive_simpson, GaussLegendre};
use depcase_numerics::roots::{brent, RootConfig};
use depcase_numerics::special::{
    bivariate_norm_cdf, erf, erfc, norm_quantile, reg_gamma_p, reg_inc_beta,
};

fn bench_special(c: &mut Criterion) {
    let mut g = c.benchmark_group("special");
    g.bench_function("erf", |b| b.iter(|| erf(black_box(1.234))));
    g.bench_function("erfc_tail", |b| b.iter(|| erfc(black_box(6.5))));
    g.bench_function("norm_quantile", |b| b.iter(|| norm_quantile(black_box(0.9991))));
    g.bench_function("reg_gamma_p", |b| b.iter(|| reg_gamma_p(black_box(3.3), black_box(2.1))));
    g.bench_function("reg_inc_beta", |b| {
        b.iter(|| reg_inc_beta(black_box(2.0), black_box(4601.0), black_box(1e-3)))
    });
    g.bench_function("bivariate_norm_cdf", |b| {
        b.iter(|| bivariate_norm_cdf(black_box(-1.6), black_box(-1.3), black_box(0.5)))
    });
    g.finish();
}

fn bench_quadrature(c: &mut Criterion) {
    let mut g = c.benchmark_group("quadrature");
    let d = LogNormal::from_mode_mean(0.003, 0.01).expect("valid");
    g.bench_function("simpson_band_mass", |b| {
        b.iter(|| adaptive_simpson(|x| d.pdf(x), black_box(1e-3), black_box(1e-2), 1e-10))
    });
    let rule = GaussLegendre::new(32).expect("valid");
    g.bench_function("gauss32_band_mass", |b| {
        b.iter(|| rule.integrate(|x| d.pdf(x), black_box(1e-3), black_box(1e-2)))
    });
    g.bench_function("gauss_node_construction_64", |b| {
        b.iter(|| GaussLegendre::new(black_box(64)))
    });
    g.finish();
}

fn bench_roots(c: &mut Criterion) {
    let mut g = c.benchmark_group("roots");
    let d = LogNormal::from_mode_mean(0.003, 0.01).expect("valid");
    g.bench_function("brent_quantile_via_cdf", |b| {
        b.iter(|| {
            brent(
                |x| d.cdf(x) - black_box(0.95),
                1e-8,
                1.0,
                RootConfig { f_tol: 0.0, ..RootConfig::default() },
            )
        })
    });
    g.bench_function("closed_form_quantile", |b| b.iter(|| d.quantile(black_box(0.95))));
    g.finish();
}

criterion_group!(benches, bench_special, bench_quadrature, bench_roots);
criterion_main!(benches);
