//! Ablations of the design choices called out in DESIGN.md §6: for each
//! computation with two implementations, time both.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use depcase_distributions::{Beta, Distribution, LogNormal, SurvivalWeighted};
use depcase_elicitation::pooling;
use depcase_numerics::integrate::{adaptive_simpson, GaussLegendre};

/// Band probability: closed-form (erf-based CDF difference) vs adaptive
/// Simpson vs fixed Gauss–Legendre over the density.
fn ablate_band_probability(c: &mut Criterion) {
    let d = LogNormal::from_mode_mean(0.003, 0.01).expect("valid");
    let mut g = c.benchmark_group("ablation_band_probability");
    g.bench_function("closed_form_cdf", |b| {
        b.iter(|| d.interval_prob(black_box(1e-3), black_box(1e-2)))
    });
    g.bench_function("adaptive_simpson", |b| {
        b.iter(|| adaptive_simpson(|x| d.pdf(x), black_box(1e-3), black_box(1e-2), 1e-10))
    });
    let rule = GaussLegendre::new(32).expect("valid");
    g.bench_function("gauss_legendre_32", |b| {
        b.iter(|| rule.integrate(|x| d.pdf(x), black_box(1e-3), black_box(1e-2)))
    });
    g.finish();
}

/// Posterior after failure-free demands: conjugate Beta shortcut vs
/// numeric survival weighting.
fn ablate_posterior(c: &mut Criterion) {
    let prior = Beta::new(1.0, 10.0).expect("valid");
    let mut g = c.benchmark_group("ablation_posterior");
    g.sample_size(20);
    g.bench_function("conjugate_beta", |b| {
        b.iter(|| {
            let post = prior.update_failure_free(black_box(1000));
            post.cdf(black_box(1e-3))
        })
    });
    g.bench_function("numeric_survival_weighting", |b| {
        b.iter(|| {
            let post = SurvivalWeighted::new(prior, black_box(1000)).expect("valid");
            post.cdf(black_box(1e-3))
        })
    });
    g.finish();
}

/// Pooling rule: linear mixture vs closed-form log pool.
fn ablate_pooling(c: &mut Criterion) {
    let beliefs: Vec<LogNormal> = (0..9)
        .map(|i| LogNormal::from_mode_sigma(1e-3 * (1.0 + i as f64), 0.8).expect("valid"))
        .collect();
    let mut g = c.benchmark_group("ablation_pooling");
    g.bench_function("linear_pool_cdf", |b| {
        b.iter(|| {
            let m = pooling::linear_pool(&beliefs, None).expect("valid");
            m.cdf(black_box(1e-2))
        })
    });
    g.bench_function("log_pool_cdf", |b| {
        b.iter(|| {
            let m = pooling::log_pool_lognormals(&beliefs, None).expect("valid");
            m.cdf(black_box(1e-2))
        })
    });
    g.finish();
}

/// Leg combination: closed-form Fréchet/independence vs Gaussian-copula
/// (bivariate-normal quadrature) vs the tolerable-correlation inverse.
fn ablate_dependence(c: &mut Criterion) {
    use depcase_core::copula;
    use depcase_core::multileg::{combine_two_legs, Leg};
    let a = Leg::with_confidence(0.95).expect("valid");
    let b = Leg::with_confidence(0.90).expect("valid");
    let mut g = c.benchmark_group("ablation_dependence");
    g.bench_function("frechet_closed_form", |bch| bch.iter(|| combine_two_legs(a, b)));
    g.bench_function("gaussian_copula", |bch| {
        bch.iter(|| copula::combined_doubt_gaussian(a, b, black_box(0.5)))
    });
    g.bench_function("tolerable_correlation", |bch| {
        bch.iter(|| copula::tolerable_correlation(a, b, black_box(0.02)))
    });
    g.finish();
}

criterion_group!(
    benches,
    ablate_band_probability,
    ablate_posterior,
    ablate_pooling,
    ablate_dependence
);
criterion_main!(benches);
