//! Regenerates the paper's tables and figures on stdout.
//!
//! ```text
//! fig_tables                 # run everything
//! fig_tables fig3 fig4       # run selected experiments
//! fig_tables --csv fig1      # CSV output (for plotting)
//! fig_tables --svg fig1      # standalone SVG chart on stdout
//! fig_tables --list          # list experiment names
//! ```

use depcase_bench::{experiments, plot};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let csv = args.iter().any(|a| a == "--csv");
    let svg = args.iter().any(|a| a == "--svg");
    let names: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    if args.iter().any(|a| a == "--list") {
        for n in experiments::NAMES {
            println!("{n}");
        }
        return;
    }

    if svg {
        for n in &names {
            match plot::figure_svg(n) {
                Some(doc) => print!("{doc}"),
                None => {
                    eprintln!("no SVG renderer for '{n}' (figures only: fig1..fig5)");
                    std::process::exit(2);
                }
            }
        }
        if names.is_empty() {
            eprintln!("--svg needs a figure name (fig1..fig5)");
            std::process::exit(2);
        }
        return;
    }

    let tables = if names.is_empty() {
        experiments::all()
    } else {
        let mut ts = Vec::new();
        for n in &names {
            match experiments::by_name(n) {
                Some(t) => ts.push(t),
                None => {
                    eprintln!("unknown experiment '{n}'; known: {}", experiments::NAMES.join(", "));
                    std::process::exit(2);
                }
            }
        }
        ts
    };

    for t in tables {
        if csv {
            println!("# {}", t.title);
            print!("{}", t.to_csv());
        } else {
            println!("{t}");
        }
        println!();
    }

    // The F3 crossover is a scalar, not a table row — print it alongside
    // fig3 output.
    if names.is_empty() || names.iter().any(|n| n.as_str() == "fig3") {
        println!(
            "F3 crossover: mean pfd enters SIL1 below SIL2-confidence = {:.4} (paper: ~0.67)",
            experiments::fig3_crossover()
        );
    }
}
