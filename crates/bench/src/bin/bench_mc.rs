//! Emits `BENCH_mc.json`: throughput and parallel speedup of the
//! Monte-Carlo engine plus the timed parameter sweeps.
//!
//! ```sh
//! cargo run --release -p depcase-bench --bin bench_mc -- [OUT.json] [--threads N]
//! ```
//!
//! With no arguments the report is written to `BENCH_mc.json` in the
//! current directory using every available core.

use depcase_bench::sweep::{resolve_threads, run_bench};

fn main() {
    let mut out = String::from("BENCH_mc.json");
    let mut threads = 0usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--threads needs a number"));
            }
            "--help" | "-h" => usage(""),
            other if other.starts_with('-') => usage(&format!("unknown flag {other}")),
            path => out = path.to_string(),
        }
    }

    let threads = resolve_threads(threads);
    eprintln!("running sweeps on {threads} thread(s)…");
    let report = run_bench(&[100_000, 400_000, 1_600_000], 42, threads);

    for stage in &report.stages {
        eprintln!("  {:>16}: {:>8} points in {:.4}s", stage.stage, stage.points, stage.seconds);
    }
    for rung in &report.mc {
        eprintln!(
            "  mc {:>9} samples: {:>12.0} samples/s single, {:>12.0} parallel ({:.2}x)",
            rung.samples, rung.samples_per_sec_single, rung.samples_per_sec_parallel, rung.speedup
        );
    }
    for rung in &report.batched_mc {
        eprintln!(
            "  batched {:>9} samples: {:>12.0} samples/s scalar, {:>12.0} batched ({:.2}x)",
            rung.samples, rung.samples_per_sec_scalar, rung.samples_per_sec_batched, rung.speedup
        );
    }
    let inc = &report.incremental;
    eprintln!(
        "  incremental: {} edits on {} nodes: {:.4}s full vs {:.4}s incremental ({:.1}x), \
         {} recomputed / {} reused",
        inc.edits,
        inc.nodes,
        inc.secs_full,
        inc.secs_incremental,
        inc.speedup,
        inc.nodes_recomputed,
        inc.nodes_reused
    );

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {out}");
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!("usage: bench_mc [OUT.json] [--threads N]");
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}
