//! Emits `BENCH_service.json`: throughput, client-side latency
//! quantiles, and plan-cache hit rate of the resident assessment
//! service under concurrent load.
//!
//! ```sh
//! cargo run --release -p depcase-bench --bin bench_service -- \
//!     [OUT.json] [--clients N] [--requests N] [--workers N] [--conns N] \
//!     [--tenants N] [--faults SPEC] [--storage-faults SPEC]
//! ```
//!
//! The harness starts the service in-process on an ephemeral localhost
//! port, preloads two cases, then drives N clients each issuing a fixed
//! mix of `eval`, `rank`, `mc`, and `bands` requests over their own TCP
//! connection. Latency is measured at the client (full round trip,
//! including the wire), and quantiles are exact — computed from the
//! sorted per-request samples, not histogram buckets.
//!
//! A second, faulted scenario then repeats the run against a server
//! injecting worker panics, request delays, and connection drops at 5%
//! each from a fixed seed, driven through retrying clients — its
//! goodput (completed requests per second, retries included in the
//! cost) and retry counts land in the report's `faulted` block.
//!
//! A concurrency scenario measures what the readiness loop buys:
//! it opens a wall of idle connections against the epoll transport,
//! records how many OS threads the wall cost (none), spot-checks that
//! the idle connections still answer, and compares a busy client's
//! eval latency with and without the wall. Capacity is reported as a
//! ratio against the thread-per-connection default cap of 128
//! connections the earlier artefacts were recorded under.
//!
//! An observability scenario prices the tracing subsystem: the same
//! single-client eval loop is timed with per-request tracing on (the
//! default) and off, and the `observability` block reports eval p99
//! and req/s for both plus the relative p99 overhead.
//!
//! A durability scenario measures what the write-ahead log
//! costs and what recovery buys. The standard request mix is re-run
//! against a durable engine at `--fsync never` and compared to the
//! in-memory baseline (the serving overhead: reads are never logged,
//! so this should be near zero). A pure mutation storm is then timed
//! against an in-memory engine, a durable engine at `--fsync never`,
//! and one at `--fsync always` (the worst-case per-mutation WAL
//! cost), and finally the storm's data dir is re-opened cold to time
//! the startup replay. All of it lands in the report's `durability`
//! block.
//!
//! A storage-faults scenario re-runs the mutation storm against a
//! durable engine whose file operations pass through the deterministic
//! storage fault injector (2% EIO, 2% read-side bit-rot by default):
//! failed appends open read-only windows the retrying clients ride
//! out, and a closing `scrub` repairs the decay. Goodput, window
//! counts, injected-fault tallies, and the repair report land in the
//! `storage_faults` block.
//!
//! A multi-tenant scenario (`--tenants N`, default 100 000) registers a
//! fleet of template-stamped case variants against a sharded engine
//! with the global content-addressed memo store, then drives a
//! zipf-distributed eval mix over the fleet. The `multi_tenant` block
//! reports the cross-tenant subtree-dedup ratio from the compile
//! counters, resident bytes per registered variant against the cost of
//! one cold privately-memoized case, and the zipf eval p50/p99.

use depcase::assurance::templates::{stamp, TEMPLATE_COUNT};
use depcase::prelude::*;
use depcase_service::protocol::{Json, Request};
use depcase_service::{
    Client, DurabilityConfig, Engine, EngineConfig, FaultPlan, FaultyIo, FsyncPolicy, IoModel,
    RealIo, RetryPolicy, RetryingClient, Server, ServerConfig, StorageIo, DEFAULT_SHARDS,
};
use serde::{Serialize, Value};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

const DEFAULT_CLIENTS: usize = 4;
const DEFAULT_REQUESTS: usize = 50;
const DEFAULT_WORKERS: usize = 4;
const MC_SAMPLES: u32 = 16_384;
/// Idle connections the concurrency scenario holds open.
const DEFAULT_CONNS: usize = 1400;
/// The thread-per-connection connection cap the pre-epoll artefacts
/// were recorded under (`ServerConfig::default().max_connections`) —
/// the denominator of the capacity ratio.
const BASELINE_MAX_CONNECTIONS: usize = 128;
/// Fault mix for the faulted scenario: 5% of requests panic their
/// worker, 5% are delayed, 5% of lines drop the connection.
const DEFAULT_FAULTS: &str = "seed=42,panic=0.05,delay=0.05,delay_ms=2,drop=0.05";
/// Storage fault mix for the storage scenario: 2% of writes/fsyncs fail
/// with EIO (each failed WAL append opens a read-only window the
/// retrying clients must ride out), and 2% of reads flip-and-persist a
/// bit (bit-rot for the closing scrub to find and repair).
const DEFAULT_STORAGE_FAULTS: &str = "seed=42,eio=0.02,bitrot=0.02";
/// Registered template variants in the multi-tenant scenario.
const DEFAULT_TENANTS: usize = 100_000;
/// Zipf-mix eval requests driven over the registered fleet.
const ZIPF_REQUESTS: usize = 20_000;

fn demo_case(title: &str, strong: f64, weak: f64) -> Case {
    let mut case = Case::new(title);
    let g = case.add_goal("G1", "pfd < 1e-3").unwrap();
    let s = case.add_strategy("S1", "independent legs", Combination::AnyOf).unwrap();
    let e1 = case.add_evidence("E1", "statistical testing", strong).unwrap();
    let e2 = case.add_evidence("E2", "static analysis", weak).unwrap();
    let a = case.add_assumption("A1", "environment stable", 0.99).unwrap();
    case.support(g, s).unwrap();
    case.support(s, e1).unwrap();
    case.support(s, e2).unwrap();
    case.support(g, a).unwrap();
    case
}

fn load_line(name: &str, case: &Case) -> String {
    let body = Value::Object(vec![
        ("op".to_string(), Value::Str("load".to_string())),
        ("name".to_string(), Value::Str(name.to_string())),
        ("case".to_string(), case.to_value()),
    ]);
    serde_json::to_string(&Json(body)).unwrap()
}

/// The request mix one client cycles through: mostly cheap evals with
/// periodic Monte-Carlo cross-checks, the shape of an assessment UI
/// polling a live case.
fn request_for(case_name: &str, idx: usize) -> (&'static str, String) {
    match idx % 5 {
        0 | 1 => ("eval", format!(r#"{{"op":"eval","name":"{case_name}"}}"#)),
        2 => ("rank", format!(r#"{{"op":"rank","name":"{case_name}"}}"#)),
        3 => (
            "mc",
            format!(
                r#"{{"op":"mc","name":"{case_name}","samples":{MC_SAMPLES},"seed":{idx},"threads":1}}"#
            ),
        ),
        _ => (
            "bands",
            format!(
                r#"{{"op":"bands","name":"{case_name}","pfd_bound":1e-3,"mode":"low_demand"}}"#
            ),
        ),
    }
}

fn quantile_us(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn latency_value(sorted: &[u64]) -> Value {
    let mean = if sorted.is_empty() {
        0.0
    } else {
        sorted.iter().sum::<u64>() as f64 / sorted.len() as f64
    };
    Value::Object(vec![
        ("p50_us".to_string(), Value::U64(quantile_us(sorted, 0.50))),
        ("p99_us".to_string(), Value::U64(quantile_us(sorted, 0.99))),
        ("mean_us".to_string(), Value::F64(mean)),
        ("max_us".to_string(), Value::U64(sorted.last().copied().unwrap_or(0))),
    ])
}

/// OS threads in this process, from `/proc/self/status`.
fn thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find_map(|l| l.strip_prefix("Threads:")).and_then(|v| v.trim().parse().ok())
        })
        .unwrap_or(0)
}

/// Sorted eval round-trip latencies (µs) for `n` requests on `client`.
fn eval_latencies(client: &mut Client, n: usize) -> Vec<u64> {
    let mut samples = Vec::with_capacity(n);
    for _ in 0..n {
        let sent = Instant::now();
        let response = client.round_trip(r#"{"op":"eval","name":"reactor"}"#).expect("eval");
        assert!(response.contains(r#""ok":true"#), "eval failed: {response}");
        samples.push(u64::try_from(sent.elapsed().as_micros()).unwrap_or(u64::MAX));
    }
    samples.sort_unstable();
    samples
}

/// The concurrency scenario: idle-connection capacity of the epoll
/// transport and the busy-path latency cost of holding that capacity
/// open. Returns the report block.
fn concurrency_run(workers: usize, conns: usize) -> Value {
    let engine = Arc::new(Engine::new(16));
    let config = ServerConfig {
        workers,
        max_connections: conns + 16,
        io: IoModel::Epoll,
        ..ServerConfig::default()
    };
    let server =
        Server::start(Arc::clone(&engine), ("127.0.0.1", 0), config).expect("bind localhost");
    let addr = server.local_addr();

    let mut probe = Client::connect(addr).expect("connect");
    probe
        .round_trip(&load_line("reactor", &demo_case("reactor protection", 0.95, 0.90)))
        .expect("load reactor");
    let solo = eval_latencies(&mut probe, 200);

    eprintln!("concurrency scenario: opening {conns} idle connection(s)…");
    let threads_before = thread_count();
    let wall: Vec<TcpStream> = (0..conns)
        .map(|i| {
            let stream =
                TcpStream::connect(addr).unwrap_or_else(|e| panic!("connection {i} refused: {e}"));
            stream.set_read_timeout(Some(Duration::from_secs(30))).expect("set timeout");
            stream
        })
        .collect();
    let threads_after = thread_count();

    // The wall must be live, not just accepted: trickle a request
    // through a spread of the idle connections and count the answers.
    let mut live = 0u64;
    for stream in wall.iter().step_by(conns.div_ceil(16).max(1)) {
        let mut write_half = stream.try_clone().expect("clone stream");
        write_half.write_all(b"{\"op\":\"eval\",\"name\":\"reactor\"}\n").expect("write");
        let mut line = String::new();
        BufReader::new(stream).read_line(&mut line).expect("read");
        assert!(line.contains(r#""ok":true"#), "idle connection went dead: {line}");
        live += 1;
    }

    let at_capacity = eval_latencies(&mut probe, 200);
    drop(wall);
    server.shutdown();

    let capacity_ratio = conns as f64 / BASELINE_MAX_CONNECTIONS as f64;
    eprintln!(
        "  {conns} idle conns cost {} thread(s) ({threads_before} -> {threads_after}); \
         {live} spot-checked live; capacity {capacity_ratio:.1}x the threaded cap of \
         {BASELINE_MAX_CONNECTIONS}",
        threads_after.saturating_sub(threads_before)
    );
    eprintln!(
        "  eval p99: {}µs solo, {}µs at capacity",
        quantile_us(&solo, 0.99),
        quantile_us(&at_capacity, 0.99)
    );
    Value::Object(vec![
        ("io".to_string(), Value::Str("epoll".to_string())),
        ("idle_connections".to_string(), Value::U64(conns as u64)),
        (
            "threads_added_by_idle_connections".to_string(),
            Value::U64(threads_after.saturating_sub(threads_before) as u64),
        ),
        ("live_spot_checks".to_string(), Value::U64(live)),
        ("baseline_max_connections".to_string(), Value::U64(BASELINE_MAX_CONNECTIONS as u64)),
        ("capacity_ratio".to_string(), Value::F64(capacity_ratio)),
        ("eval_latency_solo".to_string(), latency_value(&solo)),
        ("eval_latency_at_capacity".to_string(), latency_value(&at_capacity)),
    ])
}

/// The observability scenario: what per-request tracing costs on the
/// hot path. One client's eval loop is timed twice against otherwise
/// identical servers — tracing on (the default) and tracing off
/// (`--no-trace`) — and the block reports eval p99 and req/s for both
/// plus the relative p99 overhead, the number the "within 2%"
/// acceptance bound reads.
fn observability_run(workers: usize) -> Value {
    const WARMUP: usize = 100;
    const MEASURED: usize = 2000;
    let run = |enabled: bool| -> (Vec<u64>, f64) {
        let engine = Arc::new(Engine::new(16));
        engine.telemetry().set_enabled(enabled);
        let server =
            Server::bind(Arc::clone(&engine), ("127.0.0.1", 0), workers).expect("bind localhost");
        let mut client = Client::connect(server.local_addr()).expect("connect");
        client
            .round_trip(&load_line("reactor", &demo_case("reactor protection", 0.95, 0.90)))
            .expect("load reactor");
        let _ = eval_latencies(&mut client, WARMUP);
        let started = Instant::now();
        let samples = eval_latencies(&mut client, MEASURED);
        let rps = MEASURED as f64 / started.elapsed().as_secs_f64();
        server.shutdown();
        (samples, rps)
    };
    eprintln!("observability scenario: {MEASURED} eval(s), tracing off vs on…");
    let (off, off_rps) = run(false);
    let (on, on_rps) = run(true);
    let off_p99 = quantile_us(&off, 0.99);
    let on_p99 = quantile_us(&on, 0.99);
    let overhead_percent =
        if off_p99 == 0 { 0.0 } else { (on_p99 as f64 / off_p99 as f64 - 1.0) * 100.0 };
    eprintln!(
        "  eval p99: {off_p99}µs off, {on_p99}µs on ({overhead_percent:+.1}%); \
         req/s: {off_rps:.0} off, {on_rps:.0} on"
    );
    Value::Object(vec![
        (
            "tracing_off".to_string(),
            Value::Object(vec![
                ("eval_latency".to_string(), latency_value(&off)),
                ("requests_per_second".to_string(), Value::F64(off_rps)),
            ]),
        ),
        (
            "tracing_on".to_string(),
            Value::Object(vec![
                ("eval_latency".to_string(), latency_value(&on)),
                ("requests_per_second".to_string(), Value::F64(on_rps)),
            ]),
        ),
        ("p99_overhead_percent".to_string(), Value::F64(overhead_percent)),
    ])
}

/// Runs the faulted scenario: same request mix, retrying clients, a
/// server injecting faults per `spec`. Returns the report block.
fn faulted_run(clients: usize, requests: usize, workers: usize, spec: &str) -> Value {
    let plan = Arc::new(FaultPlan::parse(spec).expect("fault spec"));
    let config =
        ServerConfig { workers, faults: Some(Arc::clone(&plan)), ..ServerConfig::default() };
    let engine = Arc::new(Engine::new(16));
    let server =
        Server::start(Arc::clone(&engine), ("127.0.0.1", 0), config).expect("bind localhost");
    let addr = server.local_addr();

    let policy = RetryPolicy { max_attempts: 20, base_ms: 2, cap_ms: 50, seed: 1 };
    let mut setup = RetryingClient::connect(addr, policy).expect("connect");
    setup
        .round_trip(&load_line("reactor", &demo_case("reactor protection", 0.95, 0.90)))
        .expect("load reactor");
    setup
        .round_trip(&load_line("interlock", &demo_case("interlock", 0.97, 0.85)))
        .expect("load interlock");

    eprintln!("faulted scenario: {clients} retrying client(s) x {requests} request(s), {spec}…");
    let started = Instant::now();
    let mut handles = Vec::new();
    for client_idx in 0..clients {
        handles.push(std::thread::spawn(move || {
            let policy = RetryPolicy {
                max_attempts: 20,
                base_ms: 2,
                cap_ms: 50,
                seed: 1000 + client_idx as u64,
            };
            let mut client = RetryingClient::connect(addr, policy).expect("connect");
            let case_name = if client_idx % 2 == 0 { "reactor" } else { "interlock" };
            let mut completed = 0u64;
            let mut failed = 0u64;
            let mut samples: Vec<u64> = Vec::with_capacity(requests);
            for idx in 0..requests {
                let (_, line) = request_for(case_name, idx);
                let sent = Instant::now();
                match client.round_trip(&line) {
                    Ok(response) if response.contains(r#""ok":true"#) => {
                        completed += 1;
                        samples.push(u64::try_from(sent.elapsed().as_micros()).unwrap_or(u64::MAX));
                    }
                    _ => failed += 1,
                }
            }
            (completed, failed, client.retries(), samples)
        }));
    }
    let mut completed = 0u64;
    let mut failed = 0u64;
    let mut retries = 0u64;
    let mut sorted: Vec<u64> = Vec::new();
    for handle in handles {
        let (c, f, r, samples) = handle.join().expect("client thread");
        completed += c;
        failed += f;
        retries += r;
        sorted.extend(samples);
    }
    let elapsed = started.elapsed().as_secs_f64();
    sorted.sort_unstable();
    server.shutdown();

    let injected = plan.injected();
    let robustness = engine.robustness();
    let goodput = completed as f64 / elapsed;
    eprintln!(
        "  {completed} completed ({failed} failed) in {elapsed:.3}s = {goodput:.0} good req/s; \
         {retries} retries; injected {} panics / {} delays / {} drops",
        injected.panics, injected.delays, injected.drops
    );
    Value::Object(vec![
        ("fault_spec".to_string(), Value::Str(spec.to_string())),
        ("completed_requests".to_string(), Value::U64(completed)),
        ("failed_requests".to_string(), Value::U64(failed)),
        ("retries".to_string(), Value::U64(retries)),
        ("elapsed_seconds".to_string(), Value::F64(elapsed)),
        ("goodput_requests_per_second".to_string(), Value::F64(goodput)),
        ("latency".to_string(), latency_value(&sorted)),
        (
            "injected".to_string(),
            Value::Object(vec![
                ("panics".to_string(), Value::U64(injected.panics)),
                ("delays".to_string(), Value::U64(injected.delays)),
                ("drops".to_string(), Value::U64(injected.drops)),
            ]),
        ),
        (
            "robustness".to_string(),
            Value::Object(vec![
                ("panics".to_string(), Value::U64(robustness.panics)),
                ("respawns".to_string(), Value::U64(robustness.respawns)),
                ("overloaded".to_string(), Value::U64(robustness.overloaded)),
            ]),
        ),
    ])
}

/// Drives the standard request mix against `engine` and returns the
/// observed requests per second — the same traffic shape as the main
/// scenario, so durable and in-memory engines compare directly.
fn mixed_throughput(engine: &Arc<Engine>, clients: usize, requests: usize, workers: usize) -> f64 {
    let server =
        Server::bind(Arc::clone(engine), ("127.0.0.1", 0), workers).expect("bind localhost");
    let addr = server.local_addr();
    let mut setup = Client::connect(addr).expect("connect");
    setup
        .round_trip(&load_line("reactor", &demo_case("reactor protection", 0.95, 0.90)))
        .expect("load reactor");
    setup
        .round_trip(&load_line("interlock", &demo_case("interlock", 0.97, 0.85)))
        .expect("load interlock");
    let started = Instant::now();
    let mut handles = Vec::new();
    for client_idx in 0..clients {
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect");
            let case_name = if client_idx % 2 == 0 { "reactor" } else { "interlock" };
            for idx in 0..requests {
                let (_, line) = request_for(case_name, idx);
                let response = client.round_trip(&line).expect("round trip");
                assert!(response.contains(r#""ok":true"#), "request failed: {response}");
            }
        }));
    }
    for handle in handles {
        handle.join().expect("mixed client thread");
    }
    let elapsed = started.elapsed().as_secs_f64();
    server.shutdown();
    (clients * requests) as f64 / elapsed
}

/// Drives `clients` concurrent connections each issuing `requests`
/// `set_confidence` edits against its own case on `engine`; returns
/// completed mutations per second.
fn mutation_storm(engine: &Arc<Engine>, clients: usize, requests: usize, workers: usize) -> f64 {
    let server =
        Server::bind(Arc::clone(engine), ("127.0.0.1", 0), workers).expect("bind localhost");
    let addr = server.local_addr();
    let mut setup = Client::connect(addr).expect("connect");
    for client_idx in 0..clients {
        let name = format!("storm{client_idx}");
        setup
            .round_trip(&load_line(&name, &demo_case("storm case", 0.95, 0.90)))
            .expect("load storm case");
    }
    let started = Instant::now();
    let mut handles = Vec::new();
    for client_idx in 0..clients {
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect");
            let name = format!("storm{client_idx}");
            for idx in 0..requests {
                let confidence = 0.5 + 0.4 * ((idx % 97) as f64 / 96.0);
                let line = format!(
                    r#"{{"op":"edit","name":"{name}","action":"set_confidence","node":"E1","confidence":{confidence}}}"#
                );
                let response = client.round_trip(&line).expect("edit round trip");
                assert!(response.contains(r#""ok":true"#), "edit failed: {response}");
            }
        }));
    }
    for handle in handles {
        handle.join().expect("storm client thread");
    }
    let elapsed = started.elapsed().as_secs_f64();
    server.shutdown();
    (clients * requests) as f64 / elapsed
}

/// The storage-faults scenario: a mutation storm against a durable
/// engine whose every file operation passes through the deterministic
/// storage fault injector — failed appends open read-only windows the
/// retrying clients ride out, and read-side bit-rot decays the object
/// store for the closing `scrub` to detect and repair. Reports goodput
/// under storage failure, the window count, and the repair tally.
fn storage_faults_run(clients: usize, requests: usize, workers: usize, spec: &str) -> Value {
    let data_dir =
        std::env::temp_dir().join(format!("depcase_bench_storage_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);
    let faulty = Arc::new(FaultyIo::parse(RealIo::shared(), spec).expect("storage fault spec"));
    let config = DurabilityConfig {
        data_dir: data_dir.clone(),
        // Every append syncs, so every mutation exposes both a write
        // and an fsync to the injector — the maximal fault surface.
        fsync: FsyncPolicy::Always,
        // Snapshots land mid-storm, putting object writes and manifest
        // renames inside the blast radius too.
        snapshot_every: 64,
    };
    let engine = Arc::new(
        Engine::open_with_io(16, &config, Arc::clone(&faulty) as Arc<dyn StorageIo>)
            .expect("open faulted data dir"),
    );
    let server =
        Server::bind(Arc::clone(&engine), ("127.0.0.1", 0), workers).expect("bind localhost");
    let addr = server.local_addr();

    let setup_policy = RetryPolicy { max_attempts: 50, base_ms: 2, cap_ms: 50, seed: 7 };
    let mut setup = RetryingClient::connect(addr, setup_policy).expect("connect");
    for client_idx in 0..clients {
        let name = format!("storm{client_idx}");
        setup
            .round_trip(&load_line(&name, &demo_case("storm case", 0.95, 0.90)))
            .expect("load storm case");
    }

    eprintln!(
        "storage-faults scenario: {clients} retrying client(s) x {requests} edit(s), {spec}…"
    );
    let started = Instant::now();
    let mut handles = Vec::new();
    for client_idx in 0..clients {
        handles.push(std::thread::spawn(move || {
            let policy = RetryPolicy {
                max_attempts: 50,
                base_ms: 2,
                cap_ms: 50,
                seed: 2000 + client_idx as u64,
            };
            let mut client = RetryingClient::connect(addr, policy).expect("connect");
            let name = format!("storm{client_idx}");
            let mut completed = 0u64;
            let mut failed = 0u64;
            for idx in 0..requests {
                let confidence = 0.5 + 0.4 * ((idx % 97) as f64 / 96.0);
                let line = format!(
                    r#"{{"op":"edit","name":"{name}","action":"set_confidence","node":"E1","confidence":{confidence}}}"#
                );
                match client.round_trip(&line) {
                    Ok(response) if response.contains(r#""ok":true"#) => completed += 1,
                    _ => failed += 1,
                }
            }
            let read_only_retries =
                client.retried_codes().iter().filter(|c| c.as_str() == "read_only").count() as u64;
            (completed, failed, client.retries(), read_only_retries)
        }));
    }
    let mut completed = 0u64;
    let mut failed = 0u64;
    let mut retries = 0u64;
    let mut read_only_retries = 0u64;
    for handle in handles {
        let (c, f, r, ro) = handle.join().expect("storm client thread");
        completed += c;
        failed += f;
        retries += r;
        read_only_retries += ro;
    }
    let elapsed = started.elapsed().as_secs_f64();
    let goodput = completed as f64 / elapsed;

    // Close with a scrub: whatever the injected bit-rot decayed, the
    // pipeline must find and (with the registry live) repair.
    let scrub = engine.handle(&Request::Scrub).expect("scrub");
    let health = engine.storage_health();
    let injected = faulty.injected();
    server.shutdown();
    let _ = std::fs::remove_dir_all(&data_dir);

    eprintln!(
        "  {completed} mutations ({failed} failed) in {elapsed:.3}s = {goodput:.0} good mut/s; \
         {retries} retries ({read_only_retries} on read_only); \
         {} read-only window(s); injected {} EIO / {} bit-rot",
        health.read_only_entered, injected.eio, injected.bitrot
    );
    eprintln!(
        "  scrub: {} object(s) checked, {} corrupt, {} repaired, {} quarantined",
        scrub.get("objects_checked").and_then(Value::as_u64).unwrap_or(0),
        scrub.get("corrupt_detected").and_then(Value::as_u64).unwrap_or(0),
        scrub.get("repaired").and_then(Value::as_u64).unwrap_or(0),
        scrub.get("quarantined").and_then(Value::as_u64).unwrap_or(0),
    );
    Value::Object(vec![
        ("fault_spec".to_string(), Value::Str(spec.to_string())),
        ("completed_mutations".to_string(), Value::U64(completed)),
        ("failed_mutations".to_string(), Value::U64(failed)),
        ("retries".to_string(), Value::U64(retries)),
        ("read_only_retries".to_string(), Value::U64(read_only_retries)),
        ("elapsed_seconds".to_string(), Value::F64(elapsed)),
        ("goodput_mutations_per_second".to_string(), Value::F64(goodput)),
        (
            "injected".to_string(),
            Value::Object(vec![
                ("eio".to_string(), Value::U64(injected.eio)),
                ("enospc".to_string(), Value::U64(injected.enospc)),
                ("short_writes".to_string(), Value::U64(injected.short_writes)),
                ("torn".to_string(), Value::U64(injected.torn)),
                ("bitrot".to_string(), Value::U64(injected.bitrot)),
            ]),
        ),
        (
            "read_only_windows".to_string(),
            Value::Object(vec![
                ("entered".to_string(), Value::U64(health.read_only_entered)),
                ("exited".to_string(), Value::U64(health.read_only_exited)),
                ("append_failures".to_string(), Value::U64(health.append_failures)),
            ]),
        ),
        ("scrub".to_string(), scrub),
        (
            "repairs".to_string(),
            Value::Object(vec![
                ("from_memory".to_string(), Value::U64(health.repaired_from_memory)),
                ("from_wal".to_string(), Value::U64(health.repaired_from_wal)),
                ("quarantined".to_string(), Value::U64(health.quarantined)),
            ]),
        ),
    ])
}

/// The durability scenario: serving overhead of the durable engine on
/// the standard mix, mutation throughput in-memory vs durable (both
/// fsync policies), then a cold re-open of the storm's data dir to
/// time startup replay. Snapshots are disabled for the storm so the
/// replay measures pure WAL throughput.
fn durability_run(clients: usize, requests: usize, workers: usize, baseline_rps: f64) -> Value {
    let data_dir = std::env::temp_dir().join(format!("depcase_bench_wal_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);
    let mutations = (clients * requests) as u64;

    // Serving overhead: the read-heavy mix against a durable engine at
    // `--fsync never`. Reads bypass the WAL entirely, so this isolates
    // the cost of durability plumbing on the hot path.
    eprintln!("durability scenario: {clients} client(s) x {requests} mixed request(s)…");
    let mix_config = DurabilityConfig {
        data_dir: data_dir.join("mix"),
        fsync: FsyncPolicy::Never,
        snapshot_every: 0,
    };
    let engine = Arc::new(Engine::open(16, &mix_config).expect("open data dir"));
    let mixed_rps = mixed_throughput(&engine, clients, requests, workers);
    drop(engine);
    let mixed_overhead_percent = (baseline_rps / mixed_rps - 1.0) * 100.0;
    eprintln!(
        "  mixed req/s: {baseline_rps:.0} in-memory, {mixed_rps:.0} wal+never \
         ({mixed_overhead_percent:+.1}%)"
    );

    eprintln!("durability scenario: {clients} client(s) x {requests} edit(s)…");
    let baseline = mutation_storm(&Arc::new(Engine::new(16)), clients, requests, workers);

    let config = DurabilityConfig {
        data_dir: data_dir.clone(),
        fsync: FsyncPolicy::Never,
        snapshot_every: 0,
    };
    let engine = Arc::new(Engine::open(16, &config).expect("open data dir"));
    let wal_never = mutation_storm(&engine, clients, requests, workers);
    drop(engine);
    let overhead_percent = (baseline / wal_never - 1.0) * 100.0;

    // Cold restart: how long does replaying the storm's WAL take?
    let recovery_started = Instant::now();
    let recovered = Engine::open(16, &config).expect("recover data dir");
    let recovery_seconds = recovery_started.elapsed().as_secs_f64();
    let replayed = recovered.durability_counters().records_replayed;
    drop(recovered);

    let always_dir = data_dir.join("always");
    let always_config =
        DurabilityConfig { data_dir: always_dir, fsync: FsyncPolicy::Always, snapshot_every: 0 };
    let engine = Arc::new(Engine::open(16, &always_config).expect("open data dir"));
    let wal_always = mutation_storm(&engine, clients, requests, workers);
    drop(engine);
    let _ = std::fs::remove_dir_all(&data_dir);

    eprintln!(
        "  mutations/s: {baseline:.0} in-memory, {wal_never:.0} wal+never \
         ({overhead_percent:+.1}%), {wal_always:.0} wal+always"
    );
    eprintln!(
        "  recovery: {replayed} records replayed in {recovery_seconds:.3}s \
         ({:.1} µs/record)",
        if replayed == 0 { 0.0 } else { recovery_seconds * 1e6 / replayed as f64 }
    );
    Value::Object(vec![
        (
            "serving".to_string(),
            Value::Object(vec![
                ("in_memory_requests_per_second".to_string(), Value::F64(baseline_rps)),
                ("wal_never_requests_per_second".to_string(), Value::F64(mixed_rps)),
                ("overhead_percent".to_string(), Value::F64(mixed_overhead_percent)),
            ]),
        ),
        ("mutations".to_string(), Value::U64(mutations)),
        ("in_memory_mutations_per_second".to_string(), Value::F64(baseline)),
        ("wal_never_mutations_per_second".to_string(), Value::F64(wal_never)),
        ("wal_never_overhead_percent".to_string(), Value::F64(overhead_percent)),
        ("wal_always_mutations_per_second".to_string(), Value::F64(wal_always)),
        (
            "recovery".to_string(),
            Value::Object(vec![
                ("records_replayed".to_string(), Value::U64(replayed)),
                ("elapsed_seconds".to_string(), Value::F64(recovery_seconds)),
                (
                    "microseconds_per_record".to_string(),
                    Value::F64(if replayed == 0 {
                        0.0
                    } else {
                        recovery_seconds * 1e6 / replayed as f64
                    }),
                ),
            ]),
        ),
    ])
}

/// Resident-set size of this process in bytes, from `/proc/self/statm`.
fn rss_bytes() -> u64 {
    std::fs::read_to_string("/proc/self/statm")
        .ok()
        .and_then(|s| s.split_whitespace().nth(1).and_then(|v| v.parse::<u64>().ok()))
        .map_or(0, |pages| pages * 4096)
}

/// SplitMix64 step — the same generator the template stamper uses, so
/// the zipf mix is reproducible without a rand dependency.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The multi-tenant scenario: register `tenants` template-stamped
/// variants against a sharded engine sharing one content-addressed
/// memo store, then drive a zipf-distributed eval mix over the fleet.
///
/// Three numbers matter. The **subtree-dedup ratio** from the compile
/// counters is the headline: nodes answered per node actually
/// recomputed across every registration — the work the global store
/// deduplicates across tenants. **Bytes per variant** is the marginal
/// resident cost of one more registered tenant at fleet scale,
/// compared against the resident cost of one cold case compiled with
/// a private memo and a live session (what every tenant would cost
/// without sharing). The **zipf eval latency** shows the fleet serves
/// a realistic skewed read mix from the sharded plan caches.
///
/// Requests go through [`Engine::handle`] directly — this measures the
/// sharded engine, not the wire.
fn multi_tenant_run(tenants: usize) -> Value {
    // Small enough that its freed allocations don't meaningfully
    // deflate the fleet's RSS delta, big enough to average out
    // allocator slack.
    const COLD_SAMPLE: usize = 256;
    eprintln!(
        "multi-tenant scenario: {tenants} variant(s) of {TEMPLATE_COUNT} template(s), \
         {ZIPF_REQUESTS} zipf eval(s)…"
    );

    // Cold reference: private memos, one shard, a cache big enough
    // that every compiled session stays resident — the full per-case
    // cost the fleet amortises away.
    let cold = Engine::with_config(&EngineConfig {
        cache_capacity: COLD_SAMPLE,
        shards: 1,
        memo_entries: 0,
    });
    let rss_cold_before = rss_bytes();
    for i in 0..COLD_SAMPLE {
        let template = i % TEMPLATE_COUNT;
        let case = stamp(template, (i / TEMPLATE_COUNT) as u64);
        let name = format!("cold-t{template}-v{}", i / TEMPLATE_COUNT);
        cold.handle(&Request::Load { name, case: Serialize::to_value(&case) }).expect("cold load");
    }
    let cold_case_bytes = rss_bytes().saturating_sub(rss_cold_before) / COLD_SAMPLE as u64;
    drop(cold);

    let engine = Engine::with_config(&EngineConfig {
        cache_capacity: 1024,
        shards: DEFAULT_SHARDS,
        memo_entries: depcase_service::DEFAULT_MEMO_ENTRIES,
    });
    let rss_fleet_before = rss_bytes();
    let registration_started = Instant::now();
    for i in 0..tenants {
        let template = i % TEMPLATE_COUNT;
        let variant = (i / TEMPLATE_COUNT) as u64;
        let case = stamp(template, variant);
        let name = format!("t{template}-v{variant}");
        engine
            .handle(&Request::Load { name, case: Serialize::to_value(&case) })
            .expect("fleet load");
    }
    let registration_seconds = registration_started.elapsed().as_secs_f64();
    let bytes_per_variant = rss_bytes().saturating_sub(rss_fleet_before) / tenants.max(1) as u64;

    let compile = engine.compile_counters();
    let dedup_ratio = compile.dedup_ratio();

    // Zipf-ish tenant popularity: log-uniform over [0, tenants), so
    // rank-k tenants are hit with probability ~1/k — a few hot
    // tenants, a long cold tail.
    let mut rng = 0xdead_beef_u64;
    let ln_n = (tenants.max(2) as f64).ln();
    let mut samples = Vec::with_capacity(ZIPF_REQUESTS);
    let zipf_started = Instant::now();
    for _ in 0..ZIPF_REQUESTS {
        let u = (splitmix64(&mut rng) >> 11) as f64 / (1u64 << 53) as f64;
        let i = ((u * ln_n).exp() as usize).saturating_sub(1).min(tenants - 1);
        let name = format!("t{}-v{}", i % TEMPLATE_COUNT, i / TEMPLATE_COUNT);
        let sent = Instant::now();
        engine.handle(&Request::Eval { name, at: None }).expect("zipf eval");
        samples.push(u64::try_from(sent.elapsed().as_micros()).unwrap_or(u64::MAX));
    }
    let zipf_seconds = zipf_started.elapsed().as_secs_f64();
    samples.sort_unstable();

    let memo = engine.memo_stats().expect("memo store enabled");
    let memo_lookups = memo.hits + memo.misses;
    let bytes_ratio =
        if cold_case_bytes == 0 { 0.0 } else { bytes_per_variant as f64 / cold_case_bytes as f64 };
    eprintln!(
        "  registered {tenants} in {registration_seconds:.3}s \
         ({:.0} loads/s); subtree dedup {dedup_ratio:.1}x \
         ({} recomputed / {} reused over {} compiles)",
        tenants as f64 / registration_seconds,
        compile.nodes_recomputed,
        compile.nodes_reused,
        compile.compiles
    );
    eprintln!(
        "  resident: {bytes_per_variant} B/variant vs {cold_case_bytes} B cold case \
         ({:.2}x); memo store {} entr(ies), {:.3} hit rate",
        bytes_ratio,
        memo.entries,
        if memo_lookups == 0 { 0.0 } else { memo.hits as f64 / memo_lookups as f64 }
    );
    eprintln!(
        "  zipf evals: {:.0} req/s, p50 {}µs p99 {}µs",
        ZIPF_REQUESTS as f64 / zipf_seconds,
        quantile_us(&samples, 0.50),
        quantile_us(&samples, 0.99)
    );
    Value::Object(vec![
        ("tenants".to_string(), Value::U64(tenants as u64)),
        ("templates".to_string(), Value::U64(TEMPLATE_COUNT as u64)),
        ("shards".to_string(), Value::U64(engine.shard_count() as u64)),
        ("registration_seconds".to_string(), Value::F64(registration_seconds)),
        ("registrations_per_second".to_string(), Value::F64(tenants as f64 / registration_seconds)),
        ("subtree_dedup_ratio".to_string(), Value::F64(dedup_ratio)),
        (
            "compile".to_string(),
            Value::Object(vec![
                ("compiles".to_string(), Value::U64(compile.compiles)),
                ("nodes_recomputed".to_string(), Value::U64(compile.nodes_recomputed)),
                ("nodes_reused".to_string(), Value::U64(compile.nodes_reused)),
            ]),
        ),
        ("bytes_per_variant".to_string(), Value::U64(bytes_per_variant)),
        ("cold_case_bytes".to_string(), Value::U64(cold_case_bytes)),
        ("bytes_per_variant_over_cold_case".to_string(), Value::F64(bytes_ratio)),
        (
            "memo_store".to_string(),
            Value::Object(vec![
                ("entries".to_string(), Value::U64(memo.entries)),
                ("capacity".to_string(), Value::U64(memo.capacity)),
                ("hits".to_string(), Value::U64(memo.hits)),
                ("misses".to_string(), Value::U64(memo.misses)),
                ("insertions".to_string(), Value::U64(memo.insertions)),
                ("evictions".to_string(), Value::U64(memo.evictions)),
                (
                    "hit_rate".to_string(),
                    Value::F64(if memo_lookups == 0 {
                        0.0
                    } else {
                        memo.hits as f64 / memo_lookups as f64
                    }),
                ),
            ]),
        ),
        ("zipf_requests".to_string(), Value::U64(ZIPF_REQUESTS as u64)),
        ("zipf_evals_per_second".to_string(), Value::F64(ZIPF_REQUESTS as f64 / zipf_seconds)),
        ("eval_latency".to_string(), latency_value(&samples)),
    ])
}

fn main() {
    let mut out = String::from("BENCH_service.json");
    let mut clients = DEFAULT_CLIENTS;
    let mut requests = DEFAULT_REQUESTS;
    let mut workers = DEFAULT_WORKERS;
    let mut faults = DEFAULT_FAULTS.to_string();
    let mut storage_faults = DEFAULT_STORAGE_FAULTS.to_string();
    let mut conns = DEFAULT_CONNS;
    let mut tenants = DEFAULT_TENANTS;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--clients" => clients = next_count(&mut args, "--clients"),
            "--requests" => requests = next_count(&mut args, "--requests"),
            "--workers" => workers = next_count(&mut args, "--workers"),
            "--conns" => conns = next_count(&mut args, "--conns"),
            "--tenants" => tenants = next_count(&mut args, "--tenants"),
            "--faults" => {
                faults = args.next().unwrap_or_else(|| usage("--faults needs a spec"));
            }
            "--storage-faults" => {
                storage_faults =
                    args.next().unwrap_or_else(|| usage("--storage-faults needs a spec"));
            }
            "--help" | "-h" => usage(""),
            other if other.starts_with('-') => usage(&format!("unknown flag {other}")),
            path => out = path.to_string(),
        }
    }

    let engine = Arc::new(Engine::new(16));
    let server =
        Server::bind(Arc::clone(&engine), ("127.0.0.1", 0), workers).expect("bind localhost");
    let addr = server.local_addr();

    let mut setup = Client::connect(addr).expect("connect");
    setup
        .round_trip(&load_line("reactor", &demo_case("reactor protection", 0.95, 0.90)))
        .expect("load reactor");
    setup
        .round_trip(&load_line("interlock", &demo_case("interlock", 0.97, 0.85)))
        .expect("load interlock");

    eprintln!(
        "driving {clients} client(s) x {requests} request(s) against {addr} ({workers} workers)…"
    );
    let started = Instant::now();
    let mut handles = Vec::new();
    for client_idx in 0..clients {
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect");
            let case_name = if client_idx % 2 == 0 { "reactor" } else { "interlock" };
            // (op, latency µs) per request, in issue order.
            let mut samples: Vec<(&'static str, u64)> = Vec::with_capacity(requests);
            for idx in 0..requests {
                let (op, line) = request_for(case_name, idx);
                let sent = Instant::now();
                let response = client.round_trip(&line).expect("round trip");
                let us = u64::try_from(sent.elapsed().as_micros()).unwrap_or(u64::MAX);
                assert!(response.contains(r#""ok":true"#), "request failed: {response}");
                samples.push((op, us));
            }
            samples
        }));
    }
    let mut all: Vec<(&'static str, u64)> = Vec::new();
    for handle in handles {
        all.extend(handle.join().expect("client thread"));
    }
    let elapsed = started.elapsed().as_secs_f64();

    // Final stats from the service itself: cache hit rate and the
    // server-side view of the same traffic.
    let stats_line = setup.round_trip(r#"{"op":"stats"}"#).expect("stats");
    let Json(stats) = serde_json::from_str(&stats_line).expect("stats parse");
    let cache = stats.get("result").and_then(|r| r.get("plan_cache")).cloned().unwrap();
    server.shutdown();

    let total = all.len();
    let throughput = total as f64 / elapsed;
    let mut sorted_all: Vec<u64> = all.iter().map(|(_, us)| *us).collect();
    sorted_all.sort_unstable();

    let mut per_op: Vec<(String, Value)> = Vec::new();
    for op in ["eval", "rank", "mc", "bands"] {
        let mut sorted: Vec<u64> =
            all.iter().filter(|(o, _)| *o == op).map(|(_, us)| *us).collect();
        if sorted.is_empty() {
            continue;
        }
        sorted.sort_unstable();
        per_op.push((
            op.to_string(),
            Value::Object(vec![
                ("requests".to_string(), Value::U64(sorted.len() as u64)),
                ("latency".to_string(), latency_value(&sorted)),
            ]),
        ));
    }

    let multi_tenant = multi_tenant_run(tenants);
    let concurrency = concurrency_run(workers, conns);
    let observability = observability_run(workers);
    let faulted = faulted_run(clients, requests, workers, &faults);
    let durability = durability_run(clients, requests, workers, throughput);
    let storage = storage_faults_run(clients, requests, workers, &storage_faults);

    let report = Value::Object(vec![
        ("bench".to_string(), Value::Str("service".to_string())),
        (
            "config".to_string(),
            Value::Object(vec![
                ("clients".to_string(), Value::U64(clients as u64)),
                ("requests_per_client".to_string(), Value::U64(requests as u64)),
                ("workers".to_string(), Value::U64(workers as u64)),
                ("mc_samples".to_string(), Value::U64(u64::from(MC_SAMPLES))),
            ]),
        ),
        ("total_requests".to_string(), Value::U64(total as u64)),
        ("elapsed_seconds".to_string(), Value::F64(elapsed)),
        ("requests_per_second".to_string(), Value::F64(throughput)),
        ("latency".to_string(), latency_value(&sorted_all)),
        ("per_op".to_string(), Value::Object(per_op)),
        ("plan_cache".to_string(), cache.clone()),
        ("multi_tenant".to_string(), multi_tenant),
        ("concurrency".to_string(), concurrency),
        ("observability".to_string(), observability),
        ("faulted".to_string(), faulted),
        ("durability".to_string(), durability),
        ("storage_faults".to_string(), storage),
    ]);

    eprintln!(
        "  {total} requests in {elapsed:.3}s = {throughput:.0} req/s; p50 {}µs p99 {}µs",
        quantile_us(&sorted_all, 0.50),
        quantile_us(&sorted_all, 0.99)
    );
    if let Some(rate) = cache.get("hit_rate").and_then(Value::as_f64) {
        eprintln!("  plan-cache hit rate {rate:.3}");
    }

    let json = serde_json::to_string_pretty(&Json(report)).expect("report serializes");
    std::fs::write(&out, json).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {out}");
}

fn next_count(args: &mut impl Iterator<Item = String>, flag: &str) -> usize {
    args.next()
        .and_then(|v| v.parse().ok())
        .filter(|n| *n > 0)
        .unwrap_or_else(|| usage(&format!("{flag} needs a positive number")))
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: bench_service [OUT.json] [--clients N] [--requests N] [--workers N] \
         [--conns N] [--tenants N] [--faults SPEC] [--storage-faults SPEC]"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}
