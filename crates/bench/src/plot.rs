//! Minimal SVG line-chart writer — regenerates the paper's figures as
//! images without any plotting dependency.
//!
//! Deliberately tiny: linear or log10 axes, polyline series with a fixed
//! palette, axis ticks and labels. Enough to eyeball Figures 1–5 against
//! the paper's plots.

use std::fmt::Write as _;

/// Axis scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Linear axis.
    Linear,
    /// Base-10 logarithmic axis (all values must be positive).
    Log10,
}

/// One named series of `(x, y)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// The polyline's points.
    pub points: Vec<(f64, f64)>,
}

/// A configured chart ready to render.
#[derive(Debug, Clone, PartialEq)]
pub struct Chart {
    title: String,
    x_label: String,
    y_label: String,
    x_scale: Scale,
    y_scale: Scale,
    series: Vec<Series>,
}

const WIDTH: f64 = 760.0;
const HEIGHT: f64 = 480.0;
const MARGIN_L: f64 = 70.0;
const MARGIN_R: f64 = 20.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 55.0;
const PALETTE: [&str; 6] = ["#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"];

impl Chart {
    /// Creates a chart with the given labels and scales.
    #[must_use]
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
        x_scale: Scale,
        y_scale: Scale,
    ) -> Self {
        Self {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            x_scale,
            y_scale,
            series: Vec::new(),
        }
    }

    /// Adds one series; points with non-finite coordinates (or
    /// non-positive ones on log axes) are dropped.
    pub fn add_series(&mut self, label: impl Into<String>, points: Vec<(f64, f64)>) -> &mut Self {
        let filtered = points
            .into_iter()
            .filter(|&(x, y)| {
                x.is_finite()
                    && y.is_finite()
                    && (self.x_scale == Scale::Linear || x > 0.0)
                    && (self.y_scale == Scale::Linear || y > 0.0)
            })
            .collect();
        self.series.push(Series { label: label.into(), points: filtered });
        self
    }

    fn transform(scale: Scale, v: f64) -> f64 {
        match scale {
            Scale::Linear => v,
            Scale::Log10 => v.log10(),
        }
    }

    /// Renders the chart as a standalone SVG document.
    ///
    /// Returns a placeholder SVG with a message when no drawable points
    /// exist.
    #[must_use]
    pub fn to_svg(&self) -> String {
        let mut pts: Vec<(f64, f64)> = Vec::new();
        for s in &self.series {
            for &(x, y) in &s.points {
                pts.push((Self::transform(self.x_scale, x), Self::transform(self.y_scale, y)));
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}">"#
        );
        let _ = writeln!(out, r#"<rect width="100%" height="100%" fill="white"/>"#);
        let _ = writeln!(
            out,
            r#"<text x="{}" y="24" font-family="sans-serif" font-size="16" text-anchor="middle">{}</text>"#,
            WIDTH / 2.0,
            escape(&self.title)
        );
        if pts.is_empty() {
            let _ = writeln!(
                out,
                r#"<text x="{}" y="{}" font-family="sans-serif" font-size="14" text-anchor="middle">no drawable points</text>"#,
                WIDTH / 2.0,
                HEIGHT / 2.0
            );
            out.push_str("</svg>\n");
            return out;
        }
        let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(x, y) in &pts {
            x0 = x0.min(x);
            x1 = x1.max(x);
            y0 = y0.min(y);
            y1 = y1.max(y);
        }
        if x1 == x0 {
            x1 = x0 + 1.0;
        }
        if y1 == y0 {
            y1 = y0 + 1.0;
        }
        let px = |x: f64| MARGIN_L + (x - x0) / (x1 - x0) * (WIDTH - MARGIN_L - MARGIN_R);
        let py = |y: f64| HEIGHT - MARGIN_B - (y - y0) / (y1 - y0) * (HEIGHT - MARGIN_T - MARGIN_B);

        // Axes.
        let _ = writeln!(
            out,
            r#"<line x1="{l}" y1="{b}" x2="{r}" y2="{b}" stroke="black"/><line x1="{l}" y1="{t}" x2="{l}" y2="{b}" stroke="black"/>"#,
            l = MARGIN_L,
            r = WIDTH - MARGIN_R,
            t = MARGIN_T,
            b = HEIGHT - MARGIN_B
        );
        // Ticks: five per axis in transformed space.
        for i in 0..=4 {
            let fx = x0 + (x1 - x0) * f64::from(i) / 4.0;
            let fy = y0 + (y1 - y0) * f64::from(i) / 4.0;
            let tx = px(fx);
            let ty = py(fy);
            let lx = tick_label(self.x_scale, fx);
            let ly = tick_label(self.y_scale, fy);
            let _ = writeln!(
                out,
                r#"<line x1="{tx}" y1="{b}" x2="{tx}" y2="{b2}" stroke="black"/><text x="{tx}" y="{yt}" font-family="sans-serif" font-size="11" text-anchor="middle">{lx}</text>"#,
                b = HEIGHT - MARGIN_B,
                b2 = HEIGHT - MARGIN_B + 5.0,
                yt = HEIGHT - MARGIN_B + 18.0
            );
            let _ = writeln!(
                out,
                r#"<line x1="{l}" y1="{ty}" x2="{l2}" y2="{ty}" stroke="black"/><text x="{xt}" y="{ty2}" font-family="sans-serif" font-size="11" text-anchor="end">{ly}</text>"#,
                l = MARGIN_L,
                l2 = MARGIN_L - 5.0,
                xt = MARGIN_L - 8.0,
                ty2 = ty + 4.0
            );
        }
        // Axis labels.
        let _ = writeln!(
            out,
            r#"<text x="{}" y="{}" font-family="sans-serif" font-size="13" text-anchor="middle">{}</text>"#,
            (MARGIN_L + WIDTH - MARGIN_R) / 2.0,
            HEIGHT - 12.0,
            escape(&self.x_label)
        );
        let _ = writeln!(
            out,
            r#"<text x="16" y="{}" font-family="sans-serif" font-size="13" text-anchor="middle" transform="rotate(-90 16 {})">{}</text>"#,
            (MARGIN_T + HEIGHT - MARGIN_B) / 2.0,
            (MARGIN_T + HEIGHT - MARGIN_B) / 2.0,
            escape(&self.y_label)
        );
        // Series.
        for (i, s) in self.series.iter().enumerate() {
            let colour = PALETTE[i % PALETTE.len()];
            let path: Vec<String> = s
                .points
                .iter()
                .map(|&(x, y)| {
                    format!(
                        "{:.2},{:.2}",
                        px(Self::transform(self.x_scale, x)),
                        py(Self::transform(self.y_scale, y))
                    )
                })
                .collect();
            if !path.is_empty() {
                let _ = writeln!(
                    out,
                    r#"<polyline fill="none" stroke="{colour}" stroke-width="1.8" points="{}"/>"#,
                    path.join(" ")
                );
            }
            // Legend entry.
            let ly = MARGIN_T + 16.0 * i as f64;
            let _ = writeln!(
                out,
                r#"<line x1="{x}" y1="{ly}" x2="{x2}" y2="{ly}" stroke="{colour}" stroke-width="3"/><text x="{xt}" y="{yt}" font-family="sans-serif" font-size="11">{label}</text>"#,
                x = WIDTH - MARGIN_R - 170.0,
                x2 = WIDTH - MARGIN_R - 150.0,
                xt = WIDTH - MARGIN_R - 144.0,
                yt = ly + 4.0,
                label = escape(&s.label)
            );
        }
        out.push_str("</svg>\n");
        out
    }
}

fn tick_label(scale: Scale, transformed: f64) -> String {
    match scale {
        Scale::Linear => format!("{transformed:.3}"),
        Scale::Log10 => format!("1e{transformed:.1}"),
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

/// Renders one of the figure experiments (`fig1`, `fig2`, `fig3`,
/// `fig4`, `fig5`) as SVG; other experiment names return `None`
/// (tabular data has no curve to draw).
#[must_use]
pub fn figure_svg(name: &str) -> Option<String> {
    use crate::experiments;
    match name {
        "fig1" | "fig2" => {
            let t = if name == "fig1" { experiments::fig1() } else { experiments::fig2() };
            let (x_scale, y_scale) = if name == "fig1" {
                (Scale::Log10, Scale::Linear)
            } else {
                (Scale::Linear, Scale::Linear)
            };
            let mut chart =
                Chart::new(t.title.clone(), "lambda (pfd)", "density", x_scale, y_scale);
            for col in 1..t.header.len() {
                let pts: Vec<(f64, f64)> = (0..t.len())
                    .filter_map(|r| {
                        Some((t.cell_f64(r, &t.header[0])?, t.cell_f64(r, &t.header[col])?))
                    })
                    .collect();
                chart.add_series(t.header[col].clone(), pts);
            }
            Some(chart.to_svg())
        }
        "fig3" => {
            let t = experiments::fig3();
            let mut chart = Chart::new(
                t.title.clone(),
                "confidence in SIL2",
                "mean pfd",
                Scale::Linear,
                Scale::Log10,
            );
            let pts: Vec<(f64, f64)> = (0..t.len())
                .filter_map(|r| {
                    Some((t.cell_f64(r, "confidence_in_sil2")?, t.cell_f64(r, "mean_pfd")?))
                })
                .collect();
            chart.add_series("mean pfd", pts);
            Some(chart.to_svg())
        }
        "fig4" => {
            let t = experiments::fig4();
            let mut chart = Chart::new(
                t.title.clone(),
                "SIL bound index (1..4)",
                "confidence better than bound",
                Scale::Linear,
                Scale::Linear,
            );
            for r in 0..t.len() {
                let pts: Vec<(f64, f64)> = (1..=4)
                    .filter_map(|n| {
                        let col = &t.header[n];
                        Some((n as f64, t.cell_f64(r, col)?))
                    })
                    .collect();
                chart.add_series(t.cell(r, "judgement").unwrap_or("series").to_string(), pts);
            }
            Some(chart.to_svg())
        }
        "fig5" => {
            let t = experiments::fig5(42);
            let mut chart = Chart::new(
                t.title.clone(),
                "phase (0..3)",
                "most likely pfd",
                Scale::Linear,
                Scale::Log10,
            );
            // One series per expert across the four phases.
            for expert in 0..12usize {
                let pts: Vec<(f64, f64)> = (0..4usize)
                    .filter_map(|phase| {
                        let row = phase * 12 + expert;
                        Some((phase as f64, t.cell_f64(row, "mode_pfd")?))
                    })
                    .collect();
                let doubter = t.cell(expert, "doubter") == Some("true");
                let label = if doubter {
                    format!("expert {expert} (doubter)")
                } else {
                    format!("expert {expert}")
                };
                chart.add_series(label, pts);
            }
            Some(chart.to_svg())
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chart_renders_basic_svg() {
        let mut c = Chart::new("t", "x", "y", Scale::Linear, Scale::Linear);
        c.add_series("a", vec![(0.0, 0.0), (1.0, 2.0), (2.0, 1.0)]);
        let svg = c.to_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("polyline"));
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn log_axis_drops_nonpositive_points() {
        let mut c = Chart::new("t", "x", "y", Scale::Log10, Scale::Linear);
        c.add_series("a", vec![(0.0, 1.0), (1.0, 2.0), (10.0, 3.0)]);
        assert_eq!(c.series[0].points.len(), 2);
    }

    #[test]
    fn empty_chart_renders_placeholder() {
        let c = Chart::new("t", "x", "y", Scale::Linear, Scale::Linear);
        let svg = c.to_svg();
        assert!(svg.contains("no drawable points"));
    }

    #[test]
    fn escaping_special_characters() {
        let mut c = Chart::new("a < b & c", "x", "y", Scale::Linear, Scale::Linear);
        c.add_series("s", vec![(0.0, 0.0), (1.0, 1.0)]);
        let svg = c.to_svg();
        assert!(svg.contains("a &lt; b &amp; c"));
    }

    #[test]
    fn figure_svgs_render_for_all_figures() {
        for name in ["fig1", "fig2", "fig3", "fig4", "fig5"] {
            let svg = figure_svg(name).unwrap_or_else(|| panic!("{name} missing"));
            assert!(svg.contains("polyline"), "{name} drew nothing");
        }
        assert!(figure_svg("table1").is_none());
    }

    #[test]
    fn fig5_has_twelve_series() {
        let svg = figure_svg("fig5").unwrap();
        assert_eq!(svg.matches("<polyline").count(), 12);
        assert_eq!(svg.matches("(doubter)").count(), 3);
    }
}
