//! Experiment harness: regenerates every table and figure of the paper.
//!
//! Each experiment in DESIGN.md's index has a function here returning a
//! [`Table`] of the same rows/series the paper reports. The `fig_tables`
//! binary prints them; the integration tests assert the paper-shape
//! checkpoints; the Criterion benches time the kernels underneath.

// `!(x > 0.0)`-style checks deliberately treat NaN as invalid input; the
// lint's suggested `x <= 0.0` would let NaN through the validation.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
// Reference constants are quoted at full printed precision.
#![allow(clippy::excessive_precision)]
#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod experiments;
pub mod plot;
pub mod sweep;
pub mod table;

pub use table::Table;
