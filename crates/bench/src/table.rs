//! A printable table of experiment output.

use std::fmt;

/// A titled table: header plus string rows, printable as aligned text or
/// CSV.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Experiment identifier (e.g. "F3") and description.
    pub title: String,
    /// Column names.
    pub header: Vec<String>,
    /// Data rows; each must match the header length.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given title and columns.
    #[must_use]
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics when the row length does not match the header — a harness
    /// bug, not a runtime input.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len(), "row width mismatch in table {}", self.title);
        self.rows.push(row);
    }

    /// Renders as CSV (header first).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = self.header.join(",");
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.join(","));
            out.push('\n');
        }
        out
    }

    /// Looks up a cell by row index and column name.
    #[must_use]
    pub fn cell(&self, row: usize, column: &str) -> Option<&str> {
        let c = self.header.iter().position(|h| h == column)?;
        self.rows.get(row).map(|r| r[c].as_str())
    }

    /// Parses a cell as `f64`.
    #[must_use]
    pub fn cell_f64(&self, row: usize, column: &str) -> Option<f64> {
        self.cell(row, column)?.parse().ok()
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let print_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let line: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect();
            writeln!(f, "| {} |", line.join(" | "))
        };
        print_row(f, &self.header)?;
        let total: usize = widths.iter().sum::<usize>() + 3 * widths.len() + 1;
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            print_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("T", &["a", "b"]);
        t.push_row(vec!["1".into(), "x".into()]);
        t.push_row(vec!["2.5".into(), "y".into()]);
        t
    }

    #[test]
    fn csv_rendering() {
        let csv = sample().to_csv();
        assert_eq!(csv, "a,b\n1,x\n2.5,y\n");
    }

    #[test]
    fn cell_lookup() {
        let t = sample();
        assert_eq!(t.cell(0, "b"), Some("x"));
        assert_eq!(t.cell_f64(1, "a"), Some(2.5));
        assert_eq!(t.cell(0, "zz"), None);
        assert_eq!(t.cell(9, "a"), None);
        assert_eq!(t.cell_f64(0, "b"), None);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("T", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn display_aligns() {
        let s = sample().to_string();
        assert!(s.contains("== T =="));
        assert!(s.contains("| a"));
    }

    #[test]
    fn len_and_empty() {
        assert_eq!(sample().len(), 2);
        assert!(!sample().is_empty());
        assert!(Table::new("E", &["x"]).is_empty());
    }
}
