//! Extension experiments beyond the paper's figures: the Gaussian-copula
//! dependence sweep (filling in Section 4.2's interval), the
//! reliability-growth route to a SIL (Section 3's third bullet made
//! executable), and expert calibration weighting (the "lack of
//! validation, calibration" complaint addressed).

use crate::table::Table;
use depcase_core::copula;
use depcase_core::growth::{simulate_power_law, PowerLawGrowth};
use depcase_core::multileg::{combine_two_legs, Leg};
use depcase_distributions::{Distribution, LogNormal};
use depcase_elicitation::calibration::{performance_weights, QuantileAssessment};
use depcase_sil::{DemandMode, SilAssessment};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// C2' — combined doubt of two legs as the latent correlation sweeps
/// from countermonotone to comonotone, bridging the Fréchet interval of
/// the C2 experiment.
#[must_use]
pub fn multileg_copula() -> Table {
    let a = Leg::with_confidence(0.95).expect("valid");
    let b = Leg::with_confidence(0.90).expect("valid");
    let frechet = combine_two_legs(a, b);
    let mut t = Table::new(
        "C2': Gaussian-copula dependence sweep for two legs (0.95, 0.90)",
        &["rho", "combined_doubt", "combined_confidence", "gain_over_single_leg"],
    );
    for &rho in &[-1.0, -0.75, -0.5, -0.25, 0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
        let pts = copula::sweep(a, b, &[rho]).expect("valid rho");
        let p = pts[0];
        t.push_row(vec![
            format!("{rho:.2}"),
            format!("{:.6e}", p.combined_doubt),
            format!("{:.6}", 1.0 - p.combined_doubt),
            format!("{:.3}", p.gain_over_single),
        ]);
    }
    t.push_row(vec![
        "frechet".into(),
        format!("[{:.6e} .. {:.6e}]", frechet.best_case, frechet.worst_case),
        format!("[{:.6} .. {:.6}]", 1.0 - frechet.worst_case, 1.0 - frechet.best_case),
        "-".into(),
    ]);
    t
}

/// C3 — the reliability-growth route: simulate a growing system, fit
/// Crow–AMSAA, apply the accuracy margin, and read off the judged SIL
/// (high-demand, per-hour rates).
#[must_use]
pub fn growth_sil(seed: u64) -> Table {
    let mut t = Table::new(
        format!("C3: reliability-growth route to a SIL judgement, seed {seed}"),
        &["true_beta", "n_failures", "beta_hat", "ks", "raw_rate", "margin_rate", "sil_of_mean"],
    );
    let mut rng = StdRng::seed_from_u64(seed);
    for &beta in &[0.4, 0.6, 0.8, 1.0, 1.3] {
        let total_time = 50_000.0; // hours
        let times = simulate_power_law(&mut rng, 0.5, beta, total_time).expect("valid");
        if times.len() < 3 {
            continue;
        }
        let fit = PowerLawGrowth::fit(&times, total_time).expect("fittable");
        let belief = fit.belief().expect("valid belief");
        let a = SilAssessment::new(&belief, DemandMode::HighDemand);
        t.push_row(vec![
            format!("{beta:.1}"),
            format!("{}", fit.n_failures()),
            format!("{:.3}", fit.beta()),
            format!("{:.3}", fit.ks_distance()),
            format!("{:.3e}", fit.current_intensity()),
            format!("{:.3e}", fit.margin_adjusted_intensity()),
            a.sil_of_mean().map_or_else(|| "none".into(), |l| l.to_string()),
        ]);
    }
    t
}

/// X1 — calibration weighting: a panel with one calibrated, one
/// overconfident and one biased expert scored against seed variables.
#[must_use]
pub fn calibration_weights(seed: u64) -> Table {
    let truth_dist = LogNormal::new(-6.0, 1.0).expect("valid");
    let mut rng = StdRng::seed_from_u64(seed);
    let truths: Vec<f64> = truth_dist.sample_n(&mut rng, 50);
    let q = |p: f64| truth_dist.quantile(p).expect("valid level");
    let (q05, q50, q95) = (q(0.05), q(0.50), q(0.95));

    let calibrated: Vec<QuantileAssessment> =
        truths.iter().map(|_| QuantileAssessment::new(q05, q50, q95).expect("ordered")).collect();
    let overconfident: Vec<QuantileAssessment> = truths
        .iter()
        .map(|_| {
            QuantileAssessment::new(q50 - (q50 - q05) / 6.0, q50, q50 + (q95 - q50) / 6.0)
                .expect("ordered")
        })
        .collect();
    let biased: Vec<QuantileAssessment> = truths
        .iter()
        .map(|_| QuantileAssessment::new(q05 * 10.0, q50 * 10.0, q95 * 10.0).expect("ordered"))
        .collect();

    let res =
        performance_weights(&[calibrated, overconfident, biased], &truths, 0.01).expect("scorable");
    let mut t = Table::new(
        format!("X1: calibration-based performance weights, seed {seed}"),
        &["expert", "profile", "calibration_score", "weight"],
    );
    for (r, profile) in res.iter().zip(["calibrated", "overconfident", "biased"]) {
        t.push_row(vec![
            format!("{}", r.expert),
            profile.into(),
            format!("{:.4e}", r.score),
            format!("{:.4}", r.weight),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copula_bridges_frechet_interval() {
        let t = multileg_copula();
        // Doubt increases monotonically across the sweep rows.
        let mut prev = -1.0;
        for r in 0..t.len() - 1 {
            let d = t.cell_f64(r, "combined_doubt").unwrap();
            assert!(d >= prev - 1e-12, "row {r}");
            prev = d;
        }
        // Endpoints match the Fréchet bounds of the (0.95, 0.90) pair.
        let first = t.cell_f64(0, "combined_doubt").unwrap();
        let last = t.cell_f64(t.len() - 2, "combined_doubt").unwrap();
        assert!(first.abs() < 1e-9, "countermonotone {first}");
        assert!((last - 0.05).abs() < 1e-6, "comonotone {last}");
    }

    #[test]
    fn copula_independent_row_gain_is_10x() {
        let t = multileg_copula();
        // rho = 0.00 row.
        let row = (0..t.len()).find(|&r| t.cell(r, "rho") == Some("0.00")).unwrap();
        let gain = t.cell_f64(row, "gain_over_single_leg").unwrap();
        assert!((gain - 10.0).abs() < 0.01, "gain {gain}");
    }

    #[test]
    fn growth_recovers_beta_ordering() {
        let t = growth_sil(11);
        assert!(t.len() >= 4);
        // Estimated beta increases with true beta.
        let mut prev = 0.0;
        for r in 0..t.len() {
            let b = t.cell_f64(r, "beta_hat").unwrap();
            assert!(b > prev - 0.25, "row {r}: beta_hat {b} after {prev}");
            prev = b;
        }
        // Margin never lowers the rate.
        for r in 0..t.len() {
            let raw = t.cell_f64(r, "raw_rate").unwrap();
            let adj = t.cell_f64(r, "margin_rate").unwrap();
            assert!(adj >= raw, "row {r}");
        }
    }

    #[test]
    fn calibration_table_orders_profiles() {
        let t = calibration_weights(5);
        assert_eq!(t.len(), 3);
        let cal = t.cell_f64(0, "weight").unwrap();
        let over = t.cell_f64(1, "weight").unwrap();
        let biased = t.cell_f64(2, "weight").unwrap();
        assert!(cal > over, "calibrated {cal} vs overconfident {over}");
        assert!(cal > biased, "calibrated {cal} vs biased {biased}");
    }
}
