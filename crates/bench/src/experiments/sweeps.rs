//! M1 — the parallel sweep engine's summary experiment.
//!
//! Surfaces the three sweep families of [`crate::sweep`] as one table:
//! the σ-sweep anchor points of the Section 3.1 identity, the corners of
//! the worst-case (x, y) grid, and the Monte-Carlo sample-size ladder
//! with throughput and parallel speedup. The full grids go to
//! `BENCH_mc.json` via the `bench_mc` binary; this table is the quick,
//! test-sized view.

use crate::sweep::{mc_ladder, sigma_sweep, worst_case_grid};
use crate::table::Table;
use depcase_distributions::LogNormal;

/// Builds the sweep summary table (`fig_tables mc_sweep`).
#[must_use]
pub fn mc_sweep(threads: usize) -> Table {
    let mut t = Table::new(
        "M1: parallel sweep engine — σ identity, worst-case grid, MC ladder",
        &["stage", "input", "output", "seconds"],
    );

    // σ anchor points: one and two decades of mean/mode separation
    // (σ ≈ 1.24 and σ ≈ 1.75, the Section 3.1 identity inverted).
    let sigma_1dec = LogNormal::sigma_for_decades(1.0).expect("positive decades");
    let sigma_2dec = LogNormal::sigma_for_decades(2.0).expect("positive decades");
    let (points, timing) = sigma_sweep(&[0.5, sigma_1dec, sigma_2dec], threads);
    for p in &points {
        t.push_row(vec![
            "sigma_sweep".into(),
            format!("sigma={:.4}", p.sigma),
            format!("decades={:.4} sil2={:.4}", p.mean_mode_decades, p.sil2_confidence),
            format!("{:.6}", timing.seconds),
        ]);
    }

    // Worst-case grid corners (paper §3.4 examples live on the axes).
    let (grid, timing) = worst_case_grid(&[0.0, 0.0009], &[1e-3, 1e-4], threads);
    for (i, &x) in grid.doubts.iter().enumerate() {
        for (j, &y) in grid.claim_bounds.iter().enumerate() {
            t.push_row(vec![
                "worst_case_grid".into(),
                format!("x={x} y={y}"),
                format!("bound={:.8}", grid.bounds[i][j]),
                format!("{:.6}", timing.seconds),
            ]);
        }
    }

    // MC ladder, test-sized.
    let (rungs, timing) = mc_ladder(&[20_000, 60_000], 42, threads);
    for r in &rungs {
        t.push_row(vec![
            "mc_ladder".into(),
            format!("samples={} threads={}", r.samples, r.threads),
            format!(
                "estimate={:.4} sps={:.0} speedup={:.2}",
                r.estimate, r.samples_per_sec_parallel, r.speedup
            ),
            format!("{:.6}", timing.seconds),
        ]);
    }

    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_all_three_stages() {
        let t = mc_sweep(2);
        let stages: Vec<&str> = t.rows.iter().map(|r| r[0].as_str()).collect();
        assert!(stages.contains(&"sigma_sweep"));
        assert!(stages.contains(&"worst_case_grid"));
        assert!(stages.contains(&"mc_ladder"));
        // 3 sigma points + 4 grid corners + 2 ladder rungs.
        assert_eq!(t.len(), 9);
    }

    #[test]
    fn sigma_anchor_rows_match_paper_identity() {
        let t = mc_sweep(1);
        // Row 1: σ = 1.2389 → one decade.
        assert!(t.cell(1, "output").unwrap().contains("decades=1.000"));
        // Row 2: σ = 1.7521 → two decades.
        assert!(t.cell(2, "output").unwrap().contains("decades=2.000"));
    }
}
