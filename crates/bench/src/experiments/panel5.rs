//! F5 — the expert-judgement experiment (paper Section 3.3, Figure 5).

use crate::table::Table;
use depcase_elicitation::experiment::{figure5_series, findings_of, paper_panel};

/// Regenerates Figure 5: every expert's most-likely pfd per phase, plus a
/// trailing summary block with the paper's headline findings.
#[must_use]
pub fn fig5(seed: u64) -> Table {
    let outcome = paper_panel(seed).run();
    let mut t = Table::new(
        format!("F5: simulated 12-expert elicitation, seed {seed} (paper Figure 5)"),
        &["phase", "expert", "doubter", "mode_pfd", "sil2_confidence"],
    );
    for (phase, points) in figure5_series(&outcome) {
        for (id, doubter, mode) in points {
            let rec = &outcome.phase(phase).judgements[id];
            t.push_row(vec![
                phase.to_string(),
                format!("{id}"),
                format!("{doubter}"),
                format!("{mode:.6e}"),
                format!("{:.4}", rec.sil2_confidence),
            ]);
        }
    }
    let f = findings_of(&outcome);
    t.push_row(vec![
        "summary".into(),
        format!("doubters={}", f.doubters),
        format!("asymmetric={}", f.asymmetric),
        format!("{:.6e}", f.final_pooled_pfd),
        format!("{:.4}", f.final_sil2_confidence),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_experts_four_phases_plus_summary() {
        let t = fig5(42);
        assert_eq!(t.len(), 4 * 12 + 1);
    }

    #[test]
    fn summary_matches_paper_shape() {
        let t = fig5(42);
        let last = t.len() - 1;
        assert_eq!(t.cell(last, "expert"), Some("doubters=3"));
        let conf = t.cell_f64(last, "sil2_confidence").unwrap();
        assert!(conf > 0.8, "pooled SIL2 confidence {conf}");
        let pfd = t.cell_f64(last, "mode_pfd").unwrap();
        assert!(pfd > 1e-3 && pfd < 3e-2, "pooled pfd {pfd}");
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(fig5(7), fig5(7));
        assert_ne!(fig5(7), fig5(8));
    }
}
