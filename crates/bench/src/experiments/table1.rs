//! T1 — the paper's Table 1: SIL band definitions.

use crate::table::Table;
use depcase_sil::{DemandMode, SilLevel};

/// Regenerates Table 1: the pfd/pfh band per SIL level and mode.
#[must_use]
pub fn table1() -> Table {
    let mut t = Table::new(
        "T1: IEC 61508 safety integrity levels (paper Table 1)",
        &["sil", "mode", "lower", "upper"],
    );
    for mode in [DemandMode::LowDemand, DemandMode::HighDemand] {
        for level in SilLevel::ALL.iter().rev() {
            let band = level.band(mode);
            t.push_row(vec![
                level.to_string(),
                mode.to_string(),
                format!("{:e}", band.lower),
                format!("{:e}", band.upper),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_rows_two_modes() {
        let t = table1();
        assert_eq!(t.len(), 8);
    }

    #[test]
    fn sil2_low_demand_row_matches_paper() {
        let t = table1();
        // Rows are SIL4..SIL1 low-demand then high-demand.
        assert_eq!(t.cell(2, "sil"), Some("SIL2"));
        assert_eq!(t.cell_f64(2, "lower"), Some(1e-3));
        assert_eq!(t.cell_f64(2, "upper"), Some(1e-2));
    }
}
