//! C1/C2 — the confidence-building strategies of the paper's Section 4:
//! cutting off the tail with failure-free evidence, and adding argument
//! legs.

use crate::table::Table;
use depcase_core::acarp::AcarpPlan;
use depcase_core::multileg::{combine_two_legs, combine_with_shared_assumption, Leg};
use depcase_core::testing::worst_case_doubt_after_demands;
use depcase_distributions::LogNormal;

/// C1 — the tail cut-off trajectory: confidence in SIL2 and posterior
/// mean pfd as failure-free demands accumulate, starting from the widest
/// Figure 1 judgement, plus the worst-case doubt decay.
#[must_use]
pub fn tail_cutoff() -> Table {
    let prior = LogNormal::from_mode_mean(0.003, 0.01).expect("valid");
    let plan = AcarpPlan::new(&prior, 1e-2);
    let mut t = Table::new(
        "C1: tail cut-off by failure-free demands (paper Section 4.1)",
        &["demands", "P(SIL2+)", "posterior_mean_pfd", "worst_case_doubt_factor100"],
    );
    for &n in &[0u64, 10, 30, 100, 300, 1000, 3000, 10_000] {
        let traj = plan.trajectory(&[n]).expect("posterior valid");
        let wc = worst_case_doubt_after_demands(0.33, 3e-3, 0.3, n).expect("valid");
        t.push_row(vec![
            format!("{n}"),
            format!("{:.5}", traj[0].confidence),
            format!("{:.6e}", traj[0].mean),
            format!("{wc:.6e}"),
        ]);
    }
    t
}

/// C2 — multi-legged argument combinations: what a second leg buys under
/// each dependence regime, and the shared-assumption floor.
#[must_use]
pub fn multileg() -> Table {
    let mut t = Table::new(
        "C2: two-legged argument combination (paper Section 4.2)",
        &["leg_a_conf", "leg_b_conf", "shared_doubt", "independent", "worst_case", "best_case"],
    );
    let scenarios: &[(f64, f64, f64)] = &[
        (0.95, 0.95, 0.0),
        (0.95, 0.90, 0.0),
        (0.99, 0.90, 0.0),
        (0.95, 0.95, 0.02),
        (0.99, 0.99, 0.005),
        (0.70, 0.70, 0.0), // the 61508 operating-history level, doubled up
    ];
    for &(ca, cb, shared) in scenarios {
        let a = Leg::with_confidence(ca).expect("valid");
        let b = Leg::with_confidence(cb).expect("valid");
        let c = if shared > 0.0 {
            combine_with_shared_assumption(a, b, shared).expect("valid")
        } else {
            combine_two_legs(a, b)
        };
        t.push_row(vec![
            format!("{ca:.3}"),
            format!("{cb:.3}"),
            format!("{shared:.3}"),
            format!("{:.6}", 1.0 - c.independent),
            format!("{:.6}", 1.0 - c.worst_case),
            format!("{:.6}", 1.0 - c.best_case),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tail_cutoff_confidence_rises_and_mean_falls() {
        let t = tail_cutoff();
        let first_conf = t.cell_f64(0, "P(SIL2+)").unwrap();
        let last_conf = t.cell_f64(t.len() - 1, "P(SIL2+)").unwrap();
        assert!((first_conf - 0.67).abs() < 0.02, "prior confidence {first_conf}");
        assert!(last_conf > 0.99, "final confidence {last_conf}");
        let first_mean = t.cell_f64(0, "posterior_mean_pfd").unwrap();
        let last_mean = t.cell_f64(t.len() - 1, "posterior_mean_pfd").unwrap();
        assert!((first_mean - 0.01).abs() < 1e-4);
        assert!(last_mean < first_mean / 3.0);
    }

    #[test]
    fn tail_cutoff_worst_case_doubt_decays() {
        let t = tail_cutoff();
        let first = t.cell_f64(0, "worst_case_doubt_factor100").unwrap();
        let last = t.cell_f64(t.len() - 1, "worst_case_doubt_factor100").unwrap();
        assert!(last < first / 100.0, "{first} → {last}");
    }

    #[test]
    fn multileg_worst_case_column_dominates() {
        let t = multileg();
        for r in 0..t.len() {
            let ind = t.cell_f64(r, "independent").unwrap();
            let worst = t.cell_f64(r, "worst_case").unwrap();
            let best = t.cell_f64(r, "best_case").unwrap();
            assert!(worst <= ind + 1e-12 && ind <= best + 1e-12, "row {r}");
        }
    }

    #[test]
    fn shared_assumption_rows_floor_at_shared() {
        let t = multileg();
        // Row 3: 0.95/0.95 with shared doubt 0.02 → best case ≤ 0.98.
        let best = t.cell_f64(3, "best_case").unwrap();
        assert!(best <= 0.98 + 1e-12, "best {best}");
    }
}
