//! C4 — subsystem composition: how conservatism compounds when a system
//! target is split across subsystem cases.

use crate::table::Table;
use depcase_core::allocation::{allocate_equal, required_subsystem_confidences};
use depcase_core::WorstCaseBound;

/// For k = 1..6 equal subsystems composing to a 1e-3 system target (each
/// claiming a decade inside its budget), the confidence each subsystem
/// case must deliver — versus the single-system 99.91 % of Example 3.
#[must_use]
pub fn composition() -> Table {
    let target = 1e-3;
    let single = WorstCaseBound::required_confidence(target, target / 10.0).expect("feasible");
    let mut t = Table::new(
        "C4: per-subsystem confidence needed as a 1e-3 target is split k ways",
        &["subsystems", "budget_each", "claim_each", "required_confidence", "vs_single_system"],
    );
    for k in 1..=6usize {
        let budgets = allocate_equal(target, k).expect("valid");
        let claims: Vec<f64> = budgets.iter().map(|y| y / 10.0).collect();
        let confs = required_subsystem_confidences(target, &claims).expect("feasible");
        t.push_row(vec![
            format!("{k}"),
            format!("{:.4e}", budgets[0]),
            format!("{:.4e}", claims[0]),
            format!("{:.6}", confs[0]),
            format!("{:+.2e}", confs[0] - single),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confidence_requirement_grows_with_split() {
        let t = composition();
        assert_eq!(t.len(), 6);
        let mut prev = 0.0;
        for r in 0..t.len() {
            let c = t.cell_f64(r, "required_confidence").unwrap();
            assert!(c > prev, "row {r}");
            assert!(c < 1.0);
            prev = c;
        }
    }

    #[test]
    fn single_subsystem_close_to_example3_with_margin_overhead() {
        let t = composition();
        // k = 1 still claims budget/10 with the doubt budget spread over
        // one case: close to (but not identical with) Example 3's 99.91%.
        let c = t.cell_f64(0, "required_confidence").unwrap();
        assert!((c - 0.9991).abs() < 2e-4, "c = {c}");
    }
}
