//! G1 — the gamma sensitivity check (paper Section 3: "we have repeated
//! some of the results for a gamma distribution to illustrate the (low)
//! sensitivity to the log-normal assumptions").

use crate::table::Table;
use depcase_distributions::{Gamma, LogNormal};
use depcase_sil::{DemandMode, SilAssessment, SilLevel};

/// Repeats the F3/F4 checkpoints with gamma judgements matched by mode
/// and mean, reporting both families side by side.
#[must_use]
pub fn gamma_sensitivity() -> Table {
    let mut t = Table::new(
        "G1: log-normal vs gamma sensitivity (paper Section 3)",
        &["judgement", "family", "sigma_or_shape", "P(SIL2+)", "P(SIL1+)", "mean_sil"],
    );
    for &(name, mean) in &[
        ("narrow (mean 0.004)", 0.004),
        ("medium (mean 0.006)", 0.006),
        ("wide (mean 0.010)", 0.010),
    ] {
        let ln = LogNormal::from_mode_mean(0.003, mean).expect("valid");
        let ga = Gamma::from_mode_mean(0.003, mean).expect("valid");
        let a_ln = SilAssessment::new(&ln, DemandMode::LowDemand);
        let a_ga = SilAssessment::new(&ga, DemandMode::LowDemand);
        t.push_row(vec![
            name.into(),
            "log-normal".into(),
            format!("sigma={:.4}", ln.sigma()),
            format!("{:.5}", a_ln.confidence_at_least(SilLevel::Sil2)),
            format!("{:.5}", a_ln.confidence_at_least(SilLevel::Sil1)),
            a_ln.sil_of_mean().map_or_else(|| "none".into(), |l| l.to_string()),
        ]);
        t.push_row(vec![
            name.into(),
            "gamma".into(),
            format!("shape={:.4}", ga.shape()),
            format!("{:.5}", a_ga.confidence_at_least(SilLevel::Sil2)),
            format!("{:.5}", a_ga.confidence_at_least(SilLevel::Sil1)),
            a_ga.sil_of_mean().map_or_else(|| "none".into(), |l| l.to_string()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_agree_within_a_few_points() {
        // The paper's claim: low sensitivity to the log-normal assumption.
        let t = gamma_sensitivity();
        for pair in 0..3 {
            let ln_sil2 = t.cell_f64(2 * pair, "P(SIL2+)").unwrap();
            let ga_sil2 = t.cell_f64(2 * pair + 1, "P(SIL2+)").unwrap();
            assert!(
                (ln_sil2 - ga_sil2).abs() < 0.08,
                "pair {pair}: log-normal {ln_sil2} vs gamma {ga_sil2}"
            );
        }
    }

    #[test]
    fn mean_sil_classification_identical() {
        // Same mode and mean → same mean-SIL classification whatever the
        // family.
        let t = gamma_sensitivity();
        for pair in 0..3 {
            assert_eq!(
                t.cell(2 * pair, "mean_sil"),
                t.cell(2 * pair + 1, "mean_sil"),
                "pair {pair}"
            );
        }
    }

    #[test]
    fn wide_judgement_sil1_mean_in_both_families() {
        let t = gamma_sensitivity();
        assert_eq!(t.cell(4, "mean_sil"), Some("SIL1"));
        assert_eq!(t.cell(5, "mean_sil"), Some("SIL1"));
    }
}
