//! F1–F4 and S1: the log-normal judgement figures.

use crate::table::Table;
use depcase_distributions::{Distribution, LogNormal};
use depcase_numerics::roots::{brent, RootConfig};
use depcase_sil::{DemandMode, SilAssessment, SilLevel};

/// The three Figure 1 judgements: mode pinned at 0.003 (mid-SIL2), means
/// 0.004 (dashed/narrow), 0.006 (middle) and 0.01 (solid/widest, on the
/// SIL2/SIL1 boundary).
#[must_use]
pub fn paper_judgements() -> Vec<(&'static str, LogNormal)> {
    vec![
        ("narrow (mean 0.004)", LogNormal::from_mode_mean(0.003, 0.004).expect("valid")),
        ("medium (mean 0.006)", LogNormal::from_mode_mean(0.003, 0.006).expect("valid")),
        ("wide (mean 0.010)", LogNormal::from_mode_mean(0.003, 0.010).expect("valid")),
    ]
}

/// F1 — density functions of the judgement of SIL, sampled on a
/// log-spaced grid (the paper plots them on a log x-axis).
#[must_use]
pub fn fig1() -> Table {
    let mut t = Table::new(
        "F1: log-normal densities of judged pfd, mode = 0.003 (paper Figure 1)",
        &["lambda", "narrow (mean 0.004)", "medium (mean 0.006)", "wide (mean 0.010)"],
    );
    let judgements = paper_judgements();
    const POINTS: usize = 61;
    for i in 0..POINTS {
        // λ from 1e-5 to 1e-0 on a log grid.
        let log10 = -5.0 + 5.0 * i as f64 / (POINTS - 1) as f64;
        let lambda = 10f64.powf(log10);
        let mut row = vec![format!("{lambda:.6e}")];
        for (_, d) in &judgements {
            row.push(format!("{:.6e}", d.pdf(lambda)));
        }
        t.push_row(row);
    }
    t
}

/// F2 — the same densities on a linear scale (paper Figure 2), where the
/// impact of the high-failure-rate tail is visible.
#[must_use]
pub fn fig2() -> Table {
    let mut t = Table::new(
        "F2: log-normal densities on a linear scale (paper Figure 2)",
        &["lambda", "narrow (mean 0.004)", "medium (mean 0.006)", "wide (mean 0.010)"],
    );
    let judgements = paper_judgements();
    const POINTS: usize = 51;
    for i in 1..=POINTS {
        let lambda = 0.05 * i as f64 / POINTS as f64;
        let mut row = vec![format!("{lambda:.6}")];
        for (_, d) in &judgements {
            row.push(format!("{:.6}", d.pdf(lambda)));
        }
        t.push_row(row);
    }
    t
}

/// F3 — mean pfd as a function of one-sided confidence in SIL2, with the
/// mode pinned at 0.003 (paper Figure 3).
#[must_use]
pub fn fig3() -> Table {
    let mut t = Table::new(
        "F3: effect of spread on mean value, mode = 0.003 (paper Figure 3)",
        &["confidence_in_sil2", "sigma", "mean_pfd", "mean_sil"],
    );
    for i in 0..=79 {
        let conf = 0.20 + 0.79 * i as f64 / 79.0;
        let d = LogNormal::from_mode_confidence(0.003, 1e-2, conf).expect("feasible");
        let a = SilAssessment::new(&d, DemandMode::LowDemand);
        t.push_row(vec![
            format!("{conf:.4}"),
            format!("{:.4}", d.sigma()),
            format!("{:.6e}", d.mean()),
            a.sil_of_mean().map_or_else(|| "none".into(), |l| l.to_string()),
        ]);
    }
    t
}

/// The F3 crossover: the SIL2 confidence below which the mean pfd leaves
/// the SIL2 band — the paper reads "about 67 %" off Figure 3.
#[must_use]
pub fn fig3_crossover() -> f64 {
    let f = |conf: f64| {
        LogNormal::from_mode_confidence(0.003, 1e-2, conf).expect("feasible").mean() - 1e-2
    };
    brent(f, 0.3, 0.99, RootConfig::default()).expect("bracketed")
}

/// F4 — confidence that the pfd is better than each SIL bound, for the
/// three Figure 1 judgements (paper Figure 4).
#[must_use]
pub fn fig4() -> Table {
    let mut t = Table::new(
        "F4: confidence pfd better than a bound (paper Figure 4)",
        &["judgement", "P(<1e-1)=SIL1+", "P(<1e-2)=SIL2+", "P(<1e-3)=SIL3+", "P(<1e-4)=SIL4+"],
    );
    for (name, d) in paper_judgements() {
        let a = SilAssessment::new(&d, DemandMode::LowDemand);
        t.push_row(vec![
            name.to_string(),
            format!("{:.5}", a.confidence_at_least(SilLevel::Sil1)),
            format!("{:.5}", a.confidence_at_least(SilLevel::Sil2)),
            format!("{:.5}", a.confidence_at_least(SilLevel::Sil3)),
            format!("{:.5}", a.confidence_at_least(SilLevel::Sil4)),
        ]);
    }
    t
}

/// S1 — the `log10(mean/mode) = 0.65σ²` identity (paper Section 3.1),
/// with the decade points σ ≈ 1.24 and σ ≈ 1.75.
#[must_use]
pub fn identity() -> Table {
    let mut t = Table::new(
        "S1: log10(mean/mode) = 0.65 sigma^2 (paper Section 3.1)",
        &["sigma", "decades_exact", "decades_paper_065"],
    );
    for i in 0..=20 {
        let sigma = 0.1 + 1.9 * i as f64 / 20.0;
        let d = LogNormal::from_mode_sigma(1.0, sigma).expect("valid");
        t.push_row(vec![
            format!("{sigma:.3}"),
            format!("{:.6}", d.mean_mode_decades()),
            format!("{:.6}", 0.65 * sigma * sigma),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_curves_peak_at_mode() {
        let judgements = paper_judgements();
        for (name, d) in &judgements {
            let m = d.mode().unwrap();
            assert!((m - 0.003).abs() < 1e-12, "{name}");
            assert!(d.pdf(m) > d.pdf(m / 3.0), "{name}");
            assert!(d.pdf(m) > d.pdf(m * 3.0), "{name}");
        }
    }

    #[test]
    fn fig1_wide_curve_has_heavier_tail() {
        let t = fig1();
        // At λ = 0.1 (row near the top of the grid) the wide curve's
        // density exceeds the narrow one's.
        let row = t.len() - 13; // λ ≈ 10^-1
        let narrow: f64 = t.cell_f64(row, "narrow (mean 0.004)").unwrap();
        let wide: f64 = t.cell_f64(row, "wide (mean 0.010)").unwrap();
        assert!(wide > narrow);
    }

    #[test]
    fn fig3_crossover_is_about_67_percent() {
        let c = fig3_crossover();
        assert!((c - 0.67).abs() < 0.02, "crossover = {c}");
    }

    #[test]
    fn fig3_mean_monotone_decreasing_in_confidence() {
        let t = fig3();
        let mut prev = f64::INFINITY;
        for i in 0..t.len() {
            let m = t.cell_f64(i, "mean_pfd").unwrap();
            assert!(m < prev, "row {i}");
            prev = m;
        }
    }

    #[test]
    fn fig3_band_transitions() {
        let t = fig3();
        // At 20% confidence the spread is so wide the mean exceeds even
        // the SIL1 band; by mid confidence it is SIL1; at high confidence
        // the mean stays SIL2.
        assert_eq!(t.cell(0, "mean_sil"), Some("none"));
        let mids: Vec<&str> = (0..t.len()).filter_map(|i| t.cell(i, "mean_sil")).collect();
        assert!(mids.contains(&"SIL1"), "no SIL1 region in {mids:?}");
        let last = t.len() - 1;
        assert_eq!(t.cell(last, "mean_sil"), Some("SIL2"));
    }

    #[test]
    fn fig4_wide_judgement_checkpoints() {
        let t = fig4();
        // wide: ~67% SIL2-or-better, ~99.9% SIL1-or-better.
        let sil2 = t.cell_f64(2, "P(<1e-2)=SIL2+").unwrap();
        assert!((sil2 - 0.67).abs() < 0.02, "sil2 = {sil2}");
        let sil1 = t.cell_f64(2, "P(<1e-1)=SIL1+").unwrap();
        assert!(sil1 > 0.995, "sil1 = {sil1}");
    }

    #[test]
    fn fig4_rows_decrease_across_levels() {
        let t = fig4();
        for r in 0..t.len() {
            let p1 = t.cell_f64(r, "P(<1e-1)=SIL1+").unwrap();
            let p2 = t.cell_f64(r, "P(<1e-2)=SIL2+").unwrap();
            let p4 = t.cell_f64(r, "P(<1e-4)=SIL4+").unwrap();
            assert!(p1 >= p2 && p2 >= p4, "row {r}");
        }
    }

    #[test]
    fn identity_exact_vs_paper_approximation() {
        let t = identity();
        for r in 0..t.len() {
            let exact = t.cell_f64(r, "decades_exact").unwrap();
            let paper = t.cell_f64(r, "decades_paper_065").unwrap();
            // The paper rounds 0.6514 to 0.65 — within 0.3% relative.
            assert!((exact - paper).abs() / exact.max(1e-9) < 0.004, "row {r}");
        }
    }

    #[test]
    fn decade_sigmas() {
        let one = LogNormal::sigma_for_decades(1.0).unwrap();
        let two = LogNormal::sigma_for_decades(2.0).unwrap();
        assert!((one - 1.24).abs() < 0.01, "one decade at sigma {one}");
        assert!((two - 1.75).abs() < 0.01, "two decades at sigma {two}");
    }
}
