//! E1–E3 — the Section 3.4 worked examples of the worst-case bound.

use crate::table::Table;
use depcase_core::WorstCaseBound;

/// Regenerates the Section 3.4 examples: `(x*, y*)` pairs satisfying
/// `x* + y* − x*y* = y` for the system requirement `y = 10⁻³`, the
/// stringent `y = 10⁻⁵` case, and the perfection/bounded-factor
/// refinements.
#[must_use]
pub fn examples34() -> Table {
    let mut t = Table::new(
        "E1-E3: conservative worst-case pairs, x* + y* - x*y* = y (paper Section 3.4)",
        &["example", "target_y", "claim_y*", "doubt_x*", "required_confidence", "bound"],
    );

    // Example 1: certainty in the bare claim.
    t.push_row(vec![
        "1: certain of y".into(),
        "1e-3".into(),
        "1e-3".into(),
        "0".into(),
        "1".into(),
        format!("{:.8e}", WorstCaseBound::bound(0.0, 1e-3).expect("valid")),
    ]);

    // Example 2: confidence in perfection.
    t.push_row(vec![
        "2: perfection".into(),
        "1e-3".into(),
        "0".into(),
        "1e-3".into(),
        "0.999".into(),
        format!("{:.8e}", WorstCaseBound::bound(1e-3, 0.0).expect("valid")),
    ]);

    // Example 3: a decade of margin.
    let conf = WorstCaseBound::required_confidence(1e-3, 1e-4).expect("feasible");
    t.push_row(vec![
        "3: decade margin".into(),
        "1e-3".into(),
        "1e-4".into(),
        format!("{:.6}", 1.0 - conf),
        format!("{conf:.6}"),
        format!("{:.8e}", WorstCaseBound::bound(1.0 - conf, 1e-4).expect("valid")),
    ]);

    // The stringent case: y = 1e-5.
    let conf5 = WorstCaseBound::required_confidence(1e-5, 1e-6).expect("feasible");
    t.push_row(vec![
        "stringent y=1e-5".into(),
        "1e-5".into(),
        "1e-6".into(),
        format!("{:.8}", 1.0 - conf5),
        format!("{conf5:.8}"),
        format!("{:.8e}", WorstCaseBound::bound(1.0 - conf5, 1e-6).expect("valid")),
    ]);

    // Perfection refinement on Example 3 with p0 = 0.2.
    let b = WorstCaseBound::bound_with_perfection(1.0 - conf, 1e-4, 0.2).expect("valid");
    t.push_row(vec![
        "3 + p0=0.2".into(),
        "1e-3".into(),
        "1e-4".into(),
        format!("{:.6}", 1.0 - conf),
        format!("{conf:.6}"),
        format!("{b:.8e}"),
    ]);

    // Bounded-factor refinement ("not wrong by more than 100x").
    let b = WorstCaseBound::bound_with_factor(1.0 - conf, 1e-4, 100.0).expect("valid");
    t.push_row(vec![
        "3 + factor=100".into(),
        "1e-3".into(),
        "1e-4".into(),
        format!("{:.6}", 1.0 - conf),
        format!("{conf:.6}"),
        format!("{b:.8e}"),
    ]);

    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example3_needs_9991_percent() {
        let t = examples34();
        let c = t.cell_f64(2, "required_confidence").unwrap();
        assert!((c - 0.9991).abs() < 1e-4, "confidence {c}");
    }

    #[test]
    fn all_y_1e3_rows_bound_at_target() {
        let t = examples34();
        for row in 0..3 {
            let b = t.cell_f64(row, "bound").unwrap();
            assert!((b - 1e-3).abs() < 2e-5, "row {row}: bound {b}");
        }
    }

    #[test]
    fn stringent_row_confidence_beyond_five_nines() {
        let t = examples34();
        let c = t.cell_f64(3, "required_confidence").unwrap();
        assert!(c > 0.99999, "confidence {c}");
    }

    #[test]
    fn refinements_tighten_the_bound() {
        let t = examples34();
        let plain = t.cell_f64(2, "bound").unwrap();
        let perfected = t.cell_f64(4, "bound").unwrap();
        let factored = t.cell_f64(5, "bound").unwrap();
        assert!(perfected < plain);
        assert!(factored < plain);
    }
}
