//! One module per experiment group from DESIGN.md's index.

mod composition;
mod confidence_building;
mod extensions;
mod figures;
mod panel5;
mod protocol_sweep;
mod sensitivity;
mod standards;
mod sweeps;
mod table1;
mod worst_case34;

pub use composition::composition;
pub use confidence_building::{multileg, tail_cutoff};
pub use extensions::{calibration_weights, growth_sil, multileg_copula};
pub use figures::{fig1, fig2, fig3, fig3_crossover, fig4, identity, paper_judgements};
pub use panel5::fig5;
pub use protocol_sweep::protocol_sweep;
pub use sensitivity::gamma_sensitivity;
pub use standards::standards_impact;
pub use sweeps::mc_sweep;
pub use table1::table1;
pub use worst_case34::examples34;

use crate::table::Table;

/// Runs every experiment, in DESIGN.md order.
#[must_use]
pub fn all() -> Vec<Table> {
    vec![
        table1(),
        fig1(),
        fig2(),
        fig3(),
        fig4(),
        fig5(42),
        examples34(),
        identity(),
        gamma_sensitivity(),
        tail_cutoff(),
        multileg(),
        standards_impact(),
        multileg_copula(),
        growth_sil(11),
        calibration_weights(5),
        composition(),
        protocol_sweep(),
        mc_sweep(0),
    ]
}

/// Looks an experiment up by its CLI name.
#[must_use]
pub fn by_name(name: &str) -> Option<Table> {
    match name {
        "table1" => Some(table1()),
        "fig1" => Some(fig1()),
        "fig2" => Some(fig2()),
        "fig3" => Some(fig3()),
        "fig4" => Some(fig4()),
        "fig5" => Some(fig5(42)),
        "examples34" => Some(examples34()),
        "identity" => Some(identity()),
        "gamma_sensitivity" => Some(gamma_sensitivity()),
        "tail_cutoff" => Some(tail_cutoff()),
        "multileg" => Some(multileg()),
        "standards" => Some(standards_impact()),
        "multileg_copula" => Some(multileg_copula()),
        "growth_sil" => Some(growth_sil(11)),
        "calibration" => Some(calibration_weights(5)),
        "composition" => Some(composition()),
        "protocol_sweep" => Some(protocol_sweep()),
        "mc_sweep" => Some(mc_sweep(0)),
        _ => None,
    }
}

/// The CLI names accepted by [`by_name`].
pub const NAMES: [&str; 18] = [
    "table1",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "examples34",
    "identity",
    "gamma_sensitivity",
    "tail_cutoff",
    "multileg",
    "standards",
    "multileg_copula",
    "growth_sil",
    "calibration",
    "composition",
    "protocol_sweep",
    "mc_sweep",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_name_resolves() {
        for name in NAMES {
            let t = by_name(name).unwrap_or_else(|| panic!("{name} missing"));
            assert!(!t.is_empty(), "{name} produced no rows");
        }
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn all_matches_names_count() {
        assert_eq!(all().len(), NAMES.len());
    }
}
