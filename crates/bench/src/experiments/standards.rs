//! N1 — the standards impact analysis (paper Section 4.3).

use crate::experiments::figures::paper_judgements;
use crate::table::Table;
use depcase_sil::{
    claim_limit_for_argument, discounted_sil, ArgumentRigour, DemandMode, SilAssessment, SilLevel,
};

/// Applies IEC 61508's confidence requirements (70 / 95 / 99 / 99.9 %) to
/// the three Figure 1 judgements, then prints the paper's proposed
/// discounting rules.
#[must_use]
pub fn standards_impact() -> Table {
    let mut t = Table::new(
        "N1: IEC 61508 confidence requirements and claim discounting (paper Section 4.3)",
        &[
            "subject",
            "detail",
            "claimable@70%",
            "claimable@95%",
            "claimable@99%",
            "claimable@99.9%",
        ],
    );
    for (name, d) in paper_judgements() {
        let a = SilAssessment::new(&d, DemandMode::LowDemand);
        let claim = |c: f64| {
            a.claimable_at_confidence(c).map_or_else(|| "none".to_string(), |l| l.to_string())
        };
        t.push_row(vec![
            "judgement".into(),
            name.to_string(),
            claim(0.70),
            claim(0.95),
            claim(0.99),
            claim(0.999),
        ]);
    }
    for rigour in [
        ArgumentRigour::ProcessCompliance,
        ArgumentRigour::ExpertJudgement,
        ArgumentRigour::ReliabilityGrowth,
        ArgumentRigour::WorstCaseModel,
        ArgumentRigour::StatisticalDemonstration,
    ] {
        let disc = |judged: SilLevel| {
            discounted_sil(judged, rigour).map_or_else(|| "none".to_string(), |l| l.to_string())
        };
        t.push_row(vec![
            "discount".into(),
            format!("{rigour} (limit {})", claim_limit_for_argument(rigour)),
            disc(SilLevel::Sil1),
            disc(SilLevel::Sil2),
            disc(SilLevel::Sil3),
            disc(SilLevel::Sil4),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seventy_percent_requirement_pushes_wide_judgement_to_sil1() {
        // The paper: "if we were to apply the requirements for 70%
        // confidence this would nearly push the mean failure rate of the
        // system into the next SIL" — the wide judgement (67% SIL2) fails
        // the 70% gate and claims only SIL1.
        let t = standards_impact();
        assert_eq!(t.cell(2, "claimable@70%"), Some("SIL1"));
        // The narrow judgement keeps SIL2 at 70%.
        assert_eq!(t.cell(0, "claimable@70%"), Some("SIL2"));
    }

    #[test]
    fn process_compliance_discount_wipes_low_sils() {
        let t = standards_impact();
        // Discount rows start after the three judgement rows; columns are
        // judged SIL1..SIL4.
        assert_eq!(t.cell(3, "claimable@70%"), Some("none")); // SIL1 − 2
        assert_eq!(t.cell(3, "claimable@99%"), Some("SIL1")); // SIL3 − 2
    }

    #[test]
    fn statistical_demonstration_keeps_levels() {
        let t = standards_impact();
        let row = 7; // last discount row
        assert_eq!(t.cell(row, "claimable@70%"), Some("SIL1"));
        assert_eq!(t.cell(row, "claimable@99.9%"), Some("SIL4"));
    }
}
