//! B1 — elicitation-protocol ablation: which phase dynamics drive the
//! panel's final confidence?

use crate::table::Table;
use depcase_elicitation::{ExpertProfile, Panel, ProtocolConfig};

fn run_with(config: ProtocolConfig, seed: u64) -> (f64, f64) {
    let outcome = Panel::builder(0.003)
        .experts(9, ExpertProfile::mainstream())
        .experts(3, ExpertProfile::doubter())
        .config(config)
        .seed(seed)
        .build()
        .run();
    let last = outcome.final_phase();
    (last.main_group_sil2_confidence(), last.main_group_pooled_mean())
}

/// Sweeps the protocol's consensus and sharpening knobs one at a time
/// around the default, reporting the final pooled SIL2 confidence and
/// mean pfd (averaged over several seeds to tame simulation noise).
#[must_use]
pub fn protocol_sweep() -> Table {
    const SEEDS: [u64; 5] = [1, 2, 3, 4, 5];
    let mut t = Table::new(
        "B1: elicitation-protocol ablation (final pooled outcomes, 5-seed mean)",
        &["variant", "P(SIL2+)", "pooled_mean_pfd"],
    );
    let variants: Vec<(&str, ProtocolConfig)> = vec![
        ("default", ProtocolConfig::default()),
        (
            "no sharpening",
            ProtocolConfig {
                info_gain: 1.0,
                group_info_gain: 1.0,
                delphi_gain: 1.0,
                ..ProtocolConfig::default()
            },
        ),
        (
            "strong sharpening",
            ProtocolConfig {
                info_gain: 0.7,
                group_info_gain: 0.7,
                delphi_gain: 0.7,
                ..ProtocolConfig::default()
            },
        ),
        (
            "no consensus pull",
            ProtocolConfig { group_pull: 0.0, delphi_pull: 0.0, ..ProtocolConfig::default() },
        ),
        (
            "full consensus pull",
            ProtocolConfig { group_pull: 1.0, delphi_pull: 1.0, ..ProtocolConfig::default() },
        ),
        (
            "pliable doubters",
            ProtocolConfig { doubter_stubbornness: 0.0, ..ProtocolConfig::default() },
        ),
    ];
    for (name, config) in variants {
        let mut conf_acc = 0.0;
        let mut mean_acc = 0.0;
        for &seed in &SEEDS {
            let (c, m) = run_with(config, seed);
            conf_acc += c;
            mean_acc += m;
        }
        let n = SEEDS.len() as f64;
        t.push_row(vec![
            name.into(),
            format!("{:.4}", conf_acc / n),
            format!("{:.4e}", mean_acc / n),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(t: &Table, name: &str) -> f64 {
        let r = (0..t.len()).find(|&r| t.cell(r, "variant") == Some(name)).unwrap();
        t.cell_f64(r, "P(SIL2+)").unwrap()
    }

    #[test]
    fn sharpening_raises_final_confidence() {
        let t = protocol_sweep();
        let none = row(&t, "no sharpening");
        let strong = row(&t, "strong sharpening");
        assert!(strong > none, "strong {strong} <= none {none}");
    }

    #[test]
    fn default_sits_between_extremes() {
        let t = protocol_sweep();
        let default = row(&t, "default");
        let none = row(&t, "no sharpening");
        let strong = row(&t, "strong sharpening");
        assert!(default >= none - 0.02 && default <= strong + 0.02);
    }

    #[test]
    fn all_variants_report_finite_outcomes() {
        let t = protocol_sweep();
        assert_eq!(t.len(), 6);
        for r in 0..t.len() {
            let c = t.cell_f64(r, "P(SIL2+)").unwrap();
            let m = t.cell_f64(r, "pooled_mean_pfd").unwrap();
            assert!((0.0..=1.0).contains(&c), "row {r}");
            assert!(m > 0.0 && m < 1.0, "row {r}");
        }
    }
}
