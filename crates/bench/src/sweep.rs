//! Parallel parameter-sweep engine with per-stage wall-clock timing.
//!
//! Three sweep families matter for the paper's quantities:
//!
//! - **σ-sweeps** of [`LogNormal::mean_mode_decades`] — the Section 3.1
//!   identity `log10(mean/mode) = 0.65σ²` traced over a spread grid;
//! - **(x, y) grids** of `WorstCaseBound::bound` — the Section 3.4
//!   worst-case failure probability over doubt × claim-bound axes;
//! - **sample-size ladders** for the Monte-Carlo engine — throughput and
//!   parallel speedup of [`depcase_assurance::MonteCarlo`] runs over a
//!   pre-compiled [`EvalPlan`].
//!
//! Each stage is timed with a monotonic wall clock; [`BenchMcReport`]
//! serializes the lot as the `BENCH_mc.json` artefact (see
//! EXPERIMENTS.md). Grid points are distributed over worker threads by
//! [`par_map`], which preserves input order, so sweep output is
//! independent of the thread count.

use depcase_assurance::{Case, Combination, EvalPlan, Incremental, MonteCarlo, NodeId};
use depcase_core::WorstCaseBound;
use depcase_distributions::LogNormal;
use depcase_sil::{DemandMode, SilAssessment, SilLevel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Order-preserving parallel map over a slice.
///
/// Items are claimed dynamically by `threads` scoped workers; results
/// are reassembled in input order, so the output is identical to
/// `items.iter().map(f).collect()` regardless of scheduling.
/// `threads == 0` selects [`std::thread::available_parallelism`].
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = resolve_threads(threads).min(items.len().max(1));
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = std::sync::mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                tx.send((i, f(&items[i]))).expect("receiver outlives workers");
            });
        }
        drop(tx);
        let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        for (i, r) in rx {
            out[i] = Some(r);
        }
        out.into_iter().map(|o| o.expect("every index computed")).collect()
    })
}

/// Resolves a thread-count argument (`0` = autodetect).
#[must_use]
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        threads
    }
}

/// Wall-clock timing of one sweep stage.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StageTiming {
    /// Stage name (e.g. `"sigma_sweep"`).
    pub stage: String,
    /// Number of grid points evaluated.
    pub points: usize,
    /// Elapsed wall-clock seconds.
    pub seconds: f64,
}

/// One point of the σ-sweep.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SigmaPoint {
    /// Natural-log spread σ of the judgement.
    pub sigma: f64,
    /// Decades the mean sits above the mode (`0.65σ²`).
    pub mean_mode_decades: f64,
    /// One-sided SIL2-or-better confidence of a mode-0.003 judgement
    /// with this spread.
    pub sil2_confidence: f64,
}

/// Sweeps [`LogNormal::mean_mode_decades`] and the SIL2 membership
/// confidence over a σ grid (mode fixed at the paper's 0.003).
///
/// # Panics
///
/// Panics when a grid σ is not a valid log-normal spread — the grids
/// this harness builds are always positive and finite.
#[must_use]
pub fn sigma_sweep(sigmas: &[f64], threads: usize) -> (Vec<SigmaPoint>, StageTiming) {
    let t0 = Instant::now();
    let points = par_map(sigmas, threads, |&sigma| {
        let belief = LogNormal::from_mode_sigma(0.003, sigma).expect("grid sigma is valid");
        let conf = SilAssessment::new(&belief, DemandMode::LowDemand).confidences();
        SigmaPoint {
            sigma,
            mean_mode_decades: belief.mean_mode_decades(),
            sil2_confidence: conf[usize::from(SilLevel::Sil2.index()) - 1],
        }
    });
    let timing = StageTiming {
        stage: "sigma_sweep".into(),
        points: points.len(),
        seconds: t0.elapsed().as_secs_f64(),
    };
    (points, timing)
}

/// A `(doubt, claim bound)` grid of the worst-case bound.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct WorstCaseGrid {
    /// Doubt axis `x`.
    pub doubts: Vec<f64>,
    /// Claim-bound axis `y`.
    pub claim_bounds: Vec<f64>,
    /// `bounds[i][j] = bound(doubts[i], claim_bounds[j])`.
    pub bounds: Vec<Vec<f64>>,
}

/// Evaluates the paper's Eq. (5) worst-case bound over the full grid,
/// one doubt row per worker thread.
///
/// # Panics
///
/// Panics when an axis value is not a probability — the grids this
/// harness builds are always in `[0, 1]`.
#[must_use]
pub fn worst_case_grid(
    doubts: &[f64],
    claim_bounds: &[f64],
    threads: usize,
) -> (WorstCaseGrid, StageTiming) {
    let t0 = Instant::now();
    let bounds = par_map(doubts, threads, |&x| {
        WorstCaseBound::bound_grid(&[x], claim_bounds)
            .expect("grid values are probabilities")
            .remove(0)
    });
    let grid =
        WorstCaseGrid { doubts: doubts.to_vec(), claim_bounds: claim_bounds.to_vec(), bounds };
    let timing = StageTiming {
        stage: "worst_case_grid".into(),
        points: doubts.len() * claim_bounds.len(),
        seconds: t0.elapsed().as_secs_f64(),
    };
    (grid, timing)
}

/// One rung of the Monte-Carlo sample-size ladder.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct McRung {
    /// Structure samples drawn.
    pub samples: u32,
    /// Worker threads used for the parallel run.
    pub threads: usize,
    /// Single-thread wall-clock seconds.
    pub secs_single: f64,
    /// Multi-thread wall-clock seconds.
    pub secs_parallel: f64,
    /// Single-thread throughput.
    pub samples_per_sec_single: f64,
    /// Multi-thread throughput.
    pub samples_per_sec_parallel: f64,
    /// `secs_single / secs_parallel`.
    pub speedup: f64,
    /// Root-goal estimate (identical between the two runs by the
    /// engine's determinism guarantee).
    pub estimate: f64,
}

/// The reference case the ladder exercises: three argument legs of four
/// evidence nodes each under a shared assumption — large enough that
/// structure evaluation, not setup, dominates.
///
/// # Panics
///
/// Panics on construction failure (impossible: names are unique and the
/// structure is a tree).
#[must_use]
pub fn ladder_case() -> (Case, NodeId) {
    let mut case = Case::new("mc-ladder reference");
    let g = case.add_goal("G", "system meets its SIL2 target").expect("fresh name");
    let a = case.add_assumption("A0", "operating profile holds", 0.97).expect("fresh name");
    case.support(g, a).expect("valid edge");
    let top = case
        .add_strategy("S", "independent argument legs", Combination::AnyOf)
        .expect("fresh name");
    case.support(g, top).expect("valid edge");
    for leg in 0..3 {
        let s = case
            .add_strategy(format!("S{leg}"), "leg evidence conjunction", Combination::AllOf)
            .expect("fresh name");
        case.support(top, s).expect("valid edge");
        for e in 0..4 {
            let conf = 0.90 + 0.02 * f64::from(e);
            let ev = case
                .add_evidence(format!("E{leg}-{e}"), "supporting evidence", conf)
                .expect("fresh name");
            case.support(s, ev).expect("valid edge");
        }
    }
    (case, g)
}

/// Runs the Monte-Carlo engine at each sample size, once on one thread
/// and once on `threads` workers, recording throughput and speedup.
///
/// # Panics
///
/// Panics if simulation fails — impossible for the valid reference case
/// and nonzero sizes.
#[must_use]
pub fn mc_ladder(sizes: &[u32], seed: u64, threads: usize) -> (Vec<McRung>, StageTiming) {
    let threads = resolve_threads(threads);
    let (case, goal) = ladder_case();
    // Compile once, reuse across every rung and both thread counts —
    // the same amortisation the assessment service's plan cache does.
    let plan = EvalPlan::compile(&case).expect("valid case");
    let t0 = Instant::now();
    let rungs = sizes
        .iter()
        .map(|&samples| {
            let t1 = Instant::now();
            let single = MonteCarlo::new(samples)
                .seed(seed)
                .threads(1)
                .run_plan(&plan)
                .expect("samples > 0");
            let secs_single = t1.elapsed().as_secs_f64();
            let t2 = Instant::now();
            let par = MonteCarlo::new(samples)
                .seed(seed)
                .threads(threads)
                .run_plan(&plan)
                .expect("samples > 0");
            let secs_parallel = t2.elapsed().as_secs_f64();
            let estimate = single.estimate(goal).expect("goal is a target");
            assert_eq!(
                estimate.to_bits(),
                par.estimate(goal).expect("goal is a target").to_bits(),
                "determinism violated at {samples} samples"
            );
            McRung {
                samples,
                threads,
                secs_single,
                secs_parallel,
                samples_per_sec_single: f64::from(samples) / secs_single.max(1e-12),
                samples_per_sec_parallel: f64::from(samples) / secs_parallel.max(1e-12),
                speedup: secs_single / secs_parallel.max(1e-12),
                estimate,
            }
        })
        .collect::<Vec<_>>();
    let timing = StageTiming {
        stage: "mc_ladder".into(),
        points: sizes.len(),
        seconds: t0.elapsed().as_secs_f64(),
    };
    (rungs, timing)
}

/// One rung of the batched-versus-scalar Monte-Carlo comparison: the
/// same plan sampled by the one-sample-at-a-time scalar reference and
/// by the 64-lane batched kernel the service's `mc` op runs on.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct BatchedMcRung {
    /// Structure samples drawn by each engine.
    pub samples: u32,
    /// Scalar-reference wall-clock seconds.
    pub secs_scalar: f64,
    /// Batched-kernel wall-clock seconds (one thread, so the ratio is
    /// pure kernel width, not parallelism).
    pub secs_batched: f64,
    /// Scalar-reference throughput.
    pub samples_per_sec_scalar: f64,
    /// Batched-kernel throughput.
    pub samples_per_sec_batched: f64,
    /// `secs_scalar / secs_batched`.
    pub speedup: f64,
    /// Root-goal estimate from the scalar reference.
    pub estimate_scalar: f64,
    /// Root-goal estimate from the batched engine. Differs from the
    /// scalar figure only through RNG-stream discipline (caller-owned
    /// stream vs chunked streams); the engines themselves are pinned
    /// bit-identical from shared state by the assurance test suite.
    pub estimate_batched: f64,
}

/// Times the scalar sequential sampler against the batched wide engine
/// on the ladder reference case at each sample size, both single
/// threaded, so `speedup` isolates what the 64-lane kernel buys.
///
/// # Panics
///
/// Panics if simulation fails — impossible for the valid reference case
/// and nonzero sizes.
#[must_use]
pub fn batched_mc(sizes: &[u32], seed: u64) -> (Vec<BatchedMcRung>, StageTiming) {
    let (case, goal) = ladder_case();
    let plan = EvalPlan::compile(&case).expect("valid case");
    let t0 = Instant::now();
    let rungs = sizes
        .iter()
        .map(|&samples| {
            let engine = MonteCarlo::new(samples).seed(seed).threads(1);
            let t1 = Instant::now();
            let scalar = engine
                .run_sequential_plan(&plan, &mut StdRng::seed_from_u64(seed))
                .expect("samples > 0");
            let secs_scalar = t1.elapsed().as_secs_f64();
            let t2 = Instant::now();
            let batched = engine.run_plan(&plan).expect("samples > 0");
            let secs_batched = t2.elapsed().as_secs_f64();
            BatchedMcRung {
                samples,
                secs_scalar,
                secs_batched,
                samples_per_sec_scalar: f64::from(samples) / secs_scalar.max(1e-12),
                samples_per_sec_batched: f64::from(samples) / secs_batched.max(1e-12),
                speedup: secs_scalar / secs_batched.max(1e-12),
                estimate_scalar: scalar.estimate(goal).expect("goal is a target"),
                estimate_batched: batched.estimate(goal).expect("goal is a target"),
            }
        })
        .collect::<Vec<_>>();
    let timing = StageTiming {
        stage: "batched_mc".into(),
        points: sizes.len(),
        seconds: t0.elapsed().as_secs_f64(),
    };
    (rungs, timing)
}

/// Result of the incremental-edit scenario: the same point-edit
/// sequence answered by a full recompile-and-repropagate per edit
/// versus the [`Incremental`] session's dirty-spine recomputation.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct IncrementalStats {
    /// Nodes in the synthetic case.
    pub nodes: usize,
    /// Point edits applied (each path sees the identical sequence).
    pub edits: usize,
    /// Wall-clock seconds for the full path (`content_hash` +
    /// `EvalPlan::compile` + `propagate` after every edit — what a
    /// cacheless service would pay).
    pub secs_full: f64,
    /// Wall-clock seconds for the incremental path
    /// (`Incremental::set_confidence` per edit).
    pub secs_incremental: f64,
    /// `secs_full / secs_incremental`.
    pub speedup: f64,
    /// Nodes run through the combination kernel across all edits.
    pub nodes_recomputed: u64,
    /// Nodes answered from the subtree-hash memo across all edits.
    pub nodes_reused: u64,
}

/// The ~1k-node case the incremental scenario edits: one goal over 33
/// strategies of 30 evidence leaves each (1 + 33 + 990 = 1024 nodes),
/// so a point edit's ancestor spine is 3 nodes out of 1024.
///
/// # Panics
///
/// Panics on construction failure (impossible: names are unique and the
/// structure is a tree).
#[must_use]
pub fn incremental_case() -> (Case, NodeId, Vec<NodeId>) {
    let mut case = Case::new("incremental reference");
    let g = case.add_goal("G", "claim holds at depth").expect("fresh name");
    let mut leaves = Vec::new();
    for si in 0..33 {
        let s = case
            .add_strategy(format!("S{si}"), "evidence conjunction", Combination::AllOf)
            .expect("fresh name");
        case.support(g, s).expect("valid edge");
        for ei in 0..30 {
            let conf = 0.80 + 0.006 * f64::from(ei);
            let e = case
                .add_evidence(format!("E{si}-{ei}"), "supporting evidence", conf)
                .expect("fresh name");
            case.support(s, e).expect("valid edge");
            leaves.push(e);
        }
    }
    (case, g, leaves)
}

/// Applies `edits` deterministic point edits to the 1k-node reference
/// case twice — once recompiling and repropagating from scratch after
/// every edit, once through an [`Incremental`] session — and times both
/// paths. The root-confidence sequences are asserted bit-identical.
///
/// # Panics
///
/// Panics if the two paths ever disagree on a root confidence, or on
/// (impossible) evaluation failure of the valid reference case.
#[must_use]
pub fn incremental_scenario(edits: usize) -> (IncrementalStats, StageTiming) {
    let t0 = Instant::now();
    let (case, goal, leaves) = incremental_case();
    let nodes = case.len();
    // Deterministic edit sequence: a stride coprime to the leaf count
    // walks every region of the case; confidences cycle through [0.5,
    // 0.9) in irrational-looking steps so consecutive values differ.
    let edit_at = |i: usize| -> (usize, f64) {
        let leaf = (i * 7919) % leaves.len();
        let conf = 0.5 + 0.4 * (((i * 29) % 97) as f64 / 97.0);
        (leaf, conf)
    };

    // Full path: what a service without the memoised session pays per
    // edit — rehash, recompile, repropagate the whole case.
    let mut full_case = case.clone();
    let mut full_roots = Vec::with_capacity(edits);
    let t_full = Instant::now();
    for i in 0..edits {
        let (leaf, conf) = edit_at(i);
        full_case.set_leaf_confidence(leaves[leaf], conf).expect("leaf edit is valid");
        let _hash = full_case.content_hash();
        let _plan = EvalPlan::compile(&full_case).expect("valid case");
        let report = full_case.propagate().expect("valid case");
        full_roots.push(report.confidence(goal).expect("goal participates").independent);
    }
    let secs_full = t_full.elapsed().as_secs_f64();

    // Incremental path: the session is built once (the service caches
    // it per content hash); each edit recomputes only the dirty spine.
    let mut session = Incremental::new(case).expect("valid case");
    let before = session.totals();
    let mut inc_roots = Vec::with_capacity(edits);
    let t_inc = Instant::now();
    for i in 0..edits {
        let (leaf, conf) = edit_at(i);
        session.set_confidence(leaves[leaf], conf).expect("leaf edit is valid");
        inc_roots.push(session.confidence(goal).expect("goal participates").independent);
    }
    let secs_incremental = t_inc.elapsed().as_secs_f64();

    for (i, (f, inc)) in full_roots.iter().zip(&inc_roots).enumerate() {
        assert_eq!(f.to_bits(), inc.to_bits(), "incremental path diverged at edit {i}");
    }
    let totals = session.totals();
    let stats = IncrementalStats {
        nodes,
        edits,
        secs_full,
        secs_incremental,
        speedup: secs_full / secs_incremental.max(1e-12),
        nodes_recomputed: totals.nodes_recomputed - before.nodes_recomputed,
        nodes_reused: totals.nodes_reused - before.nodes_reused,
    };
    let timing = StageTiming {
        stage: "incremental_edits".into(),
        points: edits,
        seconds: t0.elapsed().as_secs_f64(),
    };
    (stats, timing)
}

/// The full `BENCH_mc.json` artefact: stage timings plus the ladder.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct BenchMcReport {
    /// Worker threads the parallel runs used.
    pub threads: usize,
    /// CPUs the host actually offers — speedup figures are only
    /// meaningful when this is ≥ `threads`.
    pub host_parallelism: usize,
    /// The engine's fixed chunk size (samples per RNG stream).
    pub chunk_samples: u32,
    /// Per-stage wall-clock timings.
    pub stages: Vec<StageTiming>,
    /// σ-sweep output.
    pub sigma: Vec<SigmaPoint>,
    /// Monte-Carlo ladder output.
    pub mc: Vec<McRung>,
    /// Batched-kernel-versus-scalar comparison output.
    pub batched_mc: Vec<BatchedMcRung>,
    /// Incremental point-edit scenario output.
    pub incremental: IncrementalStats,
}

/// Default grids for [`run_bench`]: 256-point σ-sweep, 128×128
/// worst-case grid, and a 3-rung sample ladder.
#[must_use]
pub fn default_sigma_grid() -> Vec<f64> {
    (1..=256).map(|i| 0.01 * f64::from(i)).collect()
}

/// Logarithmic probability axis for the worst-case grid.
#[must_use]
pub fn default_prob_axis(n: usize) -> Vec<f64> {
    // 10⁻⁶ … 10⁰, log-spaced.
    if n <= 1 {
        return vec![1.0];
    }
    (0..n).map(|i| 10f64.powf(-6.0 + 6.0 * i as f64 / (n - 1) as f64)).collect()
}

/// Runs every sweep stage and assembles the report.
#[must_use]
pub fn run_bench(mc_sizes: &[u32], seed: u64, threads: usize) -> BenchMcReport {
    let threads = resolve_threads(threads);
    let mut stages = Vec::new();
    let (sigma, t_sigma) = sigma_sweep(&default_sigma_grid(), threads);
    stages.push(t_sigma);
    let axis = default_prob_axis(128);
    let (_grid, t_grid) = worst_case_grid(&axis, &axis, threads);
    stages.push(t_grid);
    let (mc, t_mc) = mc_ladder(mc_sizes, seed, threads);
    stages.push(t_mc);
    let (batched_mc, t_batched) = batched_mc(mc_sizes, seed);
    stages.push(t_batched);
    let (incremental, t_inc) = incremental_scenario(100);
    stages.push(t_inc);
    BenchMcReport {
        threads,
        host_parallelism: resolve_threads(0),
        chunk_samples: depcase_assurance::monte_carlo::CHUNK_SAMPLES,
        stages,
        sigma,
        mc,
        batched_mc,
        incremental,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order_and_values() {
        let items: Vec<u64> = (0..257).collect();
        let seq: Vec<u64> = items.iter().map(|&x| x * x).collect();
        for threads in [1, 2, 4, 8] {
            assert_eq!(par_map(&items, threads, |&x| x * x), seq, "threads = {threads}");
        }
        // Empty input and autodetect are fine.
        assert!(par_map(&[] as &[u64], 0, |&x| x).is_empty());
    }

    #[test]
    fn sigma_sweep_hits_paper_identity_points() {
        // σ ≈ 1.24 ↔ one decade, σ ≈ 1.75 ↔ two decades (Section 3.1).
        let (points, timing) = sigma_sweep(&[1.2389, 1.7521], 2);
        assert_eq!(timing.points, 2);
        assert!((points[0].mean_mode_decades - 1.0).abs() < 1e-3, "{:?}", points[0]);
        assert!((points[1].mean_mode_decades - 2.0).abs() < 1e-3, "{:?}", points[1]);
        assert!(timing.seconds >= 0.0);
    }

    #[test]
    fn sigma_sweep_thread_count_does_not_change_output() {
        let grid = default_sigma_grid();
        let (a, _) = sigma_sweep(&grid, 1);
        let (b, _) = sigma_sweep(&grid, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn worst_case_grid_matches_closed_form() {
        let (grid, timing) = worst_case_grid(&[0.0, 0.5], &[0.0, 0.2], 2);
        assert_eq!(timing.points, 4);
        assert_eq!(grid.bounds[0][0], 0.0);
        assert!((grid.bounds[1][1] - 0.6).abs() < 1e-15); // 0.5 + 0.2 − 0.1
    }

    #[test]
    fn ladder_runs_and_is_deterministic() {
        let (rungs, timing) = mc_ladder(&[10_000, 20_000], 5, 2);
        assert_eq!(timing.points, 2);
        for r in &rungs {
            assert!(r.samples_per_sec_single > 0.0);
            assert!(r.samples_per_sec_parallel > 0.0);
            assert!((0.0..=1.0).contains(&r.estimate));
        }
        // Same seed → same estimates at any ladder configuration.
        let (again, _) = mc_ladder(&[10_000, 20_000], 5, 4);
        assert_eq!(
            rungs.iter().map(|r| r.estimate.to_bits()).collect::<Vec<_>>(),
            again.iter().map(|r| r.estimate.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn incremental_scenario_touches_only_the_spine() {
        // The assertion inside the scenario already pins bit-identity
        // of the two paths; here we pin the work accounting. Every
        // point edit in the reference topology dirties exactly 3 nodes
        // (leaf, strategy, goal), each either recomputed or reused —
        // O(depth), not O(n). No wall-clock assertions: timing claims
        // live in BENCH_mc.json, not in tests.
        let (stats, timing) = incremental_scenario(20);
        assert_eq!(stats.nodes, 1024);
        assert_eq!(stats.edits, 20);
        assert_eq!(timing.points, 20);
        assert_eq!(stats.nodes_recomputed + stats.nodes_reused, 3 * 20);
        assert!(stats.secs_full > 0.0);
        assert!(stats.secs_incremental > 0.0);
    }

    #[test]
    fn batched_mc_stage_times_both_engines_and_is_deterministic() {
        let (rungs, timing) = batched_mc(&[10_000, 20_000], 5);
        assert_eq!(timing.points, 2);
        for r in &rungs {
            assert!(r.samples_per_sec_scalar > 0.0);
            assert!(r.samples_per_sec_batched > 0.0);
            assert!((0.0..=1.0).contains(&r.estimate_scalar));
            assert!((0.0..=1.0).contains(&r.estimate_batched));
        }
        // Same seeds → same estimates on a re-run (no wall-clock
        // claims in tests; throughput figures live in BENCH_mc.json).
        let (again, _) = batched_mc(&[10_000, 20_000], 5);
        for (a, b) in rungs.iter().zip(&again) {
            assert_eq!(a.estimate_scalar.to_bits(), b.estimate_scalar.to_bits());
            assert_eq!(a.estimate_batched.to_bits(), b.estimate_batched.to_bits());
        }
    }

    #[test]
    fn report_serializes() {
        let report = run_bench(&[5_000], 1, 2);
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert!(json.contains("\"chunk_samples\""));
        assert!(json.contains("sigma_sweep"));
        assert!(json.contains("mc_ladder"));
        assert!(json.contains("batched_mc"));
        assert!(json.contains("incremental_edits"));
        assert!(json.contains("\"nodes_recomputed\""));
    }
}
