//! Expert calibration against seed variables (Cooke's classical model,
//! simplified).
//!
//! The paper notes that standards-compliance expert judgement "suffers
//! from lack of validation \[and\] calibration". This module supplies the
//! validation loop: experts assess *seed variables* (quantities whose
//! true values become known), their stated quantiles are scored for
//! statistical calibration, and the scores become performance weights
//! for [`crate::pooling`].

use depcase_distributions::DistError;
use depcase_numerics::special::reg_gamma_q;
use serde::{Deserialize, Serialize};

/// One expert's quantile assessment of one seed variable.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantileAssessment {
    /// Stated 5th percentile.
    pub q05: f64,
    /// Stated median.
    pub q50: f64,
    /// Stated 95th percentile.
    pub q95: f64,
}

impl QuantileAssessment {
    /// Creates an assessment, checking the quantile ordering.
    ///
    /// # Errors
    ///
    /// [`DistError::InvalidParameter`] unless `q05 < q50 < q95` and all
    /// are finite.
    pub fn new(q05: f64, q50: f64, q95: f64) -> Result<Self, DistError> {
        if !(q05.is_finite() && q50.is_finite() && q95.is_finite() && q05 < q50 && q50 < q95) {
            return Err(DistError::InvalidParameter(format!(
                "quantiles must be finite and ordered: ({q05}, {q50}, {q95})"
            )));
        }
        Ok(Self { q05, q50, q95 })
    }

    /// The inter-quantile bin (0–3) the realized value falls into:
    /// below q05, q05–q50, q50–q95, above q95.
    #[must_use]
    pub fn bin(&self, realization: f64) -> usize {
        if realization < self.q05 {
            0
        } else if realization < self.q50 {
            1
        } else if realization < self.q95 {
            2
        } else {
            3
        }
    }
}

/// The theoretical bin probabilities for a perfectly calibrated expert.
pub const EXPECTED_BIN_PROBS: [f64; 4] = [0.05, 0.45, 0.45, 0.05];

/// Counts how many realizations landed in each inter-quantile bin.
///
/// # Errors
///
/// [`DistError::InvalidParameter`] if the slices differ in length or are
/// empty.
pub fn bin_counts(
    assessments: &[QuantileAssessment],
    realizations: &[f64],
) -> Result<[u64; 4], DistError> {
    if assessments.len() != realizations.len() || assessments.is_empty() {
        return Err(DistError::InvalidParameter(format!(
            "need equal, non-zero numbers of assessments ({}) and realizations ({})",
            assessments.len(),
            realizations.len()
        )));
    }
    let mut counts = [0u64; 4];
    for (a, &r) in assessments.iter().zip(realizations) {
        counts[a.bin(r)] += 1;
    }
    Ok(counts)
}

/// Cooke-style calibration score: the p-value of the likelihood-ratio
/// statistic `2N·KL(empirical ‖ expected)` against its asymptotic χ²₃
/// law. 1 means perfectly calibrated; near 0 means the expert's stated
/// quantiles are statistically untenable.
///
/// # Errors
///
/// [`DistError::InvalidParameter`] for all-zero counts; numerical errors
/// from the χ² tail.
pub fn calibration_score(counts: &[u64; 4]) -> Result<f64, DistError> {
    let n: u64 = counts.iter().sum();
    if n == 0 {
        return Err(DistError::InvalidParameter("no seed observations".into()));
    }
    let nf = n as f64;
    let mut kl = 0.0;
    for (i, &c) in counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let s = c as f64 / nf;
        kl += s * (s / EXPECTED_BIN_PROBS[i]).ln();
    }
    let stat = 2.0 * nf * kl;
    // χ² with 3 degrees of freedom: survival = Q(3/2, stat/2).
    Ok(reg_gamma_q(1.5, 0.5 * stat)?)
}

/// A scored expert: calibration score plus derived pooling weight.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CalibrationResult {
    /// Index of the expert in the input order.
    pub expert: usize,
    /// Calibration p-value in `[0, 1]`.
    pub score: f64,
    /// Normalized performance weight (scores below `cutoff` are zeroed,
    /// Cooke's "unweighting" of uncalibrated experts).
    pub weight: f64,
}

/// Scores a panel of experts against shared seed realizations and
/// produces normalized pooling weights. Experts scoring below `cutoff`
/// get weight 0; if all do, weights fall back to uniform.
///
/// # Errors
///
/// Propagates scoring failures; requires every expert to have assessed
/// every seed variable.
///
/// # Examples
///
/// ```
/// use depcase_elicitation::calibration::{
///     performance_weights, QuantileAssessment,
/// };
///
/// // Two experts judging three seeds with truth {1, 2, 3}:
/// let sharp = vec![
///     QuantileAssessment::new(0.5, 1.1, 2.0)?,
///     QuantileAssessment::new(1.0, 2.2, 4.0)?,
///     QuantileAssessment::new(1.5, 2.9, 6.0)?,
/// ];
/// let wild = vec![
///     QuantileAssessment::new(5.0, 6.0, 7.0)?, // truth far below q05
///     QuantileAssessment::new(5.0, 6.0, 7.0)?,
///     QuantileAssessment::new(5.0, 6.0, 7.0)?,
/// ];
/// let truths = [1.0, 2.0, 3.0];
/// let res = performance_weights(&[sharp, wild], &truths, 0.01)?;
/// assert!(res[0].weight > res[1].weight);
/// # Ok::<(), depcase_distributions::DistError>(())
/// ```
pub fn performance_weights(
    per_expert: &[Vec<QuantileAssessment>],
    realizations: &[f64],
    cutoff: f64,
) -> Result<Vec<CalibrationResult>, DistError> {
    if per_expert.is_empty() {
        return Err(DistError::InvalidParameter("no experts to score".into()));
    }
    let mut raw = Vec::with_capacity(per_expert.len());
    for (i, assessments) in per_expert.iter().enumerate() {
        let counts = bin_counts(assessments, realizations)?;
        let score = calibration_score(&counts)?;
        raw.push((i, score));
    }
    let mut kept: Vec<f64> = raw.iter().map(|&(_, s)| if s >= cutoff { s } else { 0.0 }).collect();
    let total: f64 = kept.iter().sum();
    if total == 0.0 {
        // Everyone failed the gate: uniform fallback.
        kept = vec![1.0 / per_expert.len() as f64; per_expert.len()];
    } else {
        for w in &mut kept {
            *w /= total;
        }
    }
    Ok(raw
        .into_iter()
        .zip(kept)
        .map(|((expert, score), weight)| CalibrationResult { expert, score, weight })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use depcase_distributions::{Distribution, LogNormal};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn assessment_validation() {
        assert!(QuantileAssessment::new(1.0, 0.5, 2.0).is_err());
        assert!(QuantileAssessment::new(1.0, 1.0, 2.0).is_err());
        assert!(QuantileAssessment::new(f64::NAN, 1.0, 2.0).is_err());
    }

    #[test]
    fn binning() {
        let a = QuantileAssessment::new(1.0, 2.0, 3.0).unwrap();
        assert_eq!(a.bin(0.5), 0);
        assert_eq!(a.bin(1.5), 1);
        assert_eq!(a.bin(2.5), 2);
        assert_eq!(a.bin(3.5), 3);
        assert_eq!(a.bin(1.0), 1); // boundary goes up
    }

    #[test]
    fn perfectly_proportioned_counts_score_one() {
        // Counts exactly matching (0.05, 0.45, 0.45, 0.05) of N = 100.
        let counts = [5u64, 45, 45, 5];
        let s = calibration_score(&counts).unwrap();
        assert!((s - 1.0).abs() < 1e-9, "score = {s}");
    }

    #[test]
    fn grossly_miscalibrated_counts_score_near_zero() {
        let counts = [90u64, 5, 4, 1];
        let s = calibration_score(&counts).unwrap();
        assert!(s < 1e-10, "score = {s}");
    }

    #[test]
    fn score_degrades_smoothly() {
        let good = calibration_score(&[5, 45, 45, 5]).unwrap();
        let ok = calibration_score(&[10, 40, 40, 10]).unwrap();
        let bad = calibration_score(&[25, 25, 25, 25]).unwrap();
        assert!(good > ok && ok > bad, "{good} > {ok} > {bad}");
    }

    #[test]
    fn bin_counts_validation() {
        let a = QuantileAssessment::new(1.0, 2.0, 3.0).unwrap();
        assert!(bin_counts(&[a], &[]).is_err());
        assert!(bin_counts(&[], &[]).is_err());
    }

    #[test]
    fn simulated_calibrated_vs_overconfident() {
        // Seeds drawn from a known log-normal; the calibrated expert
        // states the true quantiles, the overconfident one shrinks the
        // interval by 5x around the median.
        let truth_dist = LogNormal::new(0.0, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(77);
        let truths: Vec<f64> = truth_dist.sample_n(&mut rng, 60);
        let q05 = truth_dist.quantile(0.05).unwrap();
        let q50 = truth_dist.quantile(0.50).unwrap();
        let q95 = truth_dist.quantile(0.95).unwrap();
        let calibrated: Vec<QuantileAssessment> =
            truths.iter().map(|_| QuantileAssessment::new(q05, q50, q95).unwrap()).collect();
        let overconfident: Vec<QuantileAssessment> = truths
            .iter()
            .map(|_| {
                QuantileAssessment::new(q50 - (q50 - q05) / 5.0, q50, q50 + (q95 - q50) / 5.0)
                    .unwrap()
            })
            .collect();
        let res = performance_weights(&[calibrated, overconfident], &truths, 0.01).unwrap();
        assert!(res[0].score > res[1].score, "{} vs {}", res[0].score, res[1].score);
        assert!(res[0].weight > 0.9, "calibrated weight {}", res[0].weight);
    }

    #[test]
    fn weights_normalize_and_cutoff_applies() {
        let a = vec![QuantileAssessment::new(0.0, 1.0, 2.0).unwrap(); 20];
        // Expert B always far off.
        let b = vec![QuantileAssessment::new(10.0, 11.0, 12.0).unwrap(); 20];
        let truths: Vec<f64> = (0..20).map(|i| 0.5 + 0.05 * i as f64).collect();
        let res = performance_weights(&[a, b], &truths, 0.05).unwrap();
        let total: f64 = res.iter().map(|r| r.weight).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(res[1].weight, 0.0);
    }

    #[test]
    fn all_failing_falls_back_to_uniform() {
        let bad = vec![QuantileAssessment::new(10.0, 11.0, 12.0).unwrap(); 20];
        let truths = vec![0.0; 20];
        let res = performance_weights(&[bad.clone(), bad], &truths, 0.05).unwrap();
        assert!((res[0].weight - 0.5).abs() < 1e-12);
        assert!((res[1].weight - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_panel_rejected() {
        assert!(performance_weights(&[], &[1.0], 0.05).is_err());
    }
}
