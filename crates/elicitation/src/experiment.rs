//! The paper-preset experiment (Section 3.3 / Figure 5).

use crate::expert::ExpertProfile;
use crate::panel::{ExperimentOutcome, Panel};
use crate::phases::Phase;
use serde::{Deserialize, Serialize};

/// The paper's panel: 12 experts judging a system briefed at pfd 0.003
/// (mid-SIL2, the Cemsis safety function), of whom 3 turn out to be
/// doubters.
///
/// # Examples
///
/// ```
/// use depcase_elicitation::experiment::paper_panel;
///
/// let outcome = paper_panel(42).run();
/// assert_eq!(outcome.doubter_count(), 3);
/// ```
#[must_use]
pub fn paper_panel(seed: u64) -> Panel {
    Panel::builder(0.003)
        .experts(9, ExpertProfile::mainstream())
        .experts(3, ExpertProfile::doubter())
        .seed(seed)
        .build()
}

/// The headline statistics the paper reports from the experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PaperFindings {
    /// Number of doubters detected (paper: 3 of 12).
    pub doubters: usize,
    /// Main group's pooled one-sided confidence in SIL2-or-better after
    /// Delphi (paper: about 90 %).
    pub final_sil2_confidence: f64,
    /// Main group's pooled mean pfd after Delphi (paper: 0.01, on the
    /// SIL2/SIL1 boundary).
    pub final_pooled_pfd: f64,
    /// Whether the pooled belief is asymmetric (mean above mode) — the
    /// observation the paper uses the experiment for.
    pub asymmetric: bool,
}

/// Runs the paper preset and extracts the headline findings.
///
/// # Examples
///
/// ```
/// use depcase_elicitation::experiment::paper_findings;
///
/// let f = paper_findings(42);
/// assert_eq!(f.doubters, 3);
/// assert!(f.asymmetric);
/// ```
#[must_use]
pub fn paper_findings(seed: u64) -> PaperFindings {
    let outcome = paper_panel(seed).run();
    findings_of(&outcome)
}

/// Extracts the headline findings from any outcome.
#[must_use]
pub fn findings_of(outcome: &ExperimentOutcome) -> PaperFindings {
    let last = outcome.final_phase();
    let pooled_mean = last.main_group_pooled_mean();
    // Mode of the pooled (multimodal) mixture approximated by the median
    // of the main group's individual modes.
    let mut modes: Vec<f64> = last.main_group().iter().map(|j| j.mode_pfd).collect();
    modes.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let pooled_mode = if modes.is_empty() { f64::NAN } else { modes[modes.len() / 2] };
    PaperFindings {
        doubters: outcome.doubter_count(),
        final_sil2_confidence: last.main_group_sil2_confidence(),
        final_pooled_pfd: pooled_mean,
        asymmetric: pooled_mean > pooled_mode,
    }
}

/// One expert's point in a phase: `(expert id, is doubter, mode pfd)`.
pub type ExpertPoint = (usize, bool, f64);

/// Per-phase series for plotting Figure 5: every expert's most-likely pfd
/// at every phase.
#[must_use]
pub fn figure5_series(outcome: &ExperimentOutcome) -> Vec<(Phase, Vec<ExpertPoint>)> {
    outcome
        .phases()
        .iter()
        .map(|r| {
            let pts = r.judgements.iter().map(|j| (j.expert_id, j.doubter, j.mode_pfd)).collect();
            (r.phase, pts)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_headline_shape_holds_across_seeds() {
        // The calibrated preset should reproduce the paper's observations
        // for essentially any seed: high final SIL2 confidence in the
        // main group, pooled pfd near the band boundary, and asymmetry.
        let mut confident = 0;
        let mut boundary = 0;
        let mut asym = 0;
        const SEEDS: u64 = 20;
        for seed in 0..SEEDS {
            let f = paper_findings(seed);
            assert_eq!(f.doubters, 3);
            if f.final_sil2_confidence > 0.80 {
                confident += 1;
            }
            if f.final_pooled_pfd > 1e-3 && f.final_pooled_pfd < 3e-2 {
                boundary += 1;
            }
            if f.asymmetric {
                asym += 1;
            }
        }
        assert!(confident >= 16, "only {confident}/{SEEDS} seeds ended confident");
        assert!(boundary >= 16, "only {boundary}/{SEEDS} pooled means near boundary");
        assert!(asym >= 18, "only {asym}/{SEEDS} asymmetric");
    }

    #[test]
    fn figure5_series_shape() {
        let outcome = paper_panel(7).run();
        let series = figure5_series(&outcome);
        assert_eq!(series.len(), 4);
        for (_, pts) in &series {
            assert_eq!(pts.len(), 12);
            assert_eq!(pts.iter().filter(|(_, d, _)| *d).count(), 3);
        }
    }

    #[test]
    fn findings_are_deterministic() {
        assert_eq!(paper_findings(11), paper_findings(11));
    }
}
