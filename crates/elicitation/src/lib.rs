//! Synthetic expert-panel elicitation — the substitute for the paper's
//! Section 3.3 experiment.
//!
//! The paper elicited pfd judgements from 12 experts over four phases
//! (initial briefing → individual information requests → group disclosure
//! of all information → Delphi discussion). The observations the paper
//! draws from it:
//!
//! 1. assessors split into a minority of *doubters* (who express doubt as
//!    a very high failure rate) and a main group;
//! 2. the main group ended ~90 % confident the system was SIL2-or-better,
//!    yet the pooled pfd (0.01) sat on the SIL2/SIL1 boundary;
//! 3. the judged distributions are *asymmetric*.
//!
//! Since the human panel (and the Cemsis case study briefing) is not
//! available, this crate simulates it: experts are drawn from
//! configurable populations, each phase applies an information-gain and a
//! consensus-pull update, and everything is deterministic under a seed.
//! The [`experiment::paper_panel`] preset reproduces observations 1–3.
//!
//! # Examples
//!
//! ```
//! use depcase_elicitation::experiment;
//!
//! let outcome = experiment::paper_panel(42).run();
//! let final_phase = outcome.final_phase();
//! // The doubters are visibly separated from the main group:
//! assert!(outcome.doubter_count() == 3);
//! // Main group ends highly confident in SIL2-or-better:
//! let conf = final_phase.main_group_sil2_confidence();
//! assert!(conf > 0.8);
//! ```

// `!(x > 0.0)`-style checks deliberately treat NaN as invalid input; the
// lint's suggested `x <= 0.0` would let NaN through the validation.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
// Reference constants are quoted at full printed precision.
#![allow(clippy::excessive_precision)]
#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod calibration;
pub mod experiment;
pub mod expert;
pub mod panel;
pub mod phases;
pub mod pooling;

pub use expert::{Expert, ExpertProfile};
pub use panel::{ExperimentOutcome, Judgement, Panel, PhaseRecord};
pub use phases::{Phase, ProtocolConfig};
