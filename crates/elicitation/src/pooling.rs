//! Opinion pooling rules.
//!
//! Combining the panel's individual beliefs into one distribution is a
//! modelling choice the bench harness ablates:
//!
//! - [`linear_pool`] — the mixture `Σ wᵢ fᵢ` (keeps every expert's tail:
//!   conservative, multimodal);
//! - [`log_pool_lognormals`] — the normalized geometric mean
//!   `∝ Π fᵢ^{wᵢ}` (rewards consensus, stays log-normal in closed form);
//! - [`median_of_modes`] — the robust scalar summary practitioners
//!   actually quote.

use depcase_distributions::{Component, DistError, Distribution, LogNormal, Mixture};
use depcase_numerics::stats::median;

/// Linear opinion pool: the weighted mixture of the experts' beliefs.
///
/// # Errors
///
/// Propagates mixture construction failures (no experts, bad weights).
///
/// # Examples
///
/// ```
/// use depcase_distributions::{Distribution, LogNormal};
/// use depcase_elicitation::pooling::linear_pool;
///
/// let beliefs = vec![
///     LogNormal::from_mode_sigma(1e-3, 0.8)?,
///     LogNormal::from_mode_sigma(3e-3, 0.8)?,
/// ];
/// let pooled = linear_pool(&beliefs, None)?;
/// let m = pooled.mean();
/// assert!(m > 0.0 && m < 0.1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn linear_pool(beliefs: &[LogNormal], weights: Option<&[f64]>) -> Result<Mixture, DistError> {
    let n = beliefs.len();
    let components: Vec<Component> = beliefs
        .iter()
        .enumerate()
        .map(|(i, b)| {
            let w = weights.map_or(1.0, |ws| ws.get(i).copied().unwrap_or(0.0));
            Component::new(w, *b)
        })
        .collect();
    let _ = n;
    Mixture::new(components)
}

/// Logarithmic opinion pool of log-normal beliefs, in closed form.
///
/// Geometric pooling of densities is precision-weighted averaging in log
/// space: with `ln Xᵢ ~ N(μᵢ, σᵢ²)` and weights `wᵢ` (normalized to sum
/// 1), the pooled belief is log-normal with
///
/// ```text
/// 1/σ*² = Σ wᵢ/σᵢ²,    μ* = σ*² · Σ wᵢ μᵢ/σᵢ²
/// ```
///
/// # Errors
///
/// [`DistError::InvalidParameter`] for an empty slice or mismatched
/// weights.
///
/// # Examples
///
/// ```
/// use depcase_distributions::LogNormal;
/// use depcase_elicitation::pooling::log_pool_lognormals;
///
/// let a = LogNormal::new(-6.0, 1.0)?;
/// let b = LogNormal::new(-4.0, 1.0)?;
/// let pooled = log_pool_lognormals(&[a, b], None)?;
/// // Equal spreads → median at the geometric midpoint:
/// assert!((pooled.mu() + 5.0).abs() < 1e-12);
/// // ...and the pooled spread is the (precision-averaged) common spread:
/// assert!((pooled.sigma() - 1.0).abs() < 1e-12);
/// # Ok::<(), depcase_distributions::DistError>(())
/// ```
pub fn log_pool_lognormals(
    beliefs: &[LogNormal],
    weights: Option<&[f64]>,
) -> Result<LogNormal, DistError> {
    if beliefs.is_empty() {
        return Err(DistError::InvalidParameter("log pool of zero beliefs".into()));
    }
    if let Some(ws) = weights {
        if ws.len() != beliefs.len() {
            return Err(DistError::InvalidParameter(format!(
                "weights ({}) and beliefs ({}) differ in length",
                ws.len(),
                beliefs.len()
            )));
        }
        if ws.iter().any(|w| !(*w >= 0.0) || !w.is_finite()) {
            return Err(DistError::InvalidParameter("weights must be non-negative finite".into()));
        }
    }
    let total_w: f64 = weights.map_or(beliefs.len() as f64, |ws| ws.iter().sum());
    if !(total_w > 0.0) {
        return Err(DistError::InvalidParameter("weights sum to zero".into()));
    }
    let mut precision = 0.0;
    let mut weighted_mu = 0.0;
    for (i, b) in beliefs.iter().enumerate() {
        let w = weights.map_or(1.0, |ws| ws[i]) / total_w;
        let prec = w / (b.sigma() * b.sigma());
        precision += prec;
        weighted_mu += prec * b.mu();
    }
    let sigma2 = 1.0 / precision;
    LogNormal::new(weighted_mu * sigma2, sigma2.sqrt())
}

/// The median of the experts' most-likely values — the robust scalar
/// summary of a panel round.
///
/// # Errors
///
/// [`DistError::InvalidParameter`] for an empty slice.
pub fn median_of_modes(beliefs: &[LogNormal]) -> Result<f64, DistError> {
    if beliefs.is_empty() {
        return Err(DistError::InvalidParameter("median of zero beliefs".into()));
    }
    let modes: Vec<f64> =
        beliefs.iter().map(|b| b.mode().expect("log-normals always have a mode")).collect();
    median(&modes).map_err(DistError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use depcase_numerics::float::approx_eq;

    fn three_beliefs() -> Vec<LogNormal> {
        vec![
            LogNormal::from_mode_sigma(1e-3, 0.8).unwrap(),
            LogNormal::from_mode_sigma(3e-3, 0.9).unwrap(),
            LogNormal::from_mode_sigma(1e-2, 1.0).unwrap(),
        ]
    }

    #[test]
    fn linear_pool_mean_is_average_of_means() {
        let bs = three_beliefs();
        let pooled = linear_pool(&bs, None).unwrap();
        let want: f64 = bs.iter().map(|b| b.mean()).sum::<f64>() / 3.0;
        assert!(approx_eq(pooled.mean(), want, 1e-12, 0.0));
    }

    #[test]
    fn linear_pool_respects_weights() {
        let bs = three_beliefs();
        let pooled = linear_pool(&bs, Some(&[1.0, 0.0, 0.0])).unwrap();
        assert!(approx_eq(pooled.mean(), bs[0].mean(), 1e-12, 0.0));
    }

    #[test]
    fn linear_pool_empty_fails() {
        assert!(linear_pool(&[], None).is_err());
    }

    #[test]
    fn log_pool_spread_is_precision_average() {
        // With normalized weights the pooled precision is the weighted
        // average of the precisions, so σ lies between the extremes
        // (unlike Bayesian updating, pooling does not stack evidence).
        let bs = three_beliefs();
        let pooled = log_pool_lognormals(&bs, None).unwrap();
        let min_sigma = bs.iter().map(|b| b.sigma()).fold(f64::INFINITY, f64::min);
        let max_sigma = bs.iter().map(|b| b.sigma()).fold(0.0, f64::max);
        assert!(pooled.sigma() >= min_sigma && pooled.sigma() <= max_sigma);
        // Exact value: 1/σ*² = mean of 1/σᵢ².
        let want =
            (bs.iter().map(|b| 1.0 / (b.sigma() * b.sigma())).sum::<f64>() / 3.0).recip().sqrt();
        assert!(approx_eq(pooled.sigma(), want, 1e-12, 0.0));
    }

    #[test]
    fn log_pool_single_is_identity() {
        let b = LogNormal::new(-5.0, 0.7).unwrap();
        let pooled = log_pool_lognormals(&[b], None).unwrap();
        assert!(approx_eq(pooled.mu(), -5.0, 1e-12, 0.0));
        assert!(approx_eq(pooled.sigma(), 0.7, 1e-12, 0.0));
    }

    #[test]
    fn log_pool_weight_validation() {
        let bs = three_beliefs();
        assert!(log_pool_lognormals(&bs, Some(&[1.0, 2.0])).is_err());
        assert!(log_pool_lognormals(&bs, Some(&[0.0, 0.0, 0.0])).is_err());
        assert!(log_pool_lognormals(&bs, Some(&[-1.0, 1.0, 1.0])).is_err());
        assert!(log_pool_lognormals(&[], None).is_err());
    }

    #[test]
    fn log_pool_precision_weighting() {
        // A sharp expert dominates a vague one.
        let sharp = LogNormal::new(-6.0, 0.2).unwrap();
        let vague = LogNormal::new(-3.0, 2.0).unwrap();
        let pooled = log_pool_lognormals(&[sharp, vague], None).unwrap();
        assert!((pooled.mu() + 6.0).abs() < 0.2, "mu = {}", pooled.mu());
    }

    #[test]
    fn linear_vs_log_pool_tail_behaviour() {
        // The linear pool keeps the pessimist's tail; the log pool
        // suppresses it — the ablation the bench quantifies.
        let bs = three_beliefs();
        let lin = linear_pool(&bs, None).unwrap();
        let log = log_pool_lognormals(&bs, None).unwrap();
        let tail_lin = lin.sf(0.05);
        let tail_log = log.sf(0.05);
        assert!(tail_lin > tail_log, "linear {tail_lin} vs log {tail_log}");
    }

    #[test]
    fn median_of_modes_robust_to_outlier() {
        let mut bs = three_beliefs();
        bs.push(LogNormal::from_mode_sigma(0.5, 1.0).unwrap()); // doubter
        let med = median_of_modes(&bs).unwrap();
        assert!(med < 0.02, "median = {med}");
        assert!(median_of_modes(&[]).is_err());
    }
}
