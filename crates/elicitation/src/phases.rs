//! The four-phase elicitation protocol of the paper's experiment.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One phase of the elicitation protocol, in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Phase 1: judgements after the 20-minute system presentation.
    Initial,
    /// Phase 2: after individually requested additional information.
    InfoRequest,
    /// Phase 3: after group presentation of *all* requested information.
    GroupInfo,
    /// Phase 4: after Delphi discussion with the other participants.
    Delphi,
}

impl Phase {
    /// All phases in protocol order.
    pub const ALL: [Phase; 4] =
        [Phase::Initial, Phase::InfoRequest, Phase::GroupInfo, Phase::Delphi];

    /// Zero-based protocol position.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Phase::Initial => 0,
            Phase::InfoRequest => 1,
            Phase::GroupInfo => 2,
            Phase::Delphi => 3,
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Phase::Initial => "initial presentation",
            Phase::InfoRequest => "individual information",
            Phase::GroupInfo => "group information",
            Phase::Delphi => "Delphi discussion",
        };
        f.write_str(s)
    }
}

/// Tunable dynamics of the protocol: how much each phase sharpens
/// individual judgements and pulls the panel toward consensus.
///
/// All gains multiply the expert's log-space spread σ (values < 1 sharpen
/// the judgement); pulls are convex-combination weights toward the group
/// statistic (0 = no movement, 1 = full adoption).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProtocolConfig {
    /// Spread multiplier when an expert receives individually requested
    /// information (phase 2).
    pub info_gain: f64,
    /// Spread multiplier when all information is disclosed to the group
    /// (phase 3).
    pub group_info_gain: f64,
    /// Spread multiplier after Delphi discussion (phase 4).
    pub delphi_gain: f64,
    /// Pull of each expert's mode toward the main-group geometric mean in
    /// phase 3.
    pub group_pull: f64,
    /// Pull toward the main-group median in the Delphi phase.
    pub delphi_pull: f64,
    /// Fraction of the pull that doubters resist (1 = immovable).
    pub doubter_stubbornness: f64,
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        Self {
            info_gain: 0.85,
            group_info_gain: 0.85,
            delphi_gain: 0.9,
            group_pull: 0.3,
            delphi_pull: 0.5,
            doubter_stubbornness: 0.9,
        }
    }
}

impl ProtocolConfig {
    /// Returns `true` when every gain/pull lies in its sane range.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        let gains_ok = [self.info_gain, self.group_info_gain, self.delphi_gain]
            .iter()
            .all(|g| g.is_finite() && *g > 0.0 && *g <= 1.5);
        let pulls_ok = [self.group_pull, self.delphi_pull, self.doubter_stubbornness]
            .iter()
            .all(|p| (0.0..=1.0).contains(p));
        gains_ok && pulls_ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_in_order() {
        let idx: Vec<usize> = Phase::ALL.iter().map(|p| p.index()).collect();
        assert_eq!(idx, vec![0, 1, 2, 3]);
        assert!(Phase::Initial < Phase::Delphi);
    }

    #[test]
    fn display_names() {
        assert_eq!(Phase::Delphi.to_string(), "Delphi discussion");
        assert!(Phase::GroupInfo.to_string().contains("group"));
    }

    #[test]
    fn default_config_is_valid() {
        assert!(ProtocolConfig::default().is_valid());
    }

    #[test]
    fn invalid_configs_detected() {
        let c = ProtocolConfig { info_gain: 0.0, ..ProtocolConfig::default() };
        assert!(!c.is_valid());
        let c = ProtocolConfig { delphi_pull: 1.5, ..ProtocolConfig::default() };
        assert!(!c.is_valid());
        let c = ProtocolConfig { doubter_stubbornness: -0.1, ..ProtocolConfig::default() };
        assert!(!c.is_valid());
    }

    #[test]
    fn serde_round_trip() {
        let c = ProtocolConfig::default();
        let json = serde_json::to_string(&c).unwrap();
        let back: ProtocolConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
