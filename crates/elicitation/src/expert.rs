//! Individual expert models.
//!
//! An expert's judgement at any phase is a log-normal belief over the
//! pfd, carried as a (log10-mode, natural-log spread σ) pair. Doubters —
//! the paper's minority who "expressed these doubts by giving the system
//! a very high failure rate" — start with a strong upward bias and
//! resist consensus pull.

use depcase_distributions::{DistError, LogNormal};
use serde::{Deserialize, Serialize};

/// Population parameters an expert is drawn from.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExpertProfile {
    /// Systematic bias of the expert's initial log10-pfd judgement
    /// relative to the briefed system's nominal log10-pfd (positive =
    /// pessimistic).
    pub log10_bias: f64,
    /// Standard deviation of the idiosyncratic noise on the initial
    /// log10 judgement.
    pub log10_noise: f64,
    /// Initial natural-log spread σ of the expert's belief.
    pub initial_sigma: f64,
    /// Whether the expert is a doubter.
    pub doubter: bool,
}

impl ExpertProfile {
    /// A mainstream assessor: unbiased, moderate spread.
    #[must_use]
    pub fn mainstream() -> Self {
        Self { log10_bias: 0.0, log10_noise: 0.35, initial_sigma: 1.0, doubter: false }
    }

    /// A doubter: judges the failure rate one-and-a-half decades worse
    /// and holds the judgement loosely but stubbornly.
    #[must_use]
    pub fn doubter() -> Self {
        Self { log10_bias: 1.5, log10_noise: 0.4, initial_sigma: 1.2, doubter: true }
    }
}

/// One expert's evolving judgement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Expert {
    id: usize,
    profile: ExpertProfile,
    /// Current most-likely value, as log10(pfd).
    log10_mode: f64,
    /// Current natural-log spread σ.
    sigma: f64,
}

impl Expert {
    /// Creates an expert with an explicit initial state.
    #[must_use]
    pub fn new(id: usize, profile: ExpertProfile, log10_mode: f64, sigma: f64) -> Self {
        Self { id, profile, log10_mode, sigma }
    }

    /// Stable identifier within the panel.
    #[must_use]
    pub fn id(&self) -> usize {
        self.id
    }

    /// The population profile the expert was drawn from.
    #[must_use]
    pub fn profile(&self) -> &ExpertProfile {
        &self.profile
    }

    /// Whether this expert is a doubter.
    #[must_use]
    pub fn is_doubter(&self) -> bool {
        self.profile.doubter
    }

    /// Current most-likely pfd (the mode of the belief).
    #[must_use]
    pub fn mode_pfd(&self) -> f64 {
        10f64.powf(self.log10_mode)
    }

    /// Current log10 of the most-likely pfd.
    #[must_use]
    pub fn log10_mode(&self) -> f64 {
        self.log10_mode
    }

    /// Current natural-log spread σ.
    #[must_use]
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// The expert's current belief as a log-normal distribution.
    ///
    /// # Errors
    ///
    /// Propagates construction failure (cannot occur for the states the
    /// panel produces; kept fallible for API honesty).
    pub fn belief(&self) -> Result<LogNormal, DistError> {
        LogNormal::from_mode_sigma(self.mode_pfd(), self.sigma)
    }

    /// Sharpens the belief by multiplying σ (gain < 1 sharpens).
    pub(crate) fn apply_gain(&mut self, gain: f64) {
        self.sigma = (self.sigma * gain).max(0.05);
    }

    /// Pulls the log10 mode toward `target_log10` with weight `pull`,
    /// attenuated by doubter stubbornness.
    pub(crate) fn apply_pull(&mut self, target_log10: f64, pull: f64, stubbornness: f64) {
        let effective = if self.profile.doubter { pull * (1.0 - stubbornness) } else { pull };
        self.log10_mode += effective * (target_log10 - self.log10_mode);
    }

    /// Drifts the mode toward the evidence (nominal value) with weight
    /// `alpha` — the effect of actually reading the requested documents.
    pub(crate) fn apply_evidence_drift(&mut self, nominal_log10: f64, alpha: f64) {
        // Doubters read the same documents but weigh them against their
        // prior doubt: half effect.
        let w = if self.profile.doubter { 0.5 * alpha } else { alpha };
        self.log10_mode += w * (nominal_log10 - self.log10_mode);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use depcase_distributions::Distribution;

    #[test]
    fn profiles_differ() {
        let m = ExpertProfile::mainstream();
        let d = ExpertProfile::doubter();
        assert!(!m.doubter && d.doubter);
        assert!(d.log10_bias > m.log10_bias);
    }

    #[test]
    fn belief_pins_mode() {
        let e = Expert::new(0, ExpertProfile::mainstream(), -2.5, 0.9);
        let b = e.belief().unwrap();
        assert!((b.mode().unwrap() - 10f64.powf(-2.5)).abs() < 1e-12);
        assert!((e.mode_pfd() - 10f64.powf(-2.5)).abs() < 1e-12);
    }

    #[test]
    fn gain_sharpens_but_floors() {
        let mut e = Expert::new(0, ExpertProfile::mainstream(), -2.5, 1.0);
        e.apply_gain(0.5);
        assert!((e.sigma() - 0.5).abs() < 1e-12);
        for _ in 0..100 {
            e.apply_gain(0.5);
        }
        assert!(e.sigma() >= 0.05);
    }

    #[test]
    fn pull_moves_mainstream_fully_and_doubters_barely() {
        let mut m = Expert::new(0, ExpertProfile::mainstream(), -2.0, 1.0);
        m.apply_pull(-3.0, 0.5, 0.9);
        assert!((m.log10_mode() + 2.5).abs() < 1e-12);
        let mut d = Expert::new(1, ExpertProfile::doubter(), -2.0, 1.0);
        d.apply_pull(-3.0, 0.5, 0.9);
        // Doubters move only 10% of the pull: -2.0 + 0.05·(-1.0) = -2.05
        assert!((d.log10_mode() + 2.05).abs() < 1e-12);
    }

    #[test]
    fn evidence_drift_half_effect_for_doubters() {
        let mut m = Expert::new(0, ExpertProfile::mainstream(), -2.0, 1.0);
        m.apply_evidence_drift(-2.5, 0.4);
        assert!((m.log10_mode() + 2.2).abs() < 1e-12);
        let mut d = Expert::new(1, ExpertProfile::doubter(), -2.0, 1.0);
        d.apply_evidence_drift(-2.5, 0.4);
        assert!((d.log10_mode() + 2.1).abs() < 1e-12);
    }
}
