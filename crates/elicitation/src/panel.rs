//! The panel: a set of experts run through the four-phase protocol.

use crate::expert::{Expert, ExpertProfile};
use crate::phases::{Phase, ProtocolConfig};
use crate::pooling;
use depcase_distributions::{DistError, Distribution, LogNormal, Mixture};
use depcase_numerics::stats::geometric_mean;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// One expert's recorded judgement in one phase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Judgement {
    /// Expert identifier.
    pub expert_id: usize,
    /// Whether the expert is a doubter.
    pub doubter: bool,
    /// Most-likely pfd (mode of the expert's log-normal belief).
    pub mode_pfd: f64,
    /// Natural-log spread σ of the belief.
    pub sigma: f64,
    /// The expert's one-sided confidence that the system is SIL2 or
    /// better, `P(pfd < 10⁻²)`.
    pub sil2_confidence: f64,
}

/// Everything recorded about one protocol phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseRecord {
    /// Which phase this is.
    pub phase: Phase,
    /// Every expert's judgement, in expert-id order.
    pub judgements: Vec<Judgement>,
}

impl PhaseRecord {
    /// Judgements of the non-doubter main group.
    #[must_use]
    pub fn main_group(&self) -> Vec<&Judgement> {
        self.judgements.iter().filter(|j| !j.doubter).collect()
    }

    /// Judgements of the doubters.
    #[must_use]
    pub fn doubters(&self) -> Vec<&Judgement> {
        self.judgements.iter().filter(|j| j.doubter).collect()
    }

    /// The main group's beliefs as log-normals.
    ///
    /// # Errors
    ///
    /// Propagates belief construction failures (cannot occur for panel
    /// states).
    pub fn main_group_beliefs(&self) -> Result<Vec<LogNormal>, DistError> {
        self.main_group().iter().map(|j| LogNormal::from_mode_sigma(j.mode_pfd, j.sigma)).collect()
    }

    /// Linear pool of the main group's beliefs.
    ///
    /// # Errors
    ///
    /// Propagates pooling failures.
    pub fn pooled_main_group(&self) -> Result<Mixture, DistError> {
        pooling::linear_pool(&self.main_group_beliefs()?, None)
    }

    /// The main group's pooled one-sided confidence in SIL2-or-better,
    /// `P(pfd < 10⁻²)` under the linear pool.
    ///
    /// Returns 0 when the main group is empty.
    #[must_use]
    pub fn main_group_sil2_confidence(&self) -> f64 {
        self.pooled_main_group().map_or(0.0, |m| m.cdf(1e-2))
    }

    /// The main group's pooled mean pfd under the linear pool.
    ///
    /// Returns NaN when the main group is empty.
    #[must_use]
    pub fn main_group_pooled_mean(&self) -> f64 {
        self.pooled_main_group().map_or(f64::NAN, |m| {
            depcase_distributions::moments::numeric_mean(&m, 1e-10).unwrap_or(f64::NAN)
        })
    }
}

/// The full outcome of a panel run: one record per phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentOutcome {
    records: Vec<PhaseRecord>,
    doubters: usize,
}

impl ExperimentOutcome {
    /// The record for a given phase.
    #[must_use]
    pub fn phase(&self, phase: Phase) -> &PhaseRecord {
        &self.records[phase.index()]
    }

    /// All phase records in protocol order.
    #[must_use]
    pub fn phases(&self) -> &[PhaseRecord] {
        &self.records
    }

    /// The final (Delphi) phase record.
    #[must_use]
    pub fn final_phase(&self) -> &PhaseRecord {
        self.records.last().expect("protocol has four phases")
    }

    /// Number of doubters on the panel.
    #[must_use]
    pub fn doubter_count(&self) -> usize {
        self.doubters
    }
}

/// A configured expert panel, ready to run.
///
/// # Examples
///
/// ```
/// use depcase_elicitation::{Panel, ExpertProfile, ProtocolConfig};
///
/// let panel = Panel::builder(0.003)
///     .experts(9, ExpertProfile::mainstream())
///     .experts(3, ExpertProfile::doubter())
///     .seed(7)
///     .build();
/// let outcome = panel.run();
/// assert_eq!(outcome.final_phase().judgements.len(), 12);
/// ```
#[derive(Debug, Clone)]
pub struct Panel {
    nominal_pfd: f64,
    profiles: Vec<ExpertProfile>,
    config: ProtocolConfig,
    seed: u64,
    /// How strongly individually requested information drags judgements
    /// toward the nominal value in phase 2.
    evidence_drift: f64,
}

impl Panel {
    /// Starts building a panel judging a system whose briefed/nominal pfd
    /// is `nominal_pfd`.
    #[must_use]
    pub fn builder(nominal_pfd: f64) -> PanelBuilder {
        PanelBuilder {
            nominal_pfd,
            profiles: Vec::new(),
            config: ProtocolConfig::default(),
            seed: 0,
            evidence_drift: 0.3,
        }
    }

    /// Runs the four-phase protocol, deterministically for the seed.
    #[must_use]
    pub fn run(&self) -> ExperimentOutcome {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let nominal_log10 = self.nominal_pfd.log10();

        // Phase 1: independent initial judgements.
        let mut experts: Vec<Expert> = self
            .profiles
            .iter()
            .enumerate()
            .map(|(id, prof)| {
                let noise =
                    depcase_distributions::sampler::standard_normal(&mut rng) * prof.log10_noise;
                let log10_mode = nominal_log10 + prof.log10_bias + noise;
                Expert::new(id, *prof, log10_mode, prof.initial_sigma)
            })
            .collect();

        let mut records = Vec::with_capacity(4);
        records.push(record_phase(Phase::Initial, &experts));

        // Phase 2: individual information requests — evidence drift plus
        // individual sharpening.
        for e in &mut experts {
            e.apply_evidence_drift(nominal_log10, self.evidence_drift);
            e.apply_gain(self.config.info_gain);
        }
        records.push(record_phase(Phase::InfoRequest, &experts));

        // Phase 3: group disclosure of *all* requested information —
        // every expert now reads the evidence the others asked for (a
        // second drift toward the nominal value), then pulls toward the
        // main group's geometric-mean judgement, further sharpening.
        let group_target = main_group_log10_geomean(&experts);
        for e in &mut experts {
            e.apply_evidence_drift(nominal_log10, self.evidence_drift);
            e.apply_pull(group_target, self.config.group_pull, self.config.doubter_stubbornness);
            e.apply_gain(self.config.group_info_gain);
        }
        records.push(record_phase(Phase::GroupInfo, &experts));

        // Phase 4: Delphi — pull toward the main-group median.
        let median_target = main_group_log10_median(&experts);
        for e in &mut experts {
            e.apply_pull(median_target, self.config.delphi_pull, self.config.doubter_stubbornness);
            e.apply_gain(self.config.delphi_gain);
        }
        records.push(record_phase(Phase::Delphi, &experts));

        ExperimentOutcome { records, doubters: experts.iter().filter(|e| e.is_doubter()).count() }
    }
}

/// Builder for [`Panel`].
#[derive(Debug, Clone)]
pub struct PanelBuilder {
    nominal_pfd: f64,
    profiles: Vec<ExpertProfile>,
    config: ProtocolConfig,
    seed: u64,
    evidence_drift: f64,
}

impl PanelBuilder {
    /// Adds `count` experts drawn from `profile`.
    #[must_use]
    pub fn experts(mut self, count: usize, profile: ExpertProfile) -> Self {
        self.profiles.extend(std::iter::repeat_n(profile, count));
        self
    }

    /// Overrides the protocol dynamics.
    #[must_use]
    pub fn config(mut self, config: ProtocolConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the RNG seed (the run is fully deterministic given it).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the phase-2 evidence drift weight.
    #[must_use]
    pub fn evidence_drift(mut self, alpha: f64) -> Self {
        self.evidence_drift = alpha;
        self
    }

    /// Finalizes the panel.
    ///
    /// # Panics
    ///
    /// Panics if no experts were added or the protocol config is invalid
    /// — both are programming errors in the harness, not runtime inputs.
    #[must_use]
    pub fn build(self) -> Panel {
        assert!(!self.profiles.is_empty(), "a panel needs at least one expert");
        assert!(self.config.is_valid(), "invalid protocol configuration");
        Panel {
            nominal_pfd: self.nominal_pfd,
            profiles: self.profiles,
            config: self.config,
            seed: self.seed,
            evidence_drift: self.evidence_drift,
        }
    }
}

fn record_phase(phase: Phase, experts: &[Expert]) -> PhaseRecord {
    let judgements = experts
        .iter()
        .map(|e| {
            let belief = e.belief().expect("panel states are valid");
            Judgement {
                expert_id: e.id(),
                doubter: e.is_doubter(),
                mode_pfd: e.mode_pfd(),
                sigma: e.sigma(),
                sil2_confidence: belief.cdf(1e-2),
            }
        })
        .collect();
    PhaseRecord { phase, judgements }
}

fn main_group_log10_geomean(experts: &[Expert]) -> f64 {
    let modes: Vec<f64> =
        experts.iter().filter(|e| !e.is_doubter()).map(Expert::mode_pfd).collect();
    if modes.is_empty() {
        return experts.iter().map(Expert::log10_mode).sum::<f64>() / experts.len() as f64;
    }
    geometric_mean(&modes).expect("modes are positive").log10()
}

fn main_group_log10_median(experts: &[Expert]) -> f64 {
    let mut log_modes: Vec<f64> =
        experts.iter().filter(|e| !e.is_doubter()).map(Expert::log10_mode).collect();
    if log_modes.is_empty() {
        log_modes = experts.iter().map(Expert::log10_mode).collect();
    }
    depcase_numerics::stats::median(&log_modes).expect("nonempty")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_like_panel(seed: u64) -> Panel {
        Panel::builder(0.003)
            .experts(9, ExpertProfile::mainstream())
            .experts(3, ExpertProfile::doubter())
            .seed(seed)
            .build()
    }

    #[test]
    fn run_is_deterministic_under_seed() {
        let a = paper_like_panel(5).run();
        let b = paper_like_panel(5).run();
        assert_eq!(a, b);
        let c = paper_like_panel(6).run();
        assert_ne!(a, c);
    }

    #[test]
    fn four_phases_recorded_in_order() {
        let out = paper_like_panel(1).run();
        let phases: Vec<Phase> = out.phases().iter().map(|r| r.phase).collect();
        assert_eq!(phases, Phase::ALL.to_vec());
        assert_eq!(out.final_phase().phase, Phase::Delphi);
    }

    #[test]
    fn doubters_stay_pessimistic() {
        let out = paper_like_panel(2).run();
        let last = out.final_phase();
        let main_max =
            last.main_group().iter().map(|j| j.mode_pfd).fold(f64::NEG_INFINITY, f64::max);
        for d in last.doubters() {
            assert!(
                d.mode_pfd > main_max,
                "doubter {} at {} not above main group max {main_max}",
                d.expert_id,
                d.mode_pfd
            );
        }
    }

    #[test]
    fn confidence_rises_through_phases() {
        let out = paper_like_panel(3).run();
        let first = out.phase(Phase::Initial).main_group_sil2_confidence();
        let last = out.final_phase().main_group_sil2_confidence();
        assert!(last > first, "confidence {first} → {last} should rise");
    }

    #[test]
    fn spread_shrinks_through_phases() {
        let out = paper_like_panel(4).run();
        let mean_sigma = |r: &PhaseRecord| {
            r.judgements.iter().map(|j| j.sigma).sum::<f64>() / r.judgements.len() as f64
        };
        let first = mean_sigma(out.phase(Phase::Initial));
        let last = mean_sigma(out.final_phase());
        assert!(last < first);
    }

    #[test]
    fn delphi_tightens_main_group_dispersion() {
        let out = paper_like_panel(8).run();
        let disp = |r: &PhaseRecord| {
            let logs: Vec<f64> = r.main_group().iter().map(|j| j.mode_pfd.log10()).collect();
            let mean = logs.iter().sum::<f64>() / logs.len() as f64;
            logs.iter().map(|l| (l - mean).powi(2)).sum::<f64>() / logs.len() as f64
        };
        assert!(disp(out.final_phase()) < disp(out.phase(Phase::Initial)));
    }

    #[test]
    fn pooled_outputs_are_finite() {
        let out = paper_like_panel(9).run();
        let last = out.final_phase();
        let mean = last.main_group_pooled_mean();
        assert!(mean.is_finite() && mean > 0.0);
        let conf = last.main_group_sil2_confidence();
        assert!((0.0..=1.0).contains(&conf));
    }

    #[test]
    #[should_panic(expected = "at least one expert")]
    fn empty_panel_panics() {
        let _ = Panel::builder(0.003).build();
    }

    #[test]
    fn all_doubters_panel_still_runs() {
        let out = Panel::builder(0.003).experts(3, ExpertProfile::doubter()).seed(1).build().run();
        assert_eq!(out.doubter_count(), 3);
        assert_eq!(out.final_phase().main_group().len(), 0);
        assert_eq!(out.final_phase().main_group_sil2_confidence(), 0.0);
    }

    #[test]
    fn serde_round_trip() {
        let out = paper_like_panel(10).run();
        let json = serde_json::to_string(&out).unwrap();
        let back: ExperimentOutcome = serde_json::from_str(&json).unwrap();
        assert_eq!(out, back);
    }
}
