//! SIL-membership confidence for belief distributions — the machinery of
//! the paper's Figures 3 and 4.
//!
//! "Confidence in SIL n can be expressed as the probability that the
//! judged pfd (λ) is within the upper bound of the pfd for that SIL
//! band": `P(λ < 10⁻ⁿ)`.

use crate::band::{sil_of_value, DemandMode, SilLevel};
use depcase_distributions::Distribution;
use std::fmt;

/// The probability a belief distribution assigns to each SIL band (plus
/// "no SIL" mass above the SIL1 upper edge and "beyond SIL4" mass below
/// the SIL4 lower edge, which the standard folds into SIL4).
#[derive(Debug, Clone, PartialEq)]
pub struct BandProbabilities {
    mode: DemandMode,
    /// `per_level[i]` is the probability of landing in the `SIL i+1` band
    /// (with the SIL4 entry including everything better).
    per_level: [f64; 4],
    /// Mass at or above the SIL1 upper edge — the system achieves no SIL.
    none: f64,
}

impl BandProbabilities {
    /// Probability the failure measure falls in the given level's band
    /// (SIL4 includes everything better than its lower edge).
    #[must_use]
    pub fn in_band(&self, level: SilLevel) -> f64 {
        self.per_level[usize::from(level.index()) - 1]
    }

    /// Probability of achieving `level` **or better** — the paper's
    /// one-sided membership confidence `P(λ < 10⁻ⁿ)`.
    #[must_use]
    pub fn at_least(&self, level: SilLevel) -> f64 {
        self.per_level[usize::from(level.index()) - 1..].iter().sum()
    }

    /// Probability of achieving no SIL at all.
    #[must_use]
    pub fn none(&self) -> f64 {
        self.none
    }

    /// The operating mode the probabilities were computed for.
    #[must_use]
    pub fn mode(&self) -> DemandMode {
        self.mode
    }

    /// The most probable single band, if any band dominates "no SIL".
    ///
    /// Total on all inputs: a NaN band probability (conceivable when the
    /// underlying belief's CDF is evaluated outside its numerically
    /// stable range) is ordered below every real probability by
    /// [`f64::total_cmp`] rather than panicking, and the `>=` comparison
    /// against the "no SIL" mass then rejects it.
    #[must_use]
    pub fn most_probable(&self) -> Option<SilLevel> {
        let (best_idx, best_p) = self.per_level.iter().enumerate().max_by(|a, b| {
            // NaN-aware: order NaN below every number so it can
            // never be selected over a real probability.
            match (a.1.is_nan(), b.1.is_nan()) {
                (true, false) => std::cmp::Ordering::Less,
                (false, true) => std::cmp::Ordering::Greater,
                _ => a.1.total_cmp(b.1),
            }
        })?;
        if *best_p >= self.none {
            SilLevel::from_index(best_idx as u8 + 1)
        } else {
            None
        }
    }
}

impl fmt::Display for BandProbabilities {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "P[none] = {:.4}, P[SIL1] = {:.4}, P[SIL2] = {:.4}, P[SIL3] = {:.4}, P[SIL4+] = {:.4}",
            self.none, self.per_level[0], self.per_level[1], self.per_level[2], self.per_level[3]
        )
    }
}

/// A SIL assessment of a belief distribution over the relevant failure
/// measure (pfd for low demand, pfh for high demand).
///
/// Borrowing the distribution keeps the assessment cheap to construct in
/// sweeps (Figure 3 evaluates hundreds of judgements).
#[derive(Debug, Clone, Copy)]
pub struct SilAssessment<'d, D: ?Sized> {
    belief: &'d D,
    mode: DemandMode,
}

impl<'d, D: Distribution + ?Sized> SilAssessment<'d, D> {
    /// Wraps a belief distribution for SIL assessment in the given mode.
    pub fn new(belief: &'d D, mode: DemandMode) -> Self {
        Self { belief, mode }
    }

    /// One-sided confidence of achieving `level` or better:
    /// `P(λ < upper edge of level's band)` — the paper's Equation in
    /// Section 2 and the x-axis of Figure 3.
    #[must_use]
    pub fn confidence_at_least(&self, level: SilLevel) -> f64 {
        self.belief.cdf(level.band(self.mode).upper)
    }

    /// One-sided membership confidences for every level in one batched
    /// CDF evaluation: entry `i` is `P(λ < upper edge of SIL i+1)`.
    ///
    /// Equivalent to calling [`SilAssessment::confidence_at_least`] per
    /// level, but routed through [`Distribution::cdf_many`] so sweeps
    /// pay the dynamic-dispatch and setup cost once per belief instead
    /// of once per level.
    #[must_use]
    pub fn confidences(&self) -> [f64; 4] {
        let uppers: Vec<f64> = SilLevel::ALL.iter().map(|l| l.band(self.mode).upper).collect();
        let cdfs = self.belief.cdf_many(&uppers);
        let mut out = [0.0; 4];
        for (level, c) in SilLevel::ALL.iter().zip(cdfs) {
            out[usize::from(level.index()) - 1] = c;
        }
        out
    }

    /// Full band-probability vector (Figure 4's content).
    #[must_use]
    pub fn band_probabilities(&self) -> BandProbabilities {
        let mut per_level = [0.0; 4];
        for level in SilLevel::ALL {
            let band = level.band(self.mode);
            per_level[usize::from(level.index()) - 1] =
                self.belief.interval_prob(band.lower, band.upper);
        }
        // Fold "better than SIL4 lower edge" into SIL4, as the standard caps
        // claims at SIL 4.
        let sil4_lower = SilLevel::Sil4.band(self.mode).lower;
        per_level[3] += self.belief.cdf(sil4_lower);
        let none = self.belief.sf(SilLevel::Sil1.band(self.mode).upper);
        BandProbabilities { mode: self.mode, per_level, none }
    }

    /// SIL classification of the belief's *mean* — what a regulator
    /// applying the "integrate the pdf to arrive at the mean" reading of
    /// the standard would award.
    #[must_use]
    pub fn sil_of_mean(&self) -> Option<SilLevel> {
        sil_of_value(self.belief.mean(), self.mode)
    }

    /// SIL classification of the belief's *mode* (most likely value) —
    /// what a naive "most likely" reading would award.
    #[must_use]
    pub fn sil_of_mode(&self) -> Option<SilLevel> {
        self.belief.mode().and_then(|m| sil_of_value(m, self.mode))
    }

    /// The strongest level claimable at the given one-sided confidence:
    /// the largest `n` with `P(λ < 10⁻ⁿ) ≥ confidence`.
    ///
    /// Returns `None` when not even SIL 1 reaches the confidence target.
    #[must_use]
    pub fn claimable_at_confidence(&self, confidence: f64) -> Option<SilLevel> {
        let mut best = None;
        for level in SilLevel::ALL {
            if self.confidence_at_least(level) >= confidence {
                best = Some(level);
            }
        }
        best
    }

    /// The divergence (in whole SIL levels) between the mode's band and
    /// the mean's band — positive when uncertainty has dragged the mean
    /// into a worse band than the most likely value, the phenomenon
    /// behind the paper's Figure 3 and the assessors' "call it one SIL
    /// lower" heuristic.
    #[must_use]
    pub fn mode_mean_divergence(&self) -> Option<i8> {
        let mode_sil = self.sil_of_mode()?;
        let mean_sil = self.sil_of_mean()?;
        Some(mode_sil.index() as i8 - mean_sil.index() as i8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use depcase_distributions::{LogNormal, PointMass, TwoPoint};

    fn widest_paper_judgement() -> LogNormal {
        LogNormal::from_mode_mean(0.003, 0.01).unwrap()
    }

    #[test]
    fn paper_figure4_checkpoints() {
        // "the system has about a 67% chance of being in SIL2 or higher
        // and a 99.9% chance of being SIL1 or higher"
        let belief = widest_paper_judgement();
        let a = SilAssessment::new(&belief, DemandMode::LowDemand);
        let sil2 = a.confidence_at_least(SilLevel::Sil2);
        assert!((sil2 - 0.67).abs() < 0.02, "SIL2 confidence {sil2}");
        let sil1 = a.confidence_at_least(SilLevel::Sil1);
        assert!(sil1 > 0.995, "SIL1 confidence {sil1}");
    }

    #[test]
    fn mean_lands_one_band_below_mode() {
        // The paper: mode mid-SIL2, mean 0.01 → SIL1 band.
        let belief = widest_paper_judgement();
        let a = SilAssessment::new(&belief, DemandMode::LowDemand);
        assert_eq!(a.sil_of_mode(), Some(SilLevel::Sil2));
        assert_eq!(a.sil_of_mean(), Some(SilLevel::Sil1));
        assert_eq!(a.mode_mean_divergence(), Some(1));
    }

    #[test]
    fn narrow_judgement_keeps_mean_in_band() {
        // Figure 1's dashed curve: mean 0.004 stays in SIL2.
        let belief = LogNormal::from_mode_mean(0.003, 0.004).unwrap();
        let a = SilAssessment::new(&belief, DemandMode::LowDemand);
        assert_eq!(a.sil_of_mean(), Some(SilLevel::Sil2));
        assert_eq!(a.mode_mean_divergence(), Some(0));
    }

    #[test]
    fn band_probabilities_sum_to_one() {
        let belief = widest_paper_judgement();
        let bp = SilAssessment::new(&belief, DemandMode::LowDemand).band_probabilities();
        let total: f64 = SilLevel::ALL.iter().map(|&l| bp.in_band(l)).sum::<f64>() + bp.none();
        assert!((total - 1.0).abs() < 1e-9, "total = {total}");
    }

    #[test]
    fn at_least_is_monotone_decreasing_in_level() {
        let belief = widest_paper_judgement();
        let bp = SilAssessment::new(&belief, DemandMode::LowDemand).band_probabilities();
        let mut prev = 1.0;
        for level in SilLevel::ALL {
            let p = bp.at_least(level);
            assert!(p <= prev + 1e-12, "{level}: {p} > {prev}");
            prev = p;
        }
    }

    #[test]
    fn at_least_matches_cdf_confidence() {
        let belief = widest_paper_judgement();
        let a = SilAssessment::new(&belief, DemandMode::LowDemand);
        let bp = a.band_probabilities();
        for level in SilLevel::ALL {
            let direct = a.confidence_at_least(level);
            let via_bands = bp.at_least(level);
            assert!((direct - via_bands).abs() < 1e-9, "{level}: {direct} vs {via_bands}");
        }
    }

    #[test]
    fn most_probable_band() {
        let belief = widest_paper_judgement();
        let bp = SilAssessment::new(&belief, DemandMode::LowDemand).band_probabilities();
        assert_eq!(bp.most_probable(), Some(SilLevel::Sil2));
    }

    #[test]
    fn most_probable_is_total_on_nan_probabilities() {
        // Regression: a NaN band probability used to panic through
        // `partial_cmp(..).expect(..)`. It must instead lose to every
        // real probability.
        let bp = BandProbabilities {
            mode: DemandMode::LowDemand,
            per_level: [0.1, f64::NAN, 0.5, 0.2],
            none: 0.2,
        };
        assert_eq!(bp.most_probable(), Some(SilLevel::Sil3));
        // All-NaN bands: nothing dominates, so no band is reported.
        let bp =
            BandProbabilities { mode: DemandMode::LowDemand, per_level: [f64::NAN; 4], none: 0.0 };
        assert_eq!(bp.most_probable(), None);
    }

    #[test]
    fn batched_confidences_match_pointwise() {
        let belief = widest_paper_judgement();
        let a = SilAssessment::new(&belief, DemandMode::LowDemand);
        let batch = a.confidences();
        for level in SilLevel::ALL {
            let direct = a.confidence_at_least(level);
            let b = batch[usize::from(level.index()) - 1];
            assert_eq!(b.to_bits(), direct.to_bits(), "{level}: {b} vs {direct}");
        }
    }

    #[test]
    fn claimable_at_confidence_thresholds() {
        let belief = widest_paper_judgement();
        let a = SilAssessment::new(&belief, DemandMode::LowDemand);
        // 67% confidence buys SIL2; 99% only SIL1; 99.99% nothing.
        assert_eq!(a.claimable_at_confidence(0.60), Some(SilLevel::Sil2));
        assert_eq!(a.claimable_at_confidence(0.99), Some(SilLevel::Sil1));
        assert_eq!(a.claimable_at_confidence(0.99999), None);
    }

    #[test]
    fn point_mass_degenerate_assessment() {
        let belief = PointMass::new(0.003).unwrap();
        let a = SilAssessment::new(&belief, DemandMode::LowDemand);
        assert_eq!(a.sil_of_mean(), Some(SilLevel::Sil2));
        assert_eq!(a.confidence_at_least(SilLevel::Sil2), 1.0);
        assert_eq!(a.confidence_at_least(SilLevel::Sil3), 0.0);
        let bp = a.band_probabilities();
        assert_eq!(bp.in_band(SilLevel::Sil2), 1.0);
        assert_eq!(bp.none(), 0.0);
    }

    #[test]
    fn two_point_worst_case_assessment() {
        // Mass 0.999 at 1e-4 (SIL3 band edge → SIL3) and 0.001 at 1.
        let w = TwoPoint::worst_case(1e-4, 0.001).unwrap();
        let a = SilAssessment::new(&w, DemandMode::LowDemand);
        let bp = a.band_probabilities();
        assert!((bp.at_least(SilLevel::Sil3) - 0.999).abs() < 1e-12);
        assert!((bp.none() - 0.001).abs() < 1e-12);
    }

    #[test]
    fn high_demand_mode_uses_shifted_bands() {
        // A rate of 3e-7/h is SIL2 in high-demand mode.
        let belief = PointMass::new(3e-7).unwrap();
        let a = SilAssessment::new(&belief, DemandMode::HighDemand);
        assert_eq!(a.sil_of_mean(), Some(SilLevel::Sil2));
    }

    #[test]
    fn display_band_probabilities() {
        let belief = widest_paper_judgement();
        let bp = SilAssessment::new(&belief, DemandMode::LowDemand).band_probabilities();
        let s = bp.to_string();
        assert!(s.contains("SIL2"), "{s}");
    }

    #[test]
    fn works_through_trait_object() {
        let belief: Box<dyn depcase_distributions::Distribution> =
            Box::new(widest_paper_judgement());
        let a = SilAssessment::new(belief.as_ref(), DemandMode::LowDemand);
        assert_eq!(a.sil_of_mean(), Some(SilLevel::Sil1));
    }
}
