//! SIL band definitions — the paper's Table 1, from IEC 61508.
//!
//! A SIL `n` safety function in low-demand mode has average probability
//! of failure on demand in `[10^{−(n+1)}, 10^{−n})`; in high-demand /
//! continuous mode the same exponents apply to the probability of
//! dangerous failure per hour shifted four decades down
//! (`[10^{−(n+5)}, 10^{−(n+4)})`).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A safety integrity level, SIL 1 (least critical) to SIL 4 (most).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SilLevel {
    /// SIL 1: low-demand pfd in `[10⁻², 10⁻¹)`.
    Sil1,
    /// SIL 2: low-demand pfd in `[10⁻³, 10⁻²)`.
    Sil2,
    /// SIL 3: low-demand pfd in `[10⁻⁴, 10⁻³)`.
    Sil3,
    /// SIL 4: low-demand pfd in `[10⁻⁵, 10⁻⁴)`.
    Sil4,
}

impl SilLevel {
    /// All levels, ascending criticality.
    pub const ALL: [SilLevel; 4] = [SilLevel::Sil1, SilLevel::Sil2, SilLevel::Sil3, SilLevel::Sil4];

    /// The numeric level `n ∈ 1..=4`.
    #[must_use]
    pub fn index(self) -> u8 {
        match self {
            SilLevel::Sil1 => 1,
            SilLevel::Sil2 => 2,
            SilLevel::Sil3 => 3,
            SilLevel::Sil4 => 4,
        }
    }

    /// Builds a level from its numeric index.
    ///
    /// Returns `None` outside `1..=4`.
    #[must_use]
    pub fn from_index(n: u8) -> Option<Self> {
        match n {
            1 => Some(SilLevel::Sil1),
            2 => Some(SilLevel::Sil2),
            3 => Some(SilLevel::Sil3),
            4 => Some(SilLevel::Sil4),
            _ => None,
        }
    }

    /// The next more critical level (`SIL n+1`), if any.
    #[must_use]
    pub fn stronger(self) -> Option<Self> {
        Self::from_index(self.index() + 1)
    }

    /// The next less critical level (`SIL n−1`), if any.
    #[must_use]
    pub fn weaker(self) -> Option<Self> {
        Self::from_index(self.index().wrapping_sub(1))
    }

    /// The band of failure measures for this level in the given mode.
    #[must_use]
    pub fn band(self, mode: DemandMode) -> SilBand {
        let n = i32::from(self.index());
        let shift = match mode {
            DemandMode::LowDemand => 0,
            DemandMode::HighDemand => 4,
        };
        SilBand {
            level: self,
            mode,
            lower: 10f64.powi(-(n + 1 + shift)),
            upper: 10f64.powi(-(n + shift)),
        }
    }
}

impl fmt::Display for SilLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SIL{}", self.index())
    }
}

/// Operating mode of a safety function, selecting which failure measure a
/// SIL band constrains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DemandMode {
    /// Low-demand mode: bands constrain the average probability of
    /// failure on demand (pfd).
    LowDemand,
    /// High-demand / continuous mode: bands constrain the probability of
    /// dangerous failure per hour (pfh).
    HighDemand,
}

impl fmt::Display for DemandMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DemandMode::LowDemand => write!(f, "low demand (pfd)"),
            DemandMode::HighDemand => write!(f, "high demand (pfh)"),
        }
    }
}

/// A half-open band `[lower, upper)` of the failure measure for one SIL
/// level in one mode — one row of the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SilBand {
    /// The level this band belongs to.
    pub level: SilLevel,
    /// The operating mode.
    pub mode: DemandMode,
    /// Inclusive lower edge, `10^{−(n+1)}` (low demand).
    pub lower: f64,
    /// Exclusive upper edge, `10^{−n}` (low demand).
    pub upper: f64,
}

impl SilBand {
    /// Returns `true` when the failure measure falls in this band.
    #[must_use]
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lower && value < self.upper
    }

    /// The geometric midpoint of the band — e.g. 0.003 for SIL2 low
    /// demand, the "middle of the SIL2 range" mode the paper pins its
    /// judgements at.
    #[must_use]
    pub fn geometric_mid(&self) -> f64 {
        (self.lower * self.upper).sqrt()
    }
}

impl fmt::Display for SilBand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}: [{:.0e}, {:.0e})", self.level, self.mode, self.lower, self.upper)
    }
}

/// Classifies a failure measure into a SIL level, if it falls in any band.
///
/// Values better (smaller) than the SIL4 lower edge still return
/// `Some(Sil4)` — the standard caps claims at SIL 4. Values at or above
/// the SIL1 upper edge return `None` (no SIL achieved).
///
/// # Examples
///
/// ```
/// use depcase_sil::band::{sil_of_value, DemandMode, SilLevel};
///
/// assert_eq!(sil_of_value(0.003, DemandMode::LowDemand), Some(SilLevel::Sil2));
/// assert_eq!(sil_of_value(0.5, DemandMode::LowDemand), None);
/// assert_eq!(sil_of_value(1e-9, DemandMode::LowDemand), Some(SilLevel::Sil4));
/// ```
#[must_use]
pub fn sil_of_value(value: f64, mode: DemandMode) -> Option<SilLevel> {
    if !value.is_finite() || value < 0.0 {
        return None;
    }
    // Band edges are powers of ten and the bands are half-open; a value
    // that lands within rounding distance of an edge (e.g. a mean of
    // 0.00999999999999995 computed for "0.01") is *at* the edge and
    // belongs to the band above, matching the paper's reading that a
    // mean of 0.01 sits in the SIL1 band.
    let value = if value > 0.0 {
        let l10 = value.log10();
        let r = l10.round();
        if (l10 - r).abs() < 1e-9 {
            10f64.powi(r as i32)
        } else {
            value
        }
    } else {
        value
    };
    for level in SilLevel::ALL.iter().rev() {
        let band = level.band(mode);
        if band.contains(value) {
            return Some(*level);
        }
    }
    // Better than every band's lower edge → capped at SIL 4.
    if value < SilLevel::Sil4.band(mode).lower {
        return Some(SilLevel::Sil4);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_low_demand_bands() {
        // The paper's Table 1: SIL n pfd band is [10^-(n+1), 10^-n).
        let b2 = SilLevel::Sil2.band(DemandMode::LowDemand);
        assert_eq!(b2.lower, 1e-3);
        assert_eq!(b2.upper, 1e-2);
        let b4 = SilLevel::Sil4.band(DemandMode::LowDemand);
        assert_eq!(b4.lower, 1e-5);
        assert_eq!(b4.upper, 1e-4);
    }

    #[test]
    fn high_demand_bands_shift_four_decades() {
        let b1 = SilLevel::Sil1.band(DemandMode::HighDemand);
        assert_eq!(b1.lower, 1e-6);
        assert_eq!(b1.upper, 1e-5);
        let b4 = SilLevel::Sil4.band(DemandMode::HighDemand);
        assert_eq!(b4.lower, 1e-9);
        assert_eq!(b4.upper, 1e-8);
    }

    #[test]
    fn bands_are_contiguous_and_ordered() {
        for mode in [DemandMode::LowDemand, DemandMode::HighDemand] {
            for w in SilLevel::ALL.windows(2) {
                let lower_level = w[0].band(mode);
                let higher_level = w[1].band(mode);
                assert_eq!(higher_level.upper, lower_level.lower, "{mode}: contiguity");
            }
        }
    }

    #[test]
    fn band_contains_half_open() {
        let b = SilLevel::Sil2.band(DemandMode::LowDemand);
        assert!(b.contains(1e-3));
        assert!(b.contains(0.0099));
        assert!(!b.contains(1e-2));
        assert!(!b.contains(9.99e-4));
    }

    #[test]
    fn geometric_mid_is_papers_0003() {
        let mid = SilLevel::Sil2.band(DemandMode::LowDemand).geometric_mid();
        // sqrt(1e-3 · 1e-2) = 10^{-2.5} ≈ 0.00316 — the paper rounds to 0.003.
        assert!((mid - 0.00316).abs() < 1e-4);
    }

    #[test]
    fn classification() {
        assert_eq!(sil_of_value(0.05, DemandMode::LowDemand), Some(SilLevel::Sil1));
        assert_eq!(sil_of_value(0.003, DemandMode::LowDemand), Some(SilLevel::Sil2));
        assert_eq!(sil_of_value(5e-4, DemandMode::LowDemand), Some(SilLevel::Sil3));
        assert_eq!(sil_of_value(5e-5, DemandMode::LowDemand), Some(SilLevel::Sil4));
        assert_eq!(sil_of_value(1e-7, DemandMode::LowDemand), Some(SilLevel::Sil4));
        assert_eq!(sil_of_value(0.2, DemandMode::LowDemand), None);
        assert_eq!(sil_of_value(f64::NAN, DemandMode::LowDemand), None);
        assert_eq!(sil_of_value(-1.0, DemandMode::LowDemand), None);
    }

    #[test]
    fn classification_boundary_values() {
        // Exactly on a band edge belongs to the band above (half-open).
        assert_eq!(sil_of_value(1e-2, DemandMode::LowDemand), Some(SilLevel::Sil1));
        assert_eq!(sil_of_value(1e-3, DemandMode::LowDemand), Some(SilLevel::Sil2));
        assert_eq!(sil_of_value(1e-1, DemandMode::LowDemand), None);
    }

    #[test]
    fn level_ordering_and_navigation() {
        assert!(SilLevel::Sil1 < SilLevel::Sil4);
        assert_eq!(SilLevel::Sil2.stronger(), Some(SilLevel::Sil3));
        assert_eq!(SilLevel::Sil4.stronger(), None);
        assert_eq!(SilLevel::Sil2.weaker(), Some(SilLevel::Sil1));
        assert_eq!(SilLevel::Sil1.weaker(), None);
    }

    #[test]
    fn index_round_trip() {
        for l in SilLevel::ALL {
            assert_eq!(SilLevel::from_index(l.index()), Some(l));
        }
        assert_eq!(SilLevel::from_index(0), None);
        assert_eq!(SilLevel::from_index(5), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SilLevel::Sil3.to_string(), "SIL3");
        assert!(DemandMode::LowDemand.to_string().contains("pfd"));
        let b = SilLevel::Sil2.band(DemandMode::LowDemand);
        let s = b.to_string();
        assert!(s.contains("SIL2") && s.contains("1e-3"), "{s}");
    }

    #[test]
    fn serde_round_trip() {
        let b = SilLevel::Sil3.band(DemandMode::HighDemand);
        let json = serde_json::to_string(&b).unwrap();
        let back: SilBand = serde_json::from_str(&json).unwrap();
        assert_eq!(b, back);
    }
}
