//! IEC 61508 safety integrity levels: bands, membership confidence, and
//! standards rules.
//!
//! Section 2 of the DSN'07 paper uses SIL classification as the running
//! example of the interplay between a judged failure measure and the
//! confidence held in the judgement. This crate encodes:
//!
//! - [`SilLevel`] / [`band`] — the Table 1 band definitions for
//!   low-demand (pfd) and high-demand (probability of dangerous failure
//!   per hour) modes;
//! - [`membership`] — `P(λ < 10⁻ⁿ)`-style one-sided membership
//!   confidence and full band-probability vectors for any belief
//!   distribution (Figures 3 and 4);
//! - [`standards`] — the standard's scattered confidence requirements
//!   (70 % for hardware failure data, 95/99/99.9 % for effectiveness and
//!   operating experience) and the paper's proposed claim-discounting
//!   rules (Section 4.3).
//!
//! # Examples
//!
//! ```
//! use depcase_distributions::LogNormal;
//! use depcase_sil::{DemandMode, SilAssessment, SilLevel};
//!
//! // The paper's widest Figure 1 judgement.
//! let belief = LogNormal::from_mode_mean(0.003, 0.01)?;
//! let a = SilAssessment::new(&belief, DemandMode::LowDemand);
//! // ~67% confident in SIL2-or-better, ~99.9% in SIL1-or-better:
//! assert!((a.confidence_at_least(SilLevel::Sil2) - 0.67).abs() < 0.02);
//! assert!(a.confidence_at_least(SilLevel::Sil1) > 0.99);
//! // ...yet the mean failure measure only earns SIL1:
//! assert_eq!(a.sil_of_mean(), Some(SilLevel::Sil1));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

// `!(x > 0.0)`-style checks deliberately treat NaN as invalid input; the
// lint's suggested `x <= 0.0` would let NaN through the validation.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
// Reference constants are quoted at full printed precision.
#![allow(clippy::excessive_precision)]
#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod band;
pub mod demand;
pub mod membership;
pub mod standards;

pub use band::{DemandMode, SilBand, SilLevel};
pub use membership::{BandProbabilities, SilAssessment};
pub use standards::{
    claim_limit_for_argument, discounted_sil, required_confidence, ArgumentRigour, EvidenceContext,
};
