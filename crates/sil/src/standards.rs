//! IEC 61508 confidence requirements and the paper's proposed
//! claim-discounting rules (Section 4.3).
//!
//! The standard's confidence numbers are scattered: Part 2 clause 7.4.7.4
//! requires better than 70 % confidence in hardware failure-rate data,
//! clause 7.4.7.9 requires 70 % one-sided confidence for operating
//! history, Part 2 Table B6 uses 95 % (low effectiveness) and 99.9 %
//! (high effectiveness), and Part 7 Table D1 uses 95 % and 99 %. The
//! paper proposes, on top, that claims made from weak argument styles be
//! *discounted* — "if a process-based qualitative argument was used, SIL
//! could be reduced by (at least) 2 levels" — and that conservative
//! worst-case reasoning needs "at least 99 % confidence in SIL2".

use crate::band::SilLevel;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The evidence context whose confidence requirement is being looked up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EvidenceContext {
    /// Hardware failure-rate data (Part 2, clause 7.4.7.4): > 70 %.
    HardwareFailureData,
    /// Operating history (Part 2, clause 7.4.7.9): 70 % one-sided.
    OperatingHistory,
    /// A measure claimed at *low* effectiveness (Part 2, Table B6): 95 %.
    LowEffectiveness,
    /// A measure claimed at *high* effectiveness (Part 2, Table B6): 99.9 %.
    HighEffectiveness,
    /// Proven-in-use style operating experience (Part 7, Table D1): 95 %.
    ProvenInUse,
    /// Stronger proven-in-use claims (Part 7, Table D1): 99 %.
    ProvenInUseStrong,
}

impl fmt::Display for EvidenceContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EvidenceContext::HardwareFailureData => "hardware failure data (61508-2 7.4.7.4)",
            EvidenceContext::OperatingHistory => "operating history (61508-2 7.4.7.9)",
            EvidenceContext::LowEffectiveness => "low effectiveness (61508-2 Table B6)",
            EvidenceContext::HighEffectiveness => "high effectiveness (61508-2 Table B6)",
            EvidenceContext::ProvenInUse => "proven in use (61508-7 Table D1)",
            EvidenceContext::ProvenInUseStrong => "proven in use, strong (61508-7 Table D1)",
        };
        f.write_str(s)
    }
}

/// The one-sided confidence IEC 61508 requires for the given evidence
/// context.
///
/// # Examples
///
/// ```
/// use depcase_sil::{required_confidence, EvidenceContext};
///
/// assert_eq!(required_confidence(EvidenceContext::OperatingHistory), 0.70);
/// assert_eq!(required_confidence(EvidenceContext::HighEffectiveness), 0.999);
/// ```
#[must_use]
pub fn required_confidence(context: EvidenceContext) -> f64 {
    match context {
        EvidenceContext::HardwareFailureData | EvidenceContext::OperatingHistory => 0.70,
        EvidenceContext::LowEffectiveness | EvidenceContext::ProvenInUse => 0.95,
        EvidenceContext::HighEffectiveness => 0.999,
        EvidenceContext::ProvenInUseStrong => 0.99,
    }
}

/// The rigour of the argument supporting a SIL claim, ordered from
/// weakest to strongest — the paper's Section 4.3 discounting axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ArgumentRigour {
    /// Qualitative, process-compliance-based argument (e.g. "we followed
    /// the standard"). The paper: discount by (at least) 2 SILs.
    ProcessCompliance,
    /// Expert judgement without validated quantification. Discount 2.
    ExpertJudgement,
    /// Reliability-growth modelling with assessed prediction accuracy
    /// plus subjective margin. Discount 1.
    ReliabilityGrowth,
    /// Worst-case quantitative modelling with parameter uncertainty
    /// handled explicitly. Discount 1.
    WorstCaseModel,
    /// Statistically valid demonstration (statistical testing / operating
    /// experience at the required confidence). No discount.
    StatisticalDemonstration,
}

impl ArgumentRigour {
    /// The number of SIL levels the paper proposes to discount claims
    /// made with this argument style.
    #[must_use]
    pub fn discount_levels(self) -> u8 {
        match self {
            ArgumentRigour::ProcessCompliance | ArgumentRigour::ExpertJudgement => 2,
            ArgumentRigour::ReliabilityGrowth | ArgumentRigour::WorstCaseModel => 1,
            ArgumentRigour::StatisticalDemonstration => 0,
        }
    }
}

impl fmt::Display for ArgumentRigour {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ArgumentRigour::ProcessCompliance => "process compliance",
            ArgumentRigour::ExpertJudgement => "expert judgement",
            ArgumentRigour::ReliabilityGrowth => "reliability growth",
            ArgumentRigour::WorstCaseModel => "worst-case model",
            ArgumentRigour::StatisticalDemonstration => "statistical demonstration",
        };
        f.write_str(s)
    }
}

/// Applies the paper's discounting rule: the SIL that may actually be
/// *claimed* when the evidence points at `judged` but the argument has
/// the given rigour.
///
/// Returns `None` when the discount wipes out the claim entirely.
///
/// # Examples
///
/// ```
/// use depcase_sil::{discounted_sil, ArgumentRigour, SilLevel};
///
/// // Evidence says SIL3 but only via standards compliance → claim SIL1.
/// assert_eq!(
///     discounted_sil(SilLevel::Sil3, ArgumentRigour::ProcessCompliance),
///     Some(SilLevel::Sil1)
/// );
/// // SIL2 judged by expert judgement → no claimable SIL at all.
/// assert_eq!(discounted_sil(SilLevel::Sil2, ArgumentRigour::ExpertJudgement), None);
/// ```
#[must_use]
pub fn discounted_sil(judged: SilLevel, rigour: ArgumentRigour) -> Option<SilLevel> {
    let discounted = i16::from(judged.index()) - i16::from(rigour.discount_levels());
    u8::try_from(discounted).ok().and_then(SilLevel::from_index)
}

/// The paper's proposed *claim limit*: the highest SIL an argument style
/// should ever be allowed to support, regardless of the judged level.
///
/// Process-based and expert-judgement arguments cap at SIL 2 (they cannot
/// demonstrate the confidence the higher bands demand); quantitative
/// styles cap at SIL 3; only statistically valid demonstration can
/// support SIL 4.
///
/// # Examples
///
/// ```
/// use depcase_sil::{claim_limit_for_argument, ArgumentRigour, SilLevel};
///
/// assert_eq!(claim_limit_for_argument(ArgumentRigour::ProcessCompliance), SilLevel::Sil2);
/// assert_eq!(
///     claim_limit_for_argument(ArgumentRigour::StatisticalDemonstration),
///     SilLevel::Sil4
/// );
/// ```
#[must_use]
pub fn claim_limit_for_argument(rigour: ArgumentRigour) -> SilLevel {
    match rigour {
        ArgumentRigour::ProcessCompliance | ArgumentRigour::ExpertJudgement => SilLevel::Sil2,
        ArgumentRigour::ReliabilityGrowth | ArgumentRigour::WorstCaseModel => SilLevel::Sil3,
        ArgumentRigour::StatisticalDemonstration => SilLevel::Sil4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confidence_requirements_match_standard() {
        assert_eq!(required_confidence(EvidenceContext::HardwareFailureData), 0.70);
        assert_eq!(required_confidence(EvidenceContext::OperatingHistory), 0.70);
        assert_eq!(required_confidence(EvidenceContext::LowEffectiveness), 0.95);
        assert_eq!(required_confidence(EvidenceContext::HighEffectiveness), 0.999);
        assert_eq!(required_confidence(EvidenceContext::ProvenInUse), 0.95);
        assert_eq!(required_confidence(EvidenceContext::ProvenInUseStrong), 0.99);
    }

    #[test]
    fn discount_levels_match_paper_proposal() {
        assert_eq!(ArgumentRigour::ProcessCompliance.discount_levels(), 2);
        assert_eq!(ArgumentRigour::ExpertJudgement.discount_levels(), 2);
        assert_eq!(ArgumentRigour::ReliabilityGrowth.discount_levels(), 1);
        assert_eq!(ArgumentRigour::WorstCaseModel.discount_levels(), 1);
        assert_eq!(ArgumentRigour::StatisticalDemonstration.discount_levels(), 0);
    }

    #[test]
    fn discounting_examples() {
        assert_eq!(
            discounted_sil(SilLevel::Sil4, ArgumentRigour::ProcessCompliance),
            Some(SilLevel::Sil2)
        );
        assert_eq!(
            discounted_sil(SilLevel::Sil3, ArgumentRigour::WorstCaseModel),
            Some(SilLevel::Sil2)
        );
        assert_eq!(
            discounted_sil(SilLevel::Sil2, ArgumentRigour::StatisticalDemonstration),
            Some(SilLevel::Sil2)
        );
        assert_eq!(discounted_sil(SilLevel::Sil1, ArgumentRigour::ReliabilityGrowth), None);
        assert_eq!(discounted_sil(SilLevel::Sil2, ArgumentRigour::ProcessCompliance), None);
    }

    #[test]
    fn claim_limits_are_ordered_by_rigour() {
        assert!(
            claim_limit_for_argument(ArgumentRigour::ProcessCompliance)
                <= claim_limit_for_argument(ArgumentRigour::WorstCaseModel)
        );
        assert!(
            claim_limit_for_argument(ArgumentRigour::WorstCaseModel)
                <= claim_limit_for_argument(ArgumentRigour::StatisticalDemonstration)
        );
    }

    #[test]
    fn rigour_ordering() {
        assert!(ArgumentRigour::ProcessCompliance < ArgumentRigour::StatisticalDemonstration);
    }

    #[test]
    fn displays_are_informative() {
        assert!(EvidenceContext::OperatingHistory.to_string().contains("7.4.7.9"));
        assert_eq!(ArgumentRigour::ExpertJudgement.to_string(), "expert judgement");
    }

    #[test]
    fn serde_round_trip() {
        let r = ArgumentRigour::WorstCaseModel;
        let json = serde_json::to_string(&r).unwrap();
        assert_eq!(serde_json::from_str::<ArgumentRigour>(&json).unwrap(), r);
        let c = EvidenceContext::ProvenInUse;
        let json = serde_json::to_string(&c).unwrap();
        assert_eq!(serde_json::from_str::<EvidenceContext>(&json).unwrap(), c);
    }
}
