//! Demand-mode selection and pfd ↔ pfh conversion.
//!
//! IEC 61508 selects the failure measure by how often the safety
//! function is demanded: up to once a year is low-demand (pfd), more is
//! high-demand/continuous (pfh). For a periodically proof-tested channel
//! with dangerous failure rate `λ`, the standard's simplest relation
//! links the two: the average pfd over a proof-test interval `T` is
//! `λT/2` (for `λT ≪ 1`; the exact form `1 − (1 − e^{−λT})/(λT)` is
//! used here).

use crate::band::{sil_of_value, DemandMode, SilLevel};

/// Hours in a year, as IEC 61508 rates are quoted per hour.
pub const HOURS_PER_YEAR: f64 = 8760.0;

/// Selects the operating mode from the expected demand rate
/// (demands per year), per the standard's one-per-year threshold.
///
/// # Examples
///
/// ```
/// use depcase_sil::demand::mode_for_demand_rate;
/// use depcase_sil::DemandMode;
///
/// assert_eq!(mode_for_demand_rate(0.2), DemandMode::LowDemand);
/// assert_eq!(mode_for_demand_rate(12.0), DemandMode::HighDemand);
/// ```
#[must_use]
pub fn mode_for_demand_rate(demands_per_year: f64) -> DemandMode {
    if demands_per_year <= 1.0 {
        DemandMode::LowDemand
    } else {
        DemandMode::HighDemand
    }
}

/// Average probability of failure on demand of a single periodically
/// proof-tested channel with dangerous failure rate `lambda_per_hour`
/// and proof-test interval `proof_test_hours`.
///
/// Exact single-channel form: `1 − (1 − e^{−λT})/(λT)`, which reduces to
/// the familiar `λT/2` for small `λT`.
///
/// Returns `None` for non-positive inputs.
///
/// # Examples
///
/// ```
/// use depcase_sil::demand::average_pfd;
///
/// // λ = 1e-6/h, annual proof test: pfd ≈ λT/2 = 4.38e-3.
/// let pfd = average_pfd(1e-6, 8760.0).unwrap();
/// assert!((pfd - 4.38e-3).abs() / 4.38e-3 < 0.01);
/// ```
#[must_use]
pub fn average_pfd(lambda_per_hour: f64, proof_test_hours: f64) -> Option<f64> {
    if !(lambda_per_hour > 0.0) || !(proof_test_hours > 0.0) {
        return None;
    }
    let lt = lambda_per_hour * proof_test_hours;
    if lt < 1e-8 {
        // Series form avoids catastrophic cancellation: λT/2 − (λT)²/6.
        return Some(lt / 2.0 - lt * lt / 6.0);
    }
    Some(1.0 - (-(-lt).exp_m1()) / lt)
}

/// Inverts [`average_pfd`]: the dangerous failure rate implied by an
/// average pfd and a proof-test interval (small-`λT` regime, bisected on
/// the exact relation).
///
/// Returns `None` when the pfd is not achievable within the interval
/// (`pfd ∉ (0, 1)`).
#[must_use]
pub fn rate_for_average_pfd(pfd: f64, proof_test_hours: f64) -> Option<f64> {
    if !(0.0 < pfd && pfd < 1.0 && proof_test_hours > 0.0) {
        return None;
    }
    // average_pfd is strictly increasing in λ; bisect λ ∈ (0, hi).
    let mut lo = 0.0_f64;
    let mut hi = 1.0_f64;
    while average_pfd(hi, proof_test_hours)? < pfd {
        hi *= 2.0;
        if hi > 1e12 {
            return None;
        }
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if average_pfd(mid.max(f64::MIN_POSITIVE), proof_test_hours)? < pfd {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(0.5 * (lo + hi))
}

/// Cross-mode consistency view: the SIL a channel earns in each mode,
/// given its dangerous failure rate and proof-test interval.
///
/// Returns `(low_demand_sil_of_avg_pfd, high_demand_sil_of_rate)`.
///
/// # Examples
///
/// ```
/// use depcase_sil::demand::cross_mode_sil;
/// use depcase_sil::SilLevel;
///
/// // 1e-7/h with monthly proof tests: SIL4 as a rate, and the ~3.6e-5
/// // average pfd lands in SIL4 low-demand as well.
/// let (low, high) = cross_mode_sil(1e-7, 720.0);
/// assert_eq!(high, Some(SilLevel::Sil2));
/// assert_eq!(low, Some(SilLevel::Sil4));
/// ```
#[must_use]
pub fn cross_mode_sil(
    lambda_per_hour: f64,
    proof_test_hours: f64,
) -> (Option<SilLevel>, Option<SilLevel>) {
    let low = average_pfd(lambda_per_hour, proof_test_hours)
        .and_then(|pfd| sil_of_value(pfd, DemandMode::LowDemand));
    let high = sil_of_value(lambda_per_hour, DemandMode::HighDemand);
    (low, high)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_threshold_is_one_per_year() {
        assert_eq!(mode_for_demand_rate(1.0), DemandMode::LowDemand);
        assert_eq!(mode_for_demand_rate(1.0001), DemandMode::HighDemand);
        assert_eq!(mode_for_demand_rate(0.0), DemandMode::LowDemand);
    }

    #[test]
    fn average_pfd_small_lt_is_half_lt() {
        let pfd = average_pfd(1e-9, 100.0).unwrap();
        assert!((pfd - 0.5e-7).abs() < 1e-12);
    }

    #[test]
    fn average_pfd_exact_form_matches_series_at_crossover() {
        // Continuity across the series/exact switch at λT = 1e-8.
        let below = average_pfd(0.99e-8, 1.0).unwrap();
        let above = average_pfd(1.01e-8, 1.0).unwrap();
        assert!((above - below) > 0.0);
        assert!((above / below - 1.0).abs() < 0.05);
    }

    #[test]
    fn average_pfd_saturates_toward_one() {
        let pfd = average_pfd(1.0, 1e6).unwrap();
        assert!(pfd > 0.99 && pfd < 1.0);
    }

    #[test]
    fn average_pfd_validation() {
        assert!(average_pfd(0.0, 100.0).is_none());
        assert!(average_pfd(1e-6, 0.0).is_none());
        assert!(average_pfd(-1.0, 100.0).is_none());
    }

    #[test]
    fn rate_inversion_round_trip() {
        for &(lambda, t) in &[(1e-7, 8760.0), (1e-5, 720.0), (1e-3, 24.0)] {
            let pfd = average_pfd(lambda, t).unwrap();
            let back = rate_for_average_pfd(pfd, t).unwrap();
            assert!((back / lambda - 1.0).abs() < 1e-6, "lambda = {lambda}");
        }
    }

    #[test]
    fn rate_inversion_validation() {
        assert!(rate_for_average_pfd(0.0, 100.0).is_none());
        assert!(rate_for_average_pfd(1.0, 100.0).is_none());
        assert!(rate_for_average_pfd(0.5, 0.0).is_none());
    }

    #[test]
    fn cross_mode_view_scales_with_proof_interval() {
        // The same rate earns a better low-demand SIL when proof-tested
        // more often (smaller average pfd).
        let (weekly, _) = cross_mode_sil(1e-6, 168.0);
        let (yearly, _) = cross_mode_sil(1e-6, 8760.0);
        assert!(weekly >= yearly, "{weekly:?} vs {yearly:?}");
    }

    #[test]
    fn longer_interval_weakens_low_demand_claim() {
        let (low_short, high1) = cross_mode_sil(1e-7, 720.0);
        let (low_long, high2) = cross_mode_sil(1e-7, 87_600.0);
        assert_eq!(high1, high2); // rate view unchanged
        assert!(low_short >= low_long);
    }
}
