//! Error type for assurance-case construction and evaluation.

use std::fmt;

/// Error produced while building or evaluating a [`crate::Case`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CaseError {
    /// A node reference labelled with this name already exists.
    DuplicateName(String),
    /// A referenced node does not exist in this case.
    UnknownNode(String),
    /// The requested edge is not allowed (e.g. evidence supporting
    /// evidence, self-support).
    InvalidEdge {
        /// Human-readable description of the violation.
        reason: String,
    },
    /// A confidence value was outside `[0, 1]`.
    InvalidConfidence(String),
    /// The case structure is not evaluable (cycle, no root goal,
    /// undeveloped non-leaf, …).
    InvalidStructure(String),
}

impl fmt::Display for CaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CaseError::DuplicateName(n) => write!(f, "duplicate node name: {n}"),
            CaseError::UnknownNode(n) => write!(f, "unknown node: {n}"),
            CaseError::InvalidEdge { reason } => write!(f, "invalid edge: {reason}"),
            CaseError::InvalidConfidence(m) => write!(f, "invalid confidence: {m}"),
            CaseError::InvalidStructure(m) => write!(f, "invalid case structure: {m}"),
        }
    }
}

impl std::error::Error for CaseError {}

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, CaseError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(CaseError::DuplicateName("G1".into()).to_string().contains("G1"));
        assert!(CaseError::UnknownNode("E9".into()).to_string().contains("E9"));
        assert!(CaseError::InvalidEdge { reason: "x".into() }.to_string().contains("x"));
        assert!(CaseError::InvalidConfidence("1.5".into()).to_string().contains("1.5"));
        assert!(CaseError::InvalidStructure("cycle".into()).to_string().contains("cycle"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CaseError>();
    }
}
