//! Evidence-importance analysis: which leaf is worth strengthening?
//!
//! The ACARP principle needs a target for the next assurance activity.
//! [`birnbaum_importance`] computes, for every leaf, the sensitivity of
//! the root's (independence-estimate) confidence to that leaf's
//! confidence — the classic Birnbaum importance measure, evaluated by
//! finite differencing the propagation. [`improvement_value`] reports
//! the absolute gain from driving one leaf to certainty.

use crate::error::Result;
use crate::graph::{Case, NodeId, NodeKind};
use crate::incremental::Incremental;

/// One leaf's importance figures.
#[derive(Debug, Clone, PartialEq)]
pub struct LeafImportance {
    /// The leaf node.
    pub node: NodeId,
    /// The leaf's reference label.
    pub name: String,
    /// The leaf's current confidence.
    pub confidence: f64,
    /// Birnbaum importance: ∂(root confidence)/∂(leaf confidence).
    pub birnbaum: f64,
    /// Root-confidence gain from making this leaf certain (confidence 1).
    pub gain_if_certain: f64,
}

/// Computes Birnbaum importance and improvement value for every evidence
/// and assumption leaf, sorted most-important first.
///
/// Requires the case to have a single root goal.
///
/// # Errors
///
/// Structural errors from propagation, or
/// [`crate::CaseError::InvalidStructure`] when there is not exactly one
/// root.
///
/// # Examples
///
/// ```
/// use depcase_assurance::{importance::birnbaum_importance, Case};
///
/// let mut case = Case::new("t");
/// let g = case.add_goal("G", "claim")?;
/// let strong = case.add_evidence("E1", "solid test campaign", 0.99)?;
/// let weak = case.add_evidence("E2", "sketchy review", 0.70)?;
/// case.support(g, strong)?;
/// case.support(g, weak)?;
/// let ranking = birnbaum_importance(&case)?;
/// // The weak leaf is the one to fix:
/// assert_eq!(ranking[0].name, "E2");
/// assert!(ranking[0].gain_if_certain > ranking[1].gain_if_certain);
/// # Ok::<(), depcase_assurance::CaseError>(())
/// ```
pub fn birnbaum_importance(case: &Case) -> Result<Vec<LeafImportance>> {
    let roots = case.roots();
    if roots.len() != 1 {
        return Err(crate::error::CaseError::InvalidStructure(format!(
            "importance analysis needs exactly one root goal, found {}",
            roots.len()
        )));
    }
    let root = roots[0];
    // One incremental session serves every perturbation: each probe
    // recomputes only the leaf's dirty spine, and restoring the elicited
    // value is answered from the subtree-hash memo. The floats are
    // bit-identical to clone-and-propagate because both paths run the
    // same combination kernel on the same inputs.
    let mut session = Incremental::new(case.clone())?;
    let base = session.confidence(root).expect("root participates").independent;

    let mut out = Vec::new();
    for (id, node) in case.iter() {
        let conf = match node.kind {
            NodeKind::Evidence { confidence } | NodeKind::Assumption { confidence } => confidence,
            _ => continue,
        };
        // Birnbaum importance for coherent structures: the root
        // confidence is multilinear in each leaf, so the exact partial
        // derivative is the secant slope between leaf = 0 and leaf = 1.
        session.set_confidence(id, 1.0)?;
        let hi = session.confidence(root).expect("root").independent;
        session.set_confidence(id, 0.0)?;
        let lo = session.confidence(root).expect("root").independent;
        session.set_confidence(id, conf)?;
        out.push(LeafImportance {
            node: id,
            name: node.name.clone(),
            confidence: conf,
            birnbaum: hi - lo,
            gain_if_certain: hi - base,
        });
    }
    out.sort_by(|a, b| {
        b.gain_if_certain
            .partial_cmp(&a.gain_if_certain)
            .expect("finite gains")
            .then_with(|| a.name.cmp(&b.name))
    });
    Ok(out)
}

/// The single best leaf to improve: largest root-confidence gain when
/// driven to certainty. Returns `None` when the case has no leaves.
///
/// # Errors
///
/// Same conditions as [`birnbaum_importance`].
pub fn improvement_value(case: &Case) -> Result<Option<LeafImportance>> {
    Ok(birnbaum_importance(case)?.into_iter().next())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Combination;

    fn two_leaf_case(c1: f64, c2: f64) -> Case {
        let mut case = Case::new("t");
        let g = case.add_goal("G", "top").unwrap();
        let e1 = case.add_evidence("E1", "a", c1).unwrap();
        let e2 = case.add_evidence("E2", "b", c2).unwrap();
        case.support(g, e1).unwrap();
        case.support(g, e2).unwrap();
        case
    }

    #[test]
    fn conjunction_importance_is_partner_confidence() {
        // Root = c1·c2 ⇒ ∂/∂c1 = c2.
        let case = two_leaf_case(0.9, 0.7);
        let ranking = birnbaum_importance(&case).unwrap();
        let e1 = ranking.iter().find(|l| l.name == "E1").unwrap();
        let e2 = ranking.iter().find(|l| l.name == "E2").unwrap();
        assert!((e1.birnbaum - 0.7).abs() < 1e-12);
        assert!((e2.birnbaum - 0.9).abs() < 1e-12);
    }

    #[test]
    fn weak_leaf_ranks_first_in_conjunction() {
        let case = two_leaf_case(0.99, 0.6);
        let ranking = birnbaum_importance(&case).unwrap();
        assert_eq!(ranking[0].name, "E2");
        // gain for E2 = 0.99·1 − 0.99·0.6.
        assert!((ranking[0].gain_if_certain - (0.99 - 0.99 * 0.6)).abs() < 1e-12);
    }

    #[test]
    fn disjunction_importance_is_partner_doubt() {
        // Root = 1 − x1·x2 ⇒ ∂root/∂c1 = x2.
        let mut case = Case::new("t");
        let g = case.add_goal("G", "top").unwrap();
        let s = case.add_strategy("S", "legs", Combination::AnyOf).unwrap();
        let e1 = case.add_evidence("E1", "a", 0.9).unwrap();
        let e2 = case.add_evidence("E2", "b", 0.7).unwrap();
        case.support(g, s).unwrap();
        case.support(s, e1).unwrap();
        case.support(s, e2).unwrap();
        let ranking = birnbaum_importance(&case).unwrap();
        let e1i = ranking.iter().find(|l| l.name == "E1").unwrap();
        let e2i = ranking.iter().find(|l| l.name == "E2").unwrap();
        assert!((e1i.birnbaum - 0.3).abs() < 1e-12, "{}", e1i.birnbaum);
        assert!((e2i.birnbaum - 0.1).abs() < 1e-12, "{}", e2i.birnbaum);
        // In a redundant structure, improving the *stronger* leg matters
        // more (it alone must not fail).
        assert_eq!(ranking[0].name, "E1");
    }

    #[test]
    fn assumptions_rank_too() {
        let mut case = Case::new("t");
        let g = case.add_goal("G", "top").unwrap();
        let e = case.add_evidence("E1", "a", 0.99).unwrap();
        let a = case.add_assumption("A1", "env", 0.8).unwrap();
        case.support(g, e).unwrap();
        case.support(g, a).unwrap();
        let ranking = birnbaum_importance(&case).unwrap();
        assert_eq!(ranking[0].name, "A1");
    }

    #[test]
    fn certain_leaf_has_zero_gain() {
        let case = two_leaf_case(1.0, 0.5);
        let ranking = birnbaum_importance(&case).unwrap();
        let e1 = ranking.iter().find(|l| l.name == "E1").unwrap();
        assert!(e1.gain_if_certain.abs() < 1e-12);
    }

    #[test]
    fn improvement_value_returns_top() {
        let case = two_leaf_case(0.95, 0.5);
        let top = improvement_value(&case).unwrap().unwrap();
        assert_eq!(top.name, "E2");
    }

    #[test]
    fn matches_naive_clone_and_propagate_bitwise() {
        // The incremental path must reproduce the pre-IR algorithm
        // (clone, set leaf, full propagate) to the exact bit.
        let mut case = Case::new("t");
        let g = case.add_goal("G", "top").unwrap();
        let s = case.add_strategy("S", "legs", Combination::AnyOf).unwrap();
        let e1 = case.add_evidence("E1", "a", 0.9).unwrap();
        let e2 = case.add_evidence("E2", "b", 0.7).unwrap();
        let a = case.add_assumption("A", "env", 0.95).unwrap();
        case.support(g, s).unwrap();
        case.support(s, e1).unwrap();
        case.support(s, e2).unwrap();
        case.support(g, a).unwrap();
        let base = case.propagate().unwrap().confidence(g).unwrap().independent;
        for l in birnbaum_importance(&case).unwrap() {
            let probe = |conf: f64| {
                let mut copy = case.clone();
                copy.set_leaf_confidence(l.node, conf).unwrap();
                copy.propagate().unwrap().confidence(g).unwrap().independent
            };
            let (hi, lo) = (probe(1.0), probe(0.0));
            assert_eq!(l.birnbaum.to_bits(), (hi - lo).to_bits(), "{}", l.name);
            assert_eq!(l.gain_if_certain.to_bits(), (hi - base).to_bits(), "{}", l.name);
        }
    }

    #[test]
    fn multi_root_rejected() {
        let mut case = Case::new("t");
        let g1 = case.add_goal("G1", "a").unwrap();
        let g2 = case.add_goal("G2", "b").unwrap();
        let e1 = case.add_evidence("E1", "x", 0.9).unwrap();
        let e2 = case.add_evidence("E2", "y", 0.9).unwrap();
        case.support(g1, e1).unwrap();
        case.support(g2, e2).unwrap();
        assert!(birnbaum_importance(&case).is_err());
    }
}
