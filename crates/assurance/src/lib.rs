//! GSN-style dependability-case argument graphs with quantitative
//! confidence propagation.
//!
//! The paper defines a dependability case as "some reasoning, based on
//! assumptions and evidence, that supports a dependability claim at a
//! particular level of confidence", and argues the confidence should be
//! a number. This crate provides the substrate: a goal-structured
//! argument graph ([`Case`]) whose leaves (evidence, assumptions) carry
//! elicited confidence, and a propagation engine ([`propagation`]) that
//! pushes doubt up through conjunctive ("all sub-goals must hold") and
//! alternative ("independent argument legs") structures, tracking the
//! independence point estimate *and* the Fréchet dependence interval the
//! paper warns about.
//!
//! # Examples
//!
//! A two-legged case for a SIL2 claim:
//!
//! ```
//! use depcase_assurance::{Case, Combination, NodeKind};
//!
//! let mut case = Case::new("protection-system");
//! let goal = case.add_goal("G1", "pfd < 1e-2")?;
//! let strat = case.add_strategy("S1", "independent legs", Combination::AnyOf)?;
//! let testing = case.add_evidence("E1", "statistical testing", 0.95)?;
//! let analysis = case.add_evidence("E2", "static analysis", 0.90)?;
//! case.support(goal, strat)?;
//! case.support(strat, testing)?;
//! case.support(strat, analysis)?;
//!
//! let report = case.propagate()?;
//! let top = report.confidence(goal).unwrap();
//! // Independent legs: doubt 0.05 · 0.10 = 0.005.
//! assert!((top.independent - 0.995).abs() < 1e-12);
//! // But under worst-case dependence the stronger leg is all you have:
//! assert!((top.worst_case - 0.95).abs() < 1e-12);
//! # Ok::<(), depcase_assurance::CaseError>(())
//! ```

// `!(x > 0.0)`-style checks deliberately treat NaN as invalid input; the
// lint's suggested `x <= 0.0` would let NaN through the validation.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
// Reference constants are quoted at full printed precision.
#![allow(clippy::excessive_precision)]
#![deny(missing_docs)]
#![deny(unsafe_code)]

mod dot;
mod error;
mod graph;
pub mod importance;
pub mod incremental;
pub mod ir;
pub mod memo;
pub mod monte_carlo;
pub mod plan;
pub mod propagation;
pub mod templates;
pub mod trace;

pub use error::CaseError;
pub use graph::{Case, Combination, NodeId, NodeKind, CASE_SCHEMA_VERSION};
pub use importance::{birnbaum_importance, LeafImportance};
pub use incremental::{EditStats, Incremental, LeafKind};
pub use ir::{CaseIr, IrKind};
pub use memo::{MemoStore, MemoStoreStats, SharedMemo};
pub use monte_carlo::{MonteCarlo, MonteCarloReport};
pub use plan::EvalPlan;
pub use propagation::{ConfidenceReport, NodeConfidence};
pub use trace::{NoTracer, Tracer};
