//! The argument graph: nodes, edges, structural validation.

use crate::error::{CaseError, Result};
use serde::{Deserialize, Serialize, Value};
use std::collections::HashMap;
use std::fmt;

/// Version stamped into serialized case files as the `"schema"` field.
///
/// Files without the field are accepted as legacy (pre-versioning)
/// saves; files with a *newer* version than this library understands
/// are rejected instead of being silently misread.
pub const CASE_SCHEMA_VERSION: u64 = 1;

/// Opaque handle to a node in a [`Case`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NodeId(usize);

impl NodeId {
    /// Wraps an arena index. The IR and the case share indexing, so
    /// this is the bridge back from dense structures to handles.
    pub(crate) fn from_index(i: usize) -> Self {
        NodeId(i)
    }

    /// The arena index behind the handle.
    pub(crate) fn to_index(self) -> usize {
        self.0
    }
}

/// How a node's supporting children combine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Combination {
    /// The claim holds only if **every** child holds (conjunctive
    /// decomposition): doubts accumulate.
    AllOf,
    /// The claim holds if **any** child's argument is sound (independent
    /// legs, the paper's Section 4.2): doubts multiply.
    AnyOf,
}

/// The kind of an argument node, following GSN vocabulary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NodeKind {
    /// A claim to be supported (GSN goal).
    Goal,
    /// A reasoning step joining a goal to its support, with an explicit
    /// combination rule.
    Strategy(Combination),
    /// Leaf evidence (GSN solution) carrying elicited confidence that the
    /// evidence soundly establishes its parent.
    Evidence {
        /// `P(evidence is sound)`.
        confidence: f64,
    },
    /// An assumption the argument rests on, carrying the confidence that
    /// it is true. Assumptions attach to any non-leaf node and combine
    /// conjunctively with its support.
    Assumption {
        /// `P(assumption holds)`.
        confidence: f64,
    },
    /// Contextual information; ignored by propagation.
    Context,
}

/// One node of the case.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Short reference label, unique in the case (e.g. "G1").
    pub name: String,
    /// Free-text statement.
    pub statement: String,
    /// The node's kind and payload.
    pub kind: NodeKind,
}

/// A dependability case: a directed acyclic argument graph.
///
/// See the crate-level example for typical construction.
///
/// # Serialized form
///
/// Cases serialize as a versioned JSON object: `{"schema": 1, "title":
/// …, "nodes": […], "children": […]}`. The name index is rebuilt on
/// load rather than stored, and legacy files that predate the
/// `"schema"` field (which stored the index as `"by_name"`) are still
/// accepted. Confidence values survive a save/load round trip
/// bit-for-bit (the `float_roundtrip` JSON guarantee).
#[derive(Debug, Clone, PartialEq)]
pub struct Case {
    title: String,
    nodes: Vec<Node>,
    /// children[i] = nodes supporting node i.
    children: Vec<Vec<usize>>,
    by_name: HashMap<String, usize>,
}

impl Serialize for Case {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("schema".to_string(), Value::U64(CASE_SCHEMA_VERSION)),
            ("title".to_string(), self.title.to_value()),
            ("nodes".to_string(), self.nodes.to_value()),
            ("children".to_string(), self.children.to_value()),
        ])
    }
}

impl Deserialize for Case {
    fn from_value(v: &Value) -> std::result::Result<Self, serde::Error> {
        let obj = v.as_object().ok_or_else(|| serde::Error::custom("expected object for Case"))?;
        if let Some(schema) = v.get("schema") {
            let version = schema
                .as_u64()
                .ok_or_else(|| serde::Error::custom("case `schema` must be an integer"))?;
            if version == 0 || version > CASE_SCHEMA_VERSION {
                return Err(serde::Error::custom(format!(
                    "unsupported case schema version {version} (this library reads ≤ {CASE_SCHEMA_VERSION})"
                )));
            }
        }
        let title = String::from_value(serde::field(obj, "title")?)?;
        let nodes = Vec::<Node>::from_value(serde::field(obj, "nodes")?)?;
        let children = Vec::<Vec<usize>>::from_value(serde::field(obj, "children")?)?;
        if children.len() != nodes.len() {
            return Err(serde::Error::custom(format!(
                "case has {} nodes but {} adjacency rows",
                nodes.len(),
                children.len()
            )));
        }
        if let Some(&bad) = children.iter().flatten().find(|&&c| c >= nodes.len()) {
            return Err(serde::Error::custom(format!(
                "child index {bad} out of range for {} nodes",
                nodes.len()
            )));
        }
        let mut by_name = HashMap::with_capacity(nodes.len());
        for (i, node) in nodes.iter().enumerate() {
            if by_name.insert(node.name.clone(), i).is_some() {
                return Err(serde::Error::custom(format!("duplicate node name: {}", node.name)));
            }
        }
        Ok(Self { title, nodes, children, by_name })
    }
}

impl Case {
    /// Creates an empty case.
    #[must_use]
    pub fn new(title: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            nodes: Vec::new(),
            children: Vec::new(),
            by_name: HashMap::new(),
        }
    }

    /// The case title.
    #[must_use]
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the case has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn add_node(
        &mut self,
        name: impl Into<String>,
        statement: impl Into<String>,
        kind: NodeKind,
    ) -> Result<NodeId> {
        let name = name.into();
        if self.by_name.contains_key(&name) {
            return Err(CaseError::DuplicateName(name));
        }
        let idx = self.nodes.len();
        self.by_name.insert(name.clone(), idx);
        self.nodes.push(Node { name, statement: statement.into(), kind });
        self.children.push(Vec::new());
        Ok(NodeId(idx))
    }

    /// Adds a goal (claim) node.
    ///
    /// # Errors
    ///
    /// [`CaseError::DuplicateName`] when the name is taken.
    pub fn add_goal(
        &mut self,
        name: impl Into<String>,
        statement: impl Into<String>,
    ) -> Result<NodeId> {
        self.add_node(name, statement, NodeKind::Goal)
    }

    /// Adds a strategy node with its combination rule.
    ///
    /// # Errors
    ///
    /// [`CaseError::DuplicateName`] when the name is taken.
    pub fn add_strategy(
        &mut self,
        name: impl Into<String>,
        statement: impl Into<String>,
        combination: Combination,
    ) -> Result<NodeId> {
        self.add_node(name, statement, NodeKind::Strategy(combination))
    }

    /// Adds a leaf evidence node carrying elicited confidence.
    ///
    /// # Errors
    ///
    /// [`CaseError::InvalidConfidence`] outside `[0, 1]`,
    /// [`CaseError::DuplicateName`] when the name is taken.
    pub fn add_evidence(
        &mut self,
        name: impl Into<String>,
        statement: impl Into<String>,
        confidence: f64,
    ) -> Result<NodeId> {
        check_confidence(confidence)?;
        self.add_node(name, statement, NodeKind::Evidence { confidence })
    }

    /// Adds an assumption node carrying the confidence it holds.
    ///
    /// # Errors
    ///
    /// [`CaseError::InvalidConfidence`] outside `[0, 1]`,
    /// [`CaseError::DuplicateName`] when the name is taken.
    pub fn add_assumption(
        &mut self,
        name: impl Into<String>,
        statement: impl Into<String>,
        confidence: f64,
    ) -> Result<NodeId> {
        check_confidence(confidence)?;
        self.add_node(name, statement, NodeKind::Assumption { confidence })
    }

    /// Adds a context node (ignored by propagation).
    ///
    /// # Errors
    ///
    /// [`CaseError::DuplicateName`] when the name is taken.
    pub fn add_context(
        &mut self,
        name: impl Into<String>,
        statement: impl Into<String>,
    ) -> Result<NodeId> {
        self.add_node(name, statement, NodeKind::Context)
    }

    /// Declares that `child` supports `parent`.
    ///
    /// # Errors
    ///
    /// [`CaseError::InvalidEdge`] for self-support, support *by* a goal
    /// of a leaf, support attached to leaves, or an edge that would close
    /// a cycle; [`CaseError::UnknownNode`] for dangling handles.
    pub fn support(&mut self, parent: NodeId, child: NodeId) -> Result<()> {
        let p = self.index(parent)?;
        let c = self.index(child)?;
        if p == c {
            return Err(CaseError::InvalidEdge { reason: "a node cannot support itself".into() });
        }
        match self.nodes[p].kind {
            NodeKind::Evidence { .. } | NodeKind::Context => {
                return Err(CaseError::InvalidEdge {
                    reason: format!("leaf node {} cannot be supported", self.nodes[p].name),
                });
            }
            _ => {}
        }
        if matches!(self.nodes[c].kind, NodeKind::Context) {
            return Err(CaseError::InvalidEdge {
                reason: "context nodes do not support claims; attach them as context".into(),
            });
        }
        if self.reaches(c, p) {
            return Err(CaseError::InvalidEdge {
                reason: format!(
                    "edge {} → {} would create a cycle",
                    self.nodes[p].name, self.nodes[c].name
                ),
            });
        }
        if self.children[p].contains(&c) {
            return Ok(()); // idempotent
        }
        self.children[p].push(c);
        Ok(())
    }

    /// Updates the elicited confidence of an evidence or assumption
    /// leaf — the hook used by what-if and importance analyses.
    ///
    /// # Errors
    ///
    /// [`CaseError::InvalidConfidence`] outside `[0, 1]`,
    /// [`CaseError::UnknownNode`] for a foreign handle, and
    /// [`CaseError::InvalidStructure`] when the node is not a leaf that
    /// carries confidence.
    pub fn set_leaf_confidence(&mut self, id: NodeId, confidence: f64) -> Result<()> {
        check_confidence(confidence)?;
        let i = self.index(id)?;
        match &mut self.nodes[i].kind {
            NodeKind::Evidence { confidence: c } | NodeKind::Assumption { confidence: c } => {
                *c = confidence;
                Ok(())
            }
            _ => Err(CaseError::InvalidStructure(format!(
                "node {} does not carry elicited confidence",
                self.nodes[i].name
            ))),
        }
    }

    /// Replaces the support edge `parent → from` with `parent → to`,
    /// preserving the edge's position — and therefore the combination
    /// order of `parent`'s supporters.
    ///
    /// Retargeting to the current child (`from == to`) is a no-op.
    ///
    /// # Errors
    ///
    /// [`CaseError::UnknownNode`] for dangling handles;
    /// [`CaseError::InvalidEdge`] when `from` does not currently support
    /// `parent`, when `to` is the parent itself, a context node or
    /// already a supporter, or when the new edge would close a cycle.
    pub fn retarget_support(&mut self, parent: NodeId, from: NodeId, to: NodeId) -> Result<()> {
        let p = self.index(parent)?;
        let f = self.index(from)?;
        let t = self.index(to)?;
        let Some(pos) = self.children[p].iter().position(|&c| c == f) else {
            return Err(CaseError::InvalidEdge {
                reason: format!("{} does not support {}", self.nodes[f].name, self.nodes[p].name),
            });
        };
        if f == t {
            return Ok(());
        }
        if t == p {
            return Err(CaseError::InvalidEdge { reason: "a node cannot support itself".into() });
        }
        if matches!(self.nodes[t].kind, NodeKind::Context) {
            return Err(CaseError::InvalidEdge {
                reason: "context nodes do not support claims; attach them as context".into(),
            });
        }
        if self.children[p].contains(&t) {
            return Err(CaseError::InvalidEdge {
                reason: format!("{} already supports {}", self.nodes[t].name, self.nodes[p].name),
            });
        }
        if self.reaches(t, p) {
            return Err(CaseError::InvalidEdge {
                reason: format!(
                    "edge {} → {} would create a cycle",
                    self.nodes[p].name, self.nodes[t].name
                ),
            });
        }
        self.children[p][pos] = t;
        Ok(())
    }

    /// Looks a node up by its reference label.
    #[must_use]
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.by_name.get(name).map(|&i| NodeId(i))
    }

    /// The node payload behind a handle.
    ///
    /// # Errors
    ///
    /// [`CaseError::UnknownNode`] for a handle from another case.
    pub fn node(&self, id: NodeId) -> Result<&Node> {
        self.nodes.get(id.0).ok_or_else(|| CaseError::UnknownNode(format!("#{}", id.0)))
    }

    /// The direct supporters of a node.
    ///
    /// # Errors
    ///
    /// [`CaseError::UnknownNode`] for a handle from another case.
    pub fn supporters(&self, id: NodeId) -> Result<Vec<NodeId>> {
        let i = self.index(id)?;
        Ok(self.children[i].iter().map(|&c| NodeId(c)).collect())
    }

    /// All nodes, in insertion order, paired with their handles.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes.iter().enumerate().map(|(i, n)| (NodeId(i), n))
    }

    /// The root goals: goal nodes no other node is supported by.
    #[must_use]
    pub fn roots(&self) -> Vec<NodeId> {
        let mut supported = vec![false; self.nodes.len()];
        for cs in &self.children {
            for &c in cs {
                supported[c] = true;
            }
        }
        self.nodes
            .iter()
            .enumerate()
            .filter(|(i, n)| matches!(n.kind, NodeKind::Goal) && !supported[*i])
            .map(|(i, _)| NodeId(i))
            .collect()
    }

    /// Structural validation: at least one root goal, and every non-leaf
    /// node on a path from a root is developed (has supporters).
    ///
    /// # Errors
    ///
    /// [`CaseError::InvalidStructure`] describing the first violation.
    pub fn validate(&self) -> Result<()> {
        let roots = self.roots();
        if roots.is_empty() {
            return Err(CaseError::InvalidStructure("no root goal".into()));
        }
        for (i, n) in self.nodes.iter().enumerate() {
            match n.kind {
                NodeKind::Goal | NodeKind::Strategy(_) if self.children[i].is_empty() => {
                    return Err(CaseError::InvalidStructure(format!(
                        "node {} is undeveloped (no support)",
                        n.name
                    )));
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Evaluates the case: validates, then propagates confidence.
    ///
    /// # Errors
    ///
    /// Structural errors from [`Case::validate`].
    pub fn propagate(&self) -> Result<crate::propagation::ConfidenceReport> {
        crate::propagation::propagate(self)
    }

    /// A stable 64-bit content hash of exactly what evaluation depends
    /// on: the fold of every node's Merkle-style subtree hash
    /// ([`crate::CaseIr::case_hash`]) — kind tags, confidence bit
    /// patterns, combination rules and the support edges. Titles, names
    /// and statements are *not* hashed: relabelling a case cannot change
    /// an answer, so it does not change the hash either.
    ///
    /// Two cases hash equal iff they evaluate identically, so the hash
    /// is a safe key for caches of compiled [`crate::EvalPlan`]s,
    /// propagation reports and incremental memo tables — the
    /// `depcase-service` engine keys its plan cache on it. (FNV-1a; not
    /// cryptographic, collision chance for a registry of thousands of
    /// cases is ~2⁻⁴⁰.)
    ///
    /// A cyclic graph (only constructible by hand-editing a save file;
    /// it can never evaluate) falls back to a flat structural hash.
    #[must_use]
    pub fn content_hash(&self) -> u64 {
        match crate::ir::CaseIr::build(self) {
            Ok(ir) => ir.case_hash(),
            Err(_) => self.flat_structure_hash(),
        }
    }

    /// Non-Merkle fallback for graphs the IR refuses to lower: the raw
    /// node payloads and adjacency rows, hashed flat.
    fn flat_structure_hash(&self) -> u64 {
        let mut h = crate::ir::Fnv::new();
        h.write_u64(CASE_SCHEMA_VERSION);
        h.write_u64(self.nodes.len() as u64);
        for node in &self.nodes {
            let (tag, confidence) = match node.kind {
                NodeKind::Goal => (0u8, None),
                NodeKind::Strategy(Combination::AllOf) => (1, None),
                NodeKind::Strategy(Combination::AnyOf) => (2, None),
                NodeKind::Evidence { confidence } => (3, Some(confidence)),
                NodeKind::Assumption { confidence } => (4, Some(confidence)),
                NodeKind::Context => (5, None),
            };
            h.write(&[tag]);
            if let Some(c) = confidence {
                h.write_u64(c.to_bits());
            }
        }
        for kids in &self.children {
            h.write_u64(kids.len() as u64);
            for &c in kids {
                h.write_u64(c as u64);
            }
        }
        h.0
    }

    pub(crate) fn index(&self, id: NodeId) -> Result<usize> {
        if id.0 < self.nodes.len() {
            Ok(id.0)
        } else {
            Err(CaseError::UnknownNode(format!("#{}", id.0)))
        }
    }

    pub(crate) fn children_of(&self, i: usize) -> &[usize] {
        &self.children[i]
    }

    pub(crate) fn node_at(&self, i: usize) -> &Node {
        &self.nodes[i]
    }

    /// Is `to` reachable from `from` along support edges?
    fn reaches(&self, from: usize, to: usize) -> bool {
        let mut stack = vec![from];
        let mut seen = vec![false; self.nodes.len()];
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if seen[n] {
                continue;
            }
            seen[n] = true;
            stack.extend(self.children[n].iter().copied());
        }
        false
    }
}

impl fmt::Display for Case {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "case: {} ({} nodes)", self.title, self.nodes.len())?;
        for (i, n) in self.nodes.iter().enumerate() {
            let kids: Vec<&str> =
                self.children[i].iter().map(|&c| self.nodes[c].name.as_str()).collect();
            writeln!(f, "  {} [{:?}] ← {:?}", n.name, n.kind, kids)?;
        }
        Ok(())
    }
}

fn check_confidence(c: f64) -> Result<()> {
    if !(0.0..=1.0).contains(&c) {
        return Err(CaseError::InvalidConfidence(format!("{c} outside [0, 1]")));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_case() -> (Case, NodeId, NodeId, NodeId) {
        let mut case = Case::new("t");
        let g = case.add_goal("G1", "top claim").unwrap();
        let e1 = case.add_evidence("E1", "testing", 0.9).unwrap();
        let e2 = case.add_evidence("E2", "analysis", 0.8).unwrap();
        case.support(g, e1).unwrap();
        case.support(g, e2).unwrap();
        (case, g, e1, e2)
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut case = Case::new("t");
        case.add_goal("G1", "a").unwrap();
        assert!(matches!(case.add_goal("G1", "b"), Err(CaseError::DuplicateName(_))));
    }

    #[test]
    fn confidence_validation() {
        let mut case = Case::new("t");
        assert!(case.add_evidence("E1", "x", 1.5).is_err());
        assert!(case.add_evidence("E1", "x", -0.1).is_err());
        assert!(case.add_assumption("A1", "x", f64::NAN).is_err());
    }

    #[test]
    fn self_support_rejected() {
        let mut case = Case::new("t");
        let g = case.add_goal("G1", "a").unwrap();
        assert!(case.support(g, g).is_err());
    }

    #[test]
    fn leaves_cannot_be_supported() {
        let mut case = Case::new("t");
        let g = case.add_goal("G1", "a").unwrap();
        let e = case.add_evidence("E1", "x", 0.9).unwrap();
        let c = case.add_context("C1", "env").unwrap();
        assert!(case.support(e, g).is_err());
        assert!(case.support(c, g).is_err());
    }

    #[test]
    fn context_cannot_support() {
        let mut case = Case::new("t");
        let g = case.add_goal("G1", "a").unwrap();
        let c = case.add_context("C1", "env").unwrap();
        assert!(case.support(g, c).is_err());
    }

    #[test]
    fn cycles_rejected() {
        let mut case = Case::new("t");
        let g1 = case.add_goal("G1", "a").unwrap();
        let g2 = case.add_goal("G2", "b").unwrap();
        let g3 = case.add_goal("G3", "c").unwrap();
        case.support(g1, g2).unwrap();
        case.support(g2, g3).unwrap();
        let err = case.support(g3, g1);
        assert!(matches!(err, Err(CaseError::InvalidEdge { .. })));
    }

    #[test]
    fn support_is_idempotent() {
        let (mut case, g, e1, _) = small_case();
        case.support(g, e1).unwrap();
        assert_eq!(case.supporters(g).unwrap().len(), 2);
    }

    #[test]
    fn roots_are_unsupported_goals() {
        let (case, g, ..) = small_case();
        assert_eq!(case.roots(), vec![g]);
    }

    #[test]
    fn lookup_by_name() {
        let (case, g, ..) = small_case();
        assert_eq!(case.node_by_name("G1"), Some(g));
        assert_eq!(case.node_by_name("ZZ"), None);
        assert_eq!(case.node(g).unwrap().statement, "top claim");
    }

    #[test]
    fn validate_catches_undeveloped() {
        let mut case = Case::new("t");
        case.add_goal("G1", "a").unwrap();
        assert!(matches!(case.validate(), Err(CaseError::InvalidStructure(_))));
        let (good, ..) = small_case();
        assert!(good.validate().is_ok());
    }

    #[test]
    fn validate_requires_root_goal() {
        let mut case = Case::new("t");
        case.add_evidence("E1", "x", 0.9).unwrap();
        assert!(matches!(case.validate(), Err(CaseError::InvalidStructure(_))));
    }

    #[test]
    fn foreign_handles_rejected() {
        let (case, ..) = small_case();
        let other = Case::new("o");
        let bad = NodeId(42);
        assert!(case.node(bad).is_err());
        assert!(other.node(bad).is_err());
    }

    #[test]
    fn iter_and_display() {
        let (case, ..) = small_case();
        assert_eq!(case.iter().count(), 3);
        assert_eq!(case.len(), 3);
        assert!(!case.is_empty());
        let s = case.to_string();
        assert!(s.contains("G1") && s.contains("E2"), "{s}");
    }

    #[test]
    fn serde_round_trip() {
        let (case, ..) = small_case();
        let json = serde_json::to_string(&case).unwrap();
        let back: Case = serde_json::from_str(&json).unwrap();
        assert_eq!(case, back);
    }

    #[test]
    fn serialized_cases_are_schema_stamped() {
        let (case, ..) = small_case();
        let json = serde_json::to_string(&case).unwrap();
        assert!(json.starts_with("{\"schema\":1,"), "{json}");
        assert!(!json.contains("by_name"), "name index must be rebuilt, not stored: {json}");
    }

    #[test]
    fn legacy_files_without_schema_field_load() {
        // The pre-versioning on-disk shape: no "schema", stored "by_name".
        let legacy = r#"{"title":"t","nodes":[{"name":"G1","statement":"top claim","kind":"Goal"},{"name":"E1","statement":"testing","kind":{"Evidence":{"confidence":0.9}}}],"children":[[1],[]],"by_name":{"E1":1,"G1":0}}"#;
        let case: Case = serde_json::from_str(legacy).unwrap();
        assert_eq!(case.title(), "t");
        assert_eq!(case.len(), 2);
        let g = case.node_by_name("G1").unwrap();
        assert_eq!(case.supporters(g).unwrap().len(), 1);
        // Re-saving upgrades the file to the stamped schema.
        assert!(serde_json::to_string(&case).unwrap().contains("\"schema\":1"));
    }

    #[test]
    fn newer_schema_versions_are_rejected() {
        let future = r#"{"schema":2,"title":"t","nodes":[],"children":[]}"#;
        assert!(serde_json::from_str::<Case>(future).is_err());
        let zero = r#"{"schema":0,"title":"t","nodes":[],"children":[]}"#;
        assert!(serde_json::from_str::<Case>(zero).is_err());
    }

    #[test]
    fn malformed_case_files_are_rejected() {
        // Adjacency row count must match the node count.
        let short = r#"{"schema":1,"title":"t","nodes":[{"name":"G1","statement":"a","kind":"Goal"}],"children":[]}"#;
        assert!(serde_json::from_str::<Case>(short).is_err());
        // Child indices must be in range.
        let dangling = r#"{"schema":1,"title":"t","nodes":[{"name":"G1","statement":"a","kind":"Goal"}],"children":[[7]]}"#;
        assert!(serde_json::from_str::<Case>(dangling).is_err());
        // Duplicate names would corrupt the rebuilt index.
        let dup = r#"{"schema":1,"title":"t","nodes":[{"name":"G1","statement":"a","kind":"Goal"},{"name":"G1","statement":"b","kind":"Goal"}],"children":[[],[]]}"#;
        assert!(serde_json::from_str::<Case>(dup).is_err());
    }

    #[test]
    fn retarget_preserves_position_and_validates() {
        let (mut case, g, e1, e2) = small_case();
        let e3 = case.add_evidence("E3", "audit", 0.7).unwrap();
        let c1 = case.add_context("C1", "env").unwrap();
        // E3 replaces E1 in E1's slot.
        case.retarget_support(g, e1, e3).unwrap();
        assert_eq!(case.supporters(g).unwrap(), vec![e3, e2]);
        // `from` must currently support the parent.
        assert!(case.retarget_support(g, e1, e2).is_err());
        // Duplicates, self-support and context targets are rejected.
        assert!(case.retarget_support(g, e3, e2).is_err());
        assert!(case.retarget_support(g, e3, g).is_err());
        assert!(case.retarget_support(g, e3, c1).is_err());
        // Retargeting onto the current child is a no-op.
        case.retarget_support(g, e3, e3).unwrap();
        assert_eq!(case.supporters(g).unwrap(), vec![e3, e2]);
    }

    #[test]
    fn retarget_rejects_cycles() {
        let mut case = Case::new("t");
        let g1 = case.add_goal("G1", "a").unwrap();
        let g2 = case.add_goal("G2", "b").unwrap();
        let e = case.add_evidence("E1", "x", 0.9).unwrap();
        case.support(g1, g2).unwrap();
        case.support(g2, e).unwrap();
        // g2 → e must not become g2 → g1.
        assert!(case.retarget_support(g2, e, g1).is_err());
    }

    #[test]
    fn content_hash_ignores_labels_but_not_structure() {
        let (case, ..) = small_case();
        let mut relabelled = Case::new("different title");
        let g = relabelled.add_goal("Root", "reworded claim").unwrap();
        let e1 = relabelled.add_evidence("Ev1", "reworded", 0.9).unwrap();
        let e2 = relabelled.add_evidence("Ev2", "reworded", 0.8).unwrap();
        relabelled.support(g, e1).unwrap();
        relabelled.support(g, e2).unwrap();
        assert_eq!(case.content_hash(), relabelled.content_hash());

        // Swapping combination order is evaluation-relevant for MC
        // (leaf slot order fixes the RNG stream) and changes the hash.
        let mut reordered = Case::new("t");
        let g = reordered.add_goal("G1", "top claim").unwrap();
        let e2 = reordered.add_evidence("E2", "analysis", 0.8).unwrap();
        let e1 = reordered.add_evidence("E1", "testing", 0.9).unwrap();
        reordered.support(g, e1).unwrap();
        reordered.support(g, e2).unwrap();
        assert_ne!(case.content_hash(), reordered.content_hash());
    }

    #[test]
    fn cyclic_file_hash_is_stable_and_distinct() {
        let cyclic = r#"{"schema":1,"title":"t","nodes":[{"name":"G1","statement":"a","kind":"Goal"},{"name":"G2","statement":"b","kind":"Goal"}],"children":[[1],[0]]}"#;
        let case: Case = serde_json::from_str(cyclic).unwrap();
        let h = case.content_hash();
        assert_eq!(h, case.clone().content_hash());
        let acyclic = r#"{"schema":1,"title":"t","nodes":[{"name":"G1","statement":"a","kind":"Goal"},{"name":"G2","statement":"b","kind":"Goal"}],"children":[[1],[]]}"#;
        let other: Case = serde_json::from_str(acyclic).unwrap();
        assert_ne!(h, other.content_hash());
    }

    #[test]
    fn content_hash_tracks_evaluation_relevant_state() {
        let (case, _, e1, _) = small_case();
        let baseline = case.content_hash();
        assert_eq!(baseline, case.clone().content_hash(), "hash is deterministic");

        // A confidence nudge by one ULP changes the hash.
        let mut tweaked = case.clone();
        tweaked.set_leaf_confidence(e1, 0.9 + f64::EPSILON).unwrap();
        assert_ne!(baseline, tweaked.content_hash());

        // A structural change (extra edge) changes the hash.
        let mut grown = case.clone();
        let e3 = grown.add_evidence("E3", "more", 0.5).unwrap();
        let g = grown.node_by_name("G1").unwrap();
        grown.support(g, e3).unwrap();
        assert_ne!(baseline, grown.content_hash());

        // Serialization round-trips preserve the hash bit-for-bit.
        let json = serde_json::to_string(&case).unwrap();
        let back: Case = serde_json::from_str(&json).unwrap();
        assert_eq!(baseline, back.content_hash());
    }
}
