//! The argument graph: nodes, edges, structural validation.

use crate::error::{CaseError, Result};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Opaque handle to a node in a [`Case`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NodeId(usize);

/// How a node's supporting children combine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Combination {
    /// The claim holds only if **every** child holds (conjunctive
    /// decomposition): doubts accumulate.
    AllOf,
    /// The claim holds if **any** child's argument is sound (independent
    /// legs, the paper's Section 4.2): doubts multiply.
    AnyOf,
}

/// The kind of an argument node, following GSN vocabulary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NodeKind {
    /// A claim to be supported (GSN goal).
    Goal,
    /// A reasoning step joining a goal to its support, with an explicit
    /// combination rule.
    Strategy(Combination),
    /// Leaf evidence (GSN solution) carrying elicited confidence that the
    /// evidence soundly establishes its parent.
    Evidence {
        /// `P(evidence is sound)`.
        confidence: f64,
    },
    /// An assumption the argument rests on, carrying the confidence that
    /// it is true. Assumptions attach to any non-leaf node and combine
    /// conjunctively with its support.
    Assumption {
        /// `P(assumption holds)`.
        confidence: f64,
    },
    /// Contextual information; ignored by propagation.
    Context,
}

/// One node of the case.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Short reference label, unique in the case (e.g. "G1").
    pub name: String,
    /// Free-text statement.
    pub statement: String,
    /// The node's kind and payload.
    pub kind: NodeKind,
}

/// A dependability case: a directed acyclic argument graph.
///
/// See the crate-level example for typical construction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Case {
    title: String,
    nodes: Vec<Node>,
    /// children[i] = nodes supporting node i.
    children: Vec<Vec<usize>>,
    by_name: HashMap<String, usize>,
}

impl Case {
    /// Creates an empty case.
    #[must_use]
    pub fn new(title: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            nodes: Vec::new(),
            children: Vec::new(),
            by_name: HashMap::new(),
        }
    }

    /// The case title.
    #[must_use]
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the case has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn add_node(
        &mut self,
        name: impl Into<String>,
        statement: impl Into<String>,
        kind: NodeKind,
    ) -> Result<NodeId> {
        let name = name.into();
        if self.by_name.contains_key(&name) {
            return Err(CaseError::DuplicateName(name));
        }
        let idx = self.nodes.len();
        self.by_name.insert(name.clone(), idx);
        self.nodes.push(Node { name, statement: statement.into(), kind });
        self.children.push(Vec::new());
        Ok(NodeId(idx))
    }

    /// Adds a goal (claim) node.
    ///
    /// # Errors
    ///
    /// [`CaseError::DuplicateName`] when the name is taken.
    pub fn add_goal(
        &mut self,
        name: impl Into<String>,
        statement: impl Into<String>,
    ) -> Result<NodeId> {
        self.add_node(name, statement, NodeKind::Goal)
    }

    /// Adds a strategy node with its combination rule.
    ///
    /// # Errors
    ///
    /// [`CaseError::DuplicateName`] when the name is taken.
    pub fn add_strategy(
        &mut self,
        name: impl Into<String>,
        statement: impl Into<String>,
        combination: Combination,
    ) -> Result<NodeId> {
        self.add_node(name, statement, NodeKind::Strategy(combination))
    }

    /// Adds a leaf evidence node carrying elicited confidence.
    ///
    /// # Errors
    ///
    /// [`CaseError::InvalidConfidence`] outside `[0, 1]`,
    /// [`CaseError::DuplicateName`] when the name is taken.
    pub fn add_evidence(
        &mut self,
        name: impl Into<String>,
        statement: impl Into<String>,
        confidence: f64,
    ) -> Result<NodeId> {
        check_confidence(confidence)?;
        self.add_node(name, statement, NodeKind::Evidence { confidence })
    }

    /// Adds an assumption node carrying the confidence it holds.
    ///
    /// # Errors
    ///
    /// [`CaseError::InvalidConfidence`] outside `[0, 1]`,
    /// [`CaseError::DuplicateName`] when the name is taken.
    pub fn add_assumption(
        &mut self,
        name: impl Into<String>,
        statement: impl Into<String>,
        confidence: f64,
    ) -> Result<NodeId> {
        check_confidence(confidence)?;
        self.add_node(name, statement, NodeKind::Assumption { confidence })
    }

    /// Adds a context node (ignored by propagation).
    ///
    /// # Errors
    ///
    /// [`CaseError::DuplicateName`] when the name is taken.
    pub fn add_context(
        &mut self,
        name: impl Into<String>,
        statement: impl Into<String>,
    ) -> Result<NodeId> {
        self.add_node(name, statement, NodeKind::Context)
    }

    /// Declares that `child` supports `parent`.
    ///
    /// # Errors
    ///
    /// [`CaseError::InvalidEdge`] for self-support, support *by* a goal
    /// of a leaf, support attached to leaves, or an edge that would close
    /// a cycle; [`CaseError::UnknownNode`] for dangling handles.
    pub fn support(&mut self, parent: NodeId, child: NodeId) -> Result<()> {
        let p = self.index(parent)?;
        let c = self.index(child)?;
        if p == c {
            return Err(CaseError::InvalidEdge { reason: "a node cannot support itself".into() });
        }
        match self.nodes[p].kind {
            NodeKind::Evidence { .. } | NodeKind::Context => {
                return Err(CaseError::InvalidEdge {
                    reason: format!("leaf node {} cannot be supported", self.nodes[p].name),
                });
            }
            _ => {}
        }
        if matches!(self.nodes[c].kind, NodeKind::Context) {
            return Err(CaseError::InvalidEdge {
                reason: "context nodes do not support claims; attach them as context".into(),
            });
        }
        if self.reaches(c, p) {
            return Err(CaseError::InvalidEdge {
                reason: format!(
                    "edge {} → {} would create a cycle",
                    self.nodes[p].name, self.nodes[c].name
                ),
            });
        }
        if self.children[p].contains(&c) {
            return Ok(()); // idempotent
        }
        self.children[p].push(c);
        Ok(())
    }

    /// Updates the elicited confidence of an evidence or assumption
    /// leaf — the hook used by what-if and importance analyses.
    ///
    /// # Errors
    ///
    /// [`CaseError::InvalidConfidence`] outside `[0, 1]`,
    /// [`CaseError::UnknownNode`] for a foreign handle, and
    /// [`CaseError::InvalidStructure`] when the node is not a leaf that
    /// carries confidence.
    pub fn set_leaf_confidence(&mut self, id: NodeId, confidence: f64) -> Result<()> {
        check_confidence(confidence)?;
        let i = self.index(id)?;
        match &mut self.nodes[i].kind {
            NodeKind::Evidence { confidence: c } | NodeKind::Assumption { confidence: c } => {
                *c = confidence;
                Ok(())
            }
            _ => Err(CaseError::InvalidStructure(format!(
                "node {} does not carry elicited confidence",
                self.nodes[i].name
            ))),
        }
    }

    /// Looks a node up by its reference label.
    #[must_use]
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.by_name.get(name).map(|&i| NodeId(i))
    }

    /// The node payload behind a handle.
    ///
    /// # Errors
    ///
    /// [`CaseError::UnknownNode`] for a handle from another case.
    pub fn node(&self, id: NodeId) -> Result<&Node> {
        self.nodes.get(id.0).ok_or_else(|| CaseError::UnknownNode(format!("#{}", id.0)))
    }

    /// The direct supporters of a node.
    ///
    /// # Errors
    ///
    /// [`CaseError::UnknownNode`] for a handle from another case.
    pub fn supporters(&self, id: NodeId) -> Result<Vec<NodeId>> {
        let i = self.index(id)?;
        Ok(self.children[i].iter().map(|&c| NodeId(c)).collect())
    }

    /// All nodes, in insertion order, paired with their handles.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes.iter().enumerate().map(|(i, n)| (NodeId(i), n))
    }

    /// The root goals: goal nodes no other node is supported by.
    #[must_use]
    pub fn roots(&self) -> Vec<NodeId> {
        let mut supported = vec![false; self.nodes.len()];
        for cs in &self.children {
            for &c in cs {
                supported[c] = true;
            }
        }
        self.nodes
            .iter()
            .enumerate()
            .filter(|(i, n)| matches!(n.kind, NodeKind::Goal) && !supported[*i])
            .map(|(i, _)| NodeId(i))
            .collect()
    }

    /// Structural validation: at least one root goal, and every non-leaf
    /// node on a path from a root is developed (has supporters).
    ///
    /// # Errors
    ///
    /// [`CaseError::InvalidStructure`] describing the first violation.
    pub fn validate(&self) -> Result<()> {
        let roots = self.roots();
        if roots.is_empty() {
            return Err(CaseError::InvalidStructure("no root goal".into()));
        }
        for (i, n) in self.nodes.iter().enumerate() {
            match n.kind {
                NodeKind::Goal | NodeKind::Strategy(_) if self.children[i].is_empty() => {
                    return Err(CaseError::InvalidStructure(format!(
                        "node {} is undeveloped (no support)",
                        n.name
                    )));
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Evaluates the case: validates, then propagates confidence.
    ///
    /// # Errors
    ///
    /// Structural errors from [`Case::validate`].
    pub fn propagate(&self) -> Result<crate::propagation::ConfidenceReport> {
        crate::propagation::propagate(self)
    }

    pub(crate) fn index(&self, id: NodeId) -> Result<usize> {
        if id.0 < self.nodes.len() {
            Ok(id.0)
        } else {
            Err(CaseError::UnknownNode(format!("#{}", id.0)))
        }
    }

    pub(crate) fn children_of(&self, i: usize) -> &[usize] {
        &self.children[i]
    }

    pub(crate) fn node_at(&self, i: usize) -> &Node {
        &self.nodes[i]
    }

    /// Is `to` reachable from `from` along support edges?
    fn reaches(&self, from: usize, to: usize) -> bool {
        let mut stack = vec![from];
        let mut seen = vec![false; self.nodes.len()];
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if seen[n] {
                continue;
            }
            seen[n] = true;
            stack.extend(self.children[n].iter().copied());
        }
        false
    }
}

impl fmt::Display for Case {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "case: {} ({} nodes)", self.title, self.nodes.len())?;
        for (i, n) in self.nodes.iter().enumerate() {
            let kids: Vec<&str> =
                self.children[i].iter().map(|&c| self.nodes[c].name.as_str()).collect();
            writeln!(f, "  {} [{:?}] ← {:?}", n.name, n.kind, kids)?;
        }
        Ok(())
    }
}

fn check_confidence(c: f64) -> Result<()> {
    if !(0.0..=1.0).contains(&c) {
        return Err(CaseError::InvalidConfidence(format!("{c} outside [0, 1]")));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_case() -> (Case, NodeId, NodeId, NodeId) {
        let mut case = Case::new("t");
        let g = case.add_goal("G1", "top claim").unwrap();
        let e1 = case.add_evidence("E1", "testing", 0.9).unwrap();
        let e2 = case.add_evidence("E2", "analysis", 0.8).unwrap();
        case.support(g, e1).unwrap();
        case.support(g, e2).unwrap();
        (case, g, e1, e2)
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut case = Case::new("t");
        case.add_goal("G1", "a").unwrap();
        assert!(matches!(case.add_goal("G1", "b"), Err(CaseError::DuplicateName(_))));
    }

    #[test]
    fn confidence_validation() {
        let mut case = Case::new("t");
        assert!(case.add_evidence("E1", "x", 1.5).is_err());
        assert!(case.add_evidence("E1", "x", -0.1).is_err());
        assert!(case.add_assumption("A1", "x", f64::NAN).is_err());
    }

    #[test]
    fn self_support_rejected() {
        let mut case = Case::new("t");
        let g = case.add_goal("G1", "a").unwrap();
        assert!(case.support(g, g).is_err());
    }

    #[test]
    fn leaves_cannot_be_supported() {
        let mut case = Case::new("t");
        let g = case.add_goal("G1", "a").unwrap();
        let e = case.add_evidence("E1", "x", 0.9).unwrap();
        let c = case.add_context("C1", "env").unwrap();
        assert!(case.support(e, g).is_err());
        assert!(case.support(c, g).is_err());
    }

    #[test]
    fn context_cannot_support() {
        let mut case = Case::new("t");
        let g = case.add_goal("G1", "a").unwrap();
        let c = case.add_context("C1", "env").unwrap();
        assert!(case.support(g, c).is_err());
    }

    #[test]
    fn cycles_rejected() {
        let mut case = Case::new("t");
        let g1 = case.add_goal("G1", "a").unwrap();
        let g2 = case.add_goal("G2", "b").unwrap();
        let g3 = case.add_goal("G3", "c").unwrap();
        case.support(g1, g2).unwrap();
        case.support(g2, g3).unwrap();
        let err = case.support(g3, g1);
        assert!(matches!(err, Err(CaseError::InvalidEdge { .. })));
    }

    #[test]
    fn support_is_idempotent() {
        let (mut case, g, e1, _) = small_case();
        case.support(g, e1).unwrap();
        assert_eq!(case.supporters(g).unwrap().len(), 2);
    }

    #[test]
    fn roots_are_unsupported_goals() {
        let (case, g, ..) = small_case();
        assert_eq!(case.roots(), vec![g]);
    }

    #[test]
    fn lookup_by_name() {
        let (case, g, ..) = small_case();
        assert_eq!(case.node_by_name("G1"), Some(g));
        assert_eq!(case.node_by_name("ZZ"), None);
        assert_eq!(case.node(g).unwrap().statement, "top claim");
    }

    #[test]
    fn validate_catches_undeveloped() {
        let mut case = Case::new("t");
        case.add_goal("G1", "a").unwrap();
        assert!(matches!(case.validate(), Err(CaseError::InvalidStructure(_))));
        let (good, ..) = small_case();
        assert!(good.validate().is_ok());
    }

    #[test]
    fn validate_requires_root_goal() {
        let mut case = Case::new("t");
        case.add_evidence("E1", "x", 0.9).unwrap();
        assert!(matches!(case.validate(), Err(CaseError::InvalidStructure(_))));
    }

    #[test]
    fn foreign_handles_rejected() {
        let (case, ..) = small_case();
        let other = Case::new("o");
        let bad = NodeId(42);
        assert!(case.node(bad).is_err());
        assert!(other.node(bad).is_err());
    }

    #[test]
    fn iter_and_display() {
        let (case, ..) = small_case();
        assert_eq!(case.iter().count(), 3);
        assert_eq!(case.len(), 3);
        assert!(!case.is_empty());
        let s = case.to_string();
        assert!(s.contains("G1") && s.contains("E2"), "{s}");
    }

    #[test]
    fn serde_round_trip() {
        let (case, ..) = small_case();
        let json = serde_json::to_string(&case).unwrap();
        let back: Case = serde_json::from_str(&json).unwrap();
        assert_eq!(case, back);
    }
}
