//! Graphviz DOT export of a case, with optional confidence annotations.

use crate::graph::{Case, NodeId, NodeKind};
use crate::ir::CaseIr;
use crate::propagation::ConfidenceReport;
use std::fmt::Write as _;

impl Case {
    /// Renders the case as a Graphviz DOT digraph.
    ///
    /// Nodes and edges are emitted in reverse topological order from the
    /// IR (roots first, supporters after the claims they support), so
    /// output depends only on case structure — stable under relabelling
    /// and pinned by a golden test. Graphs the IR refuses to lower
    /// (cyclic hand-edited files) fall back to insertion order, so the
    /// export still works for debugging broken files.
    ///
    /// When a [`ConfidenceReport`] is supplied, each participating node's
    /// label carries its independent confidence and dependence interval.
    ///
    /// # Examples
    ///
    /// ```
    /// use depcase_assurance::Case;
    ///
    /// let mut case = Case::new("demo");
    /// let g = case.add_goal("G1", "pfd < 1e-2")?;
    /// let e = case.add_evidence("E1", "testing", 0.9)?;
    /// case.support(g, e)?;
    /// let dot = case.to_dot(None);
    /// assert!(dot.contains("digraph"));
    /// assert!(dot.contains("G1"));
    /// # Ok::<(), depcase_assurance::CaseError>(())
    /// ```
    #[must_use]
    pub fn to_dot(&self, report: Option<&ConfidenceReport>) -> String {
        let order: Vec<usize> = match CaseIr::build(self) {
            Ok(ir) => ir.topo().iter().rev().map(|&i| i as usize).collect(),
            Err(_) => (0..self.len()).collect(),
        };
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}\" {{", escape(self.title()));
        let _ = writeln!(out, "  rankdir=TB;");
        for &i in &order {
            let node = self.node_at(i);
            let id = NodeId::from_index(i);
            let (shape, fill) = match node.kind {
                NodeKind::Goal => ("box", "#dbeafe"),
                NodeKind::Strategy(_) => ("parallelogram", "#ede9fe"),
                NodeKind::Evidence { .. } => ("circle", "#dcfce7"),
                NodeKind::Assumption { .. } => ("ellipse", "#fef9c3"),
                NodeKind::Context => ("note", "#f3f4f6"),
            };
            let mut label = format!("{}\\n{}", escape(&node.name), escape(&node.statement));
            if let Some(r) = report {
                if let Some(c) = r.confidence(id) {
                    let _ = write!(
                        label,
                        "\\nconf {:.4} [{:.4}, {:.4}]",
                        c.independent, c.worst_case, c.best_case
                    );
                }
            }
            let _ = writeln!(
                out,
                "  \"{}\" [shape={shape}, style=filled, fillcolor=\"{fill}\", label=\"{label}\"];",
                escape(&node.name)
            );
        }
        for &i in &order {
            let name = &self.node_at(i).name;
            for &c in self.children_of(i) {
                let _ = writeln!(
                    out,
                    "  \"{}\" -> \"{}\";",
                    escape(name),
                    escape(&self.node_at(c).name)
                );
            }
        }
        out.push_str("}\n");
        out
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Combination;

    fn demo_case() -> Case {
        let mut case = Case::new("demo \"case\"");
        let g = case.add_goal("G1", "top").unwrap();
        let s = case.add_strategy("S1", "legs", Combination::AnyOf).unwrap();
        let e = case.add_evidence("E1", "test", 0.9).unwrap();
        let a = case.add_assumption("A1", "env stable", 0.95).unwrap();
        let c = case.add_context("C1", "plant").unwrap();
        case.support(g, s).unwrap();
        case.support(s, e).unwrap();
        case.support(g, a).unwrap();
        let _ = c;
        case
    }

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let case = demo_case();
        let dot = case.to_dot(None);
        for name in ["G1", "S1", "E1", "A1", "C1"] {
            assert!(dot.contains(name), "missing {name} in {dot}");
        }
        assert!(dot.contains("\"G1\" -> \"S1\""));
        assert!(dot.contains("\"S1\" -> \"E1\""));
    }

    #[test]
    fn dot_escapes_quotes() {
        let case = demo_case();
        let dot = case.to_dot(None);
        assert!(dot.contains("demo \\\"case\\\""));
    }

    #[test]
    fn dot_with_report_annotates_confidence() {
        let case = demo_case();
        let report = case.propagate().unwrap();
        let dot = case.to_dot(Some(&report));
        assert!(dot.contains("conf 0.9"), "{dot}");
    }

    #[test]
    fn dot_output_is_pinned() {
        // Golden test: node and edge order come from the IR's reverse
        // topological order, so the full rendering is structural and
        // byte-stable. If this changes, it is a deliberate format break.
        let golden = r##"digraph "demo \"case\"" {
  rankdir=TB;
  "C1" [shape=note, style=filled, fillcolor="#f3f4f6", label="C1\nplant"];
  "G1" [shape=box, style=filled, fillcolor="#dbeafe", label="G1\ntop"];
  "A1" [shape=ellipse, style=filled, fillcolor="#fef9c3", label="A1\nenv stable"];
  "S1" [shape=parallelogram, style=filled, fillcolor="#ede9fe", label="S1\nlegs"];
  "E1" [shape=circle, style=filled, fillcolor="#dcfce7", label="E1\ntest"];
  "G1" -> "S1";
  "G1" -> "A1";
  "S1" -> "E1";
}
"##;
        assert_eq!(demo_case().to_dot(None), golden);
    }

    #[test]
    fn cyclic_case_still_renders() {
        let cyclic = r#"{"schema":1,"title":"t","nodes":[{"name":"G1","statement":"a","kind":"Goal"},{"name":"G2","statement":"b","kind":"Goal"}],"children":[[1],[0]]}"#;
        let case: Case = serde_json::from_str(cyclic).unwrap();
        let dot = case.to_dot(None);
        assert!(dot.contains("\"G1\" -> \"G2\""), "{dot}");
        assert!(dot.contains("\"G2\" -> \"G1\""), "{dot}");
    }

    #[test]
    fn dot_shapes_by_kind() {
        let dot = demo_case().to_dot(None);
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("shape=parallelogram"));
        assert!(dot.contains("shape=circle"));
        assert!(dot.contains("shape=note"));
    }
}
