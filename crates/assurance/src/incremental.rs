//! Incremental recomputation: point edits in O(depth), not O(n).
//!
//! An [`Incremental`] session owns a case together with every derived
//! artefact — its [`CaseIr`], the dense propagated values, a compiled
//! [`EvalPlan`] and a memo table of node confidences keyed by subtree
//! hash. An edit (set a leaf confidence, add a leaf, retarget an edge)
//! marks only the dirty spine — the edited node plus its ancestors —
//! recomputes those values children-before-parents, and patches the
//! plan, leaving everything off-spine untouched.
//!
//! The memo table makes *revisited* states free: because keys are
//! Merkle-style subtree hashes, undoing an edit (or re-eliciting the
//! same confidence) finds every spine value already computed and counts
//! it as reused instead of recomputed. Importance analysis leans on
//! exactly this: each leaf is driven to 1, to 0, then restored, and the
//! restore pass is pure reuse. With [`Incremental::with_memo`] the memo
//! is a shared [`crate::memo::MemoStore`] instead of a private table,
//! so the reuse extends across sessions and across *cases* that share
//! subtrees (see [`crate::memo`]).
//!
//! Answers are bit-identical to a from-scratch
//! [`propagate`](crate::propagation::propagate): both paths produce
//! every float in the same shared kernel, and a node's value depends
//! only on its children's values — which the dirty spine preserves by
//! construction.

use crate::error::{CaseError, Result};
use crate::graph::{Case, NodeId, NodeKind};
use crate::ir::CaseIr;
use crate::memo::MemoStore;
use crate::plan::EvalPlan;
use crate::propagation::{eval_ir_node, ConfidenceReport, NodeConfidence};
use crate::trace::Tracer;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// What one edit (or one session so far) cost and saved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EditStats {
    /// Nodes whose confidence was recomputed through the kernel.
    pub nodes_recomputed: u64,
    /// Nodes whose confidence was served from the subtree-hash memo.
    pub nodes_reused: u64,
}

/// The kind of leaf an [`Incremental::add_leaf`] edit creates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeafKind {
    /// Evidence carrying elicited confidence.
    Evidence,
    /// An assumption; conjoins at its parent.
    Assumption,
}

/// A live editing session over one case, holding every derived artefact
/// in sync under point edits.
///
/// # Examples
///
/// ```
/// use depcase_assurance::{Case, Incremental};
///
/// let mut case = Case::new("t");
/// let g = case.add_goal("G", "claim")?;
/// let e1 = case.add_evidence("E1", "test", 0.9)?;
/// let e2 = case.add_evidence("E2", "review", 0.8)?;
/// case.support(g, e1)?;
/// case.support(g, e2)?;
///
/// let mut session = Incremental::new(case)?;
/// let stats = session.set_confidence(e1, 0.95)?;
/// // Only the dirty spine (E1 and G) was touched:
/// assert_eq!(stats.nodes_recomputed + stats.nodes_reused, 2);
/// let top = session.confidence(g).unwrap();
/// assert!((top.independent - 0.95 * 0.8).abs() < 1e-12);
/// # Ok::<(), depcase_assurance::CaseError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Incremental {
    case: Case,
    ir: CaseIr,
    values: Vec<Option<NodeConfidence>>,
    plan: EvalPlan,
    /// Propagated confidence keyed by subtree hash. Trusts 64-bit FNV
    /// not to collide — the same bet the service plan cache already
    /// makes on `content_hash`.
    memo: Memo,
    recomputed: u64,
    reused: u64,
}

/// Where a session's subtree-hash memo lives.
///
/// `Private` is the original per-session table with clear-on-overflow
/// bounding — the default, and what library users get from
/// [`Incremental::new`]. `Shared` plugs the session into an external
/// [`MemoStore`] (the service's global [`crate::memo::SharedMemo`]), so
/// identical subtrees across *different* sessions and cases share one
/// computed value. Both backends answer bit-identical values: keys are
/// Merkle subtree hashes and the kernel is deterministic, so a hit can
/// never differ from a recompute.
#[derive(Debug, Clone)]
enum Memo {
    Private(HashMap<u64, NodeConfidence>),
    Shared(Arc<dyn MemoStore>),
}

impl Memo {
    fn get(&self, key: u64) -> Option<NodeConfidence> {
        match self {
            Memo::Private(map) => map.get(&key).copied(),
            Memo::Shared(store) => store.get(key),
        }
    }

    fn insert(&mut self, key: u64, value: NodeConfidence, cap: usize) {
        match self {
            Memo::Private(map) => {
                if map.len() >= cap {
                    map.clear();
                }
                map.insert(key, value);
            }
            Memo::Shared(store) => store.insert(key, value),
        }
    }
}

impl Incremental {
    /// Caps the *private* memo at a multiple of the case size; a
    /// session that sweeps enormous numbers of distinct states
    /// (importance over a huge case) stays bounded. A shared
    /// [`MemoStore`] enforces its own bound and ignores this.
    fn memo_cap(n: usize) -> usize {
        (16 * n).max(4096)
    }

    /// Builds a session: validates, lowers, fully propagates (seeding
    /// the memo) and compiles the plan.
    ///
    /// # Errors
    ///
    /// Structural errors from [`Case::validate`], or
    /// [`CaseError::InvalidStructure`] for a cyclic graph.
    pub fn new(case: Case) -> Result<Self> {
        Self::build(case, Memo::Private(HashMap::new()))
    }

    /// Builds a session whose memo is the shared `store` instead of a
    /// private table: every subtree value it computes is published to
    /// the store, and every subtree the store already knows — from this
    /// session, an earlier one, or a *different case* sharing the
    /// subtree — is reused without float work. Answers are
    /// bit-identical to [`Incremental::new`] by construction (equal
    /// subtree hashes always map to equal bits).
    ///
    /// Cloning the session shares the same store.
    ///
    /// # Errors
    ///
    /// As [`Incremental::new`].
    pub fn with_memo(case: Case, store: Arc<dyn MemoStore>) -> Result<Self> {
        Self::build(case, Memo::Shared(store))
    }

    /// [`Incremental::with_memo`] with the same `full_propagate` phase
    /// reported to `tracer` as [`Incremental::new_traced`].
    ///
    /// # Errors
    ///
    /// As [`Incremental::new`].
    pub fn with_memo_traced<T: Tracer + ?Sized>(
        case: Case,
        store: Arc<dyn MemoStore>,
        tracer: &T,
    ) -> Result<Self> {
        let started = Instant::now();
        let session = Self::with_memo(case, store)?;
        tracer.phase("full_propagate", started.elapsed());
        tracer.count("case_nodes", session.ir.len() as u64);
        Ok(session)
    }

    fn build(case: Case, memo: Memo) -> Result<Self> {
        case.validate()?;
        let ir = CaseIr::build(&case)?;
        let plan = EvalPlan::from_ir(&ir);
        let mut session =
            Incremental { case, ir, values: Vec::new(), plan, memo, recomputed: 0, reused: 0 };
        session.values = vec![None; session.ir.len()];
        let topo: Vec<u32> = session.ir.topo().to_vec();
        for &t in &topo {
            session.eval_node(t as usize);
        }
        Ok(session)
    }

    /// [`Incremental::new`] with a `full_propagate` phase (validate,
    /// lower, compile, seed the memo) reported to `tracer`.
    ///
    /// # Errors
    ///
    /// As [`Incremental::new`].
    pub fn new_traced<T: Tracer + ?Sized>(case: Case, tracer: &T) -> Result<Self> {
        let started = Instant::now();
        let session = Self::new(case)?;
        tracer.phase("full_propagate", started.elapsed());
        tracer.count("case_nodes", session.ir.len() as u64);
        Ok(session)
    }

    /// The current state of the case under edit.
    #[must_use]
    pub fn case(&self) -> &Case {
        &self.case
    }

    /// The lowered IR, kept in sync with the case.
    #[must_use]
    pub fn ir(&self) -> &CaseIr {
        &self.ir
    }

    /// The compiled plan, kept in sync with the case — hand it straight
    /// to [`crate::MonteCarlo::run_plan`].
    #[must_use]
    pub fn plan(&self) -> &EvalPlan {
        &self.plan
    }

    /// The confidence currently attributed to a node, if it
    /// participates.
    #[must_use]
    pub fn confidence(&self, id: NodeId) -> Option<NodeConfidence> {
        *self.values.get(self.case.index(id).ok()?)?
    }

    /// Snapshots the current values as a [`ConfidenceReport`],
    /// bit-identical to `self.case().propagate()`.
    #[must_use]
    pub fn report(&self) -> ConfidenceReport {
        let roots = self.ir.roots().iter().map(|&r| NodeId::from_index(r as usize)).collect();
        ConfidenceReport::from_parts(self.values.clone(), roots)
    }

    /// The case's content hash, maintained incrementally — equal to
    /// `self.case().content_hash()` at every point.
    #[must_use]
    pub fn case_hash(&self) -> u64 {
        self.ir.case_hash()
    }

    /// Cumulative recompute/reuse counters since the session started
    /// (including the initial full propagation).
    #[must_use]
    pub fn totals(&self) -> EditStats {
        EditStats { nodes_recomputed: self.recomputed, nodes_reused: self.reused }
    }

    /// Re-elicits the confidence of an evidence or assumption leaf,
    /// recomputing only the dirty spine.
    ///
    /// # Errors
    ///
    /// [`CaseError::InvalidConfidence`] outside `[0, 1]`,
    /// [`CaseError::UnknownNode`] for a foreign handle,
    /// [`CaseError::InvalidStructure`] when the node is not a
    /// confidence-carrying leaf.
    pub fn set_confidence(&mut self, id: NodeId, confidence: f64) -> Result<EditStats> {
        let before = self.totals();
        self.case.set_leaf_confidence(id, confidence)?;
        let i = self.case.index(id)?;
        self.ir.set_leaf_confidence(i, confidence);
        let dirty = self.ir.dirty_spine(i);
        self.ir.recompute_hashes(&dirty);
        for &d in &dirty {
            self.eval_node(d as usize);
        }
        self.plan.set_leaf_confidence(i as u32, confidence);
        Ok(self.delta(before))
    }

    /// [`Incremental::set_confidence`] with a `dirty_spine` phase and a
    /// `spine_nodes` count (recomputed + reused) reported to `tracer`.
    ///
    /// # Errors
    ///
    /// As [`Incremental::set_confidence`].
    pub fn set_confidence_traced<T: Tracer + ?Sized>(
        &mut self,
        id: NodeId,
        confidence: f64,
        tracer: &T,
    ) -> Result<EditStats> {
        let started = Instant::now();
        let stats = self.set_confidence(id, confidence)?;
        report_spine(tracer, started, &stats);
        Ok(stats)
    }

    /// Adds a new evidence or assumption leaf under `parent`. Structure
    /// changes rebuild the IR and plan (cheap, no float work); values
    /// are still only recomputed along the dirty spine.
    ///
    /// # Errors
    ///
    /// [`CaseError::UnknownNode`] for a foreign parent handle,
    /// [`CaseError::InvalidEdge`] when the parent is a leaf or context
    /// node, plus the name/confidence errors of
    /// [`Case::add_evidence`].
    pub fn add_leaf(
        &mut self,
        parent: NodeId,
        name: impl Into<String>,
        statement: impl Into<String>,
        kind: LeafKind,
        confidence: f64,
    ) -> Result<(NodeId, EditStats)> {
        let before = self.totals();
        let p = self.case.index(parent)?;
        // Pre-validate the edge so the node insertion below cannot be
        // followed by a failed `support` (which would orphan the node).
        match self.case.node_at(p).kind {
            NodeKind::Goal | NodeKind::Strategy(_) => {}
            _ => {
                return Err(CaseError::InvalidEdge {
                    reason: format!("leaf node {} cannot be supported", self.case.node_at(p).name),
                });
            }
        }
        let id = match kind {
            LeafKind::Evidence => self.case.add_evidence(name, statement, confidence)?,
            LeafKind::Assumption => self.case.add_assumption(name, statement, confidence)?,
        };
        self.case.support(parent, id).expect("pre-validated edge cannot fail");
        self.rebuild_structure();
        self.values.push(None);
        let i = self.case.index(id)?;
        for &d in &self.ir.dirty_spine(i) {
            self.eval_node(d as usize);
        }
        Ok((id, self.delta(before)))
    }

    /// [`Incremental::add_leaf`] with the same `dirty_spine` phase and
    /// `spine_nodes` count as [`Incremental::set_confidence_traced`].
    ///
    /// # Errors
    ///
    /// As [`Incremental::add_leaf`].
    pub fn add_leaf_traced<T: Tracer + ?Sized>(
        &mut self,
        parent: NodeId,
        name: impl Into<String>,
        statement: impl Into<String>,
        kind: LeafKind,
        confidence: f64,
        tracer: &T,
    ) -> Result<(NodeId, EditStats)> {
        let started = Instant::now();
        let (id, stats) = self.add_leaf(parent, name, statement, kind, confidence)?;
        report_spine(tracer, started, &stats);
        Ok((id, stats))
    }

    /// Replaces the support edge `parent → from` with `parent → to`
    /// (position-preserving, see [`Case::retarget_support`]), then
    /// recomputes the dirty spine above `parent`.
    ///
    /// # Errors
    ///
    /// As [`Case::retarget_support`].
    pub fn retarget(&mut self, parent: NodeId, from: NodeId, to: NodeId) -> Result<EditStats> {
        let before = self.totals();
        self.case.retarget_support(parent, from, to)?;
        self.rebuild_structure();
        let p = self.case.index(parent)?;
        for &d in &self.ir.dirty_spine(p) {
            self.eval_node(d as usize);
        }
        Ok(self.delta(before))
    }

    /// [`Incremental::retarget`] with the same `dirty_spine` phase and
    /// `spine_nodes` count as [`Incremental::set_confidence_traced`].
    ///
    /// # Errors
    ///
    /// As [`Incremental::retarget`].
    pub fn retarget_traced<T: Tracer + ?Sized>(
        &mut self,
        parent: NodeId,
        from: NodeId,
        to: NodeId,
        tracer: &T,
    ) -> Result<EditStats> {
        let started = Instant::now();
        let stats = self.retarget(parent, from, to)?;
        report_spine(tracer, started, &stats);
        Ok(stats)
    }

    /// Relowers the IR and plan after a structural edit. Node indices
    /// are append-only, so existing values stay valid off the spine.
    fn rebuild_structure(&mut self) {
        self.ir = CaseIr::build(&self.case)
            .expect("edited cases stay acyclic: every edit path re-validates edges");
        self.plan = EvalPlan::from_ir(&self.ir);
    }

    /// Computes (or recalls) the value of node `i`, whose children must
    /// already hold current values.
    fn eval_node(&mut self, i: usize) {
        if matches!(self.ir.kind(i), crate::ir::IrKind::Context) {
            return;
        }
        let key = self.ir.subtree_hash(i);
        let value = if let Some(v) = self.memo.get(key) {
            self.reused += 1;
            v
        } else {
            let v = eval_ir_node(&self.ir, i, &self.values);
            self.recomputed += 1;
            self.memo.insert(key, v, Self::memo_cap(self.ir.len()));
            v
        };
        self.values[i] = Some(value);
    }

    fn delta(&self, before: EditStats) -> EditStats {
        EditStats {
            nodes_recomputed: self.recomputed - before.nodes_recomputed,
            nodes_reused: self.reused - before.nodes_reused,
        }
    }
}

/// Shared phase report of the traced edit entry points: the elapsed
/// `dirty_spine` phase plus how many spine nodes the edit touched.
fn report_spine<T: Tracer + ?Sized>(tracer: &T, started: Instant, stats: &EditStats) {
    tracer.phase("dirty_spine", started.elapsed());
    tracer.count("spine_nodes", stats.nodes_recomputed + stats.nodes_reused);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Combination;

    fn ladder() -> (Case, NodeId, NodeId) {
        let mut case = Case::new("t");
        let g = case.add_goal("G", "top").unwrap();
        let s = case.add_strategy("S", "legs", Combination::AnyOf).unwrap();
        let e1 = case.add_evidence("E1", "a", 0.9).unwrap();
        let e2 = case.add_evidence("E2", "b", 0.7).unwrap();
        let a = case.add_assumption("A", "env", 0.95).unwrap();
        case.support(g, s).unwrap();
        case.support(s, e1).unwrap();
        case.support(s, e2).unwrap();
        case.support(g, a).unwrap();
        (case, g, e1)
    }

    fn assert_bit_identical(session: &Incremental) {
        let fresh = session.case().propagate().unwrap();
        let live = session.report();
        for (id, _) in session.case().iter() {
            match (fresh.confidence(id), live.confidence(id)) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert_eq!(a.independent.to_bits(), b.independent.to_bits());
                    assert_eq!(a.worst_case.to_bits(), b.worst_case.to_bits());
                    assert_eq!(a.best_case.to_bits(), b.best_case.to_bits());
                }
                other => panic!("participation mismatch for {id:?}: {other:?}"),
            }
        }
        assert_eq!(session.case_hash(), session.case().content_hash());
    }

    #[test]
    fn initial_state_matches_full_propagation() {
        let (case, ..) = ladder();
        let session = Incremental::new(case).unwrap();
        assert_bit_identical(&session);
    }

    #[test]
    fn set_confidence_touches_only_the_spine() {
        let (case, _, e1) = ladder();
        let mut session = Incremental::new(case).unwrap();
        let stats = session.set_confidence(e1, 0.91).unwrap();
        // Spine is E1 → S → G.
        assert_eq!(stats.nodes_recomputed + stats.nodes_reused, 3);
        assert_bit_identical(&session);
    }

    #[test]
    fn undo_is_pure_reuse() {
        let (case, _, e1) = ladder();
        let mut session = Incremental::new(case).unwrap();
        session.set_confidence(e1, 0.5).unwrap();
        let back = session.set_confidence(e1, 0.9).unwrap();
        assert_eq!(back.nodes_recomputed, 0, "restoring a seen state recomputes nothing");
        assert_eq!(back.nodes_reused, 3);
        assert_bit_identical(&session);
    }

    #[test]
    fn add_leaf_extends_plan_and_values() {
        let (case, g, _) = ladder();
        let mut session = Incremental::new(case).unwrap();
        let (id, _) = session.add_leaf(g, "E9", "audit", LeafKind::Evidence, 0.8).unwrap();
        assert!(session.confidence(id).is_some());
        assert_eq!(session.plan().leaf_count(), 4);
        assert_bit_identical(&session);
        // Invalid parents leave the session (and its case) untouched.
        let n = session.case().len();
        assert!(session.add_leaf(id, "E10", "x", LeafKind::Assumption, 0.5).is_err());
        assert!(session.add_leaf(g, "E9", "dup", LeafKind::Evidence, 0.5).is_err());
        assert_eq!(session.case().len(), n);
        assert_bit_identical(&session);
    }

    #[test]
    fn retarget_moves_support_and_stays_consistent() {
        let (case, g, _) = ladder();
        let mut session = Incremental::new(case).unwrap();
        let (e9, _) = session.add_leaf(g, "E9", "audit", LeafKind::Evidence, 0.6).unwrap();
        let s = session.case().node_by_name("S").unwrap();
        let e2 = session.case().node_by_name("E2").unwrap();
        // Point S's weaker leg at the shared audit evidence instead.
        let stats = session.retarget(s, e2, e9).unwrap();
        assert!(stats.nodes_recomputed + stats.nodes_reused >= 2);
        assert_bit_identical(&session);
        // An invalid retarget (E9 already supports G) errors and leaves
        // the session untouched.
        let a = session.case().node_by_name("A").unwrap();
        assert!(session.retarget(g, a, e9).is_err());
        assert_bit_identical(&session);
    }

    #[test]
    fn plan_stays_in_sync_with_recompile() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let (case, _, e1) = ladder();
        let mut session = Incremental::new(case).unwrap();
        session.set_confidence(e1, 0.33).unwrap();
        let fresh = EvalPlan::compile(session.case()).unwrap();
        let run = |plan: &EvalPlan| {
            let mut rng = StdRng::seed_from_u64(5);
            let mut buf = plan.new_buffer();
            (0..256)
                .map(|_| {
                    plan.evaluate(&mut rng, &mut buf);
                    buf.clone()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(session.plan()), run(&fresh));
    }
}
