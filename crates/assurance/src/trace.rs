//! Phase hooks for external tracing of the evaluation kernels.
//!
//! The service layers a request-scoped span tree over the assurance
//! kernels (plan compilation, batch propagation, the Monte-Carlo chunk
//! loop, dirty-spine edits), but this crate must not depend on the
//! service — so the kernels report *phases* through the [`Tracer`]
//! trait instead. Every hook method has an empty `#[inline]` default,
//! and [`NoTracer`] overrides nothing: with tracing disabled the traced
//! entry points compile down to the untraced ones plus two monotonic
//! clock reads per phase, and the hook call itself costs one branch at
//! most (usually zero — it inlines away).
//!
//! Phases are reported *after the fact* from the coordinating thread —
//! `phase("mc_sample_loop", elapsed)` fires once the parallel sampling
//! loop has joined, never from inside a scoped worker — so a tracer
//! backed by thread-local state sees every phase of a request on the
//! thread that issued it.

use std::time::Duration;

/// Receiver for kernel phase reports.
///
/// Implementations must be cheap: hooks fire on the request hot path.
/// All methods default to no-ops so tracers override only what they
/// record.
pub trait Tracer {
    /// One completed kernel phase: `name` is a stable identifier
    /// (`"plan_compile"`, `"mc_sample_loop"`, …), `elapsed` its
    /// wall-clock duration, measured on the calling thread.
    #[inline]
    fn phase(&self, name: &'static str, elapsed: Duration) {
        let _ = (name, elapsed);
    }

    /// A named quantity observed during the surrounding phase (samples
    /// drawn, lanes propagated, spine nodes recomputed).
    #[inline]
    fn count(&self, name: &'static str, n: u64) {
        let _ = (name, n);
    }
}

/// The disabled tracer: every hook keeps its empty default, so traced
/// entry points instantiated with `&NoTracer` optimize down to their
/// untraced twins.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoTracer;

impl Tracer for NoTracer {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    #[derive(Default)]
    struct Recorder {
        phases: RefCell<Vec<(&'static str, Duration)>>,
        counts: RefCell<Vec<(&'static str, u64)>>,
    }

    impl Tracer for Recorder {
        fn phase(&self, name: &'static str, elapsed: Duration) {
            self.phases.borrow_mut().push((name, elapsed));
        }
        fn count(&self, name: &'static str, n: u64) {
            self.counts.borrow_mut().push((name, n));
        }
    }

    #[test]
    fn no_tracer_accepts_everything() {
        NoTracer.phase("x", Duration::from_micros(1));
        NoTracer.count("y", 7);
    }

    #[test]
    fn custom_tracer_sees_reports() {
        let rec = Recorder::default();
        rec.phase("plan_compile", Duration::from_micros(3));
        rec.count("mc_samples", 1024);
        assert_eq!(rec.phases.borrow().as_slice(), &[("plan_compile", Duration::from_micros(3))]);
        assert_eq!(rec.counts.borrow().as_slice(), &[("mc_samples", 1024)]);
    }
}
