//! Arena-based intermediate representation of a case.
//!
//! [`CaseIr`] is the single lowered form every evaluation pass consumes:
//! dense indices, CSR child *and* parent adjacency, a topological order
//! computed once, and a Merkle-style subtree hash per node. The name-keyed
//! [`Case`] stays the authoring surface; the IR is what plan compilation
//! ([`crate::plan`]), analytic propagation ([`crate::propagation`]),
//! importance analysis, DOT export and the incremental engine
//! ([`crate::incremental`]) actually walk.
//!
//! # Subtree hashes
//!
//! Every node carries an FNV-1a hash over its evaluation-relevant payload
//! (kind tag, confidence bits for leaves, combination rule for
//! strategies) plus, for each child **in combination order**, the child's
//! arena index and subtree hash. Including the child *index* — not just
//! the child hash — is deliberate: cases are DAGs, and two structures
//! whose children are equal-by-hash but distinct-by-identity (one shared
//! leaf vs. two equal leaves) must hash differently, because Monte-Carlo
//! samples a shared leaf once and two equal leaves independently.
//!
//! [`CaseIr::case_hash`] folds **all** per-node hashes in index order
//! (not just the root's): the Monte-Carlo RNG stream draws one variate
//! per leaf in slot order, so even a leaf unreachable from the root
//! shifts every subsequent draw and is evaluation-relevant.

use crate::error::{CaseError, Result};
use crate::graph::{Case, Combination, NodeKind, CASE_SCHEMA_VERSION};

/// Minimal FNV-1a accumulator shared by the subtree and case hashes.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Fnv(pub(crate) u64);

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;

    pub(crate) fn new() -> Self {
        Fnv(Self::OFFSET)
    }

    pub(crate) fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    pub(crate) fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }
}

/// Evaluation-relevant payload of one IR node. Names, statements and
/// titles are deliberately absent: they never change an answer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IrKind {
    /// A claim; combines its support conjunctively.
    Goal,
    /// A reasoning step with an explicit combination rule.
    Strategy(Combination),
    /// Evidence leaf carrying elicited confidence.
    Evidence(f64),
    /// Assumption leaf; conjoins at its parent.
    Assumption(f64),
    /// Contextual information; excluded from evaluation.
    Context,
}

impl IrKind {
    fn of(kind: &NodeKind) -> Self {
        match *kind {
            NodeKind::Goal => IrKind::Goal,
            NodeKind::Strategy(c) => IrKind::Strategy(c),
            NodeKind::Evidence { confidence } => IrKind::Evidence(confidence),
            NodeKind::Assumption { confidence } => IrKind::Assumption(confidence),
            NodeKind::Context => IrKind::Context,
        }
    }

    /// The elicited confidence, for leaves that carry one.
    #[must_use]
    pub fn confidence(&self) -> Option<f64> {
        match *self {
            IrKind::Evidence(c) | IrKind::Assumption(c) => Some(c),
            _ => None,
        }
    }

    /// True for evidence and assumption leaves.
    #[must_use]
    pub fn is_leaf(&self) -> bool {
        matches!(self, IrKind::Evidence(_) | IrKind::Assumption(_))
    }

    /// Stable discriminant used by both hash flavours (matches the
    /// pre-IR `content_hash` tags).
    pub(crate) fn tag(&self) -> u8 {
        match self {
            IrKind::Goal => 0,
            IrKind::Strategy(Combination::AllOf) => 1,
            IrKind::Strategy(Combination::AnyOf) => 2,
            IrKind::Evidence(_) => 3,
            IrKind::Assumption(_) => 4,
            IrKind::Context => 5,
        }
    }
}

/// The lowered case: dense arena indices, CSR adjacency both ways, one
/// precomputed topological order, and per-node subtree hashes.
///
/// Arena index `i` of the IR is exactly insertion index `i` of the
/// source [`Case`], so slot buffers, plans and reports all share the
/// same indexing.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseIr {
    kinds: Vec<IrKind>,
    /// CSR offsets into `child_list`; length `n + 1`.
    child_start: Vec<u32>,
    /// Children (supporters) in combination order.
    child_list: Vec<u32>,
    /// CSR offsets into `parent_list`; length `n + 1`.
    parent_start: Vec<u32>,
    /// Parents (supported nodes), grouped per node.
    parent_list: Vec<u32>,
    /// Node indices, children strictly before parents.
    topo: Vec<u32>,
    /// `pos[i]` = position of node `i` in `topo`.
    pos: Vec<u32>,
    /// Merkle-style subtree hash per node.
    hashes: Vec<u64>,
    /// Root goals (no parents), in index order.
    roots: Vec<u32>,
}

impl CaseIr {
    /// Lowers a case into the arena form.
    ///
    /// # Errors
    ///
    /// [`CaseError::InvalidStructure`] when the support graph contains a
    /// cycle. API-built cases are acyclic by construction
    /// ([`Case::support`] rejects closing edges); a cycle can only come
    /// from a hand-edited save file, and lowering is where it is caught
    /// instead of overflowing the stack later.
    pub fn build(case: &Case) -> Result<Self> {
        let n = case.len();
        let mut kinds = Vec::with_capacity(n);
        for (_, node) in case.iter() {
            kinds.push(IrKind::of(&node.kind));
        }

        // Child CSR, preserving combination order.
        let mut child_start = Vec::with_capacity(n + 1);
        let mut child_list = Vec::new();
        child_start.push(0u32);
        for i in 0..n {
            for &c in case.children_of(i) {
                child_list.push(c as u32);
            }
            child_start.push(child_list.len() as u32);
        }

        // Parent CSR via counting sort.
        let mut parent_count = vec![0u32; n];
        for &c in &child_list {
            parent_count[c as usize] += 1;
        }
        let mut parent_start = Vec::with_capacity(n + 1);
        parent_start.push(0u32);
        for i in 0..n {
            parent_start.push(parent_start[i] + parent_count[i]);
        }
        let mut fill: Vec<u32> = parent_start[..n].to_vec();
        let mut parent_list = vec![0u32; child_list.len()];
        for p in 0..n {
            for &c in case.children_of(p) {
                parent_list[fill[c] as usize] = p as u32;
                fill[c] += 1;
            }
        }

        // Topological order: iterative post-order DFS from every node in
        // index order — the same walk plan compilation always used, so
        // step order (and therefore every sampled bit) is unchanged.
        let mut topo: Vec<u32> = Vec::with_capacity(n);
        let mut visited = vec![false; n];
        for root in 0..n {
            if visited[root] {
                continue;
            }
            let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
            visited[root] = true;
            while let Some(&(node, pos)) = stack.last() {
                let children = case.children_of(node);
                if pos < children.len() {
                    stack.last_mut().expect("nonempty").1 += 1;
                    let c = children[pos];
                    if !visited[c] {
                        visited[c] = true;
                        stack.push((c, 0));
                    }
                } else {
                    topo.push(node as u32);
                    stack.pop();
                }
            }
        }
        let mut pos = vec![0u32; n];
        for (p, &i) in topo.iter().enumerate() {
            pos[i as usize] = p as u32;
        }
        // A DFS post-order is a valid topological order iff the graph is
        // acyclic; verify every edge points backwards in `topo`.
        for i in 0..n {
            let lo = child_start[i] as usize;
            let hi = child_start[i + 1] as usize;
            for &c in &child_list[lo..hi] {
                if pos[c as usize] >= pos[i] {
                    return Err(CaseError::InvalidStructure(
                        "support graph contains a cycle".into(),
                    ));
                }
            }
        }

        let roots = (0..n)
            .filter(|&i| matches!(kinds[i], IrKind::Goal) && parent_start[i] == parent_start[i + 1])
            .map(|i| i as u32)
            .collect();

        let mut ir = CaseIr {
            kinds,
            child_start,
            child_list,
            parent_start,
            parent_list,
            topo,
            pos,
            hashes: vec![0; n],
            roots,
        };
        for t in 0..ir.topo.len() {
            let i = ir.topo[t] as usize;
            ir.hashes[i] = ir.node_hash(i);
        }
        Ok(ir)
    }

    /// Number of nodes in the arena.
    #[must_use]
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// True when the arena holds no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// The evaluation-relevant payload of node `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    #[must_use]
    pub fn kind(&self, i: usize) -> IrKind {
        self.kinds[i]
    }

    /// The supporters of node `i`, in combination order.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    #[must_use]
    pub fn children(&self, i: usize) -> &[u32] {
        &self.child_list[self.child_start[i] as usize..self.child_start[i + 1] as usize]
    }

    /// The nodes that node `i` supports.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    #[must_use]
    pub fn parents(&self, i: usize) -> &[u32] {
        &self.parent_list[self.parent_start[i] as usize..self.parent_start[i + 1] as usize]
    }

    /// The precomputed topological order: children strictly before
    /// parents.
    #[must_use]
    pub fn topo(&self) -> &[u32] {
        &self.topo
    }

    /// Root goals (goal nodes nothing supports), in index order.
    #[must_use]
    pub fn roots(&self) -> &[u32] {
        &self.roots
    }

    /// The Merkle-style subtree hash of node `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    #[must_use]
    pub fn subtree_hash(&self, i: usize) -> u64 {
        self.hashes[i]
    }

    /// The subtree hash of the single root, when there is exactly one.
    #[must_use]
    pub fn root_hash(&self) -> Option<u64> {
        match self.roots.as_slice() {
            [r] => Some(self.hashes[*r as usize]),
            _ => None,
        }
    }

    /// The whole-case content hash: schema version, node count, and
    /// every subtree hash in index order. This is what
    /// [`Case::content_hash`] returns for acyclic cases.
    #[must_use]
    pub fn case_hash(&self) -> u64 {
        let mut h = Fnv::new();
        h.write_u64(CASE_SCHEMA_VERSION);
        h.write_u64(self.kinds.len() as u64);
        for &sh in &self.hashes {
            h.write_u64(sh);
        }
        h.0
    }

    /// Recomputes one node's subtree hash from its current payload and
    /// its children's (already correct) hashes.
    fn node_hash(&self, i: usize) -> u64 {
        let mut h = Fnv::new();
        let kind = self.kinds[i];
        h.write(&[kind.tag()]);
        if let Some(c) = kind.confidence() {
            h.write_u64(c.to_bits());
        }
        let children = self.children(i);
        h.write_u64(children.len() as u64);
        for &c in children {
            h.write_u64(u64::from(c));
            h.write_u64(self.hashes[c as usize]);
        }
        h.0
    }

    /// Overwrites the confidence payload of leaf `i`. The caller must
    /// have validated that `i` is an evidence or assumption node and
    /// must follow up with [`CaseIr::recompute_hashes`] on the dirty
    /// spine.
    pub(crate) fn set_leaf_confidence(&mut self, i: usize, confidence: f64) {
        match &mut self.kinds[i] {
            IrKind::Evidence(c) | IrKind::Assumption(c) => *c = confidence,
            _ => unreachable!("caller validated that node {i} is a confidence-carrying leaf"),
        }
    }

    /// The dirty spine of node `i`: the node itself plus every ancestor,
    /// sorted children-before-parents (topological position). This is
    /// exactly the set whose values and hashes a point edit at `i`
    /// invalidates.
    pub(crate) fn dirty_spine(&self, i: usize) -> Vec<u32> {
        let mut seen = vec![false; self.kinds.len()];
        let mut stack = vec![i as u32];
        let mut spine = Vec::new();
        seen[i] = true;
        while let Some(n) = stack.pop() {
            spine.push(n);
            for &p in self.parents(n as usize) {
                if !seen[p as usize] {
                    seen[p as usize] = true;
                    stack.push(p);
                }
            }
        }
        spine.sort_by_key(|&n| self.pos[n as usize]);
        spine
    }

    /// Recomputes subtree hashes for `dirty`, which must be sorted
    /// children-before-parents (as [`CaseIr::dirty_spine`] returns).
    pub(crate) fn recompute_hashes(&mut self, dirty: &[u32]) {
        for &i in dirty {
            self.hashes[i as usize] = self.node_hash(i as usize);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Case;

    fn demo() -> Case {
        let mut case = Case::new("t");
        let g = case.add_goal("G", "top").unwrap();
        let s = case.add_strategy("S", "legs", Combination::AnyOf).unwrap();
        let e1 = case.add_evidence("E1", "a", 0.9).unwrap();
        let e2 = case.add_evidence("E2", "b", 0.7).unwrap();
        let a = case.add_assumption("A", "env", 0.95).unwrap();
        case.support(g, s).unwrap();
        case.support(s, e1).unwrap();
        case.support(s, e2).unwrap();
        case.support(g, a).unwrap();
        case
    }

    #[test]
    fn topo_puts_children_before_parents() {
        let ir = CaseIr::build(&demo()).unwrap();
        let pos: Vec<usize> = (0..ir.len())
            .map(|i| ir.topo().iter().position(|&t| t as usize == i).unwrap())
            .collect();
        for i in 0..ir.len() {
            for &c in ir.children(i) {
                assert!(pos[c as usize] < pos[i], "child {c} after parent {i}");
            }
        }
    }

    #[test]
    fn parent_adjacency_inverts_child_adjacency() {
        let ir = CaseIr::build(&demo()).unwrap();
        for i in 0..ir.len() {
            for &c in ir.children(i) {
                assert!(ir.parents(c as usize).contains(&(i as u32)));
            }
            for &p in ir.parents(i) {
                assert!(ir.children(p as usize).contains(&(i as u32)));
            }
        }
    }

    #[test]
    fn roots_match_case_roots() {
        let case = demo();
        let ir = CaseIr::build(&case).unwrap();
        let expect: Vec<u32> =
            case.roots().iter().map(|&r| case.index(r).unwrap() as u32).collect();
        assert_eq!(ir.roots(), expect.as_slice());
    }

    #[test]
    fn shared_child_hashes_differently_from_equal_distinct_children() {
        // One shared leaf under two strategies …
        let mut shared = Case::new("t");
        let g = shared.add_goal("G", "top").unwrap();
        let s1 = shared.add_strategy("S1", "a", Combination::AllOf).unwrap();
        let s2 = shared.add_strategy("S2", "b", Combination::AllOf).unwrap();
        let e = shared.add_evidence("E1", "x", 0.5).unwrap();
        shared.support(g, s1).unwrap();
        shared.support(g, s2).unwrap();
        shared.support(s1, e).unwrap();
        shared.support(s2, e).unwrap();
        // … vs. two equal-but-independent leaves. MC treats these
        // differently (one draw vs. two), so the hashes must differ.
        let mut split = Case::new("t");
        let g = split.add_goal("G", "top").unwrap();
        let s1 = split.add_strategy("S1", "a", Combination::AllOf).unwrap();
        let s2 = split.add_strategy("S2", "b", Combination::AllOf).unwrap();
        let e1 = split.add_evidence("E1", "x", 0.5).unwrap();
        let e2 = split.add_evidence("E2", "x", 0.5).unwrap();
        split.support(g, s1).unwrap();
        split.support(g, s2).unwrap();
        split.support(s1, e1).unwrap();
        split.support(s2, e2).unwrap();
        let a = CaseIr::build(&shared).unwrap();
        let b = CaseIr::build(&split).unwrap();
        assert_ne!(a.case_hash(), b.case_hash());
    }

    #[test]
    fn subtree_hash_ignores_names_and_statements() {
        let mut a = Case::new("one title");
        let g = a.add_goal("G", "claim").unwrap();
        let e = a.add_evidence("E", "testing", 0.9).unwrap();
        a.support(g, e).unwrap();
        let mut b = Case::new("another title");
        let g = b.add_goal("TopGoal", "different words").unwrap();
        let e = b.add_evidence("Exhibit", "same number", 0.9).unwrap();
        b.support(g, e).unwrap();
        assert_eq!(CaseIr::build(&a).unwrap().case_hash(), CaseIr::build(&b).unwrap().case_hash());
    }

    #[test]
    fn point_edit_dirties_only_the_spine() {
        let case = demo();
        let mut ir = CaseIr::build(&case).unwrap();
        let before: Vec<u64> = (0..ir.len()).map(|i| ir.subtree_hash(i)).collect();
        let e1 = case.index(case.node_by_name("E1").unwrap()).unwrap();
        ir.set_leaf_confidence(e1, 0.91);
        let dirty = ir.dirty_spine(e1);
        ir.recompute_hashes(&dirty);
        // Spine = E1, S, G: exactly three nodes change.
        assert_eq!(dirty.len(), 3);
        for (i, &old) in before.iter().enumerate() {
            if dirty.contains(&(i as u32)) {
                assert_ne!(ir.subtree_hash(i), old, "spine node {i} must change");
            } else {
                assert_eq!(ir.subtree_hash(i), old, "off-spine node {i} must not change");
            }
        }
        // And the maintained hashes equal a from-scratch rebuild.
        let mut edited = case.clone();
        edited.set_leaf_confidence(case.node_by_name("E1").unwrap(), 0.91).unwrap();
        assert_eq!(ir.case_hash(), CaseIr::build(&edited).unwrap().case_hash());
    }

    #[test]
    fn cyclic_deserialized_case_is_rejected_not_overflowed() {
        let cyclic = r#"{"schema":1,"title":"t","nodes":[
            {"name":"G1","statement":"a","kind":"Goal"},
            {"name":"G2","statement":"b","kind":"Goal"}],
            "children":[[1],[0]]}"#;
        let case: Case = serde_json::from_str(cyclic).unwrap();
        let err = CaseIr::build(&case).unwrap_err();
        assert!(matches!(err, CaseError::InvalidStructure(_)), "{err}");
    }

    #[test]
    fn empty_case_lowers() {
        let ir = CaseIr::build(&Case::new("t")).unwrap();
        assert!(ir.is_empty());
        assert_eq!(ir.roots(), &[] as &[u32]);
        assert!(ir.root_hash().is_none());
    }
}
