//! Confidence propagation through the argument graph.
//!
//! Each node ends up with a [`NodeConfidence`]: the point estimate under
//! independence plus the Fréchet–Hoeffding dependence interval. The
//! interval is the paper's warning made visible — "conservative values at
//! one stage of the analysis do not necessarily propagate through to
//! other stages", and unknown dependence between evidence items can
//! swallow most of the apparent confidence.
//!
//! Semantics (doubt `x = 1 − confidence`):
//!
//! - **AllOf** (conjunction): the claim fails if *any* support fails.
//!   Independent: `x = 1 − Π(1−xᵢ)`; bounds `max(xᵢ) ≤ x ≤ min(1, Σxᵢ)`.
//! - **AnyOf** (legs): the claim fails only if *all* legs fail.
//!   Independent: `x = Π xᵢ`; bounds `max(0, Σxᵢ − (k−1)) ≤ x ≤ min(xᵢ)`.
//! - A goal combines its supports **AllOf** unless it is supported by a
//!   single strategy, whose rule then applies to the strategy's children.
//! - Assumptions attached to a node combine conjunctively with its
//!   support result.

use crate::error::Result;
use crate::graph::{Case, Combination, NodeId};
use crate::ir::{CaseIr, IrKind};
use serde::{Deserialize, Serialize};

/// Confidence attributed to one node: a point estimate under independence
/// and the dependence interval around it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeConfidence {
    /// Confidence assuming all doubt sources are independent.
    pub independent: f64,
    /// Confidence under the least favourable dependence.
    pub worst_case: f64,
    /// Confidence under the most favourable dependence.
    pub best_case: f64,
}

impl NodeConfidence {
    pub(crate) fn certain() -> Self {
        Self { independent: 1.0, worst_case: 1.0, best_case: 1.0 }
    }

    pub(crate) fn from_point(confidence: f64) -> Self {
        Self { independent: confidence, worst_case: confidence, best_case: confidence }
    }

    /// The doubt view (`1 − confidence`) of the independent estimate.
    #[must_use]
    pub fn independent_doubt(&self) -> f64 {
        1.0 - self.independent
    }

    /// Width of the dependence interval — how much unknown dependence
    /// between doubt sources matters for this node.
    #[must_use]
    pub fn dependence_spread(&self) -> f64 {
        self.best_case - self.worst_case
    }
}

/// The result of propagating a case: per-node confidence.
///
/// Stored densely by arena index (`None` for context nodes, which do
/// not participate), so cloning a report is a flat memcpy — the service
/// cache snapshots reports freely.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfidenceReport {
    values: Vec<Option<NodeConfidence>>,
    roots: Vec<NodeId>,
}

impl ConfidenceReport {
    pub(crate) fn from_parts(values: Vec<Option<NodeConfidence>>, roots: Vec<NodeId>) -> Self {
        Self { values, roots }
    }

    /// The confidence attributed to a node, if it participates in the
    /// argument (context nodes do not).
    #[must_use]
    pub fn confidence(&self, id: NodeId) -> Option<NodeConfidence> {
        *self.values.get(id.to_index())?
    }

    /// Number of arena slots the report covers (= node count of the
    /// propagated case).
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the report covers no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The root goals of the case, paired with their confidence.
    #[must_use]
    pub fn root_confidences(&self) -> Vec<(NodeId, NodeConfidence)> {
        self.roots
            .iter()
            .map(|&r| (r, self.values[r.to_index()].expect("roots participate")))
            .collect()
    }

    /// The single top-level confidence when the case has exactly one
    /// root.
    #[must_use]
    pub fn top(&self) -> Option<NodeConfidence> {
        if self.roots.len() == 1 {
            self.confidence(self.roots[0])
        } else {
            None
        }
    }
}

/// Combines children doubts under a rule, returning (independent,
/// worst-case, best-case) *doubt*.
fn combine_doubts(rule: Combination, doubts: &[f64]) -> (f64, f64, f64) {
    match rule {
        Combination::AllOf => {
            let ind = 1.0 - doubts.iter().map(|x| 1.0 - x).product::<f64>();
            let worst = doubts.iter().sum::<f64>().min(1.0);
            let best = doubts.iter().copied().fold(0.0, f64::max);
            (ind, worst, best)
        }
        Combination::AnyOf => {
            let k = doubts.len() as f64;
            let ind = doubts.iter().product::<f64>();
            let worst = doubts.iter().copied().fold(f64::INFINITY, f64::min);
            let best = (doubts.iter().sum::<f64>() - (k - 1.0)).max(0.0);
            (ind, worst, best)
        }
    }
}

/// Combines a node's partitioned child confidences: support under
/// `rule`, assumptions conjoined on top. This is the single evaluation
/// kernel — full propagation, incremental recomputation and importance
/// analysis all produce their floats here, which is what makes their
/// answers bit-identical.
pub(crate) fn combine_node(
    rule: Combination,
    support_doubts: &[NodeConfidence],
    assumption_doubts: &[NodeConfidence],
) -> NodeConfidence {
    let (mut ind, mut worst, mut best) = if support_doubts.is_empty() {
        // Only assumptions below (validate() prevents fully
        // undeveloped nodes reaching here via roots, but a
        // strategy may legitimately rest on assumptions alone).
        (0.0, 0.0, 0.0)
    } else {
        let ind_doubts: Vec<f64> = support_doubts.iter().map(|c| 1.0 - c.independent).collect();
        let worst_doubts: Vec<f64> = support_doubts.iter().map(|c| 1.0 - c.worst_case).collect();
        let best_doubts: Vec<f64> = support_doubts.iter().map(|c| 1.0 - c.best_case).collect();
        let (i, _, _) = combine_doubts(rule, &ind_doubts);
        let (_, w, _) = combine_doubts(rule, &worst_doubts);
        let (_, _, b) = combine_doubts(rule, &best_doubts);
        (i, w, b)
    };
    // Conjoin assumptions.
    if !assumption_doubts.is_empty() {
        let mut ind_d: Vec<f64> = vec![ind];
        let mut worst_d: Vec<f64> = vec![worst];
        let mut best_d: Vec<f64> = vec![best];
        for a in assumption_doubts {
            ind_d.push(1.0 - a.independent);
            worst_d.push(1.0 - a.worst_case);
            best_d.push(1.0 - a.best_case);
        }
        let (i, _, _) = combine_doubts(Combination::AllOf, &ind_d);
        let (_, w, _) = combine_doubts(Combination::AllOf, &worst_d);
        let (_, _, b) = combine_doubts(Combination::AllOf, &best_d);
        ind = i;
        worst = w;
        best = b;
    }
    NodeConfidence { independent: 1.0 - ind, worst_case: 1.0 - worst, best_case: 1.0 - best }
}

/// Evaluates one IR node from its children's already-computed values.
///
/// # Panics
///
/// Panics when a child of `i` has no value in `values` — callers must
/// evaluate in topological order.
pub(crate) fn eval_ir_node(
    ir: &CaseIr,
    i: usize,
    values: &[Option<NodeConfidence>],
) -> NodeConfidence {
    match ir.kind(i) {
        IrKind::Evidence(c) | IrKind::Assumption(c) => NodeConfidence::from_point(c),
        IrKind::Context => NodeConfidence::certain(),
        IrKind::Goal | IrKind::Strategy(_) => {
            let rule = match ir.kind(i) {
                IrKind::Strategy(c) => c,
                _ => Combination::AllOf,
            };
            // Partition supporters: assumptions always conjoin; the rest
            // combine under the node's rule.
            let mut support_doubts = Vec::new();
            let mut assumption_doubts = Vec::new();
            for &c in ir.children(i) {
                let conf = values[c as usize].expect("children evaluated before parents");
                if matches!(ir.kind(c as usize), IrKind::Assumption(_)) {
                    assumption_doubts.push(conf);
                } else {
                    support_doubts.push(conf);
                }
            }
            combine_node(rule, &support_doubts, &assumption_doubts)
        }
    }
}

/// Propagates confidence through a validated case.
///
/// # Errors
///
/// Structural errors from [`Case::validate`], or
/// [`crate::CaseError::InvalidStructure`] when a hand-edited save file
/// smuggled in a support cycle.
pub fn propagate(case: &Case) -> Result<ConfidenceReport> {
    case.validate()?;
    let ir = CaseIr::build(case)?;
    Ok(propagate_ir(&ir))
}

/// One linear pass over the IR's topological order.
pub(crate) fn propagate_ir(ir: &CaseIr) -> ConfidenceReport {
    let mut values: Vec<Option<NodeConfidence>> = vec![None; ir.len()];
    for &t in ir.topo() {
        let i = t as usize;
        if matches!(ir.kind(i), IrKind::Context) {
            continue;
        }
        values[i] = Some(eval_ir_node(ir, i, &values));
    }
    let roots = ir.roots().iter().map(|&r| NodeId::from_index(r as usize)).collect();
    ConfidenceReport::from_parts(values, roots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Case;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn single_evidence_passes_through() {
        let mut case = Case::new("t");
        let g = case.add_goal("G1", "claim").unwrap();
        let e = case.add_evidence("E1", "test", 0.9).unwrap();
        case.support(g, e).unwrap();
        let r = case.propagate().unwrap();
        let c = r.confidence(g).unwrap();
        assert!(approx(c.independent, 0.9));
        assert!(approx(c.worst_case, 0.9));
        assert!(approx(c.best_case, 0.9));
    }

    #[test]
    fn conjunction_accumulates_doubt() {
        let mut case = Case::new("t");
        let g = case.add_goal("G1", "claim").unwrap();
        let e1 = case.add_evidence("E1", "a", 0.9).unwrap();
        let e2 = case.add_evidence("E2", "b", 0.8).unwrap();
        case.support(g, e1).unwrap();
        case.support(g, e2).unwrap();
        let c = case.propagate().unwrap().confidence(g).unwrap();
        assert!(approx(c.independent, 0.72)); // 0.9 · 0.8
        assert!(approx(c.worst_case, 0.7)); // 1 − min(1, 0.1+0.2)
        assert!(approx(c.best_case, 0.8)); // 1 − max(0.1, 0.2)
        assert!(c.worst_case <= c.independent && c.independent <= c.best_case);
    }

    #[test]
    fn legs_multiply_doubt() {
        let mut case = Case::new("t");
        let g = case.add_goal("G1", "claim").unwrap();
        let s = case.add_strategy("S1", "legs", Combination::AnyOf).unwrap();
        let e1 = case.add_evidence("E1", "a", 0.95).unwrap();
        let e2 = case.add_evidence("E2", "b", 0.9).unwrap();
        case.support(g, s).unwrap();
        case.support(s, e1).unwrap();
        case.support(s, e2).unwrap();
        let c = case.propagate().unwrap().confidence(g).unwrap();
        assert!(approx(c.independent, 1.0 - 0.05 * 0.1));
        assert!(approx(c.worst_case, 0.95)); // stronger leg only
        assert!(approx(c.best_case, 1.0)); // doubts can be disjoint
    }

    #[test]
    fn assumption_is_a_conjunctive_floor() {
        let mut case = Case::new("t");
        let g = case.add_goal("G1", "claim").unwrap();
        let s = case.add_strategy("S1", "legs", Combination::AnyOf).unwrap();
        let e1 = case.add_evidence("E1", "a", 0.99).unwrap();
        let e2 = case.add_evidence("E2", "b", 0.99).unwrap();
        let a = case.add_assumption("A1", "shared requirements doc", 0.97).unwrap();
        case.support(g, s).unwrap();
        case.support(s, e1).unwrap();
        case.support(s, e2).unwrap();
        case.support(g, a).unwrap();
        let c = case.propagate().unwrap().confidence(g).unwrap();
        // The legs give 1 − 1e-4; the assumption caps everything at ~0.97.
        assert!(c.independent < 0.97 + 1e-9);
        assert!(c.best_case <= 0.97 + 1e-12);
    }

    #[test]
    fn deep_chain_composes() {
        let mut case = Case::new("t");
        let g1 = case.add_goal("G1", "top").unwrap();
        let g2 = case.add_goal("G2", "sub").unwrap();
        let e = case.add_evidence("E1", "x", 0.9).unwrap();
        case.support(g1, g2).unwrap();
        case.support(g2, e).unwrap();
        let r = case.propagate().unwrap();
        assert!(approx(r.confidence(g1).unwrap().independent, 0.9));
        assert!(approx(r.confidence(g2).unwrap().independent, 0.9));
    }

    #[test]
    fn diamond_shared_evidence_is_memoized_not_double_counted_per_path() {
        // E supports both G2 and G3, which conjoin under G1. With the
        // current (dependence-naive) independent estimate the shared
        // doubt is counted twice — exactly the subtlety the interval
        // captures: the true confidence (0.9) lies inside [worst, best].
        let mut case = Case::new("t");
        let g1 = case.add_goal("G1", "top").unwrap();
        let g2 = case.add_goal("G2", "a").unwrap();
        let g3 = case.add_goal("G3", "b").unwrap();
        let e = case.add_evidence("E1", "shared", 0.9).unwrap();
        case.support(g1, g2).unwrap();
        case.support(g1, g3).unwrap();
        case.support(g2, e).unwrap();
        case.support(g3, e).unwrap();
        let c = case.propagate().unwrap().confidence(g1).unwrap();
        assert!(approx(c.independent, 0.81));
        assert!(c.worst_case <= 0.9 && 0.9 <= c.best_case);
    }

    #[test]
    fn report_roots_and_top() {
        let mut case = Case::new("t");
        let g = case.add_goal("G1", "claim").unwrap();
        let e = case.add_evidence("E1", "x", 0.75).unwrap();
        case.support(g, e).unwrap();
        let r = case.propagate().unwrap();
        assert_eq!(r.root_confidences().len(), 1);
        assert!(approx(r.top().unwrap().independent, 0.75));
    }

    #[test]
    fn two_roots_top_is_none() {
        let mut case = Case::new("t");
        let g1 = case.add_goal("G1", "a").unwrap();
        let g2 = case.add_goal("G2", "b").unwrap();
        let e1 = case.add_evidence("E1", "x", 0.9).unwrap();
        let e2 = case.add_evidence("E2", "y", 0.9).unwrap();
        case.support(g1, e1).unwrap();
        case.support(g2, e2).unwrap();
        let r = case.propagate().unwrap();
        assert!(r.top().is_none());
        assert_eq!(r.root_confidences().len(), 2);
    }

    #[test]
    fn context_nodes_do_not_participate() {
        let mut case = Case::new("t");
        let g = case.add_goal("G1", "claim").unwrap();
        let e = case.add_evidence("E1", "x", 0.9).unwrap();
        let c = case.add_context("C1", "environment").unwrap();
        case.support(g, e).unwrap();
        let r = case.propagate().unwrap();
        assert!(r.confidence(c).is_none());
        assert!(r.confidence(g).is_some());
    }

    #[test]
    fn invalid_structure_propagation_fails() {
        let mut case = Case::new("t");
        case.add_goal("G1", "undeveloped").unwrap();
        assert!(case.propagate().is_err());
    }

    #[test]
    fn interval_orders_hold_on_random_shapes() {
        // A small structural sweep: for several hand-built shapes the
        // interval must bracket the independent estimate.
        let mut case = Case::new("t");
        let g = case.add_goal("G", "top").unwrap();
        let s1 = case.add_strategy("S1", "legs", Combination::AnyOf).unwrap();
        let s2 = case.add_strategy("S2", "conj", Combination::AllOf).unwrap();
        let e1 = case.add_evidence("E1", "", 0.7).unwrap();
        let e2 = case.add_evidence("E2", "", 0.85).unwrap();
        let e3 = case.add_evidence("E3", "", 0.6).unwrap();
        let e4 = case.add_evidence("E4", "", 0.99).unwrap();
        case.support(g, s1).unwrap();
        case.support(g, s2).unwrap();
        case.support(s1, e1).unwrap();
        case.support(s1, e2).unwrap();
        case.support(s2, e3).unwrap();
        case.support(s2, e4).unwrap();
        let r = case.propagate().unwrap();
        for (_, c) in r.root_confidences() {
            assert!(c.worst_case <= c.independent + 1e-12);
            assert!(c.independent <= c.best_case + 1e-12);
            assert!(c.dependence_spread() >= 0.0);
        }
    }
}
