//! Monte-Carlo cross-check of the analytic propagation.
//!
//! Samples each leaf's soundness as an independent Bernoulli with its
//! elicited confidence, evaluates the case's Boolean structure through a
//! compiled [`EvalPlan`], and estimates the probability each goal or
//! strategy holds with a Wilson-score confidence interval. The analytic
//! independence estimate must sit inside the interval — the test suite
//! uses this as an end-to-end oracle, and users can call it to
//! sanity-check hand-edited cases.
//!
//! # Parallel determinism
//!
//! [`simulate_parallel`] splits the sample budget into fixed-size chunks
//! of [`CHUNK_SAMPLES`]. Chunk `c` draws from its own RNG stream seeded
//! by a SplitMix64-style mix of `(seed, c)`, so the outcome of every
//! chunk — and therefore the per-target hit *counts*, which are exact
//! integer sums — depends only on the seed and the chunk index, never on
//! which worker thread ran the chunk or in what order. For a fixed seed
//! the report is **bit-identical** at any thread count.

use crate::error::{CaseError, Result};
use crate::graph::{Case, NodeId};
use crate::plan::EvalPlan;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Samples per parallel chunk. Fixed (not derived from the thread
/// count) so the chunk→stream mapping is invariant under the worker
/// topology.
pub const CHUNK_SAMPLES: u32 = 4096;

/// Monte-Carlo estimate of the probability each goal/strategy holds.
#[derive(Debug, Clone, PartialEq)]
pub struct MonteCarloReport {
    estimates: HashMap<NodeId, f64>,
    samples: u32,
}

impl MonteCarloReport {
    /// Estimated probability the node's claim holds.
    #[must_use]
    pub fn estimate(&self, id: NodeId) -> Option<f64> {
        self.estimates.get(&id).copied()
    }

    /// Half-width of the ~95 % **Wilson-score** confidence interval for
    /// the node's estimate.
    ///
    /// Unlike the normal-approximation (Wald) half-width
    /// `1.96·√(p(1−p)/n)`, the Wilson half-width stays strictly positive
    /// at `p̂ = 0` and `p̂ = 1`, so degenerate estimates (all-certain or
    /// all-impossible leaves) still carry honest sampling uncertainty of
    /// order `z²/n` instead of a spurious zero.
    #[must_use]
    pub fn half_width(&self, id: NodeId) -> Option<f64> {
        let p = self.estimate(id)?;
        let n = f64::from(self.samples);
        let z = 1.96_f64;
        let z2 = z * z;
        Some(z * ((p * (1.0 - p) + z2 / (4.0 * n)) / n).sqrt() / (1.0 + z2 / n))
    }

    /// The ~95 % Wilson-score interval `(lo, hi)` for the node's
    /// estimate, clamped to `[0, 1]`.
    #[must_use]
    pub fn interval(&self, id: NodeId) -> Option<(f64, f64)> {
        let p = self.estimate(id)?;
        let hw = self.half_width(id)?;
        let n = f64::from(self.samples);
        let z2 = 1.96_f64 * 1.96;
        let center = (p + z2 / (2.0 * n)) / (1.0 + z2 / n);
        Some(((center - hw).max(0.0), (center + hw).min(1.0)))
    }

    /// Number of structure samples drawn.
    #[must_use]
    pub fn samples(&self) -> u32 {
        self.samples
    }
}

/// Runs `count` structure samples with `rng`, accumulating hits.
fn run_samples(plan: &EvalPlan, count: u32, rng: &mut dyn RngCore, hits: &mut [u64]) {
    let mut buf = plan.new_buffer();
    for _ in 0..count {
        plan.evaluate(rng, &mut buf);
        for (h, &(_, slot)) in hits.iter_mut().zip(plan.targets()) {
            *h += u64::from(buf[slot as usize]);
        }
    }
}

fn report_from_hits(plan: &EvalPlan, hits: &[u64], samples: u32) -> MonteCarloReport {
    let estimates = plan
        .targets()
        .iter()
        .zip(hits)
        .map(|(&(id, _), &h)| (id, h as f64 / f64::from(samples)))
        .collect();
    MonteCarloReport { estimates, samples }
}

/// Runs `samples` independent structure evaluations with a caller-owned
/// RNG (sequential reference implementation).
///
/// # Errors
///
/// Structural errors from [`Case::validate`], or
/// [`CaseError::InvalidStructure`] for `samples == 0`.
///
/// # Examples
///
/// ```
/// use depcase_assurance::{monte_carlo::simulate, Case};
/// use rand::SeedableRng;
///
/// let mut case = Case::new("t");
/// let g = case.add_goal("G", "claim")?;
/// let e = case.add_evidence("E", "test", 0.9)?;
/// case.support(g, e)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mc = simulate(&case, 20_000, &mut rng)?;
/// let analytic = case.propagate()?.confidence(g).unwrap().independent;
/// assert!((mc.estimate(g).unwrap() - analytic).abs() < mc.half_width(g).unwrap());
/// # Ok::<(), depcase_assurance::CaseError>(())
/// ```
pub fn simulate(case: &Case, samples: u32, rng: &mut dyn RngCore) -> Result<MonteCarloReport> {
    let plan = EvalPlan::compile(case)?;
    if samples == 0 {
        return Err(CaseError::InvalidStructure("need at least one sample".into()));
    }
    let mut hits = vec![0u64; plan.targets().len()];
    run_samples(&plan, samples, rng, &mut hits);
    Ok(report_from_hits(&plan, &hits, samples))
}

/// Derives chunk `c`'s RNG seed from the master seed (SplitMix64-style
/// finalizer, so nearby chunk indices land in well-separated streams).
fn chunk_seed(seed: u64, chunk: u64) -> u64 {
    let mut z = seed ^ chunk.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Number of samples in chunk `c` of a `samples`-sample run.
fn chunk_len(samples: u32, chunk: u32) -> u32 {
    let start = chunk * CHUNK_SAMPLES;
    (samples - start).min(CHUNK_SAMPLES)
}

/// Runs `samples` structure evaluations across `threads` worker threads,
/// bit-identically reproducible for a fixed `seed` at **any** thread
/// count (see the module docs for the chunked seeding scheme).
///
/// `threads == 0` selects [`std::thread::available_parallelism`].
///
/// # Errors
///
/// Structural errors from [`Case::validate`], or
/// [`CaseError::InvalidStructure`] for `samples == 0`.
///
/// # Examples
///
/// ```
/// use depcase_assurance::{monte_carlo::simulate_parallel, Case};
///
/// let mut case = Case::new("t");
/// let g = case.add_goal("G", "claim")?;
/// let e = case.add_evidence("E", "test", 0.9)?;
/// case.support(g, e)?;
/// let one = simulate_parallel(&case, 50_000, 7, 1)?;
/// let four = simulate_parallel(&case, 50_000, 7, 4)?;
/// assert_eq!(one.estimate(g), four.estimate(g)); // bit-identical
/// # Ok::<(), depcase_assurance::CaseError>(())
/// ```
pub fn simulate_parallel(
    case: &Case,
    samples: u32,
    seed: u64,
    threads: usize,
) -> Result<MonteCarloReport> {
    let plan = EvalPlan::compile(case)?;
    if samples == 0 {
        return Err(CaseError::InvalidStructure("need at least one sample".into()));
    }
    let chunks = samples.div_ceil(CHUNK_SAMPLES);
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        threads
    }
    .min(chunks as usize)
    .max(1);

    let targets = plan.targets().len();
    let next_chunk = AtomicUsize::new(0);
    let plan_ref = &plan;
    let next_ref = &next_chunk;

    // Each worker claims chunks dynamically and keeps private per-target
    // hit totals; integer addition is exact and commutative, so the
    // merged counts are independent of the chunk→worker assignment.
    let totals: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || {
                    let mut local = vec![0u64; targets];
                    loop {
                        let c = next_ref.fetch_add(1, Ordering::Relaxed) as u32;
                        if c >= chunks {
                            break;
                        }
                        let mut rng = StdRng::seed_from_u64(chunk_seed(seed, u64::from(c)));
                        run_samples(plan_ref, chunk_len(samples, c), &mut rng, &mut local);
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });

    let mut hits = vec![0u64; targets];
    for local in &totals {
        for (h, l) in hits.iter_mut().zip(local) {
            *h += l;
        }
    }
    Ok(report_from_hits(&plan, &hits, samples))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Combination;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn agrees_with_analytic_conjunction() {
        let mut case = Case::new("t");
        let g = case.add_goal("G", "top").unwrap();
        let e1 = case.add_evidence("E1", "a", 0.9).unwrap();
        let e2 = case.add_evidence("E2", "b", 0.8).unwrap();
        case.support(g, e1).unwrap();
        case.support(g, e2).unwrap();
        let mc = simulate(&case, 50_000, &mut rng(2)).unwrap();
        let analytic = case.propagate().unwrap().confidence(g).unwrap().independent;
        let est = mc.estimate(g).unwrap();
        assert!(
            (est - analytic).abs() < mc.half_width(g).unwrap() * 1.5,
            "mc = {est}, analytic = {analytic}"
        );
    }

    #[test]
    fn agrees_with_analytic_two_legs_and_assumption() {
        let mut case = Case::new("t");
        let g = case.add_goal("G", "top").unwrap();
        let s = case.add_strategy("S", "legs", Combination::AnyOf).unwrap();
        let e1 = case.add_evidence("E1", "a", 0.9).unwrap();
        let e2 = case.add_evidence("E2", "b", 0.7).unwrap();
        let a = case.add_assumption("A", "env", 0.95).unwrap();
        case.support(g, s).unwrap();
        case.support(s, e1).unwrap();
        case.support(s, e2).unwrap();
        case.support(g, a).unwrap();
        let mc = simulate(&case, 80_000, &mut rng(3)).unwrap();
        let analytic = case.propagate().unwrap().confidence(g).unwrap().independent;
        let est = mc.estimate(g).unwrap();
        assert!(
            (est - analytic).abs() < mc.half_width(g).unwrap() * 1.5,
            "mc = {est}, analytic = {analytic}"
        );
    }

    #[test]
    fn strategies_are_estimated_too() {
        let mut case = Case::new("t");
        let g = case.add_goal("G", "top").unwrap();
        let s = case.add_strategy("S", "conj", Combination::AllOf).unwrap();
        let e = case.add_evidence("E", "a", 0.6).unwrap();
        case.support(g, s).unwrap();
        case.support(s, e).unwrap();
        let mc = simulate(&case, 30_000, &mut rng(4)).unwrap();
        assert!(mc.estimate(s).is_some());
        assert!((mc.estimate(s).unwrap() - 0.6).abs() < 0.01);
        assert_eq!(mc.samples(), 30_000);
    }

    #[test]
    fn zero_samples_rejected() {
        let mut case = Case::new("t");
        let g = case.add_goal("G", "top").unwrap();
        let e = case.add_evidence("E", "a", 0.5).unwrap();
        case.support(g, e).unwrap();
        assert!(simulate(&case, 0, &mut rng(5)).is_err());
        assert!(simulate_parallel(&case, 0, 5, 2).is_err());
    }

    #[test]
    fn invalid_case_rejected() {
        let mut case = Case::new("t");
        case.add_goal("G", "undeveloped").unwrap();
        assert!(simulate(&case, 100, &mut rng(6)).is_err());
        assert!(simulate_parallel(&case, 100, 6, 2).is_err());
    }

    #[test]
    fn deterministic_under_seed() {
        let mut case = Case::new("t");
        let g = case.add_goal("G", "top").unwrap();
        let e = case.add_evidence("E", "a", 0.42).unwrap();
        case.support(g, e).unwrap();
        let a = simulate(&case, 5000, &mut rng(7)).unwrap();
        let b = simulate(&case, 5000, &mut rng(7)).unwrap();
        assert_eq!(a.estimate(g), b.estimate(g));
    }

    #[test]
    fn parallel_bit_identical_across_thread_counts() {
        let mut case = Case::new("t");
        let g = case.add_goal("G", "top").unwrap();
        let s = case.add_strategy("S", "legs", Combination::AnyOf).unwrap();
        let e1 = case.add_evidence("E1", "a", 0.93).unwrap();
        let e2 = case.add_evidence("E2", "b", 0.81).unwrap();
        let a = case.add_assumption("A", "env", 0.97).unwrap();
        case.support(g, s).unwrap();
        case.support(s, e1).unwrap();
        case.support(s, e2).unwrap();
        case.support(g, a).unwrap();
        // Deliberately not a multiple of CHUNK_SAMPLES: the tail chunk
        // must land in the same stream wherever it is scheduled.
        let samples = 3 * CHUNK_SAMPLES + 1234;
        let reference = simulate_parallel(&case, samples, 99, 1).unwrap();
        for threads in [2, 3, 4, 8] {
            let par = simulate_parallel(&case, samples, 99, threads).unwrap();
            for &(id, _) in EvalPlan::compile(&case).unwrap().targets() {
                assert_eq!(
                    reference.estimate(id).unwrap().to_bits(),
                    par.estimate(id).unwrap().to_bits(),
                    "thread count {threads} changed the estimate for {id:?}"
                );
            }
        }
    }

    #[test]
    fn parallel_agrees_with_analytic() {
        let mut case = Case::new("t");
        let g = case.add_goal("G", "top").unwrap();
        let e1 = case.add_evidence("E1", "a", 0.9).unwrap();
        let e2 = case.add_evidence("E2", "b", 0.8).unwrap();
        case.support(g, e1).unwrap();
        case.support(g, e2).unwrap();
        let mc = simulate_parallel(&case, 100_000, 11, 4).unwrap();
        let analytic = case.propagate().unwrap().confidence(g).unwrap().independent;
        let est = mc.estimate(g).unwrap();
        assert!(
            (est - analytic).abs() < mc.half_width(g).unwrap() * 1.5,
            "mc = {est}, analytic = {analytic}"
        );
    }

    #[test]
    fn wilson_half_width_positive_at_degenerate_estimates() {
        // All-certain leaves: every sample hits, p̂ = 1.
        let mut case = Case::new("t");
        let g = case.add_goal("G", "top").unwrap();
        let e = case.add_evidence("E", "a", 1.0).unwrap();
        case.support(g, e).unwrap();
        let mc = simulate(&case, 10_000, &mut rng(8)).unwrap();
        assert_eq!(mc.estimate(g), Some(1.0));
        let hw = mc.half_width(g).unwrap();
        assert!(hw > 0.0, "degenerate estimate must keep nonzero width");
        assert!(hw < 0.001, "width {hw} should be ~z²/2n");
        let (lo, hi) = mc.interval(g).unwrap();
        assert!(lo < 1.0 && hi <= 1.0, "interval ({lo}, {hi})");

        // All-impossible leaves: no sample hits, p̂ = 0.
        let mut case = Case::new("t2");
        let g = case.add_goal("G", "top").unwrap();
        let e = case.add_evidence("E", "a", 0.0).unwrap();
        case.support(g, e).unwrap();
        let mc = simulate(&case, 10_000, &mut rng(9)).unwrap();
        assert_eq!(mc.estimate(g), Some(0.0));
        let hw = mc.half_width(g).unwrap();
        assert!(hw > 0.0);
        let (lo, hi) = mc.interval(g).unwrap();
        assert!(lo >= 0.0 && hi > 0.0, "interval ({lo}, {hi})");
    }

    #[test]
    fn wilson_close_to_wald_in_the_interior() {
        let mut case = Case::new("t");
        let g = case.add_goal("G", "top").unwrap();
        let e = case.add_evidence("E", "a", 0.5).unwrap();
        case.support(g, e).unwrap();
        let mc = simulate(&case, 50_000, &mut rng(10)).unwrap();
        let p = mc.estimate(g).unwrap();
        let wald = 1.96 * (p * (1.0 - p) / 50_000.0).sqrt();
        let wilson = mc.half_width(g).unwrap();
        assert!((wald - wilson).abs() / wald < 0.01, "wald {wald} vs wilson {wilson}");
    }

    #[test]
    fn chunk_seeds_are_distinct() {
        let seeds: Vec<u64> = (0..64).map(|c| chunk_seed(42, c)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len());
    }
}
