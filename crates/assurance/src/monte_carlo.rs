//! Monte-Carlo cross-check of the analytic propagation.
//!
//! Samples each leaf's soundness as an independent Bernoulli with its
//! elicited confidence, evaluates the case's Boolean structure through a
//! compiled [`EvalPlan`], and estimates the probability each goal or
//! strategy holds with a Wilson-score confidence interval. The analytic
//! independence estimate must sit inside the interval — the test suite
//! uses this as an end-to-end oracle, and users can call it to
//! sanity-check hand-edited cases.
//!
//! # Parallel determinism
//!
//! [`MonteCarlo::run`] splits the sample budget into fixed-size chunks
//! of [`CHUNK_SAMPLES`]. Chunk `c` draws from its own RNG stream seeded
//! by a SplitMix64-style mix of `(seed, c)`, so the outcome of every
//! chunk — and therefore the per-target hit *counts*, which are exact
//! integer sums — depends only on the seed and the chunk index, never on
//! which worker thread ran the chunk or in what order. For a fixed seed
//! the report is **bit-identical** at any thread count.
//!
//! # Wide sampling
//!
//! Within a chunk, samples are evaluated **64 at a time**: every node
//! holds a 64-bit lane mask instead of one `bool`, leaf draws set one
//! bit per sample through an integer-threshold compare, the structure
//! pass runs bitwise AND/OR over whole masks, and hits are counted with
//! one popcount per target per group. The RNG stream is consumed in
//! exactly the scalar order and every compare is exactly equivalent to
//! the scalar `f64` compare, so the wide engine is bit-identical to the
//! scalar reference ([`MonteCarlo::run_sequential`]) — the tests pin
//! this across group-boundary sample counts.
//!
//! # Plan reuse
//!
//! Compiling a case into an [`EvalPlan`] costs a full graph traversal;
//! long-running callers (the `depcase-service` engine, sweep harnesses)
//! evaluate the same case thousands of times. [`MonteCarlo::plan`] and
//! [`MonteCarlo::run_plan`] accept a pre-compiled plan so the compile
//! happens once, not once per request.

use crate::error::{CaseError, Result};
use crate::graph::{Case, NodeId};
use crate::plan::EvalPlan;
use crate::trace::Tracer;
use rand::rngs::{StdRng, WideStdRng};
use rand::{RngCore, SeedableRng};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Instant;

/// Samples per parallel chunk. Fixed (not derived from the thread
/// count) so the chunk→stream mapping is invariant under the worker
/// topology.
pub const CHUNK_SAMPLES: u32 = 4096;

/// Monte-Carlo estimate of the probability each goal/strategy holds.
#[derive(Debug, Clone, PartialEq)]
pub struct MonteCarloReport {
    estimates: HashMap<NodeId, f64>,
    samples: u32,
}

impl MonteCarloReport {
    /// Estimated probability the node's claim holds.
    #[must_use]
    pub fn estimate(&self, id: NodeId) -> Option<f64> {
        self.estimates.get(&id).copied()
    }

    /// Half-width of the ~95 % **Wilson-score** confidence interval for
    /// the node's estimate.
    ///
    /// Unlike the normal-approximation (Wald) half-width
    /// `1.96·√(p(1−p)/n)`, the Wilson half-width stays strictly positive
    /// at `p̂ = 0` and `p̂ = 1`, so degenerate estimates (all-certain or
    /// all-impossible leaves) still carry honest sampling uncertainty of
    /// order `z²/n` instead of a spurious zero.
    #[must_use]
    pub fn half_width(&self, id: NodeId) -> Option<f64> {
        let p = self.estimate(id)?;
        let n = f64::from(self.samples);
        let z = 1.96_f64;
        let z2 = z * z;
        Some(z * ((p * (1.0 - p) + z2 / (4.0 * n)) / n).sqrt() / (1.0 + z2 / n))
    }

    /// The ~95 % Wilson-score interval `(lo, hi)` for the node's
    /// estimate, clamped to `[0, 1]`.
    #[must_use]
    pub fn interval(&self, id: NodeId) -> Option<(f64, f64)> {
        let p = self.estimate(id)?;
        let hw = self.half_width(id)?;
        let n = f64::from(self.samples);
        let z2 = 1.96_f64 * 1.96;
        let center = (p + z2 / (2.0 * n)) / (1.0 + z2 / n);
        Some(((center - hw).max(0.0), (center + hw).min(1.0)))
    }

    /// Number of structure samples drawn.
    #[must_use]
    pub fn samples(&self) -> u32 {
        self.samples
    }
}

/// Runs `count` structure samples with `rng`, accumulating hits — the
/// scalar reference implementation the wide engine is validated
/// against (one sample per structure pass).
fn run_samples(plan: &EvalPlan, count: u32, rng: &mut dyn RngCore, hits: &mut [u64]) {
    let mut buf = plan.new_buffer();
    for _ in 0..count {
        plan.evaluate(rng, &mut buf);
        for (h, &(_, slot)) in hits.iter_mut().zip(plan.targets()) {
            *h += u64::from(buf[slot as usize]);
        }
    }
}

/// Runs `count` structure samples 64 at a time: each structure pass
/// evaluates a 64-sample lane mask per node and hits are counted with
/// one popcount per target per group. Takes a concrete [`StdRng`] so
/// the draw loop monomorphizes (no per-draw virtual dispatch — the
/// dominant cost of the scalar path).
///
/// Bit-identical to [`run_samples`] from the same RNG state: the wide
/// sampler consumes the stream in the same order and compares each
/// variate through an exactly-equivalent integer threshold (see
/// [`EvalPlan::sample_leaves_wide`]), and the structure pass is the
/// same Boolean circuit evaluated lane-wise. Tail groups mask the
/// unused high lanes out of the popcount.
fn run_samples_wide(plan: &EvalPlan, count: u32, rng: &mut StdRng, hits: &mut [u64]) {
    let mut lanes = plan.new_lanes();
    let mut done = 0u32;
    while done < count {
        let group = (count - done).min(64);
        plan.sample_leaves_wide(rng, &mut lanes, group);
        plan.eval_structure_wide(&mut lanes);
        let valid = if group == 64 { !0u64 } else { (1u64 << group) - 1 };
        for (h, &(_, slot)) in hits.iter_mut().zip(plan.targets()) {
            *h += u64::from((lanes[slot as usize] & valid).count_ones());
        }
        done += group;
    }
}

/// Full chunks a worker fuses per claim. Chunk streams are independent
/// by construction, so a struct-of-arrays [`WideStdRng`] can step all
/// of them element-wise and the draw loop vectorizes to the target's
/// SIMD width — the single-stream wide sampler is limited by one
/// xoshiro chain's serial latency instead. Purely a scheduling choice:
/// each stream still sees its own draws in scalar order, so the hit
/// counts are unchanged. Eight streams fill an AVX2 register file
/// without spilling and split evenly across AVX-512 registers.
const INTERLEAVE: usize = 8;

// The interleaved runner steps whole 64-sample groups through a chunk.
const _: () = assert!(CHUNK_SAMPLES.is_multiple_of(64));

/// Runs [`INTERLEAVE`] *full* chunks ([`CHUNK_SAMPLES`] each) through
/// the wide sampler simultaneously, one independent RNG stream per
/// chunk, accumulating all hits into the shared integer totals (exact
/// and commutative, so sharing the accumulator is safe).
fn run_chunks_interleaved(plan: &EvalPlan, rngs: &mut WideStdRng<INTERLEAVE>, hits: &mut [u64]) {
    let mut lanes = vec![0u64; plan.slot_count() * INTERLEAVE];
    let mut scratch = vec![0u64; plan.leaf_count() * INTERLEAVE];
    let mut done = 0u32;
    while done < CHUNK_SAMPLES {
        plan.sample_leaves_wide_x(rngs, &mut scratch, &mut lanes, 64);
        plan.eval_structure_wide_x::<INTERLEAVE>(&mut lanes);
        for (h, &(_, slot)) in hits.iter_mut().zip(plan.targets()) {
            let base = slot as usize * INTERLEAVE;
            for lane in &lanes[base..base + INTERLEAVE] {
                *h += u64::from(lane.count_ones());
            }
        }
        done += 64;
    }
}

fn report_from_hits(plan: &EvalPlan, hits: &[u64], samples: u32) -> MonteCarloReport {
    let estimates = plan
        .targets()
        .iter()
        .zip(hits)
        .map(|(&(id, _), &h)| (id, h as f64 / f64::from(samples)))
        .collect();
    MonteCarloReport { estimates, samples }
}

/// Options for a Monte-Carlo run: sample budget, RNG seed, worker
/// threads, and an optional pre-compiled [`EvalPlan`] override.
///
/// Each knob is named, defaults are explicit (`seed = 0`, `threads = 0`
/// = autodetect), and the cached-plan fast path is part of the same
/// type. (This builder replaced the positional `simulate` /
/// `simulate_parallel` free functions, which have since been removed.)
///
/// # Examples
///
/// ```
/// use depcase_assurance::{Case, EvalPlan, MonteCarlo};
///
/// let mut case = Case::new("demo");
/// let g = case.add_goal("G", "claim")?;
/// let e = case.add_evidence("E", "test", 0.9)?;
/// case.support(g, e)?;
///
/// // One-shot: compile and run (bit-identical at any thread count).
/// let mc = MonteCarlo::new(50_000).seed(7).threads(4).run(&case)?;
///
/// // Amortised: compile once, reuse the plan per request.
/// let plan = EvalPlan::compile(&case)?;
/// let again = MonteCarlo::new(50_000).seed(7).run_plan(&plan)?;
/// assert_eq!(mc.estimate(g), again.estimate(g));
/// # Ok::<(), depcase_assurance::CaseError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct MonteCarlo<'p> {
    samples: u32,
    seed: u64,
    threads: usize,
    plan: Option<&'p EvalPlan>,
}

impl MonteCarlo<'static> {
    /// Options for a `samples`-sample run with default seed `0` and
    /// autodetected thread count.
    #[must_use]
    pub fn new(samples: u32) -> Self {
        Self { samples, seed: 0, threads: 0, plan: None }
    }
}

impl<'p> MonteCarlo<'p> {
    /// Sets the master seed of the chunked RNG streams.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the worker-thread count (`0` = autodetect). The result does
    /// not depend on this value, only the wall-clock does.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Overrides compilation with a pre-compiled plan: [`MonteCarlo::run`]
    /// will use `plan` instead of recompiling the case per call.
    #[must_use]
    pub fn plan<'q>(self, plan: &'q EvalPlan) -> MonteCarlo<'q> {
        MonteCarlo {
            samples: self.samples,
            seed: self.seed,
            threads: self.threads,
            plan: Some(plan),
        }
    }

    /// The configured sample budget.
    #[must_use]
    pub fn samples(&self) -> u32 {
        self.samples
    }

    /// Runs the chunked deterministic engine on `case`, compiling an
    /// [`EvalPlan`] unless one was supplied via [`MonteCarlo::plan`].
    ///
    /// # Errors
    ///
    /// Structural errors from [`Case::validate`], or
    /// [`CaseError::InvalidStructure`] for a zero sample budget.
    pub fn run(&self, case: &Case) -> Result<MonteCarloReport> {
        match self.plan {
            Some(plan) => self.run_plan(plan),
            None => self.run_plan(&EvalPlan::compile(case)?),
        }
    }

    /// Runs the chunked deterministic engine on a pre-compiled plan —
    /// the amortised entry point for plan caches.
    ///
    /// # Errors
    ///
    /// [`CaseError::InvalidStructure`] for a zero sample budget.
    pub fn run_plan(&self, plan: &EvalPlan) -> Result<MonteCarloReport> {
        check_samples(self.samples)?;
        Ok(run_parallel(plan, self.samples, self.seed, self.threads))
    }

    /// [`MonteCarlo::run_plan`] with an `mc_sample_loop` phase (the
    /// whole chunked parallel loop, measured on the calling thread once
    /// the scoped workers have joined) and an `mc_samples` count
    /// reported to `tracer`. Sampling is unchanged — the report stays
    /// bit-identical to the untraced call.
    ///
    /// # Errors
    ///
    /// As [`MonteCarlo::run_plan`].
    pub fn run_plan_traced<T: Tracer + ?Sized>(
        &self,
        plan: &EvalPlan,
        tracer: &T,
    ) -> Result<MonteCarloReport> {
        let started = Instant::now();
        let report = self.run_plan(plan)?;
        tracer.phase("mc_sample_loop", started.elapsed());
        tracer.count("mc_samples", u64::from(self.samples));
        Ok(report)
    }

    /// Like [`MonteCarlo::run_plan`], but polls `should_stop` between
    /// chunk claims (at most 8×[`CHUNK_SAMPLES`] structure
    /// evaluations per worker) and abandons the run when it answers `true` — the hook
    /// for per-request deadlines, which would otherwise overshoot by
    /// the full sampling time. `Ok(None)` means the run was stopped;
    /// there is no partial report, so a completed run stays
    /// bit-identical to [`MonteCarlo::run_plan`] at any thread count.
    ///
    /// # Errors
    ///
    /// [`CaseError::InvalidStructure`] for a zero sample budget.
    pub fn run_plan_until(
        &self,
        plan: &EvalPlan,
        should_stop: &(dyn Fn() -> bool + Sync),
    ) -> Result<Option<MonteCarloReport>> {
        check_samples(self.samples)?;
        Ok(run_parallel_until(plan, self.samples, self.seed, self.threads, should_stop))
    }

    /// [`MonteCarlo::run_plan_until`] with the same `mc_sample_loop`
    /// phase and `mc_samples` count as [`MonteCarlo::run_plan_traced`].
    /// A stopped run (`Ok(None)`) still reports the phase — the time
    /// was spent — but no sample count, since no report was produced.
    ///
    /// # Errors
    ///
    /// As [`MonteCarlo::run_plan_until`].
    pub fn run_plan_until_traced<T: Tracer + ?Sized>(
        &self,
        plan: &EvalPlan,
        should_stop: &(dyn Fn() -> bool + Sync),
        tracer: &T,
    ) -> Result<Option<MonteCarloReport>> {
        let started = Instant::now();
        let report = self.run_plan_until(plan, should_stop)?;
        tracer.phase("mc_sample_loop", started.elapsed());
        if report.is_some() {
            tracer.count("mc_samples", u64::from(self.samples));
        }
        Ok(report)
    }

    /// Runs sequentially with a caller-owned RNG (the reference
    /// implementation the chunked engine is validated against). The
    /// `seed`/`threads` options are ignored; the RNG's state is the
    /// source of randomness.
    ///
    /// # Errors
    ///
    /// Structural errors from [`Case::validate`], or
    /// [`CaseError::InvalidStructure`] for a zero sample budget.
    pub fn run_sequential(&self, case: &Case, rng: &mut dyn RngCore) -> Result<MonteCarloReport> {
        match self.plan {
            Some(plan) => self.run_sequential_plan(plan, rng),
            None => self.run_sequential_plan(&EvalPlan::compile(case)?, rng),
        }
    }

    /// Sequential runner on a pre-compiled plan with a caller-owned RNG.
    ///
    /// # Errors
    ///
    /// [`CaseError::InvalidStructure`] for a zero sample budget.
    pub fn run_sequential_plan(
        &self,
        plan: &EvalPlan,
        rng: &mut dyn RngCore,
    ) -> Result<MonteCarloReport> {
        check_samples(self.samples)?;
        let mut hits = vec![0u64; plan.targets().len()];
        run_samples(plan, self.samples, rng, &mut hits);
        Ok(report_from_hits(plan, &hits, self.samples))
    }
}

fn check_samples(samples: u32) -> Result<()> {
    if samples == 0 {
        return Err(CaseError::InvalidStructure("need at least one sample".into()));
    }
    Ok(())
}

/// Derives chunk `c`'s RNG seed from the master seed (SplitMix64-style
/// finalizer, so nearby chunk indices land in well-separated streams).
fn chunk_seed(seed: u64, chunk: u64) -> u64 {
    let mut z = seed ^ chunk.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Number of samples in chunk `c` of a `samples`-sample run.
fn chunk_len(samples: u32, chunk: u32) -> u32 {
    let start = chunk * CHUNK_SAMPLES;
    (samples - start).min(CHUNK_SAMPLES)
}

/// The chunked deterministic engine body shared by every parallel entry
/// point: `samples` structure evaluations across `threads` workers,
/// bit-identically reproducible for a fixed `seed` at **any** thread
/// count (see the module docs for the chunked seeding scheme).
///
/// `threads == 0` selects [`std::thread::available_parallelism`].
fn run_parallel(plan: &EvalPlan, samples: u32, seed: u64, threads: usize) -> MonteCarloReport {
    run_parallel_until(plan, samples, seed, threads, &|| false)
        .expect("a never-stopping run always completes")
}

/// [`run_parallel`] with a stop hook: every worker polls `should_stop`
/// before claiming its next chunks and the whole run is abandoned (→
/// `None`) as soon as any worker sees `true`, so the latency of honoring
/// a stop is bounded by one claim's sampling time (at most
/// [`INTERLEAVE`] chunks) per worker.
fn run_parallel_until(
    plan: &EvalPlan,
    samples: u32,
    seed: u64,
    threads: usize,
    should_stop: &(dyn Fn() -> bool + Sync),
) -> Option<MonteCarloReport> {
    let chunks = samples.div_ceil(CHUNK_SAMPLES);
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        threads
    }
    .min(chunks as usize)
    .max(1);

    let targets = plan.targets().len();
    let next_chunk = AtomicUsize::new(0);
    let stopped = AtomicBool::new(false);
    let plan_ref = plan;
    let next_ref = &next_chunk;
    let stopped_ref = &stopped;

    // Each worker claims chunks dynamically and keeps private per-target
    // hit totals; integer addition is exact and commutative, so the
    // merged counts are independent of the chunk→worker assignment.
    let totals: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || {
                    let mut local = vec![0u64; targets];
                    loop {
                        if stopped_ref.load(Ordering::Relaxed) || should_stop() {
                            stopped_ref.store(true, Ordering::Relaxed);
                            break;
                        }
                        let c0 = next_ref.fetch_add(INTERLEAVE, Ordering::Relaxed) as u32;
                        if c0 >= chunks {
                            break;
                        }
                        let take = (chunks - c0).min(INTERLEAVE as u32);
                        if take == INTERLEAVE as u32
                            && chunk_len(samples, c0 + take - 1) == CHUNK_SAMPLES
                        {
                            // A full claim of full chunks: fuse their
                            // independent streams into one SIMD pass.
                            let seeds: [u64; INTERLEAVE] =
                                std::array::from_fn(|k| chunk_seed(seed, u64::from(c0) + k as u64));
                            let mut rngs = WideStdRng::from_seeds(seeds);
                            run_chunks_interleaved(plan_ref, &mut rngs, &mut local);
                        } else {
                            for c in c0..c0 + take {
                                let mut rng = StdRng::seed_from_u64(chunk_seed(seed, u64::from(c)));
                                run_samples_wide(
                                    plan_ref,
                                    chunk_len(samples, c),
                                    &mut rng,
                                    &mut local,
                                );
                            }
                        }
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });

    if stopped.load(Ordering::Relaxed) {
        return None;
    }
    let mut hits = vec![0u64; targets];
    for local in &totals {
        for (h, l) in hits.iter_mut().zip(local) {
            *h += l;
        }
    }
    Some(report_from_hits(plan, &hits, samples))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Combination;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn agrees_with_analytic_conjunction() {
        let mut case = Case::new("t");
        let g = case.add_goal("G", "top").unwrap();
        let e1 = case.add_evidence("E1", "a", 0.9).unwrap();
        let e2 = case.add_evidence("E2", "b", 0.8).unwrap();
        case.support(g, e1).unwrap();
        case.support(g, e2).unwrap();
        let mc = MonteCarlo::new(50_000).run_sequential(&case, &mut rng(2)).unwrap();
        let analytic = case.propagate().unwrap().confidence(g).unwrap().independent;
        let est = mc.estimate(g).unwrap();
        assert!(
            (est - analytic).abs() < mc.half_width(g).unwrap() * 1.5,
            "mc = {est}, analytic = {analytic}"
        );
    }

    #[test]
    fn agrees_with_analytic_two_legs_and_assumption() {
        let mut case = Case::new("t");
        let g = case.add_goal("G", "top").unwrap();
        let s = case.add_strategy("S", "legs", Combination::AnyOf).unwrap();
        let e1 = case.add_evidence("E1", "a", 0.9).unwrap();
        let e2 = case.add_evidence("E2", "b", 0.7).unwrap();
        let a = case.add_assumption("A", "env", 0.95).unwrap();
        case.support(g, s).unwrap();
        case.support(s, e1).unwrap();
        case.support(s, e2).unwrap();
        case.support(g, a).unwrap();
        let mc = MonteCarlo::new(80_000).run_sequential(&case, &mut rng(3)).unwrap();
        let analytic = case.propagate().unwrap().confidence(g).unwrap().independent;
        let est = mc.estimate(g).unwrap();
        assert!(
            (est - analytic).abs() < mc.half_width(g).unwrap() * 1.5,
            "mc = {est}, analytic = {analytic}"
        );
    }

    #[test]
    fn strategies_are_estimated_too() {
        let mut case = Case::new("t");
        let g = case.add_goal("G", "top").unwrap();
        let s = case.add_strategy("S", "conj", Combination::AllOf).unwrap();
        let e = case.add_evidence("E", "a", 0.6).unwrap();
        case.support(g, s).unwrap();
        case.support(s, e).unwrap();
        let mc = MonteCarlo::new(30_000).run_sequential(&case, &mut rng(4)).unwrap();
        assert!(mc.estimate(s).is_some());
        assert!((mc.estimate(s).unwrap() - 0.6).abs() < 0.01);
        assert_eq!(mc.samples(), 30_000);
    }

    #[test]
    fn zero_samples_rejected() {
        let mut case = Case::new("t");
        let g = case.add_goal("G", "top").unwrap();
        let e = case.add_evidence("E", "a", 0.5).unwrap();
        case.support(g, e).unwrap();
        assert!(MonteCarlo::new(0).run_sequential(&case, &mut rng(5)).is_err());
        assert!(MonteCarlo::new(0).seed(5).threads(2).run(&case).is_err());
    }

    #[test]
    fn invalid_case_rejected() {
        let mut case = Case::new("t");
        case.add_goal("G", "undeveloped").unwrap();
        assert!(MonteCarlo::new(100).run_sequential(&case, &mut rng(6)).is_err());
        assert!(MonteCarlo::new(100).seed(6).threads(2).run(&case).is_err());
    }

    #[test]
    fn deterministic_under_seed() {
        let mut case = Case::new("t");
        let g = case.add_goal("G", "top").unwrap();
        let e = case.add_evidence("E", "a", 0.42).unwrap();
        case.support(g, e).unwrap();
        let a = MonteCarlo::new(5000).run_sequential(&case, &mut rng(7)).unwrap();
        let b = MonteCarlo::new(5000).run_sequential(&case, &mut rng(7)).unwrap();
        assert_eq!(a.estimate(g), b.estimate(g));
    }

    #[test]
    fn parallel_bit_identical_across_thread_counts() {
        let mut case = Case::new("t");
        let g = case.add_goal("G", "top").unwrap();
        let s = case.add_strategy("S", "legs", Combination::AnyOf).unwrap();
        let e1 = case.add_evidence("E1", "a", 0.93).unwrap();
        let e2 = case.add_evidence("E2", "b", 0.81).unwrap();
        let a = case.add_assumption("A", "env", 0.97).unwrap();
        case.support(g, s).unwrap();
        case.support(s, e1).unwrap();
        case.support(s, e2).unwrap();
        case.support(g, a).unwrap();
        // Deliberately not a multiple of CHUNK_SAMPLES: the tail chunk
        // must land in the same stream wherever it is scheduled.
        let samples = 3 * CHUNK_SAMPLES + 1234;
        let reference = MonteCarlo::new(samples).seed(99).threads(1).run(&case).unwrap();
        for threads in [2, 3, 4, 8] {
            let par = MonteCarlo::new(samples).seed(99).threads(threads).run(&case).unwrap();
            for &(id, _) in EvalPlan::compile(&case).unwrap().targets() {
                assert_eq!(
                    reference.estimate(id).unwrap().to_bits(),
                    par.estimate(id).unwrap().to_bits(),
                    "thread count {threads} changed the estimate for {id:?}"
                );
            }
        }
    }

    #[test]
    fn parallel_agrees_with_analytic() {
        let mut case = Case::new("t");
        let g = case.add_goal("G", "top").unwrap();
        let e1 = case.add_evidence("E1", "a", 0.9).unwrap();
        let e2 = case.add_evidence("E2", "b", 0.8).unwrap();
        case.support(g, e1).unwrap();
        case.support(g, e2).unwrap();
        let mc = MonteCarlo::new(100_000).seed(11).threads(4).run(&case).unwrap();
        let analytic = case.propagate().unwrap().confidence(g).unwrap().independent;
        let est = mc.estimate(g).unwrap();
        assert!(
            (est - analytic).abs() < mc.half_width(g).unwrap() * 1.5,
            "mc = {est}, analytic = {analytic}"
        );
    }

    #[test]
    fn wilson_half_width_positive_at_degenerate_estimates() {
        // All-certain leaves: every sample hits, p̂ = 1.
        let mut case = Case::new("t");
        let g = case.add_goal("G", "top").unwrap();
        let e = case.add_evidence("E", "a", 1.0).unwrap();
        case.support(g, e).unwrap();
        let mc = MonteCarlo::new(10_000).run_sequential(&case, &mut rng(8)).unwrap();
        assert_eq!(mc.estimate(g), Some(1.0));
        let hw = mc.half_width(g).unwrap();
        assert!(hw > 0.0, "degenerate estimate must keep nonzero width");
        assert!(hw < 0.001, "width {hw} should be ~z²/2n");
        let (lo, hi) = mc.interval(g).unwrap();
        assert!(lo < 1.0 && hi <= 1.0, "interval ({lo}, {hi})");

        // All-impossible leaves: no sample hits, p̂ = 0.
        let mut case = Case::new("t2");
        let g = case.add_goal("G", "top").unwrap();
        let e = case.add_evidence("E", "a", 0.0).unwrap();
        case.support(g, e).unwrap();
        let mc = MonteCarlo::new(10_000).run_sequential(&case, &mut rng(9)).unwrap();
        assert_eq!(mc.estimate(g), Some(0.0));
        let hw = mc.half_width(g).unwrap();
        assert!(hw > 0.0);
        let (lo, hi) = mc.interval(g).unwrap();
        assert!(lo >= 0.0 && hi > 0.0, "interval ({lo}, {hi})");
    }

    #[test]
    fn wilson_close_to_wald_in_the_interior() {
        let mut case = Case::new("t");
        let g = case.add_goal("G", "top").unwrap();
        let e = case.add_evidence("E", "a", 0.5).unwrap();
        case.support(g, e).unwrap();
        let mc = MonteCarlo::new(50_000).run_sequential(&case, &mut rng(10)).unwrap();
        let p = mc.estimate(g).unwrap();
        let wald = 1.96 * (p * (1.0 - p) / 50_000.0).sqrt();
        let wilson = mc.half_width(g).unwrap();
        assert!((wald - wilson).abs() / wald < 0.01, "wald {wald} vs wilson {wilson}");
    }

    /// A case exercising every structural feature the wide kernel
    /// widens: AnyOf legs, AllOf conjunction, a shared (diamond) leaf,
    /// an assumption, a context node, and degenerate 0.0/1.0 leaves.
    fn gnarly_case() -> Case {
        let mut case = Case::new("t");
        let g = case.add_goal("G", "top").unwrap();
        let s1 = case.add_strategy("S1", "legs", Combination::AnyOf).unwrap();
        let s2 = case.add_strategy("S2", "conj", Combination::AllOf).unwrap();
        let e1 = case.add_evidence("E1", "a", 0.93).unwrap();
        let e2 = case.add_evidence("E2", "b", 0.07).unwrap();
        let shared = case.add_evidence("E3", "shared", 0.5).unwrap();
        let certain = case.add_evidence("E4", "certain", 1.0).unwrap();
        let impossible = case.add_evidence("E5", "impossible", 0.0).unwrap();
        let a = case.add_assumption("A", "env", 0.97).unwrap();
        case.add_context("C", "environment").unwrap();
        case.support(g, s1).unwrap();
        case.support(g, s2).unwrap();
        case.support(g, a).unwrap();
        case.support(s1, e1).unwrap();
        case.support(s1, e2).unwrap();
        case.support(s1, shared).unwrap();
        case.support(s1, impossible).unwrap();
        case.support(s2, shared).unwrap();
        case.support(s2, certain).unwrap();
        case
    }

    #[test]
    fn wide_hits_are_bit_identical_to_scalar_hits() {
        let plan = EvalPlan::compile(&gnarly_case()).unwrap();
        // Counts straddling every group boundary: sub-group, exact
        // groups, one-over, multi-group with tail, and a full chunk.
        for count in [1u32, 37, 63, 64, 65, 130, 1000, CHUNK_SAMPLES] {
            for seed in [0u64, 7, 42] {
                let mut scalar = vec![0u64; plan.targets().len()];
                run_samples(&plan, count, &mut rng(seed), &mut scalar);
                let mut wide = vec![0u64; plan.targets().len()];
                run_samples_wide(&plan, count, &mut rng(seed), &mut wide);
                assert_eq!(scalar, wide, "count {count}, seed {seed}");
            }
        }
    }

    #[test]
    fn wide_engine_leaves_the_rng_at_the_scalar_stream_position() {
        // Equal draw consumption is what keeps every chunk's stream
        // aligned no matter which engine ran it.
        let plan = EvalPlan::compile(&gnarly_case()).unwrap();
        let mut a = rng(3);
        let mut b = rng(3);
        run_samples(&plan, 130, &mut a, &mut vec![0u64; plan.targets().len()]);
        run_samples_wide(&plan, 130, &mut b, &mut vec![0u64; plan.targets().len()]);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn parallel_run_matches_a_hand_chunked_scalar_reference() {
        // run_plan now goes through the wide engine; rebuild the same
        // answer from the scalar sampler chunk by chunk.
        let case = gnarly_case();
        let plan = EvalPlan::compile(&case).unwrap();
        let samples = 2 * CHUNK_SAMPLES + 777;
        let seed = 99u64;
        let mut hits = vec![0u64; plan.targets().len()];
        for c in 0..samples.div_ceil(CHUNK_SAMPLES) {
            let mut rng = StdRng::seed_from_u64(chunk_seed(seed, u64::from(c)));
            run_samples(&plan, chunk_len(samples, c), &mut rng, &mut hits);
        }
        let reference = report_from_hits(&plan, &hits, samples);
        let wide = MonteCarlo::new(samples).seed(seed).threads(2).run_plan(&plan).unwrap();
        for &(id, _) in plan.targets() {
            assert_eq!(
                reference.estimate(id).unwrap().to_bits(),
                wide.estimate(id).unwrap().to_bits(),
                "wide engine diverged from the scalar reference at {id:?}"
            );
        }
    }

    #[test]
    fn interleaved_chunk_claims_match_the_hand_chunked_scalar_reference() {
        // ≥ 2×INTERLEAVE full chunks plus a short tail: exercises the
        // interleaved fast path *and* the per-chunk fallback in one run.
        let case = gnarly_case();
        let plan = EvalPlan::compile(&case).unwrap();
        let samples = 2 * (INTERLEAVE as u32) * CHUNK_SAMPLES + 13;
        let seed = 1234u64;
        let mut hits = vec![0u64; plan.targets().len()];
        for c in 0..samples.div_ceil(CHUNK_SAMPLES) {
            let mut rng = StdRng::seed_from_u64(chunk_seed(seed, u64::from(c)));
            run_samples(&plan, chunk_len(samples, c), &mut rng, &mut hits);
        }
        let reference = report_from_hits(&plan, &hits, samples);
        for threads in [1usize, 2, 3] {
            let run = MonteCarlo::new(samples).seed(seed).threads(threads).run_plan(&plan).unwrap();
            for &(id, _) in plan.targets() {
                assert_eq!(
                    reference.estimate(id).unwrap().to_bits(),
                    run.estimate(id).unwrap().to_bits(),
                    "interleaved engine diverged at {id:?} with {threads} threads"
                );
            }
        }
    }

    #[test]
    fn chunk_seeds_are_distinct() {
        let seeds: Vec<u64> = (0..64).map(|c| chunk_seed(42, c)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len());
    }

    #[test]
    fn precompiled_plan_paths_are_bit_identical_to_compile_per_call() {
        let mut case = Case::new("t");
        let g = case.add_goal("G", "top").unwrap();
        let e1 = case.add_evidence("E1", "a", 0.9).unwrap();
        let e2 = case.add_evidence("E2", "b", 0.8).unwrap();
        case.support(g, e1).unwrap();
        case.support(g, e2).unwrap();
        let plan = EvalPlan::compile(&case).unwrap();
        let opts = MonteCarlo::new(20_000).seed(13).threads(2);
        let fresh = opts.run(&case).unwrap();
        let reused = opts.run_plan(&plan).unwrap();
        let via_override = opts.plan(&plan).run(&case).unwrap();
        let via_plan_entry = plan.simulate(&opts).unwrap();
        for r in [&reused, &via_override, &via_plan_entry] {
            assert_eq!(
                fresh.estimate(g).unwrap().to_bits(),
                r.estimate(g).unwrap().to_bits(),
                "plan reuse changed the estimate"
            );
        }
        // Sequential plan reuse matches the sequential compile path too.
        let a = MonteCarlo::new(5_000).run_sequential(&case, &mut rng(21)).unwrap();
        let b = MonteCarlo::new(5_000).run_sequential_plan(&plan, &mut rng(21)).unwrap();
        assert_eq!(a.estimate(g).unwrap().to_bits(), b.estimate(g).unwrap().to_bits());
    }

    #[test]
    fn stoppable_runs_complete_bit_identically_or_stop_between_chunks() {
        let mut case = Case::new("t");
        let g = case.add_goal("G", "top").unwrap();
        let e = case.add_evidence("E", "a", 0.7).unwrap();
        case.support(g, e).unwrap();
        let plan = EvalPlan::compile(&case).unwrap();
        let opts = MonteCarlo::new(4 * CHUNK_SAMPLES).seed(5).threads(2);

        // A hook that never fires changes nothing about the answer.
        let full = opts.run_plan(&plan).unwrap();
        let until = opts.run_plan_until(&plan, &|| false).unwrap().expect("must complete");
        assert_eq!(full.estimate(g).unwrap().to_bits(), until.estimate(g).unwrap().to_bits());

        // A hook that fires immediately stops before any chunk runs.
        assert!(opts.run_plan_until(&plan, &|| true).unwrap().is_none());

        // A hook that fires mid-run stops within one chunk per worker:
        // the counter below is only polled between chunk claims.
        let polls = AtomicUsize::new(0);
        let stopped =
            opts.run_plan_until(&plan, &|| polls.fetch_add(1, Ordering::Relaxed) >= 2).unwrap();
        assert!(stopped.is_none(), "mid-run stop must abandon the report");
    }
}
