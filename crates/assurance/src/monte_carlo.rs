//! Monte-Carlo cross-check of the analytic propagation.
//!
//! Samples each leaf's soundness as an independent Bernoulli with its
//! elicited confidence, evaluates the case's Boolean structure, and
//! estimates the root confidence with a normal-approximation confidence
//! interval. The analytic independence estimate must sit inside the
//! interval — the test suite uses this as an end-to-end oracle, and
//! users can call it to sanity-check hand-edited cases.

use crate::error::{CaseError, Result};
use crate::graph::{Case, Combination, NodeId, NodeKind};
use rand::Rng;
use rand::RngCore;
use std::collections::HashMap;

/// Monte-Carlo estimate of the probability each goal/strategy holds.
#[derive(Debug, Clone, PartialEq)]
pub struct MonteCarloReport {
    estimates: HashMap<NodeId, f64>,
    samples: u32,
}

impl MonteCarloReport {
    /// Estimated probability the node's claim holds.
    #[must_use]
    pub fn estimate(&self, id: NodeId) -> Option<f64> {
        self.estimates.get(&id).copied()
    }

    /// Half-width of the ~95 % normal-approximation confidence interval
    /// around [`MonteCarloReport::estimate`].
    #[must_use]
    pub fn half_width(&self, id: NodeId) -> Option<f64> {
        let p = self.estimate(id)?;
        Some(1.96 * (p * (1.0 - p) / f64::from(self.samples)).sqrt())
    }

    /// Number of structure samples drawn.
    #[must_use]
    pub fn samples(&self) -> u32 {
        self.samples
    }
}

/// Evaluates whether node `idx` holds for one sampled leaf outcome.
fn holds(case: &Case, idx: usize, leaf_ok: &HashMap<usize, bool>) -> bool {
    let node = case.node_at(idx);
    match node.kind {
        NodeKind::Evidence { .. } | NodeKind::Assumption { .. } => leaf_ok[&idx],
        NodeKind::Context => true,
        NodeKind::Goal | NodeKind::Strategy(_) => {
            let rule = match node.kind {
                NodeKind::Strategy(c) => c,
                _ => Combination::AllOf,
            };
            let mut support_any = false;
            let mut support_all = true;
            let mut has_support = false;
            let mut assumptions_ok = true;
            for &c in case.children_of(idx) {
                let child = case.node_at(c);
                let ok = holds(case, c, leaf_ok);
                if matches!(child.kind, NodeKind::Assumption { .. }) {
                    assumptions_ok &= ok;
                } else {
                    has_support = true;
                    support_any |= ok;
                    support_all &= ok;
                }
            }
            let support_ok = if !has_support {
                true
            } else {
                match rule {
                    Combination::AllOf => support_all,
                    Combination::AnyOf => support_any,
                }
            };
            support_ok && assumptions_ok
        }
    }
}

/// Runs `samples` independent structure evaluations.
///
/// # Errors
///
/// Structural errors from [`Case::validate`], or
/// [`CaseError::InvalidStructure`] for `samples == 0`.
///
/// # Examples
///
/// ```
/// use depcase_assurance::{monte_carlo::simulate, Case};
/// use rand::SeedableRng;
///
/// let mut case = Case::new("t");
/// let g = case.add_goal("G", "claim")?;
/// let e = case.add_evidence("E", "test", 0.9)?;
/// case.support(g, e)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mc = simulate(&case, 20_000, &mut rng)?;
/// let analytic = case.propagate()?.confidence(g).unwrap().independent;
/// assert!((mc.estimate(g).unwrap() - analytic).abs() < mc.half_width(g).unwrap());
/// # Ok::<(), depcase_assurance::CaseError>(())
/// ```
pub fn simulate(case: &Case, samples: u32, rng: &mut dyn RngCore) -> Result<MonteCarloReport> {
    case.validate()?;
    if samples == 0 {
        return Err(CaseError::InvalidStructure("need at least one sample".into()));
    }
    // Collect leaves and targets.
    let mut leaves: Vec<(usize, f64)> = Vec::new();
    let mut targets: Vec<(NodeId, usize)> = Vec::new();
    for (id, node) in case.iter() {
        let idx = case.index(id)?;
        match node.kind {
            NodeKind::Evidence { confidence } | NodeKind::Assumption { confidence } => {
                leaves.push((idx, confidence));
            }
            NodeKind::Goal | NodeKind::Strategy(_) => targets.push((id, idx)),
            NodeKind::Context => {}
        }
    }
    let mut hits: HashMap<NodeId, u64> = targets.iter().map(|&(id, _)| (id, 0)).collect();
    let mut leaf_ok: HashMap<usize, bool> = HashMap::with_capacity(leaves.len());
    for _ in 0..samples {
        for &(idx, conf) in &leaves {
            leaf_ok.insert(idx, rng.gen::<f64>() < conf);
        }
        for &(id, idx) in &targets {
            if holds(case, idx, &leaf_ok) {
                *hits.get_mut(&id).expect("preinserted") += 1;
            }
        }
    }
    let estimates = hits
        .into_iter()
        .map(|(id, h)| (id, h as f64 / f64::from(samples)))
        .collect();
    Ok(MonteCarloReport { estimates, samples })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn agrees_with_analytic_conjunction() {
        let mut case = Case::new("t");
        let g = case.add_goal("G", "top").unwrap();
        let e1 = case.add_evidence("E1", "a", 0.9).unwrap();
        let e2 = case.add_evidence("E2", "b", 0.8).unwrap();
        case.support(g, e1).unwrap();
        case.support(g, e2).unwrap();
        let mc = simulate(&case, 50_000, &mut rng(2)).unwrap();
        let analytic = case.propagate().unwrap().confidence(g).unwrap().independent;
        let est = mc.estimate(g).unwrap();
        assert!(
            (est - analytic).abs() < mc.half_width(g).unwrap() * 1.5,
            "mc = {est}, analytic = {analytic}"
        );
    }

    #[test]
    fn agrees_with_analytic_two_legs_and_assumption() {
        let mut case = Case::new("t");
        let g = case.add_goal("G", "top").unwrap();
        let s = case.add_strategy("S", "legs", Combination::AnyOf).unwrap();
        let e1 = case.add_evidence("E1", "a", 0.9).unwrap();
        let e2 = case.add_evidence("E2", "b", 0.7).unwrap();
        let a = case.add_assumption("A", "env", 0.95).unwrap();
        case.support(g, s).unwrap();
        case.support(s, e1).unwrap();
        case.support(s, e2).unwrap();
        case.support(g, a).unwrap();
        let mc = simulate(&case, 80_000, &mut rng(3)).unwrap();
        let analytic = case.propagate().unwrap().confidence(g).unwrap().independent;
        let est = mc.estimate(g).unwrap();
        assert!(
            (est - analytic).abs() < mc.half_width(g).unwrap() * 1.5,
            "mc = {est}, analytic = {analytic}"
        );
    }

    #[test]
    fn strategies_are_estimated_too() {
        let mut case = Case::new("t");
        let g = case.add_goal("G", "top").unwrap();
        let s = case.add_strategy("S", "conj", Combination::AllOf).unwrap();
        let e = case.add_evidence("E", "a", 0.6).unwrap();
        case.support(g, s).unwrap();
        case.support(s, e).unwrap();
        let mc = simulate(&case, 30_000, &mut rng(4)).unwrap();
        assert!(mc.estimate(s).is_some());
        assert!((mc.estimate(s).unwrap() - 0.6).abs() < 0.01);
        assert_eq!(mc.samples(), 30_000);
    }

    #[test]
    fn zero_samples_rejected() {
        let mut case = Case::new("t");
        let g = case.add_goal("G", "top").unwrap();
        let e = case.add_evidence("E", "a", 0.5).unwrap();
        case.support(g, e).unwrap();
        assert!(simulate(&case, 0, &mut rng(5)).is_err());
    }

    #[test]
    fn invalid_case_rejected() {
        let mut case = Case::new("t");
        case.add_goal("G", "undeveloped").unwrap();
        assert!(simulate(&case, 100, &mut rng(6)).is_err());
    }

    #[test]
    fn deterministic_under_seed() {
        let mut case = Case::new("t");
        let g = case.add_goal("G", "top").unwrap();
        let e = case.add_evidence("E", "a", 0.42).unwrap();
        case.support(g, e).unwrap();
        let a = simulate(&case, 5000, &mut rng(7)).unwrap();
        let b = simulate(&case, 5000, &mut rng(7)).unwrap();
        assert_eq!(a.estimate(g), b.estimate(g));
    }
}
