//! Prebuilt case patterns.
//!
//! The safety-case literature the paper builds on (Bishop & Bloomfield's
//! methodology, ref \[7\]) works from recurring argument patterns. These
//! constructors build the quantified skeletons so examples, tests and
//! downstream tools don't re-assemble them node by node.

use crate::error::Result;
use crate::graph::{Case, Combination, NodeId};

/// A single-leg case: one goal supported by one evidence item, with an
/// optional environmental assumption.
///
/// Returns the case and the goal handle.
///
/// # Errors
///
/// Propagates node-construction failures (invalid confidences).
///
/// # Examples
///
/// ```
/// use depcase_assurance::templates::single_leg;
///
/// let (case, goal) = single_leg("pfd < 1e-2", "statistical testing", 0.95, None)?;
/// let top = case.propagate()?.confidence(goal).unwrap();
/// assert!((top.independent - 0.95).abs() < 1e-12);
/// # Ok::<(), depcase_assurance::CaseError>(())
/// ```
pub fn single_leg(
    claim: &str,
    evidence: &str,
    confidence: f64,
    assumption: Option<(&str, f64)>,
) -> Result<(Case, NodeId)> {
    let mut case = Case::new(format!("single-leg: {claim}"));
    let g = case.add_goal("G1", claim)?;
    let e = case.add_evidence("E1", evidence, confidence)?;
    case.support(g, e)?;
    if let Some((text, conf)) = assumption {
        let a = case.add_assumption("A1", text, conf)?;
        case.support(g, a)?;
    }
    Ok((case, g))
}

/// The paper's Section 4.2 pattern: a claim supported by independent
/// argument legs ("argument fault-tolerance"), with an optional shared
/// assumption attached to the goal (the dependence the second leg cannot
/// remove).
///
/// # Errors
///
/// Propagates node-construction failures; needs at least one leg.
///
/// # Examples
///
/// ```
/// use depcase_assurance::templates::multi_leg;
///
/// let (case, goal) = multi_leg(
///     "pfd < 1e-2",
///     &[("statistical testing", 0.95), ("static analysis", 0.90)],
///     Some(("shared requirements spec", 0.98)),
/// )?;
/// let top = case.propagate()?.confidence(goal).unwrap();
/// // legs: 1 − 0.05·0.10 = 0.995, conjoined with the assumption 0.98.
/// assert!((top.independent - 0.995 * 0.98).abs() < 1e-12);
/// # Ok::<(), depcase_assurance::CaseError>(())
/// ```
pub fn multi_leg(
    claim: &str,
    legs: &[(&str, f64)],
    shared_assumption: Option<(&str, f64)>,
) -> Result<(Case, NodeId)> {
    let mut case = Case::new(format!("multi-leg: {claim}"));
    let g = case.add_goal("G1", claim)?;
    let s = case.add_strategy("S1", "independent argument legs", Combination::AnyOf)?;
    case.support(g, s)?;
    if legs.is_empty() {
        return Err(crate::error::CaseError::InvalidStructure(
            "a multi-leg case needs at least one leg".into(),
        ));
    }
    for (i, (text, conf)) in legs.iter().enumerate() {
        let e = case.add_evidence(format!("E{}", i + 1), *text, *conf)?;
        case.support(s, e)?;
    }
    if let Some((text, conf)) = shared_assumption {
        let a = case.add_assumption("A1", text, conf)?;
        case.support(g, a)?;
    }
    Ok((case, g))
}

/// A SIL-claim case in the style the paper analyses: the top goal is a
/// SIL claim supported conjunctively by sub-goals for each evidence
/// strand (process compliance, testing, operating history), each with
/// its own confidence.
///
/// # Errors
///
/// Propagates node-construction failures; needs at least one strand.
pub fn sil_claim(sil_statement: &str, strands: &[(&str, f64)]) -> Result<(Case, NodeId)> {
    if strands.is_empty() {
        return Err(crate::error::CaseError::InvalidStructure(
            "a SIL-claim case needs at least one evidence strand".into(),
        ));
    }
    let mut case = Case::new(format!("sil-claim: {sil_statement}"));
    let g = case.add_goal("G1", sil_statement)?;
    let s = case.add_strategy("S1", "argument over all evidence strands", Combination::AllOf)?;
    case.support(g, s)?;
    for (i, (text, conf)) in strands.iter().enumerate() {
        let sub = case.add_goal(format!("G1.{}", i + 1), format!("{text} adequate"))?;
        let e = case.add_evidence(format!("E{}", i + 1), *text, *conf)?;
        case.support(s, sub)?;
        case.support(sub, e)?;
    }
    Ok((case, g))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_leg_passthrough_and_assumption() {
        let (case, g) = single_leg("c", "e", 0.9, None).unwrap();
        assert!((case.propagate().unwrap().confidence(g).unwrap().independent - 0.9).abs() < 1e-12);
        let (case, g) = single_leg("c", "e", 0.9, Some(("env", 0.5))).unwrap();
        let top = case.propagate().unwrap().confidence(g).unwrap();
        assert!((top.independent - 0.45).abs() < 1e-12);
    }

    #[test]
    fn multi_leg_doubt_multiplies() {
        let (case, g) = multi_leg("c", &[("a", 0.9), ("b", 0.8), ("c", 0.7)], None).unwrap();
        let top = case.propagate().unwrap().confidence(g).unwrap();
        assert!((top.independent - (1.0 - 0.1 * 0.2 * 0.3)).abs() < 1e-12);
    }

    #[test]
    fn multi_leg_needs_legs() {
        assert!(multi_leg("c", &[], None).is_err());
    }

    #[test]
    fn sil_claim_conjoins_strands() {
        let (case, g) = sil_claim(
            "SIL2 (pfd < 1e-2)",
            &[("process compliance", 0.9), ("statistical testing", 0.95)],
        )
        .unwrap();
        let top = case.propagate().unwrap().confidence(g).unwrap();
        assert!((top.independent - 0.9 * 0.95).abs() < 1e-12);
        assert!(case.validate().is_ok());
        assert_eq!(case.roots(), vec![g]);
    }

    #[test]
    fn sil_claim_needs_strands() {
        assert!(sil_claim("SIL2", &[]).is_err());
    }

    #[test]
    fn templates_export_dot() {
        let (case, _) = multi_leg("c", &[("a", 0.9)], Some(("s", 0.99))).unwrap();
        let dot = case.to_dot(None);
        assert!(dot.contains("E1") && dot.contains("A1"));
    }
}
