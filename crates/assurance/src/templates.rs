//! Prebuilt case patterns.
//!
//! The safety-case literature the paper builds on (Bishop & Bloomfield's
//! methodology, ref \[7\]) works from recurring argument patterns. These
//! constructors build the quantified skeletons so examples, tests and
//! downstream tools don't re-assemble them node by node.

use crate::error::Result;
use crate::graph::{Case, Combination, NodeId};

/// A single-leg case: one goal supported by one evidence item, with an
/// optional environmental assumption.
///
/// Returns the case and the goal handle.
///
/// # Errors
///
/// Propagates node-construction failures (invalid confidences).
///
/// # Examples
///
/// ```
/// use depcase_assurance::templates::single_leg;
///
/// let (case, goal) = single_leg("pfd < 1e-2", "statistical testing", 0.95, None)?;
/// let top = case.propagate()?.confidence(goal).unwrap();
/// assert!((top.independent - 0.95).abs() < 1e-12);
/// # Ok::<(), depcase_assurance::CaseError>(())
/// ```
pub fn single_leg(
    claim: &str,
    evidence: &str,
    confidence: f64,
    assumption: Option<(&str, f64)>,
) -> Result<(Case, NodeId)> {
    let mut case = Case::new(format!("single-leg: {claim}"));
    let g = case.add_goal("G1", claim)?;
    let e = case.add_evidence("E1", evidence, confidence)?;
    case.support(g, e)?;
    if let Some((text, conf)) = assumption {
        let a = case.add_assumption("A1", text, conf)?;
        case.support(g, a)?;
    }
    Ok((case, g))
}

/// The paper's Section 4.2 pattern: a claim supported by independent
/// argument legs ("argument fault-tolerance"), with an optional shared
/// assumption attached to the goal (the dependence the second leg cannot
/// remove).
///
/// # Errors
///
/// Propagates node-construction failures; needs at least one leg.
///
/// # Examples
///
/// ```
/// use depcase_assurance::templates::multi_leg;
///
/// let (case, goal) = multi_leg(
///     "pfd < 1e-2",
///     &[("statistical testing", 0.95), ("static analysis", 0.90)],
///     Some(("shared requirements spec", 0.98)),
/// )?;
/// let top = case.propagate()?.confidence(goal).unwrap();
/// // legs: 1 − 0.05·0.10 = 0.995, conjoined with the assumption 0.98.
/// assert!((top.independent - 0.995 * 0.98).abs() < 1e-12);
/// # Ok::<(), depcase_assurance::CaseError>(())
/// ```
pub fn multi_leg(
    claim: &str,
    legs: &[(&str, f64)],
    shared_assumption: Option<(&str, f64)>,
) -> Result<(Case, NodeId)> {
    let mut case = Case::new(format!("multi-leg: {claim}"));
    let g = case.add_goal("G1", claim)?;
    let s = case.add_strategy("S1", "independent argument legs", Combination::AnyOf)?;
    case.support(g, s)?;
    if legs.is_empty() {
        return Err(crate::error::CaseError::InvalidStructure(
            "a multi-leg case needs at least one leg".into(),
        ));
    }
    for (i, (text, conf)) in legs.iter().enumerate() {
        let e = case.add_evidence(format!("E{}", i + 1), *text, *conf)?;
        case.support(s, e)?;
    }
    if let Some((text, conf)) = shared_assumption {
        let a = case.add_assumption("A1", text, conf)?;
        case.support(g, a)?;
    }
    Ok((case, g))
}

/// A SIL-claim case in the style the paper analyses: the top goal is a
/// SIL claim supported conjunctively by sub-goals for each evidence
/// strand (process compliance, testing, operating history), each with
/// its own confidence.
///
/// # Errors
///
/// Propagates node-construction failures; needs at least one strand.
pub fn sil_claim(sil_statement: &str, strands: &[(&str, f64)]) -> Result<(Case, NodeId)> {
    if strands.is_empty() {
        return Err(crate::error::CaseError::InvalidStructure(
            "a SIL-claim case needs at least one evidence strand".into(),
        ));
    }
    let mut case = Case::new(format!("sil-claim: {sil_statement}"));
    let g = case.add_goal("G1", sil_statement)?;
    let s = case.add_strategy("S1", "argument over all evidence strands", Combination::AllOf)?;
    case.support(g, s)?;
    for (i, (text, conf)) in strands.iter().enumerate() {
        let sub = case.add_goal(format!("G1.{}", i + 1), format!("{text} adequate"))?;
        let e = case.add_evidence(format!("E{}", i + 1), *text, *conf)?;
        case.support(s, sub)?;
        case.support(sub, e)?;
    }
    Ok((case, g))
}

/// Number of distinct shapes [`template`] can build — the fleet-scale
/// story is "a handful of templates, stamped out per tenant".
pub const TEMPLATE_COUNT: usize = 10;

/// Deterministic SplitMix64 step, the stamping generator's only source
/// of variation — `stamp(id, v)` is a pure function of `(id, v)`.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A confidence in `[0.5, 0.995]` with limited precision, so distinct
/// draws frequently coincide and perturbed values stay plausible.
fn drawn_confidence(state: &mut u64) -> f64 {
    0.5 + (splitmix(state) % 100) as f64 * 0.005
}

/// One of [`TEMPLATE_COUNT`] base case shapes, each a different
/// quantified argument pattern (depth, fan-out, and combination mix
/// vary with `id`), with deterministic leaf confidences. Two calls with
/// the same `id` build content-identical cases.
///
/// Shapes range from a flat multi-leg argument (a goal, one strategy,
/// many evidence leaves) to a three-level SIL-style tree (sub-goals per
/// strand, each with its own leaves plus an assumption), so a mixed
/// fleet exercises both wide and deep propagation.
///
/// # Panics
///
/// Panics when `id >= TEMPLATE_COUNT`.
#[must_use]
pub fn template(id: usize) -> Case {
    assert!(id < TEMPLATE_COUNT, "template id {id} out of range (< {TEMPLATE_COUNT})");
    let mut rng = 0x7e3a_11c0_u64.wrapping_add(id as u64);
    let mut case = Case::new(format!("template-{id}"));
    let g = case.add_goal("G", format!("fleet claim {id}")).unwrap();
    // id drives the shape: 2–4 strands, 3–6 leaves per strand, with a
    // deep sub-goal level on odd ids.
    let strands = 2 + id % 3;
    let leaves_per = 3 + id % 4;
    let deep = id % 2 == 1;
    for s in 0..strands {
        let rule = if (id + s).is_multiple_of(2) { Combination::AnyOf } else { Combination::AllOf };
        let strat = case.add_strategy(format!("S{s}"), "strand", rule).unwrap();
        case.support(g, strat).unwrap();
        for l in 0..leaves_per {
            let conf = drawn_confidence(&mut rng);
            if deep {
                let sub = case.add_goal(format!("G{s}.{l}"), "sub-claim").unwrap();
                let e = case.add_evidence(format!("E{s}_{l}"), "evidence", conf).unwrap();
                case.support(strat, sub).unwrap();
                case.support(sub, e).unwrap();
            } else {
                let e = case.add_evidence(format!("E{s}_{l}"), "evidence", conf).unwrap();
                case.support(strat, e).unwrap();
            }
        }
    }
    let a = case.add_assumption("A", "environment", drawn_confidence(&mut rng)).unwrap();
    case.support(g, a).unwrap();
    case
}

/// Stamps variant `variant` of template `id`: the base case with 1–3
/// evidence confidences re-elicited, deterministically from
/// `(id, variant)`. Variants of one template share every untouched
/// subtree — hash-identical across the whole fleet — which is exactly
/// what a shared [`crate::memo::MemoStore`] and the service's
/// content-addressed registry deduplicate. `stamp(id, 0)` perturbs
/// like any other variant; the pristine base is [`template`].
///
/// # Panics
///
/// Panics when `id >= TEMPLATE_COUNT`.
#[must_use]
pub fn stamp(id: usize, variant: u64) -> Case {
    let mut case = template(id);
    let leaves: Vec<NodeId> = case
        .iter()
        .filter(|(_, node)| matches!(node.kind, crate::graph::NodeKind::Evidence { .. }))
        .map(|(node_id, _)| node_id)
        .collect();
    let mut rng = (id as u64) << 32 ^ variant.wrapping_mul(0x9e37_79b9);
    let touched = 1 + (splitmix(&mut rng) % 3) as usize;
    for _ in 0..touched {
        let leaf = leaves[(splitmix(&mut rng) % leaves.len() as u64) as usize];
        let conf = drawn_confidence(&mut rng);
        case.set_leaf_confidence(leaf, conf).unwrap();
    }
    case
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_leg_passthrough_and_assumption() {
        let (case, g) = single_leg("c", "e", 0.9, None).unwrap();
        assert!((case.propagate().unwrap().confidence(g).unwrap().independent - 0.9).abs() < 1e-12);
        let (case, g) = single_leg("c", "e", 0.9, Some(("env", 0.5))).unwrap();
        let top = case.propagate().unwrap().confidence(g).unwrap();
        assert!((top.independent - 0.45).abs() < 1e-12);
    }

    #[test]
    fn multi_leg_doubt_multiplies() {
        let (case, g) = multi_leg("c", &[("a", 0.9), ("b", 0.8), ("c", 0.7)], None).unwrap();
        let top = case.propagate().unwrap().confidence(g).unwrap();
        assert!((top.independent - (1.0 - 0.1 * 0.2 * 0.3)).abs() < 1e-12);
    }

    #[test]
    fn multi_leg_needs_legs() {
        assert!(multi_leg("c", &[], None).is_err());
    }

    #[test]
    fn sil_claim_conjoins_strands() {
        let (case, g) = sil_claim(
            "SIL2 (pfd < 1e-2)",
            &[("process compliance", 0.9), ("statistical testing", 0.95)],
        )
        .unwrap();
        let top = case.propagate().unwrap().confidence(g).unwrap();
        assert!((top.independent - 0.9 * 0.95).abs() < 1e-12);
        assert!(case.validate().is_ok());
        assert_eq!(case.roots(), vec![g]);
    }

    #[test]
    fn sil_claim_needs_strands() {
        assert!(sil_claim("SIL2", &[]).is_err());
    }

    #[test]
    fn templates_export_dot() {
        let (case, _) = multi_leg("c", &[("a", 0.9)], Some(("s", 0.99))).unwrap();
        let dot = case.to_dot(None);
        assert!(dot.contains("E1") && dot.contains("A1"));
    }

    #[test]
    fn every_template_validates_and_propagates() {
        for id in 0..TEMPLATE_COUNT {
            let case = template(id);
            assert!(case.validate().is_ok(), "template {id}");
            assert!(case.propagate().is_ok(), "template {id}");
            // Rebuilding is content-identical (pure function of id).
            assert_eq!(case.content_hash(), template(id).content_hash(), "template {id}");
        }
        // The ten shapes are genuinely distinct arguments.
        let mut hashes: Vec<u64> =
            (0..TEMPLATE_COUNT).map(|i| template(i).content_hash()).collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), TEMPLATE_COUNT);
    }

    #[test]
    fn stamped_variants_are_deterministic_and_share_structure() {
        for id in 0..TEMPLATE_COUNT {
            let a = stamp(id, 42);
            let b = stamp(id, 42);
            assert_eq!(a.content_hash(), b.content_hash(), "stamp({id}, 42) must be pure");
            assert!(a.validate().is_ok());
            // A variant differs from the base only in leaf confidences:
            // same node count, same names, different content hash for
            // (almost) every variant draw.
            let base = template(id);
            assert_eq!(a.len(), base.len());
            let differing: Vec<u64> = (0..8)
                .map(|v| stamp(id, v).content_hash())
                .collect::<std::collections::HashSet<_>>()
                .into_iter()
                .collect();
            assert!(differing.len() >= 4, "template {id} variants barely vary: {differing:?}");
        }
    }

    #[test]
    fn out_of_range_template_ids_panic() {
        assert!(std::panic::catch_unwind(|| template(TEMPLATE_COUNT)).is_err());
    }
}
