//! A compiled, flat evaluation plan for a case's Boolean structure.
//!
//! The analytic propagation in [`crate::propagation`] memoizes shared
//! subtrees per call; Monte-Carlo needs the same work done *per sample*,
//! where a recursive walk with a hash map is the dominant cost. An
//! [`EvalPlan`] hoists the graph traversal out of the sampling loop: the
//! case is compiled **once** into a topologically ordered list of
//! combination steps over a flat slot buffer, so each sample is a single
//! linear pass with no hashing, no recursion and no allocation.
//!
//! The plan is immutable and `Sync`, so the parallel Monte-Carlo engine
//! shares one compiled plan across worker threads.

use crate::error::{CaseError, Result};
use crate::graph::{Case, Combination, NodeId};
use crate::ir::{CaseIr, Fnv, IrKind};
use crate::propagation::{ConfidenceReport, NodeConfidence};
use crate::trace::Tracer;
use rand::rngs::WideStdRng;
use rand::Rng;
use rand::RngCore;
use std::sync::Arc;
use std::time::Instant;

/// 2⁵³ as an `f64` — the scale of the 53-bit uniform variate every
/// Bernoulli draw consumes.
const TWO_POW_53: f64 = 9_007_199_254_740_992.0;

/// The integer Bernoulli threshold for a leaf confidence: the draw
/// `m = next_u64() >> 11` hits exactly when `m < ceil(conf · 2⁵³)`.
///
/// This is *exactly* equivalent to the scalar comparison
/// `(m as f64) · 2⁻⁵³ < conf`: both sides of the scalar compare are
/// exact (power-of-two scaling of a 53-bit integer), so it holds iff
/// the real number `m` is below the real number `conf · 2⁵³` — and for
/// integer `m` that is `m < ceil(conf · 2⁵³)`. The product `conf · 2⁵³`
/// itself is an exact `f64` (pure exponent shift, no overflow for
/// `conf ≤ 1`, no subnormals for `conf ≥ 2⁻¹⁰²¹`), so `ceil` sees the
/// true value. Out-of-domain confidences degrade identically to the
/// scalar compare: `NaN` and negatives saturate to threshold 0 (never
/// hit), values above one always hit.
fn bernoulli_threshold(confidence: f64) -> u64 {
    (confidence * TWO_POW_53).ceil() as u64
}

/// One compiled non-leaf evaluation step.
#[derive(Debug, Clone, PartialEq)]
enum Step {
    /// Context nodes hold vacuously.
    Constant { slot: u32 },
    /// A goal or strategy: combine child slots under `rule`, conjoined
    /// with any attached assumptions.
    Combine {
        slot: u32,
        rule: Combination,
        /// Slots of supporting (non-assumption) children.
        support: Vec<u32>,
        /// Slots of attached assumptions (always conjunctive).
        assumptions: Vec<u32>,
    },
}

/// A case's Boolean structure compiled for repeated evaluation.
///
/// # Examples
///
/// ```
/// use depcase_assurance::{Case, EvalPlan};
/// use rand::SeedableRng;
///
/// let mut case = Case::new("t");
/// let g = case.add_goal("G", "claim")?;
/// let e = case.add_evidence("E", "test", 0.9)?;
/// case.support(g, e)?;
///
/// let plan = EvalPlan::compile(&case)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut buf = plan.new_buffer();
/// plan.evaluate(&mut rng, &mut buf);
/// // buf now holds one sampled truth value per node.
/// assert_eq!(buf.len(), case.len());
/// # Ok::<(), depcase_assurance::CaseError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EvalPlan {
    /// The structural part — steps, leaf slots, targets — shared via
    /// `Arc`: a point confidence edit clones the plan cheaply and
    /// patches one float without re-deriving any structure.
    shape: Arc<PlanShape>,
    /// Confidence per Bernoulli leaf, parallel to `shape.leaf_slots`.
    leaf_confs: Vec<f64>,
    /// `ceil(conf · 2⁵³)` per leaf, parallel to `leaf_confs` — the
    /// integer form of each Bernoulli compare the wide sampler uses
    /// (see [`bernoulli_threshold`] for the exactness argument).
    leaf_thresholds: Vec<u64>,
}

/// The structure-only part of a plan: everything except the leaf
/// confidences, which are the only thing a point edit changes.
#[derive(Debug, PartialEq)]
struct PlanShape {
    /// Non-leaf steps in topological order: every step's inputs are
    /// either leaf slots or slots written by an earlier step.
    steps: Vec<Step>,
    /// Slot per Bernoulli leaf, in ascending slot order.
    leaf_slots: Vec<u32>,
    /// Reported goal/strategy nodes as `(id, slot)`, in slot order.
    targets: Vec<(NodeId, u32)>,
    /// Root goals (goal slots nothing supports), in slot order — what
    /// [`EvalPlan::propagate_batch`] reports as each case's roots.
    roots: Vec<u32>,
    /// Total slot count (= node count of the compiled case).
    slots: usize,
}

impl EvalPlan {
    /// Compiles `case` into a flat evaluation plan.
    ///
    /// # Errors
    ///
    /// Structural errors from [`Case::validate`], or
    /// [`crate::CaseError::InvalidStructure`] when a hand-edited save
    /// file smuggled in a support cycle.
    pub fn compile(case: &Case) -> Result<Self> {
        case.validate()?;
        let ir = CaseIr::build(case)?;
        Ok(Self::from_ir(&ir))
    }

    /// [`EvalPlan::compile`] with a `plan_compile` phase reported to
    /// `tracer`; with [`crate::NoTracer`] the hook inlines away and only
    /// two clock reads remain.
    ///
    /// # Errors
    ///
    /// As [`EvalPlan::compile`].
    pub fn compile_traced<T: Tracer + ?Sized>(case: &Case, tracer: &T) -> Result<Self> {
        let started = Instant::now();
        let plan = Self::compile(case)?;
        tracer.phase("plan_compile", started.elapsed());
        tracer.count("plan_steps", plan.shape.steps.len() as u64);
        Ok(plan)
    }

    /// Lowers an already-built IR into a plan. The IR's topological
    /// order *is* the step order, and leaves appear in ascending slot
    /// order — both identical to what the pre-IR compiler produced, so
    /// every sampled bit is unchanged.
    pub(crate) fn from_ir(ir: &CaseIr) -> Self {
        let n = ir.len();
        let mut leaf_slots = Vec::new();
        let mut leaf_confs = Vec::new();
        let mut targets = Vec::new();
        for i in 0..n {
            match ir.kind(i) {
                IrKind::Evidence(confidence) | IrKind::Assumption(confidence) => {
                    leaf_slots.push(i as u32);
                    leaf_confs.push(confidence);
                }
                IrKind::Goal | IrKind::Strategy(_) => {
                    targets.push((NodeId::from_index(i), i as u32));
                }
                IrKind::Context => {}
            }
        }

        let mut steps = Vec::new();
        for &t in ir.topo() {
            let i = t as usize;
            match ir.kind(i) {
                IrKind::Evidence(_) | IrKind::Assumption(_) => {}
                IrKind::Context => steps.push(Step::Constant { slot: i as u32 }),
                IrKind::Goal | IrKind::Strategy(_) => {
                    let rule = match ir.kind(i) {
                        IrKind::Strategy(c) => c,
                        _ => Combination::AllOf,
                    };
                    let mut support = Vec::new();
                    let mut assumptions = Vec::new();
                    for &c in ir.children(i) {
                        if matches!(ir.kind(c as usize), IrKind::Assumption(_)) {
                            assumptions.push(c);
                        } else {
                            support.push(c);
                        }
                    }
                    steps.push(Step::Combine { slot: i as u32, rule, support, assumptions });
                }
            }
        }

        let leaf_thresholds = leaf_confs.iter().map(|&c| bernoulli_threshold(c)).collect();
        let roots = ir.roots().to_vec();
        Self {
            shape: Arc::new(PlanShape { steps, leaf_slots, targets, roots, slots: n }),
            leaf_confs,
            leaf_thresholds,
        }
    }

    /// Patches the confidence of the leaf living in `slot`, if any —
    /// the incremental engine's O(log leaves) plan update. Structure is
    /// untouched (and stays shared).
    pub(crate) fn set_leaf_confidence(&mut self, slot: u32, confidence: f64) {
        if let Ok(pos) = self.shape.leaf_slots.binary_search(&slot) {
            self.leaf_confs[pos] = confidence;
            self.leaf_thresholds[pos] = bernoulli_threshold(confidence);
        }
    }

    /// Number of slots a buffer for this plan needs (= node count).
    #[must_use]
    pub fn slot_count(&self) -> usize {
        self.shape.slots
    }

    /// Number of Bernoulli leaves (evidence + assumptions).
    #[must_use]
    pub fn leaf_count(&self) -> usize {
        self.shape.leaf_slots.len()
    }

    /// The reported goal/strategy nodes as `(id, slot)` pairs.
    #[must_use]
    pub fn targets(&self) -> &[(NodeId, u32)] {
        &self.shape.targets
    }

    /// Allocates a correctly sized evaluation buffer.
    #[must_use]
    pub fn new_buffer(&self) -> Vec<bool> {
        vec![false; self.shape.slots]
    }

    /// Draws one leaf outcome per Bernoulli leaf into `buf`.
    ///
    /// Exactly one `f64` is consumed from `rng` per leaf, in slot order —
    /// the fixed draw count is what makes chunked parallel streams
    /// reproducible.
    pub fn sample_leaves(&self, rng: &mut dyn RngCore, buf: &mut [bool]) {
        for (&slot, &conf) in self.shape.leaf_slots.iter().zip(&self.leaf_confs) {
            buf[slot as usize] = rng.gen::<f64>() < conf;
        }
    }

    /// Evaluates every non-leaf node from the leaf outcomes already in
    /// `buf`, in one linear pass.
    ///
    /// # Panics
    ///
    /// Panics when `buf` is shorter than [`EvalPlan::slot_count`].
    pub fn eval_structure(&self, buf: &mut [bool]) {
        for step in &self.shape.steps {
            match step {
                Step::Constant { slot } => buf[*slot as usize] = true,
                Step::Combine { slot, rule, support, assumptions } => {
                    let support_ok = if support.is_empty() {
                        true
                    } else {
                        match rule {
                            Combination::AllOf => support.iter().all(|&c| buf[c as usize]),
                            Combination::AnyOf => support.iter().any(|&c| buf[c as usize]),
                        }
                    };
                    let assumptions_ok = assumptions.iter().all(|&c| buf[c as usize]);
                    buf[*slot as usize] = support_ok && assumptions_ok;
                }
            }
        }
    }

    /// Draws one full structure sample: leaves then combination steps.
    pub fn evaluate(&self, rng: &mut dyn RngCore, buf: &mut [bool]) {
        self.sample_leaves(rng, buf);
        self.eval_structure(buf);
    }

    /// Allocates a correctly sized lane buffer for the wide evaluators
    /// (one 64-sample bitmask per slot).
    #[must_use]
    pub fn new_lanes(&self) -> Vec<u64> {
        vec![0u64; self.shape.slots]
    }

    /// Draws `group` (≤ 64) consecutive leaf samples into per-slot lane
    /// masks: bit `s` of `lanes[slot]` is sample `s`'s outcome for the
    /// leaf in `slot`. Bits `group..64` of every leaf lane are zero.
    ///
    /// Consumes exactly `group × leaf_count` variates from `rng`, in the
    /// same order as `group` consecutive [`EvalPlan::sample_leaves`]
    /// calls (sample-major, leaves in slot order), so the wide and
    /// scalar paths walk one shared RNG stream position for position.
    /// Each draw compares the raw 53-bit variate against the leaf's
    /// integer threshold — exactly equivalent to the scalar `f64`
    /// compare (see [`bernoulli_threshold`]), so every sampled bit is
    /// identical to the scalar path's.
    ///
    /// Generic over the RNG type so hot callers monomorphize the draw
    /// loop (no per-draw virtual dispatch).
    ///
    /// # Panics
    ///
    /// Panics when `group > 64` or `lanes` is shorter than
    /// [`EvalPlan::slot_count`].
    pub fn sample_leaves_wide<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        lanes: &mut [u64],
        group: u32,
    ) {
        assert!(group <= 64, "a lane group holds at most 64 samples");
        for &slot in &self.shape.leaf_slots {
            lanes[slot as usize] = 0;
        }
        for s in 0..group {
            for (&slot, &threshold) in self.shape.leaf_slots.iter().zip(&self.leaf_thresholds) {
                let hit = u64::from((rng.next_u64() >> 11) < threshold);
                lanes[slot as usize] |= hit << s;
            }
        }
    }

    /// Evaluates every non-leaf node for all 64 lanes at once from the
    /// leaf lanes already in `lanes` — the same linear pass as
    /// [`EvalPlan::eval_structure`] with each `bool` op widened to a
    /// bitwise op over the lane mask, so lane `s` of every slot equals
    /// what the scalar pass would compute for sample `s`.
    ///
    /// # Panics
    ///
    /// Panics when `lanes` is shorter than [`EvalPlan::slot_count`].
    pub fn eval_structure_wide(&self, lanes: &mut [u64]) {
        for step in &self.shape.steps {
            match step {
                Step::Constant { slot } => lanes[*slot as usize] = !0,
                Step::Combine { slot, rule, support, assumptions } => {
                    let support_ok = if support.is_empty() {
                        !0
                    } else {
                        match rule {
                            Combination::AllOf => {
                                support.iter().fold(!0u64, |acc, &c| acc & lanes[c as usize])
                            }
                            Combination::AnyOf => {
                                support.iter().fold(0u64, |acc, &c| acc | lanes[c as usize])
                            }
                        }
                    };
                    let assumptions_ok =
                        assumptions.iter().fold(!0u64, |acc, &c| acc & lanes[c as usize]);
                    lanes[*slot as usize] = support_ok & assumptions_ok;
                }
            }
        }
    }

    /// [`EvalPlan::sample_leaves_wide`] for `K` *independent* RNG
    /// streams at once: lane group `k` of the interleaved buffer
    /// (`lanes[slot * K + k]`) receives stream `k`'s samples.
    ///
    /// Each stream is consumed in exactly the order
    /// [`EvalPlan::sample_leaves_wide`] would consume it alone — the
    /// interleaving only reorders draws *across* streams, and the
    /// struct-of-arrays [`WideStdRng`] steps all `K` xoshiro states
    /// element-wise, so the draw loop vectorizes to the target's full
    /// SIMD width. The chunked Monte-Carlo engine exploits this: chunk
    /// streams are independent by construction, so a worker can fuse
    /// several chunks into one vectorized pass without changing any
    /// chunk's bits.
    ///
    /// `scratch` is caller-owned accumulator space of `K × leaf_count`
    /// words (contents ignored on entry): the draw loop fills it
    /// leaf-major — dense stores the optimizer can keep in vector
    /// registers, where scattering straight to arbitrary `slot`
    /// positions would re-insert a bounds check per lane — and the
    /// masks move to their slots once per group.
    ///
    /// # Panics
    ///
    /// Panics when `group > 64`, `lanes` is shorter than
    /// `K × slot_count`, or `scratch` is not `K × leaf_count` words.
    pub fn sample_leaves_wide_x<const K: usize>(
        &self,
        rngs: &mut WideStdRng<K>,
        scratch: &mut [u64],
        lanes: &mut [u64],
        group: u32,
    ) {
        assert!(group <= 64, "a lane group holds at most 64 samples");
        assert_eq!(scratch.len(), K * self.shape.leaf_slots.len());
        scratch.fill(0);
        let mut draws = [0u64; K];
        for s in 0..group {
            for (chunk, &threshold) in scratch.chunks_exact_mut(K).zip(&self.leaf_thresholds) {
                let chunk: &mut [u64; K] = chunk.try_into().expect("chunks_exact yields K");
                rngs.next_wide(&mut draws);
                for k in 0..K {
                    let hit = u64::from((draws[k] >> 11) < threshold);
                    chunk[k] |= hit << s;
                }
            }
        }
        for (chunk, &slot) in scratch.chunks_exact(K).zip(&self.shape.leaf_slots) {
            let base = slot as usize * K;
            lanes[base..base + K].copy_from_slice(chunk);
        }
    }

    /// [`EvalPlan::eval_structure_wide`] over a `K`-stream interleaved
    /// lane buffer (`lanes[slot * K + k]`): one structure pass updates
    /// all `K × 64` samples.
    ///
    /// # Panics
    ///
    /// Panics when `lanes` is shorter than `K × slot_count`.
    pub fn eval_structure_wide_x<const K: usize>(&self, lanes: &mut [u64]) {
        for step in &self.shape.steps {
            match step {
                Step::Constant { slot } => {
                    let base = *slot as usize * K;
                    lanes[base..base + K].fill(!0);
                }
                Step::Combine { slot, rule, support, assumptions } => {
                    let mut ok = if support.is_empty() {
                        [!0u64; K]
                    } else {
                        match rule {
                            Combination::AllOf => {
                                let mut acc = [!0u64; K];
                                for &c in support {
                                    let cb = c as usize * K;
                                    for k in 0..K {
                                        acc[k] &= lanes[cb + k];
                                    }
                                }
                                acc
                            }
                            Combination::AnyOf => {
                                let mut acc = [0u64; K];
                                for &c in support {
                                    let cb = c as usize * K;
                                    for k in 0..K {
                                        acc[k] |= lanes[cb + k];
                                    }
                                }
                                acc
                            }
                        }
                    };
                    for &c in assumptions {
                        let cb = c as usize * K;
                        for k in 0..K {
                            ok[k] &= lanes[cb + k];
                        }
                    }
                    let base = *slot as usize * K;
                    lanes[base..base + K].copy_from_slice(&ok);
                }
            }
        }
    }

    /// FNV-1a hash of the plan's *structure* — steps, leaf slots,
    /// targets, roots, slot count — ignoring the leaf confidences.
    ///
    /// Two plans with equal shape hashes (and, definitively, equal
    /// shapes) can be evaluated together by
    /// [`EvalPlan::propagate_batch`]: the batch key the service uses to
    /// group coalesced requests.
    #[must_use]
    pub fn shape_hash(&self) -> u64 {
        let mut h = Fnv::new();
        let shape = &*self.shape;
        h.write_u64(shape.slots as u64);
        h.write_u64(shape.steps.len() as u64);
        for step in &shape.steps {
            match step {
                Step::Constant { slot } => {
                    h.write(&[0]);
                    h.write_u64(u64::from(*slot));
                }
                Step::Combine { slot, rule, support, assumptions } => {
                    h.write(&[match rule {
                        Combination::AllOf => 1,
                        Combination::AnyOf => 2,
                    }]);
                    h.write_u64(u64::from(*slot));
                    h.write_u64(support.len() as u64);
                    for &c in support {
                        h.write_u64(u64::from(c));
                    }
                    h.write_u64(assumptions.len() as u64);
                    for &c in assumptions {
                        h.write_u64(u64::from(c));
                    }
                }
            }
        }
        h.write_u64(shape.leaf_slots.len() as u64);
        for &s in &shape.leaf_slots {
            h.write_u64(u64::from(s));
        }
        h.write_u64(shape.roots.len() as u64);
        for &r in &shape.roots {
            h.write_u64(u64::from(r));
        }
        h.0
    }

    /// True when `other` can join a batch with `self`: identical
    /// structure (only the leaf confidences may differ).
    #[must_use]
    pub fn same_shape(&self, other: &EvalPlan) -> bool {
        Arc::ptr_eq(&self.shape, &other.shape) || self.shape == other.shape
    }

    /// Analytically propagates a whole batch of same-shape plans in one
    /// struct-of-arrays pass: per combination step the kernel runs an
    /// inner loop over the batch lanes (contiguous in memory, so the
    /// compiler can vectorize it) instead of re-walking the structure
    /// per case.
    ///
    /// Every lane reproduces the scalar kernel's float operations in
    /// the scalar order, so `propagate_batch(&[p])[0]` is bit-identical
    /// to propagating `p`'s case directly — the service's batch path
    /// pins this with `to_bits` tests.
    ///
    /// # Errors
    ///
    /// [`CaseError::InvalidStructure`] for an empty batch or when the
    /// plans do not all share one shape.
    pub fn propagate_batch(plans: &[&EvalPlan]) -> Result<Vec<ConfidenceReport>> {
        Self::propagate_batch_traced(plans, &crate::trace::NoTracer)
    }

    /// [`EvalPlan::propagate_batch`] with a `batch_propagate` phase and
    /// a `batch_lanes` count reported to `tracer`. The float work is
    /// identical — results stay bit-for-bit equal to the untraced call.
    ///
    /// # Errors
    ///
    /// As [`EvalPlan::propagate_batch`].
    pub fn propagate_batch_traced<T: Tracer + ?Sized>(
        plans: &[&EvalPlan],
        tracer: &T,
    ) -> Result<Vec<ConfidenceReport>> {
        let started = Instant::now();
        let reports = Self::propagate_batch_inner(plans)?;
        tracer.phase("batch_propagate", started.elapsed());
        tracer.count("batch_lanes", plans.len() as u64);
        Ok(reports)
    }

    fn propagate_batch_inner(plans: &[&EvalPlan]) -> Result<Vec<ConfidenceReport>> {
        let first = *plans
            .first()
            .ok_or_else(|| CaseError::InvalidStructure("empty evaluation batch".into()))?;
        if !plans.iter().all(|p| first.same_shape(p)) {
            return Err(CaseError::InvalidStructure(
                "batched plans must share one structure".into(),
            ));
        }
        let b = plans.len();
        let shape = &*first.shape;
        let slots = shape.slots;
        // Lane-major SoA confidence arrays: `field[slot * b + lane]`.
        let mut ind = vec![0.0f64; slots * b];
        let mut worst = vec![0.0f64; slots * b];
        let mut best = vec![0.0f64; slots * b];
        // Leaves are point confidences in all three fields.
        for (i, &slot) in shape.leaf_slots.iter().enumerate() {
            let base = slot as usize * b;
            for (l, p) in plans.iter().enumerate() {
                let c = p.leaf_confs[i];
                ind[base + l] = c;
                worst[base + l] = c;
                best[base + l] = c;
            }
        }
        // `participates[slot]` ⇔ the report carries a value for it
        // (context nodes do not, mirroring the scalar propagation).
        let mut participates = vec![false; slots];
        for &slot in &shape.leaf_slots {
            participates[slot as usize] = true;
        }
        // Per-step scratch, one f64 per lane: an accumulator plus the
        // three doubt fields of the node under combination.
        let mut acc = vec![0.0f64; b];
        let mut di = vec![0.0f64; b];
        let mut dw = vec![0.0f64; b];
        let mut db = vec![0.0f64; b];
        for step in &shape.steps {
            match step {
                Step::Constant { slot } => {
                    // Context: certain, but reported as absent.
                    let base = *slot as usize * b;
                    for l in 0..b {
                        ind[base + l] = 1.0;
                        worst[base + l] = 1.0;
                        best[base + l] = 1.0;
                    }
                }
                Step::Combine { slot, rule, support, assumptions } => {
                    participates[*slot as usize] = true;
                    if support.is_empty() {
                        // Only assumptions below: vacuous support.
                        di.fill(0.0);
                        dw.fill(0.0);
                        db.fill(0.0);
                    } else {
                        match rule {
                            Combination::AllOf => {
                                // independent: 1 − Π(1 − xᵢ), x = 1 − conf.
                                acc.fill(1.0);
                                for &c in support {
                                    let cb = c as usize * b;
                                    for l in 0..b {
                                        let x = 1.0 - ind[cb + l];
                                        acc[l] *= 1.0 - x;
                                    }
                                }
                                for l in 0..b {
                                    di[l] = 1.0 - acc[l];
                                }
                                // worst: min(1, Σxᵢ).
                                acc.fill(0.0);
                                for &c in support {
                                    let cb = c as usize * b;
                                    for l in 0..b {
                                        acc[l] += 1.0 - worst[cb + l];
                                    }
                                }
                                for l in 0..b {
                                    dw[l] = acc[l].min(1.0);
                                }
                                // best: max(xᵢ) folded from 0.
                                acc.fill(0.0);
                                for &c in support {
                                    let cb = c as usize * b;
                                    for l in 0..b {
                                        acc[l] = acc[l].max(1.0 - best[cb + l]);
                                    }
                                }
                                db.copy_from_slice(&acc);
                            }
                            Combination::AnyOf => {
                                // independent: Π xᵢ.
                                acc.fill(1.0);
                                for &c in support {
                                    let cb = c as usize * b;
                                    for l in 0..b {
                                        acc[l] *= 1.0 - ind[cb + l];
                                    }
                                }
                                di.copy_from_slice(&acc);
                                // worst: min(xᵢ) folded from +∞.
                                acc.fill(f64::INFINITY);
                                for &c in support {
                                    let cb = c as usize * b;
                                    for l in 0..b {
                                        acc[l] = acc[l].min(1.0 - worst[cb + l]);
                                    }
                                }
                                dw.copy_from_slice(&acc);
                                // best: max(0, Σxᵢ − (k − 1)).
                                acc.fill(0.0);
                                for &c in support {
                                    let cb = c as usize * b;
                                    for l in 0..b {
                                        acc[l] += 1.0 - best[cb + l];
                                    }
                                }
                                let k = support.len() as f64;
                                for l in 0..b {
                                    db[l] = (acc[l] - (k - 1.0)).max(0.0);
                                }
                            }
                        }
                    }
                    if !assumptions.is_empty() {
                        // Conjoin assumptions: AllOf over the support
                        // doubt followed by each assumption's doubt, in
                        // exactly the scalar kernel's order.
                        acc.fill(1.0);
                        for l in 0..b {
                            acc[l] *= 1.0 - di[l];
                        }
                        for &a in assumptions {
                            let ab = a as usize * b;
                            for l in 0..b {
                                let x = 1.0 - ind[ab + l];
                                acc[l] *= 1.0 - x;
                            }
                        }
                        for l in 0..b {
                            di[l] = 1.0 - acc[l];
                        }
                        acc.fill(0.0);
                        for l in 0..b {
                            acc[l] += dw[l];
                        }
                        for &a in assumptions {
                            let ab = a as usize * b;
                            for l in 0..b {
                                acc[l] += 1.0 - worst[ab + l];
                            }
                        }
                        for l in 0..b {
                            dw[l] = acc[l].min(1.0);
                        }
                        acc.fill(0.0);
                        for l in 0..b {
                            acc[l] = acc[l].max(db[l]);
                        }
                        for &a in assumptions {
                            let ab = a as usize * b;
                            for l in 0..b {
                                acc[l] = acc[l].max(1.0 - best[ab + l]);
                            }
                        }
                        db.copy_from_slice(&acc);
                    }
                    let base = *slot as usize * b;
                    for l in 0..b {
                        ind[base + l] = 1.0 - di[l];
                        worst[base + l] = 1.0 - dw[l];
                        best[base + l] = 1.0 - db[l];
                    }
                }
            }
        }
        let roots: Vec<NodeId> =
            shape.roots.iter().map(|&r| NodeId::from_index(r as usize)).collect();
        Ok((0..b)
            .map(|l| {
                let values = (0..slots)
                    .map(|slot| {
                        participates[slot].then(|| NodeConfidence {
                            independent: ind[slot * b + l],
                            worst_case: worst[slot * b + l],
                            best_case: best[slot * b + l],
                        })
                    })
                    .collect();
                ConfidenceReport::from_parts(values, roots.clone())
            })
            .collect())
    }

    /// Runs a Monte-Carlo estimate on this pre-compiled plan — the
    /// reuse entry point for plan caches: compile once with
    /// [`EvalPlan::compile`], then serve any number of
    /// [`crate::MonteCarlo`] requests without touching the case graph
    /// again. Equivalent to `options.run_plan(self)`.
    ///
    /// # Errors
    ///
    /// [`crate::CaseError::InvalidStructure`] for a zero sample budget.
    ///
    /// # Examples
    ///
    /// ```
    /// use depcase_assurance::{Case, EvalPlan, MonteCarlo};
    ///
    /// let mut case = Case::new("t");
    /// let g = case.add_goal("G", "claim")?;
    /// let e = case.add_evidence("E", "test", 0.9)?;
    /// case.support(g, e)?;
    ///
    /// let plan = EvalPlan::compile(&case)?; // once
    /// let mc = plan.simulate(&MonteCarlo::new(20_000).seed(1))?; // per request
    /// assert!(mc.estimate(g).is_some());
    /// # Ok::<(), depcase_assurance::CaseError>(())
    /// ```
    pub fn simulate(&self, options: &crate::MonteCarlo<'_>) -> Result<crate::MonteCarloReport> {
        options.run_plan(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_leg_case() -> (Case, NodeId, NodeId) {
        let mut case = Case::new("t");
        let g = case.add_goal("G", "top").unwrap();
        let s = case.add_strategy("S", "legs", Combination::AnyOf).unwrap();
        let e1 = case.add_evidence("E1", "a", 0.9).unwrap();
        let e2 = case.add_evidence("E2", "b", 0.7).unwrap();
        let a = case.add_assumption("A", "env", 0.95).unwrap();
        case.support(g, s).unwrap();
        case.support(s, e1).unwrap();
        case.support(s, e2).unwrap();
        case.support(g, a).unwrap();
        (case, g, s)
    }

    #[test]
    fn compiles_counts() {
        let (case, _, _) = two_leg_case();
        let plan = EvalPlan::compile(&case).unwrap();
        assert_eq!(plan.slot_count(), 5);
        assert_eq!(plan.leaf_count(), 3);
        assert_eq!(plan.targets().len(), 2);
    }

    #[test]
    fn children_evaluated_before_parents() {
        let (case, g, s) = two_leg_case();
        let plan = EvalPlan::compile(&case).unwrap();
        // Force all leaves true and check the structure propagates.
        let mut buf = plan.new_buffer();
        buf.iter_mut().for_each(|b| *b = true);
        plan.eval_structure(&mut buf);
        let g_slot = plan.targets().iter().find(|&&(id, _)| id == g).unwrap().1;
        let s_slot = plan.targets().iter().find(|&&(id, _)| id == s).unwrap().1;
        assert!(buf[g_slot as usize]);
        assert!(buf[s_slot as usize]);
    }

    #[test]
    fn anyof_needs_one_leg_allof_needs_assumption() {
        let (case, g, s) = two_leg_case();
        let plan = EvalPlan::compile(&case).unwrap();
        let slot_of = |name: &str| {
            let id = case.node_by_name(name).unwrap();
            case.index(id).unwrap()
        };
        let mut buf = plan.new_buffer();
        // One leg sound, assumption holds.
        buf[slot_of("E1")] = true;
        buf[slot_of("E2")] = false;
        buf[slot_of("A")] = true;
        plan.eval_structure(&mut buf);
        let g_slot = plan.targets().iter().find(|&&(id, _)| id == g).unwrap().1;
        let s_slot = plan.targets().iter().find(|&&(id, _)| id == s).unwrap().1;
        assert!(buf[s_slot as usize], "AnyOf with one sound leg holds");
        assert!(buf[g_slot as usize]);
        // Assumption fails: goal falls even though the strategy holds.
        buf[slot_of("A")] = false;
        plan.eval_structure(&mut buf);
        assert!(buf[s_slot as usize]);
        assert!(!buf[g_slot as usize], "failed assumption defeats the goal");
    }

    #[test]
    fn invalid_case_rejected() {
        let mut case = Case::new("t");
        case.add_goal("G", "undeveloped").unwrap();
        assert!(EvalPlan::compile(&case).is_err());
    }

    #[test]
    fn evaluate_is_deterministic_under_seed() {
        let (case, g, _) = two_leg_case();
        let plan = EvalPlan::compile(&case).unwrap();
        let g_slot = plan.targets().iter().find(|&&(id, _)| id == g).unwrap().1;
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut buf = plan.new_buffer();
            (0..256)
                .map(|_| {
                    plan.evaluate(&mut rng, &mut buf);
                    buf[g_slot as usize]
                })
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(3), run(3));
    }

    #[test]
    fn leaf_patch_matches_recompile() {
        let (mut case, g, _) = two_leg_case();
        let mut patched = EvalPlan::compile(&case).unwrap();
        let e2 = case.node_by_name("E2").unwrap();
        let slot = case.index(e2).unwrap() as u32;
        patched.set_leaf_confidence(slot, 0.25);
        case.set_leaf_confidence(e2, 0.25).unwrap();
        let recompiled = EvalPlan::compile(&case).unwrap();
        // Same structure, same confidences ⇒ identical sampled bits.
        let g_slot = recompiled.targets().iter().find(|&&(id, _)| id == g).unwrap().1;
        let run = |plan: &EvalPlan| {
            let mut rng = StdRng::seed_from_u64(9);
            let mut buf = plan.new_buffer();
            (0..512)
                .map(|_| {
                    plan.evaluate(&mut rng, &mut buf);
                    buf[g_slot as usize]
                })
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(&patched), run(&recompiled));
        // Patching a non-leaf slot is a no-op, not a panic.
        patched.set_leaf_confidence(case.index(g).unwrap() as u32, 0.5);
        assert_eq!(run(&patched), run(&recompiled));
    }

    #[test]
    fn integer_threshold_equals_the_scalar_float_compare() {
        // Sweep confidences (including degenerate and near-boundary
        // values) against draws straddling each threshold: the integer
        // compare must agree with the f64 compare on every draw.
        let confs = [
            0.0,
            f64::MIN_POSITIVE,
            1e-18,
            0.1,
            0.25,
            0.3,
            0.5,
            0.7,
            0.9,
            0.95,
            1.0 - f64::EPSILON,
            1.0,
        ];
        for &conf in &confs {
            let threshold = bernoulli_threshold(conf);
            for delta in -2i64..=2 {
                let m = threshold.wrapping_add_signed(delta) & ((1u64 << 53) - 1);
                let scalar = (m as f64) * (1.0 / TWO_POW_53) < conf;
                let wide = m < threshold;
                assert_eq!(scalar, wide, "conf {conf}, draw {m}");
            }
        }
    }

    #[test]
    fn wide_structure_pass_matches_scalar_per_lane() {
        let (case, _, _) = two_leg_case();
        let plan = EvalPlan::compile(&case).unwrap();
        // Exhaustive over the 8 leaf-assignment patterns, one per lane.
        let leaf_slots: Vec<usize> = plan.shape.leaf_slots.iter().map(|&s| s as usize).collect();
        let mut lanes = plan.new_lanes();
        for (bit, &slot) in leaf_slots.iter().enumerate() {
            for pattern in 0..8u64 {
                if pattern >> bit & 1 == 1 {
                    lanes[slot] |= 1 << pattern;
                }
            }
        }
        plan.eval_structure_wide(&mut lanes);
        for pattern in 0..8u64 {
            let mut buf = plan.new_buffer();
            for (bit, &slot) in leaf_slots.iter().enumerate() {
                buf[slot] = pattern >> bit & 1 == 1;
            }
            plan.eval_structure(&mut buf);
            for slot in 0..plan.slot_count() {
                assert_eq!(
                    buf[slot],
                    lanes[slot] >> pattern & 1 == 1,
                    "slot {slot}, pattern {pattern:03b}"
                );
            }
        }
    }

    #[test]
    fn shape_hash_ignores_confidences_but_not_structure() {
        let (case, _, _) = two_leg_case();
        let a = EvalPlan::compile(&case).unwrap();
        let mut patched = a.clone();
        patched.set_leaf_confidence(2, 0.123);
        assert_eq!(a.shape_hash(), patched.shape_hash());
        assert!(a.same_shape(&patched));

        let mut reshaped = case.clone();
        let g = reshaped.node_by_name("G").unwrap();
        let e = reshaped.add_evidence("E9", "extra", 0.5).unwrap();
        reshaped.support(g, e).unwrap();
        let b = EvalPlan::compile(&reshaped).unwrap();
        assert_ne!(a.shape_hash(), b.shape_hash());
        assert!(!a.same_shape(&b));
    }

    #[test]
    fn batch_propagation_is_bit_identical_to_scalar_per_lane() {
        // Same structure, per-lane confidence patches — including the
        // original as lane 0 and degenerate 0/1 confidences.
        let (case, _, _) = two_leg_case();
        let base = EvalPlan::compile(&case).unwrap();
        let confs: [[f64; 3]; 5] = [
            [0.9, 0.7, 0.95],
            [0.5, 0.5, 0.5],
            [0.0, 1.0, 0.97],
            [1e-18, 0.999_999, 0.42],
            [1.0, 1.0, 1.0],
        ];
        let leaf_slots: Vec<u32> = base.shape.leaf_slots.clone();
        let plans: Vec<EvalPlan> = confs
            .iter()
            .map(|row| {
                let mut p = base.clone();
                for (&slot, &c) in leaf_slots.iter().zip(row) {
                    p.set_leaf_confidence(slot, c);
                }
                p
            })
            .collect();
        let refs: Vec<&EvalPlan> = plans.iter().collect();
        let reports = EvalPlan::propagate_batch(&refs).unwrap();
        for (row, report) in confs.iter().zip(&reports) {
            let mut scalar_case = case.clone();
            for (leaf, &c) in ["E1", "E2", "A"].iter().zip(row) {
                let id = scalar_case.node_by_name(leaf).unwrap();
                scalar_case.set_leaf_confidence(id, c).unwrap();
            }
            let scalar = scalar_case.propagate().unwrap();
            assert_eq!(report.len(), scalar.len());
            for (id, _) in scalar_case.iter() {
                match (scalar.confidence(id), report.confidence(id)) {
                    (None, None) => {}
                    (Some(s), Some(w)) => {
                        assert_eq!(s.independent.to_bits(), w.independent.to_bits());
                        assert_eq!(s.worst_case.to_bits(), w.worst_case.to_bits());
                        assert_eq!(s.best_case.to_bits(), w.best_case.to_bits());
                    }
                    other => panic!("participation mismatch at {id:?}: {other:?}"),
                }
            }
            assert_eq!(
                scalar.top().map(|c| c.independent.to_bits()),
                report.top().map(|c| c.independent.to_bits())
            );
        }
    }

    #[test]
    fn batch_rejects_empty_and_mixed_shapes() {
        assert!(EvalPlan::propagate_batch(&[]).is_err());
        let (case, _, _) = two_leg_case();
        let a = EvalPlan::compile(&case).unwrap();
        let mut reshaped = case.clone();
        let g = reshaped.node_by_name("G").unwrap();
        let e = reshaped.add_evidence("E9", "extra", 0.5).unwrap();
        reshaped.support(g, e).unwrap();
        let b = EvalPlan::compile(&reshaped).unwrap();
        assert!(EvalPlan::propagate_batch(&[&a, &b]).is_err());
    }

    #[test]
    fn shared_subgraph_compiled_once() {
        // Diamond: two goals share one evidence node.
        let mut case = Case::new("t");
        let g = case.add_goal("G", "top").unwrap();
        let s1 = case.add_strategy("S1", "a", Combination::AllOf).unwrap();
        let s2 = case.add_strategy("S2", "b", Combination::AllOf).unwrap();
        let e = case.add_evidence("E", "shared", 0.5).unwrap();
        case.support(g, s1).unwrap();
        case.support(g, s2).unwrap();
        case.support(s1, e).unwrap();
        case.support(s2, e).unwrap();
        let plan = EvalPlan::compile(&case).unwrap();
        assert_eq!(plan.slot_count(), 4);
        assert_eq!(plan.leaf_count(), 1);
        // Both strategies read the same slot: if E is unsound, both fail.
        let mut buf = plan.new_buffer();
        plan.eval_structure(&mut buf);
        let g_slot = plan.targets().iter().find(|&&(id, _)| id == g).unwrap().1;
        assert!(!buf[g_slot as usize]);
    }
}
