//! A compiled, flat evaluation plan for a case's Boolean structure.
//!
//! The analytic propagation in [`crate::propagation`] memoizes shared
//! subtrees per call; Monte-Carlo needs the same work done *per sample*,
//! where a recursive walk with a hash map is the dominant cost. An
//! [`EvalPlan`] hoists the graph traversal out of the sampling loop: the
//! case is compiled **once** into a topologically ordered list of
//! combination steps over a flat slot buffer, so each sample is a single
//! linear pass with no hashing, no recursion and no allocation.
//!
//! The plan is immutable and `Sync`, so the parallel Monte-Carlo engine
//! shares one compiled plan across worker threads.

use crate::error::Result;
use crate::graph::{Case, Combination, NodeId};
use crate::ir::{CaseIr, IrKind};
use rand::Rng;
use rand::RngCore;
use std::sync::Arc;

/// One compiled non-leaf evaluation step.
#[derive(Debug, Clone, PartialEq)]
enum Step {
    /// Context nodes hold vacuously.
    Constant { slot: u32 },
    /// A goal or strategy: combine child slots under `rule`, conjoined
    /// with any attached assumptions.
    Combine {
        slot: u32,
        rule: Combination,
        /// Slots of supporting (non-assumption) children.
        support: Vec<u32>,
        /// Slots of attached assumptions (always conjunctive).
        assumptions: Vec<u32>,
    },
}

/// A case's Boolean structure compiled for repeated evaluation.
///
/// # Examples
///
/// ```
/// use depcase_assurance::{Case, EvalPlan};
/// use rand::SeedableRng;
///
/// let mut case = Case::new("t");
/// let g = case.add_goal("G", "claim")?;
/// let e = case.add_evidence("E", "test", 0.9)?;
/// case.support(g, e)?;
///
/// let plan = EvalPlan::compile(&case)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut buf = plan.new_buffer();
/// plan.evaluate(&mut rng, &mut buf);
/// // buf now holds one sampled truth value per node.
/// assert_eq!(buf.len(), case.len());
/// # Ok::<(), depcase_assurance::CaseError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EvalPlan {
    /// The structural part — steps, leaf slots, targets — shared via
    /// `Arc`: a point confidence edit clones the plan cheaply and
    /// patches one float without re-deriving any structure.
    shape: Arc<PlanShape>,
    /// Confidence per Bernoulli leaf, parallel to `shape.leaf_slots`.
    leaf_confs: Vec<f64>,
}

/// The structure-only part of a plan: everything except the leaf
/// confidences, which are the only thing a point edit changes.
#[derive(Debug, PartialEq)]
struct PlanShape {
    /// Non-leaf steps in topological order: every step's inputs are
    /// either leaf slots or slots written by an earlier step.
    steps: Vec<Step>,
    /// Slot per Bernoulli leaf, in ascending slot order.
    leaf_slots: Vec<u32>,
    /// Reported goal/strategy nodes as `(id, slot)`, in slot order.
    targets: Vec<(NodeId, u32)>,
    /// Total slot count (= node count of the compiled case).
    slots: usize,
}

impl EvalPlan {
    /// Compiles `case` into a flat evaluation plan.
    ///
    /// # Errors
    ///
    /// Structural errors from [`Case::validate`], or
    /// [`crate::CaseError::InvalidStructure`] when a hand-edited save
    /// file smuggled in a support cycle.
    pub fn compile(case: &Case) -> Result<Self> {
        case.validate()?;
        let ir = CaseIr::build(case)?;
        Ok(Self::from_ir(&ir))
    }

    /// Lowers an already-built IR into a plan. The IR's topological
    /// order *is* the step order, and leaves appear in ascending slot
    /// order — both identical to what the pre-IR compiler produced, so
    /// every sampled bit is unchanged.
    pub(crate) fn from_ir(ir: &CaseIr) -> Self {
        let n = ir.len();
        let mut leaf_slots = Vec::new();
        let mut leaf_confs = Vec::new();
        let mut targets = Vec::new();
        for i in 0..n {
            match ir.kind(i) {
                IrKind::Evidence(confidence) | IrKind::Assumption(confidence) => {
                    leaf_slots.push(i as u32);
                    leaf_confs.push(confidence);
                }
                IrKind::Goal | IrKind::Strategy(_) => {
                    targets.push((NodeId::from_index(i), i as u32));
                }
                IrKind::Context => {}
            }
        }

        let mut steps = Vec::new();
        for &t in ir.topo() {
            let i = t as usize;
            match ir.kind(i) {
                IrKind::Evidence(_) | IrKind::Assumption(_) => {}
                IrKind::Context => steps.push(Step::Constant { slot: i as u32 }),
                IrKind::Goal | IrKind::Strategy(_) => {
                    let rule = match ir.kind(i) {
                        IrKind::Strategy(c) => c,
                        _ => Combination::AllOf,
                    };
                    let mut support = Vec::new();
                    let mut assumptions = Vec::new();
                    for &c in ir.children(i) {
                        if matches!(ir.kind(c as usize), IrKind::Assumption(_)) {
                            assumptions.push(c);
                        } else {
                            support.push(c);
                        }
                    }
                    steps.push(Step::Combine { slot: i as u32, rule, support, assumptions });
                }
            }
        }

        Self { shape: Arc::new(PlanShape { steps, leaf_slots, targets, slots: n }), leaf_confs }
    }

    /// Patches the confidence of the leaf living in `slot`, if any —
    /// the incremental engine's O(log leaves) plan update. Structure is
    /// untouched (and stays shared).
    pub(crate) fn set_leaf_confidence(&mut self, slot: u32, confidence: f64) {
        if let Ok(pos) = self.shape.leaf_slots.binary_search(&slot) {
            self.leaf_confs[pos] = confidence;
        }
    }

    /// Number of slots a buffer for this plan needs (= node count).
    #[must_use]
    pub fn slot_count(&self) -> usize {
        self.shape.slots
    }

    /// Number of Bernoulli leaves (evidence + assumptions).
    #[must_use]
    pub fn leaf_count(&self) -> usize {
        self.shape.leaf_slots.len()
    }

    /// The reported goal/strategy nodes as `(id, slot)` pairs.
    #[must_use]
    pub fn targets(&self) -> &[(NodeId, u32)] {
        &self.shape.targets
    }

    /// Allocates a correctly sized evaluation buffer.
    #[must_use]
    pub fn new_buffer(&self) -> Vec<bool> {
        vec![false; self.shape.slots]
    }

    /// Draws one leaf outcome per Bernoulli leaf into `buf`.
    ///
    /// Exactly one `f64` is consumed from `rng` per leaf, in slot order —
    /// the fixed draw count is what makes chunked parallel streams
    /// reproducible.
    pub fn sample_leaves(&self, rng: &mut dyn RngCore, buf: &mut [bool]) {
        for (&slot, &conf) in self.shape.leaf_slots.iter().zip(&self.leaf_confs) {
            buf[slot as usize] = rng.gen::<f64>() < conf;
        }
    }

    /// Evaluates every non-leaf node from the leaf outcomes already in
    /// `buf`, in one linear pass.
    ///
    /// # Panics
    ///
    /// Panics when `buf` is shorter than [`EvalPlan::slot_count`].
    pub fn eval_structure(&self, buf: &mut [bool]) {
        for step in &self.shape.steps {
            match step {
                Step::Constant { slot } => buf[*slot as usize] = true,
                Step::Combine { slot, rule, support, assumptions } => {
                    let support_ok = if support.is_empty() {
                        true
                    } else {
                        match rule {
                            Combination::AllOf => support.iter().all(|&c| buf[c as usize]),
                            Combination::AnyOf => support.iter().any(|&c| buf[c as usize]),
                        }
                    };
                    let assumptions_ok = assumptions.iter().all(|&c| buf[c as usize]);
                    buf[*slot as usize] = support_ok && assumptions_ok;
                }
            }
        }
    }

    /// Draws one full structure sample: leaves then combination steps.
    pub fn evaluate(&self, rng: &mut dyn RngCore, buf: &mut [bool]) {
        self.sample_leaves(rng, buf);
        self.eval_structure(buf);
    }

    /// Runs a Monte-Carlo estimate on this pre-compiled plan — the
    /// reuse entry point for plan caches: compile once with
    /// [`EvalPlan::compile`], then serve any number of
    /// [`crate::MonteCarlo`] requests without touching the case graph
    /// again. Equivalent to `options.run_plan(self)`.
    ///
    /// # Errors
    ///
    /// [`crate::CaseError::InvalidStructure`] for a zero sample budget.
    ///
    /// # Examples
    ///
    /// ```
    /// use depcase_assurance::{Case, EvalPlan, MonteCarlo};
    ///
    /// let mut case = Case::new("t");
    /// let g = case.add_goal("G", "claim")?;
    /// let e = case.add_evidence("E", "test", 0.9)?;
    /// case.support(g, e)?;
    ///
    /// let plan = EvalPlan::compile(&case)?; // once
    /// let mc = plan.simulate(&MonteCarlo::new(20_000).seed(1))?; // per request
    /// assert!(mc.estimate(g).is_some());
    /// # Ok::<(), depcase_assurance::CaseError>(())
    /// ```
    pub fn simulate(&self, options: &crate::MonteCarlo<'_>) -> Result<crate::MonteCarloReport> {
        options.run_plan(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_leg_case() -> (Case, NodeId, NodeId) {
        let mut case = Case::new("t");
        let g = case.add_goal("G", "top").unwrap();
        let s = case.add_strategy("S", "legs", Combination::AnyOf).unwrap();
        let e1 = case.add_evidence("E1", "a", 0.9).unwrap();
        let e2 = case.add_evidence("E2", "b", 0.7).unwrap();
        let a = case.add_assumption("A", "env", 0.95).unwrap();
        case.support(g, s).unwrap();
        case.support(s, e1).unwrap();
        case.support(s, e2).unwrap();
        case.support(g, a).unwrap();
        (case, g, s)
    }

    #[test]
    fn compiles_counts() {
        let (case, _, _) = two_leg_case();
        let plan = EvalPlan::compile(&case).unwrap();
        assert_eq!(plan.slot_count(), 5);
        assert_eq!(plan.leaf_count(), 3);
        assert_eq!(plan.targets().len(), 2);
    }

    #[test]
    fn children_evaluated_before_parents() {
        let (case, g, s) = two_leg_case();
        let plan = EvalPlan::compile(&case).unwrap();
        // Force all leaves true and check the structure propagates.
        let mut buf = plan.new_buffer();
        buf.iter_mut().for_each(|b| *b = true);
        plan.eval_structure(&mut buf);
        let g_slot = plan.targets().iter().find(|&&(id, _)| id == g).unwrap().1;
        let s_slot = plan.targets().iter().find(|&&(id, _)| id == s).unwrap().1;
        assert!(buf[g_slot as usize]);
        assert!(buf[s_slot as usize]);
    }

    #[test]
    fn anyof_needs_one_leg_allof_needs_assumption() {
        let (case, g, s) = two_leg_case();
        let plan = EvalPlan::compile(&case).unwrap();
        let slot_of = |name: &str| {
            let id = case.node_by_name(name).unwrap();
            case.index(id).unwrap()
        };
        let mut buf = plan.new_buffer();
        // One leg sound, assumption holds.
        buf[slot_of("E1")] = true;
        buf[slot_of("E2")] = false;
        buf[slot_of("A")] = true;
        plan.eval_structure(&mut buf);
        let g_slot = plan.targets().iter().find(|&&(id, _)| id == g).unwrap().1;
        let s_slot = plan.targets().iter().find(|&&(id, _)| id == s).unwrap().1;
        assert!(buf[s_slot as usize], "AnyOf with one sound leg holds");
        assert!(buf[g_slot as usize]);
        // Assumption fails: goal falls even though the strategy holds.
        buf[slot_of("A")] = false;
        plan.eval_structure(&mut buf);
        assert!(buf[s_slot as usize]);
        assert!(!buf[g_slot as usize], "failed assumption defeats the goal");
    }

    #[test]
    fn invalid_case_rejected() {
        let mut case = Case::new("t");
        case.add_goal("G", "undeveloped").unwrap();
        assert!(EvalPlan::compile(&case).is_err());
    }

    #[test]
    fn evaluate_is_deterministic_under_seed() {
        let (case, g, _) = two_leg_case();
        let plan = EvalPlan::compile(&case).unwrap();
        let g_slot = plan.targets().iter().find(|&&(id, _)| id == g).unwrap().1;
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut buf = plan.new_buffer();
            (0..256)
                .map(|_| {
                    plan.evaluate(&mut rng, &mut buf);
                    buf[g_slot as usize]
                })
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(3), run(3));
    }

    #[test]
    fn leaf_patch_matches_recompile() {
        let (mut case, g, _) = two_leg_case();
        let mut patched = EvalPlan::compile(&case).unwrap();
        let e2 = case.node_by_name("E2").unwrap();
        let slot = case.index(e2).unwrap() as u32;
        patched.set_leaf_confidence(slot, 0.25);
        case.set_leaf_confidence(e2, 0.25).unwrap();
        let recompiled = EvalPlan::compile(&case).unwrap();
        // Same structure, same confidences ⇒ identical sampled bits.
        let g_slot = recompiled.targets().iter().find(|&&(id, _)| id == g).unwrap().1;
        let run = |plan: &EvalPlan| {
            let mut rng = StdRng::seed_from_u64(9);
            let mut buf = plan.new_buffer();
            (0..512)
                .map(|_| {
                    plan.evaluate(&mut rng, &mut buf);
                    buf[g_slot as usize]
                })
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(&patched), run(&recompiled));
        // Patching a non-leaf slot is a no-op, not a panic.
        patched.set_leaf_confidence(case.index(g).unwrap() as u32, 0.5);
        assert_eq!(run(&patched), run(&recompiled));
    }

    #[test]
    fn shared_subgraph_compiled_once() {
        // Diamond: two goals share one evidence node.
        let mut case = Case::new("t");
        let g = case.add_goal("G", "top").unwrap();
        let s1 = case.add_strategy("S1", "a", Combination::AllOf).unwrap();
        let s2 = case.add_strategy("S2", "b", Combination::AllOf).unwrap();
        let e = case.add_evidence("E", "shared", 0.5).unwrap();
        case.support(g, s1).unwrap();
        case.support(g, s2).unwrap();
        case.support(s1, e).unwrap();
        case.support(s2, e).unwrap();
        let plan = EvalPlan::compile(&case).unwrap();
        assert_eq!(plan.slot_count(), 4);
        assert_eq!(plan.leaf_count(), 1);
        // Both strategies read the same slot: if E is unsound, both fail.
        let mut buf = plan.new_buffer();
        plan.eval_structure(&mut buf);
        let g_slot = plan.targets().iter().find(|&&(id, _)| id == g).unwrap().1;
        assert!(!buf[g_slot as usize]);
    }
}
