//! A compiled, flat evaluation plan for a case's Boolean structure.
//!
//! The analytic propagation in [`crate::propagation`] memoizes shared
//! subtrees per call; Monte-Carlo needs the same work done *per sample*,
//! where a recursive walk with a hash map is the dominant cost. An
//! [`EvalPlan`] hoists the graph traversal out of the sampling loop: the
//! case is compiled **once** into a topologically ordered list of
//! combination steps over a flat slot buffer, so each sample is a single
//! linear pass with no hashing, no recursion and no allocation.
//!
//! The plan is immutable and `Sync`, so the parallel Monte-Carlo engine
//! shares one compiled plan across worker threads.

use crate::error::Result;
use crate::graph::{Case, Combination, NodeId, NodeKind};
use rand::Rng;
use rand::RngCore;

/// One compiled non-leaf evaluation step.
#[derive(Debug, Clone, PartialEq)]
enum Step {
    /// Context nodes hold vacuously.
    Constant { slot: u32 },
    /// A goal or strategy: combine child slots under `rule`, conjoined
    /// with any attached assumptions.
    Combine {
        slot: u32,
        rule: Combination,
        /// Slots of supporting (non-assumption) children.
        support: Vec<u32>,
        /// Slots of attached assumptions (always conjunctive).
        assumptions: Vec<u32>,
    },
}

/// A case's Boolean structure compiled for repeated evaluation.
///
/// # Examples
///
/// ```
/// use depcase_assurance::{Case, EvalPlan};
/// use rand::SeedableRng;
///
/// let mut case = Case::new("t");
/// let g = case.add_goal("G", "claim")?;
/// let e = case.add_evidence("E", "test", 0.9)?;
/// case.support(g, e)?;
///
/// let plan = EvalPlan::compile(&case)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut buf = plan.new_buffer();
/// plan.evaluate(&mut rng, &mut buf);
/// // buf now holds one sampled truth value per node.
/// assert_eq!(buf.len(), case.len());
/// # Ok::<(), depcase_assurance::CaseError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EvalPlan {
    /// Non-leaf steps in topological order: every step's inputs are
    /// either leaf slots or slots written by an earlier step.
    steps: Vec<Step>,
    /// `(slot, confidence)` per Bernoulli leaf, in slot order.
    leaves: Vec<(u32, f64)>,
    /// Reported goal/strategy nodes as `(id, slot)`, in slot order.
    targets: Vec<(NodeId, u32)>,
    /// Total slot count (= node count of the compiled case).
    slots: usize,
}

impl EvalPlan {
    /// Compiles `case` into a flat evaluation plan.
    ///
    /// # Errors
    ///
    /// Structural errors from [`Case::validate`].
    pub fn compile(case: &Case) -> Result<Self> {
        case.validate()?;
        let n = case.len();
        let mut leaves = Vec::new();
        let mut targets = Vec::new();
        for (id, node) in case.iter() {
            let idx = case.index(id)?;
            match node.kind {
                NodeKind::Evidence { confidence } | NodeKind::Assumption { confidence } => {
                    leaves.push((idx as u32, confidence));
                }
                NodeKind::Goal | NodeKind::Strategy(_) => targets.push((id, idx as u32)),
                NodeKind::Context => {}
            }
        }

        // Topological order, children before parents. The graph is
        // acyclic by construction (`Case::support` rejects cycles), so an
        // iterative post-order DFS with a visited set terminates.
        let mut order: Vec<usize> = Vec::with_capacity(n);
        let mut visited = vec![false; n];
        for root in 0..n {
            if visited[root] {
                continue;
            }
            // (node, next child position) stack.
            let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
            visited[root] = true;
            while let Some(&(node, pos)) = stack.last() {
                let children = case.children_of(node);
                if pos < children.len() {
                    stack.last_mut().expect("nonempty").1 += 1;
                    let c = children[pos];
                    if !visited[c] {
                        visited[c] = true;
                        stack.push((c, 0));
                    }
                } else {
                    order.push(node);
                    stack.pop();
                }
            }
        }

        let mut steps = Vec::new();
        for idx in order {
            match case.node_at(idx).kind {
                NodeKind::Evidence { .. } | NodeKind::Assumption { .. } => {}
                NodeKind::Context => steps.push(Step::Constant { slot: idx as u32 }),
                NodeKind::Goal | NodeKind::Strategy(_) => {
                    let rule = match case.node_at(idx).kind {
                        NodeKind::Strategy(c) => c,
                        _ => Combination::AllOf,
                    };
                    let mut support = Vec::new();
                    let mut assumptions = Vec::new();
                    for &c in case.children_of(idx) {
                        if matches!(case.node_at(c).kind, NodeKind::Assumption { .. }) {
                            assumptions.push(c as u32);
                        } else {
                            support.push(c as u32);
                        }
                    }
                    steps.push(Step::Combine { slot: idx as u32, rule, support, assumptions });
                }
            }
        }

        Ok(Self { steps, leaves, targets, slots: n })
    }

    /// Number of slots a buffer for this plan needs (= node count).
    #[must_use]
    pub fn slot_count(&self) -> usize {
        self.slots
    }

    /// Number of Bernoulli leaves (evidence + assumptions).
    #[must_use]
    pub fn leaf_count(&self) -> usize {
        self.leaves.len()
    }

    /// The reported goal/strategy nodes as `(id, slot)` pairs.
    #[must_use]
    pub fn targets(&self) -> &[(NodeId, u32)] {
        &self.targets
    }

    /// Allocates a correctly sized evaluation buffer.
    #[must_use]
    pub fn new_buffer(&self) -> Vec<bool> {
        vec![false; self.slots]
    }

    /// Draws one leaf outcome per Bernoulli leaf into `buf`.
    ///
    /// Exactly one `f64` is consumed from `rng` per leaf, in slot order —
    /// the fixed draw count is what makes chunked parallel streams
    /// reproducible.
    pub fn sample_leaves(&self, rng: &mut dyn RngCore, buf: &mut [bool]) {
        for &(slot, conf) in &self.leaves {
            buf[slot as usize] = rng.gen::<f64>() < conf;
        }
    }

    /// Evaluates every non-leaf node from the leaf outcomes already in
    /// `buf`, in one linear pass.
    ///
    /// # Panics
    ///
    /// Panics when `buf` is shorter than [`EvalPlan::slot_count`].
    pub fn eval_structure(&self, buf: &mut [bool]) {
        for step in &self.steps {
            match step {
                Step::Constant { slot } => buf[*slot as usize] = true,
                Step::Combine { slot, rule, support, assumptions } => {
                    let support_ok = if support.is_empty() {
                        true
                    } else {
                        match rule {
                            Combination::AllOf => support.iter().all(|&c| buf[c as usize]),
                            Combination::AnyOf => support.iter().any(|&c| buf[c as usize]),
                        }
                    };
                    let assumptions_ok = assumptions.iter().all(|&c| buf[c as usize]);
                    buf[*slot as usize] = support_ok && assumptions_ok;
                }
            }
        }
    }

    /// Draws one full structure sample: leaves then combination steps.
    pub fn evaluate(&self, rng: &mut dyn RngCore, buf: &mut [bool]) {
        self.sample_leaves(rng, buf);
        self.eval_structure(buf);
    }

    /// Runs a Monte-Carlo estimate on this pre-compiled plan — the
    /// reuse entry point for plan caches: compile once with
    /// [`EvalPlan::compile`], then serve any number of
    /// [`crate::MonteCarlo`] requests without touching the case graph
    /// again. Equivalent to `options.run_plan(self)`.
    ///
    /// # Errors
    ///
    /// [`crate::CaseError::InvalidStructure`] for a zero sample budget.
    ///
    /// # Examples
    ///
    /// ```
    /// use depcase_assurance::{Case, EvalPlan, MonteCarlo};
    ///
    /// let mut case = Case::new("t");
    /// let g = case.add_goal("G", "claim")?;
    /// let e = case.add_evidence("E", "test", 0.9)?;
    /// case.support(g, e)?;
    ///
    /// let plan = EvalPlan::compile(&case)?; // once
    /// let mc = plan.simulate(&MonteCarlo::new(20_000).seed(1))?; // per request
    /// assert!(mc.estimate(g).is_some());
    /// # Ok::<(), depcase_assurance::CaseError>(())
    /// ```
    pub fn simulate(&self, options: &crate::MonteCarlo<'_>) -> Result<crate::MonteCarloReport> {
        options.run_plan(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_leg_case() -> (Case, NodeId, NodeId) {
        let mut case = Case::new("t");
        let g = case.add_goal("G", "top").unwrap();
        let s = case.add_strategy("S", "legs", Combination::AnyOf).unwrap();
        let e1 = case.add_evidence("E1", "a", 0.9).unwrap();
        let e2 = case.add_evidence("E2", "b", 0.7).unwrap();
        let a = case.add_assumption("A", "env", 0.95).unwrap();
        case.support(g, s).unwrap();
        case.support(s, e1).unwrap();
        case.support(s, e2).unwrap();
        case.support(g, a).unwrap();
        (case, g, s)
    }

    #[test]
    fn compiles_counts() {
        let (case, _, _) = two_leg_case();
        let plan = EvalPlan::compile(&case).unwrap();
        assert_eq!(plan.slot_count(), 5);
        assert_eq!(plan.leaf_count(), 3);
        assert_eq!(plan.targets().len(), 2);
    }

    #[test]
    fn children_evaluated_before_parents() {
        let (case, g, s) = two_leg_case();
        let plan = EvalPlan::compile(&case).unwrap();
        // Force all leaves true and check the structure propagates.
        let mut buf = plan.new_buffer();
        buf.iter_mut().for_each(|b| *b = true);
        plan.eval_structure(&mut buf);
        let g_slot = plan.targets().iter().find(|&&(id, _)| id == g).unwrap().1;
        let s_slot = plan.targets().iter().find(|&&(id, _)| id == s).unwrap().1;
        assert!(buf[g_slot as usize]);
        assert!(buf[s_slot as usize]);
    }

    #[test]
    fn anyof_needs_one_leg_allof_needs_assumption() {
        let (case, g, s) = two_leg_case();
        let plan = EvalPlan::compile(&case).unwrap();
        let slot_of = |name: &str| {
            let id = case.node_by_name(name).unwrap();
            case.index(id).unwrap()
        };
        let mut buf = plan.new_buffer();
        // One leg sound, assumption holds.
        buf[slot_of("E1")] = true;
        buf[slot_of("E2")] = false;
        buf[slot_of("A")] = true;
        plan.eval_structure(&mut buf);
        let g_slot = plan.targets().iter().find(|&&(id, _)| id == g).unwrap().1;
        let s_slot = plan.targets().iter().find(|&&(id, _)| id == s).unwrap().1;
        assert!(buf[s_slot as usize], "AnyOf with one sound leg holds");
        assert!(buf[g_slot as usize]);
        // Assumption fails: goal falls even though the strategy holds.
        buf[slot_of("A")] = false;
        plan.eval_structure(&mut buf);
        assert!(buf[s_slot as usize]);
        assert!(!buf[g_slot as usize], "failed assumption defeats the goal");
    }

    #[test]
    fn invalid_case_rejected() {
        let mut case = Case::new("t");
        case.add_goal("G", "undeveloped").unwrap();
        assert!(EvalPlan::compile(&case).is_err());
    }

    #[test]
    fn evaluate_is_deterministic_under_seed() {
        let (case, g, _) = two_leg_case();
        let plan = EvalPlan::compile(&case).unwrap();
        let g_slot = plan.targets().iter().find(|&&(id, _)| id == g).unwrap().1;
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut buf = plan.new_buffer();
            (0..256)
                .map(|_| {
                    plan.evaluate(&mut rng, &mut buf);
                    buf[g_slot as usize]
                })
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(3), run(3));
    }

    #[test]
    fn shared_subgraph_compiled_once() {
        // Diamond: two goals share one evidence node.
        let mut case = Case::new("t");
        let g = case.add_goal("G", "top").unwrap();
        let s1 = case.add_strategy("S1", "a", Combination::AllOf).unwrap();
        let s2 = case.add_strategy("S2", "b", Combination::AllOf).unwrap();
        let e = case.add_evidence("E", "shared", 0.5).unwrap();
        case.support(g, s1).unwrap();
        case.support(g, s2).unwrap();
        case.support(s1, e).unwrap();
        case.support(s2, e).unwrap();
        let plan = EvalPlan::compile(&case).unwrap();
        assert_eq!(plan.slot_count(), 4);
        assert_eq!(plan.leaf_count(), 1);
        // Both strategies read the same slot: if E is unsound, both fail.
        let mut buf = plan.new_buffer();
        plan.eval_structure(&mut buf);
        let g_slot = plan.targets().iter().find(|&&(id, _)| id == g).unwrap().1;
        assert!(!buf[g_slot as usize]);
    }
}
