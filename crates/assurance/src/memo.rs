//! A shared, content-addressed store of propagation results.
//!
//! [`Incremental`](crate::Incremental) sessions memoize node
//! confidences by Merkle-style subtree hash, so a value computed once
//! is reusable anywhere the same subtree reappears — in the same
//! session, in a later session over the same case, or in a *different
//! case* that happens to share the subtree (templates stamped out per
//! tenant differ in a few leaves and share everything else). The
//! private per-session memo can only exploit the first kind of reuse;
//! the [`MemoStore`] trait lets many sessions plug into one shared
//! [`SharedMemo`] and exploit all three.
//!
//! Sharing is safe by construction: a subtree hash covers the node's
//! kind, its leaf confidence bits, and its children's hashes in order,
//! and the propagation kernel is deterministic — so two subtrees with
//! equal hashes produce bit-identical [`NodeConfidence`] values no
//! matter which case, session, or thread computed them first. A hit is
//! therefore indistinguishable (to the last bit) from recomputing.
//!
//! Eviction is segmented second-chance (the clock algorithm), not the
//! wholesale clear the private memo uses: under pressure from a churn
//! of one-off subtrees, hot template subtrees keep their referenced
//! bits set and survive, so the Nth stamped variant still compiles in
//! O(diff). The churn tests below pin the algorithm against an
//! explicit reference model.

use crate::propagation::NodeConfidence;
use std::collections::HashMap;
use std::fmt::Debug;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A content-addressed result store an [`Incremental`](crate::Incremental)
/// session can share with other sessions.
///
/// Keys are the IR's Merkle subtree hashes; values are the propagated
/// confidences those subtrees evaluate to. Implementations use interior
/// mutability (`&self` methods) so one store can be shared behind an
/// `Arc` by any number of concurrent sessions.
///
/// Contract: `insert` may drop entries (bounded stores evict), and
/// `get` may therefore miss on a key that was inserted earlier — but a
/// returned value must be exactly the value inserted for that key.
/// Because equal subtree hashes always map to bit-identical values,
/// an implementation never needs to worry about which writer "wins".
pub trait MemoStore: Debug + Send + Sync {
    /// Looks up the propagated confidence of the subtree hashed `key`.
    fn get(&self, key: u64) -> Option<NodeConfidence>;

    /// Records the propagated confidence of the subtree hashed `key`.
    fn insert(&self, key: u64, value: NodeConfidence);
}

/// Counter snapshot of a [`SharedMemo`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStoreStats {
    /// Lookups answered from the store.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// New entries recorded (excludes refreshes of a present key).
    pub insertions: u64,
    /// Entries displaced by second-chance eviction.
    pub evictions: u64,
    /// Entries currently stored.
    pub entries: u64,
    /// Maximum entries the store will hold.
    pub capacity: u64,
}

#[derive(Debug)]
struct Slot {
    key: u64,
    value: NodeConfidence,
    /// Set by every `get` hit, cleared when the clock hand sweeps past;
    /// a slot is evicted only when the hand finds this clear.
    referenced: bool,
}

#[derive(Debug, Default)]
struct Segment {
    slots: Vec<Slot>,
    /// key → position in `slots`.
    index: HashMap<u64, usize>,
    /// The clock hand: next slot the eviction sweep examines.
    hand: usize,
}

impl Segment {
    fn get(&mut self, key: u64) -> Option<NodeConfidence> {
        let &pos = self.index.get(&key)?;
        self.slots[pos].referenced = true;
        Some(self.slots[pos].value)
    }

    /// Inserts under second-chance: a present key is refreshed in
    /// place; below capacity the entry appends; at capacity the hand
    /// sweeps, giving each referenced slot one more round, and replaces
    /// the first unreferenced slot it finds. Returns
    /// `(newly_inserted, evicted)`.
    fn insert(&mut self, capacity: usize, key: u64, value: NodeConfidence) -> (bool, bool) {
        if let Some(&pos) = self.index.get(&key) {
            let slot = &mut self.slots[pos];
            slot.value = value;
            slot.referenced = true;
            return (false, false);
        }
        if self.slots.len() < capacity {
            self.index.insert(key, self.slots.len());
            self.slots.push(Slot { key, value, referenced: false });
            return (true, false);
        }
        // The sweep terminates within 2·len steps: every referenced
        // slot it passes is cleared, so the second lap finds a victim.
        loop {
            let len = self.slots.len();
            let slot = &mut self.slots[self.hand];
            if slot.referenced {
                slot.referenced = false;
                self.hand = (self.hand + 1) % len;
            } else {
                self.index.remove(&slot.key);
                self.index.insert(key, self.hand);
                *slot = Slot { key, value, referenced: false };
                self.hand = (self.hand + 1) % len;
                return (true, true);
            }
        }
    }
}

/// A bounded, thread-safe [`MemoStore`]: lock-striped segments, each an
/// independent second-chance (clock) cache.
///
/// The key's low bits pick the segment (subtree hashes are FNV-1a, so
/// the low bits are well mixed); each segment holds `capacity /
/// segments` entries behind its own mutex, so concurrent sessions
/// contend only when their subtrees land in the same stripe.
#[derive(Debug)]
pub struct SharedMemo {
    segments: Vec<Mutex<Segment>>,
    /// Entries per segment.
    segment_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

/// Default number of lock stripes for [`SharedMemo::new`].
const DEFAULT_SEGMENTS: usize = 16;

impl SharedMemo {
    /// A store holding about `capacity` entries across
    /// [`DEFAULT_SEGMENTS`](SharedMemo::new) lock stripes. A capacity
    /// of 0 disables the store (every `get` misses, every `insert` is
    /// dropped).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self::with_segments(capacity, DEFAULT_SEGMENTS)
    }

    /// A store with an explicit stripe count — the churn tests use one
    /// segment so the whole store follows a single clock.
    ///
    /// The per-segment capacity is `capacity / segments` rounded up, so
    /// the total capacity may round up to a multiple of the stripe
    /// count.
    #[must_use]
    pub fn with_segments(capacity: usize, segments: usize) -> Self {
        let segments = segments.clamp(1, capacity.max(1));
        SharedMemo {
            segments: (0..segments).map(|_| Mutex::new(Segment::default())).collect(),
            segment_capacity: capacity.div_ceil(segments),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn segment(&self, key: u64) -> &Mutex<Segment> {
        &self.segments[(key % self.segments.len() as u64) as usize]
    }

    /// Entries currently stored (sums the segments).
    #[must_use]
    pub fn len(&self) -> usize {
        self.segments.iter().map(|s| lock(s).slots.len()).sum()
    }

    /// True when nothing is stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum entries the store will hold (per-segment capacity times
    /// stripe count).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.segment_capacity * self.segments.len()
    }

    /// Membership probe that touches neither the referenced bits nor
    /// the hit/miss counters — for tests and diagnostics only.
    #[must_use]
    pub fn peek(&self, key: u64) -> Option<NodeConfidence> {
        let seg = lock(self.segment(key));
        seg.index.get(&key).map(|&pos| seg.slots[pos].value)
    }

    /// Counter snapshot (entries are summed across segments).
    #[must_use]
    pub fn stats(&self) -> MemoStoreStats {
        MemoStoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.len() as u64,
            capacity: self.capacity() as u64,
        }
    }
}

impl MemoStore for SharedMemo {
    fn get(&self, key: u64) -> Option<NodeConfidence> {
        if self.segment_capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let value = lock(self.segment(key)).get(key);
        match value {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        value
    }

    fn insert(&self, key: u64, value: NodeConfidence) {
        if self.segment_capacity == 0 {
            return;
        }
        let (inserted, evicted) = lock(self.segment(key)).insert(self.segment_capacity, key, value);
        if inserted {
            self.insertions.fetch_add(1, Ordering::Relaxed);
        }
        if evicted {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Locks a segment, recovering from a poisoned mutex: a segment's
/// invariants (index mirrors slots) are re-established before any
/// method returns, so the data behind a poisoned lock is consistent.
fn lock(segment: &Mutex<Segment>) -> std::sync::MutexGuard<'_, Segment> {
    segment.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn conf(tag: u64) -> NodeConfidence {
        let v = (tag % 1000) as f64 / 1000.0;
        NodeConfidence { independent: v, worst_case: v * 0.5, best_case: v.min(1.0) }
    }

    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// An executable specification of one second-chance segment: a
    /// plain vector of (key, referenced) pairs plus a hand, written for
    /// obviousness rather than speed.
    struct Reference {
        capacity: usize,
        slots: Vec<(u64, bool)>,
        hand: usize,
        evictions: u64,
    }

    impl Reference {
        fn new(capacity: usize) -> Self {
            Reference { capacity, slots: Vec::new(), hand: 0, evictions: 0 }
        }

        fn get(&mut self, key: u64) -> bool {
            match self.slots.iter_mut().find(|(k, _)| *k == key) {
                Some((_, referenced)) => {
                    *referenced = true;
                    true
                }
                None => false,
            }
        }

        fn insert(&mut self, key: u64) {
            if self.get(key) {
                return; // refresh: reference, keep in place
            }
            if self.slots.len() < self.capacity {
                self.slots.push((key, false));
                return;
            }
            loop {
                if self.slots[self.hand].1 {
                    self.slots[self.hand].1 = false;
                    self.hand = (self.hand + 1) % self.slots.len();
                } else {
                    self.slots[self.hand] = (key, false);
                    self.hand = (self.hand + 1) % self.slots.len();
                    self.evictions += 1;
                    return;
                }
            }
        }

        fn keys(&self) -> HashSet<u64> {
            self.slots.iter().map(|(k, _)| *k).collect()
        }
    }

    /// The store's eviction follows the reference model exactly over a
    /// long random churn of gets and inserts: same membership after
    /// every step, same eviction count at the end.
    #[test]
    fn second_chance_matches_the_reference_model_under_churn() {
        let capacity = 32;
        let store = SharedMemo::with_segments(capacity, 1);
        let mut reference = Reference::new(capacity);
        let mut rng = 0xdead_beefu64;
        for step in 0..20_000 {
            let key = splitmix(&mut rng) % 96; // 3× capacity: constant pressure
            if splitmix(&mut rng).is_multiple_of(3) {
                let got = store.get(key).is_some();
                assert_eq!(got, reference.get(key), "get({key}) diverged at step {step}");
            } else {
                store.insert(key, conf(key));
                reference.insert(key);
            }
            if step % 512 == 0 {
                let store_keys: HashSet<u64> =
                    (0..96).filter(|&k| store.peek(k).is_some()).collect();
                assert_eq!(store_keys, reference.keys(), "membership diverged at step {step}");
            }
        }
        assert_eq!(store.stats().evictions, reference.evictions);
        assert_eq!(store.len(), capacity);
    }

    /// The regression the second-chance design exists to fix: hot keys
    /// (template subtrees re-referenced by every stamped variant)
    /// survive an unbounded churn of one-off keys. A clear-on-overflow
    /// memo would drop them at every overflow.
    #[test]
    fn hot_keys_survive_cold_churn() {
        let store = SharedMemo::with_segments(64, 1);
        let hot: Vec<u64> = (1_000_000..1_000_008).collect();
        for &k in &hot {
            store.insert(k, conf(k));
            assert!(store.get(k).is_some());
        }
        for cold in 0..10_000u64 {
            store.insert(cold, conf(cold));
            // Each hot key is re-referenced as a stamped variant would.
            let k = hot[(cold % hot.len() as u64) as usize];
            assert!(store.get(k).is_some(), "hot key {k} evicted by cold churn at {cold}");
        }
        for &k in &hot {
            assert!(store.peek(k).is_some(), "hot key {k} missing after churn");
        }
        // The store stayed full the whole time — pressure never causes
        // a wholesale clear.
        assert_eq!(store.len(), 64);
    }

    #[test]
    fn values_round_trip_and_refresh_in_place() {
        let store = SharedMemo::new(128);
        store.insert(7, conf(1));
        assert_eq!(store.get(7).unwrap().independent.to_bits(), conf(1).independent.to_bits());
        store.insert(7, conf(2));
        assert_eq!(store.get(7).unwrap().independent.to_bits(), conf(2).independent.to_bits());
        assert_eq!(store.len(), 1);
        let stats = store.stats();
        assert_eq!((stats.hits, stats.insertions, stats.evictions), (2, 1, 0));
    }

    #[test]
    fn capacity_zero_disables_the_store() {
        let store = SharedMemo::new(0);
        store.insert(1, conf(1));
        assert!(store.get(1).is_none());
        assert!(store.is_empty());
        assert_eq!(store.capacity(), 0);
        assert_eq!(store.stats().misses, 1);
    }

    #[test]
    fn segments_bound_the_total_and_stay_independent() {
        let store = SharedMemo::with_segments(64, 8);
        assert_eq!(store.capacity(), 64);
        for k in 0..10_000u64 {
            store.insert(k, conf(k));
        }
        // Dense keys hit every stripe (key % segments), so each of the
        // 8 stripes filled its 8 slots: the store is exactly full.
        assert_eq!(store.len(), 64);
    }

    /// Concurrent hammer: the store never loses its index/slots
    /// consistency and every returned value is one that was inserted
    /// for that key.
    #[test]
    fn concurrent_access_is_consistent() {
        let store = std::sync::Arc::new(SharedMemo::new(256));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let store = std::sync::Arc::clone(&store);
                std::thread::spawn(move || {
                    let mut rng = 0x1234_5678u64.wrapping_add(t);
                    for _ in 0..20_000 {
                        let key = splitmix(&mut rng) % 512;
                        if splitmix(&mut rng).is_multiple_of(2) {
                            store.insert(key, conf(key));
                        } else if let Some(v) = store.get(key) {
                            assert_eq!(v.independent.to_bits(), conf(key).independent.to_bits());
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert!(store.len() <= store.capacity());
    }
}
