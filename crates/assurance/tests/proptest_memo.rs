//! Property tests for global cross-case memo sharing.
//!
//! The contract under test: an [`Incremental`] session backed by a
//! shared [`SharedMemo`] — even one shared with *other sessions over
//! other cases*, even one small enough to evict constantly — answers
//! every node confidence bit-identically (`f64::to_bits`) to a session
//! with the classic private per-session memo, over random template
//! stamps and random edit sequences. Sharing and eviction may change
//! how much work is done, never which bits come out.

use depcase_assurance::templates::{stamp, TEMPLATE_COUNT};
use depcase_assurance::{Incremental, MemoStore, NodeId, SharedMemo};
use proptest::prelude::*;
use std::sync::Arc;

/// Every node of both sessions agrees to the last bit, and both agree
/// with a from-scratch propagation.
fn bit_identical(shared: &Incremental, private: &Incremental) -> bool {
    if shared.case_hash() != private.case_hash() {
        return false;
    }
    let fresh = match shared.case().propagate() {
        Ok(report) => report,
        Err(_) => return false,
    };
    for (id, _) in shared.case().iter() {
        let (a, b, c) = (shared.confidence(id), private.confidence(id), fresh.confidence(id));
        match (a, b, c) {
            (Some(a), Some(b), Some(c)) => {
                if a.independent.to_bits() != b.independent.to_bits()
                    || a.worst_case.to_bits() != b.worst_case.to_bits()
                    || a.best_case.to_bits() != b.best_case.to_bits()
                    || a.independent.to_bits() != c.independent.to_bits()
                {
                    return false;
                }
            }
            (None, None, None) => {}
            _ => return false,
        }
    }
    true
}

/// The evidence leaves of a case, in iteration order.
fn leaves(session: &Incremental) -> Vec<NodeId> {
    session
        .case()
        .iter()
        .filter(|(_, n)| matches!(n.kind, depcase_assurance::NodeKind::Evidence { .. }))
        .map(|(id, _)| id)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Many tenants' template variants over ONE shared store, each
    /// mirrored by a private-memo twin, under random edit sequences:
    /// every answer stays bit-identical to the private path, and the
    /// cross-case sharing actually fires (reuse on later variants).
    #[test]
    fn global_memo_sharing_is_bit_identical_to_private_memoization(
        template_picks in proptest::collection::vec((0usize..TEMPLATE_COUNT, 0u64..64), 2..6),
        edits in proptest::collection::vec((0usize..8, 0usize..64, 0.0f64..1.0), 0..16),
        cap_pick in 0usize..3,
    ) {
        let capacity = [48usize, 256, 65_536][cap_pick];
        let store = Arc::new(SharedMemo::new(capacity));
        let mut pairs: Vec<(Incremental, Incremental)> = Vec::new();
        for &(id, variant) in &template_picks {
            let case = stamp(id, variant);
            let shared = Incremental::with_memo(
                case.clone(),
                Arc::clone(&store) as Arc<dyn MemoStore>,
            ).unwrap();
            let private = Incremental::new(case).unwrap();
            prop_assert!(bit_identical(&shared, &private));
            pairs.push((shared, private));
        }
        for &(pair_pick, leaf_pick, conf) in &edits {
            let pick = pair_pick % pairs.len();
            let (shared, private) = &mut pairs[pick];
            let ls = leaves(shared);
            let leaf = ls[leaf_pick % ls.len()];
            let a = shared.set_confidence(leaf, conf).unwrap();
            let b = private.set_confidence(leaf, conf).unwrap();
            // Both touch the same dirty spine; only the reuse/recompute
            // split may differ between the backends.
            prop_assert_eq!(
                a.nodes_recomputed + a.nodes_reused,
                b.nodes_recomputed + b.nodes_reused
            );
            prop_assert!(bit_identical(shared, private));
        }
        // With a roomy store, a second stamp of a seen template must
        // reuse shared subtrees computed by an earlier session.
        if capacity == 65_536 {
            let (id, variant) = template_picks[0];
            let twin = Incremental::with_memo(
                stamp(id, variant.wrapping_add(1)),
                Arc::clone(&store) as Arc<dyn MemoStore>,
            ).unwrap();
            prop_assert!(
                twin.totals().nodes_reused > 0,
                "a sibling variant shared no subtrees: {:?}",
                twin.totals()
            );
        }
    }

    /// A pathologically small shared store (constant eviction on every
    /// propagation) still never changes a bit — it only loses reuse.
    #[test]
    fn eviction_pressure_never_changes_bits(
        id in 0usize..TEMPLATE_COUNT,
        variants in proptest::collection::vec(0u64..1024, 1..5),
        confs in proptest::collection::vec(0.0f64..1.0, 1..8),
    ) {
        let store = Arc::new(SharedMemo::with_segments(4, 1));
        for &variant in &variants {
            let case = stamp(id, variant);
            let mut shared = Incremental::with_memo(
                case.clone(),
                Arc::clone(&store) as Arc<dyn MemoStore>,
            ).unwrap();
            let mut private = Incremental::new(case).unwrap();
            prop_assert!(bit_identical(&shared, &private));
            let ls = leaves(&shared);
            for (i, &conf) in confs.iter().enumerate() {
                let leaf = ls[i % ls.len()];
                shared.set_confidence(leaf, conf).unwrap();
                private.set_confidence(leaf, conf).unwrap();
                prop_assert!(bit_identical(&shared, &private));
            }
        }
    }
}
