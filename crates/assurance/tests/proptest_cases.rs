//! Property tests over randomly generated argument structures.

use depcase_assurance::{Case, Combination, NodeId};
use proptest::prelude::*;

/// Builds a random two-level case: a root goal over `n_strats`
/// strategies, each over a few evidence leaves with random confidences,
/// plus optional assumptions.
fn build_case(
    strat_rules: &[bool],
    leaf_confs: &[f64],
    assumption_conf: Option<f64>,
) -> (Case, NodeId) {
    let mut case = Case::new("random");
    let g = case.add_goal("G", "top").unwrap();
    let mut li = 0usize;
    for (si, &any_of) in strat_rules.iter().enumerate() {
        let rule = if any_of { Combination::AnyOf } else { Combination::AllOf };
        let s = case.add_strategy(format!("S{si}"), "s", rule).unwrap();
        case.support(g, s).unwrap();
        // Two leaves per strategy, cycling through the conf list.
        for k in 0..2 {
            let conf = leaf_confs[(li + k) % leaf_confs.len()];
            let e = case.add_evidence(format!("E{si}_{k}"), "e", conf).unwrap();
            case.support(s, e).unwrap();
        }
        li += 2;
    }
    if let Some(ac) = assumption_conf {
        let a = case.add_assumption("A", "assumption", ac).unwrap();
        case.support(g, a).unwrap();
    }
    (case, g)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// For any structure: results are probabilities and the dependence
    /// interval brackets the independent estimate.
    #[test]
    fn interval_brackets_point(
        rules in proptest::collection::vec(any::<bool>(), 1..4),
        confs in proptest::collection::vec(0.0f64..1.0, 2..8),
        assumption in proptest::option::of(0.0f64..1.0),
    ) {
        let (case, g) = build_case(&rules, &confs, assumption);
        let report = case.propagate().unwrap();
        let c = report.confidence(g).unwrap();
        for v in [c.independent, c.worst_case, c.best_case] {
            prop_assert!((0.0..=1.0).contains(&v), "{c:?}");
        }
        prop_assert!(c.worst_case <= c.independent + 1e-12, "{c:?}");
        prop_assert!(c.independent <= c.best_case + 1e-12, "{c:?}");
    }

    /// Raising any leaf's confidence never lowers the root's.
    #[test]
    fn propagation_is_monotone_in_leaves(
        rules in proptest::collection::vec(any::<bool>(), 1..3),
        confs in proptest::collection::vec(0.05f64..0.9, 2..6),
        bump in 0.01f64..0.1,
    ) {
        let (case_lo, g_lo) = build_case(&rules, &confs, None);
        let bumped: Vec<f64> = confs.iter().map(|c| (c + bump).min(1.0)).collect();
        let (case_hi, g_hi) = build_case(&rules, &bumped, None);
        let lo = case_lo.propagate().unwrap().confidence(g_lo).unwrap();
        let hi = case_hi.propagate().unwrap().confidence(g_hi).unwrap();
        prop_assert!(hi.independent >= lo.independent - 1e-12);
        prop_assert!(hi.worst_case >= lo.worst_case - 1e-12);
        prop_assert!(hi.best_case >= lo.best_case - 1e-12);
    }

    /// An assumption can only lower confidence.
    #[test]
    fn assumptions_never_help(
        rules in proptest::collection::vec(any::<bool>(), 1..3),
        confs in proptest::collection::vec(0.1f64..0.95, 2..6),
        ac in 0.0f64..1.0,
    ) {
        let (plain, g1) = build_case(&rules, &confs, None);
        let (with, g2) = build_case(&rules, &confs, Some(ac));
        let p = plain.propagate().unwrap().confidence(g1).unwrap();
        let w = with.propagate().unwrap().confidence(g2).unwrap();
        prop_assert!(w.independent <= p.independent + 1e-12);
        prop_assert!(w.best_case <= p.best_case + 1e-12);
    }

    /// Serialization round-trips preserve propagation results.
    #[test]
    fn serde_preserves_semantics(
        rules in proptest::collection::vec(any::<bool>(), 1..3),
        confs in proptest::collection::vec(0.0f64..1.0, 2..6),
    ) {
        let (case, g) = build_case(&rules, &confs, None);
        let json = serde_json::to_string(&case).unwrap();
        let back: Case = serde_json::from_str(&json).unwrap();
        let a = case.propagate().unwrap().confidence(g).unwrap();
        let b = back.propagate().unwrap().confidence(g).unwrap();
        prop_assert_eq!(a, b);
    }
}
