//! Property: batched struct-of-arrays propagation is bit-identical to
//! the scalar path, for random structures and random batch sizes.
//!
//! The service's batch dispatcher routes same-shape cold plans through
//! [`EvalPlan::propagate_batch`]; an assessor must not be able to tell
//! from the answers whether their request was batched. `to_bits`
//! equality (not an epsilon) is the contract — the SoA kernel replays
//! the scalar float operations in the scalar order, so any divergence
//! is a kernel bug, never "rounding".

use depcase_assurance::{Case, Combination, EvalPlan};
use proptest::prelude::*;

/// Builds a two-level case whose *shape* depends only on `rules` and
/// `with_assumption`, while the leaf confidences cycle through `confs` —
/// so cases built with the same first two arguments always batch.
fn build_case(rules: &[bool], confs: &[f64], with_assumption: bool) -> Case {
    let mut case = Case::new("random");
    let g = case.add_goal("G", "top").unwrap();
    let mut li = 0usize;
    for (si, &any_of) in rules.iter().enumerate() {
        let rule = if any_of { Combination::AnyOf } else { Combination::AllOf };
        let s = case.add_strategy(format!("S{si}"), "s", rule).unwrap();
        case.support(g, s).unwrap();
        for k in 0..2 {
            let conf = confs[(li + k) % confs.len()];
            let e = case.add_evidence(format!("E{si}_{k}"), "e", conf).unwrap();
            case.support(s, e).unwrap();
        }
        li += 2;
    }
    if with_assumption {
        let ac = confs[li % confs.len()];
        let a = case.add_assumption("A", "assumption", ac).unwrap();
        case.support(g, a).unwrap();
    }
    case
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// For any structure and any batch size 1..=8, every lane of the
    /// batched propagation reproduces the scalar propagation of its
    /// case bit-for-bit, node by node, in all three doubt fields.
    #[test]
    fn batched_propagation_is_bit_identical_to_scalar(
        rules in proptest::collection::vec(any::<bool>(), 1..4),
        lanes in proptest::collection::vec(
            proptest::collection::vec(0.0f64..1.0, 2..8),
            1..9,
        ),
        with_assumption in any::<bool>(),
    ) {
        let cases: Vec<Case> =
            lanes.iter().map(|confs| build_case(&rules, confs, with_assumption)).collect();
        let plans: Vec<EvalPlan> =
            cases.iter().map(|c| EvalPlan::compile(c).unwrap()).collect();
        let refs: Vec<&EvalPlan> = plans.iter().collect();
        let batched = EvalPlan::propagate_batch(&refs).unwrap();
        prop_assert_eq!(batched.len(), cases.len());
        for (case, batch_report) in cases.iter().zip(&batched) {
            let scalar_report = case.propagate().unwrap();
            for (id, node) in case.iter() {
                match (scalar_report.confidence(id), batch_report.confidence(id)) {
                    (None, None) => {}
                    (Some(s), Some(b)) => {
                        prop_assert_eq!(
                            s.independent.to_bits(), b.independent.to_bits(),
                            "independent diverged at {}", node.name
                        );
                        prop_assert_eq!(
                            s.worst_case.to_bits(), b.worst_case.to_bits(),
                            "worst_case diverged at {}", node.name
                        );
                        prop_assert_eq!(
                            s.best_case.to_bits(), b.best_case.to_bits(),
                            "best_case diverged at {}", node.name
                        );
                    }
                    (s, b) => prop_assert!(
                        false,
                        "participation diverged at {}: scalar {:?} vs batched {:?}",
                        node.name, s.is_some(), b.is_some()
                    ),
                }
            }
        }
    }

    /// A batch of one is exactly the scalar path — the degenerate lane
    /// count must not pick a different code path observably.
    #[test]
    fn singleton_batches_match_scalar_too(
        rules in proptest::collection::vec(any::<bool>(), 1..5),
        confs in proptest::collection::vec(0.0f64..1.0, 2..10),
    ) {
        let case = build_case(&rules, &confs, false);
        let plan = EvalPlan::compile(&case).unwrap();
        let batched = EvalPlan::propagate_batch(&[&plan]).unwrap();
        let scalar = case.propagate().unwrap();
        for (id, _) in case.iter() {
            if let (Some(s), Some(b)) = (scalar.confidence(id), batched[0].confidence(id)) {
                prop_assert_eq!(s.independent.to_bits(), b.independent.to_bits());
                prop_assert_eq!(s.worst_case.to_bits(), b.worst_case.to_bits());
                prop_assert_eq!(s.best_case.to_bits(), b.best_case.to_bits());
            }
        }
    }
}
