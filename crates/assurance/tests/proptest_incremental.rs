//! Property tests for the incremental recomputation engine.
//!
//! Two contracts are exercised over random structures and random edit
//! sequences (set confidences, add leaves, retarget edges):
//!
//! 1. After every edit — applied or rejected — the session's per-node
//!    confidences are bit-identical (`f64::to_bits`) to a from-scratch
//!    `propagate` of the same case, and the incrementally maintained
//!    root hash equals `Case::content_hash`.
//! 2. The content hash covers exactly the evaluation-relevant state:
//!    stable under relabelling every title/name/statement, changed by
//!    any confidence nudge, and restored exactly by undoing it.

use depcase_assurance::{Case, Combination, Incremental, LeafKind, NodeId};
use proptest::prelude::*;

/// A strategy node together with its current children, kept as a
/// mirror of the case so the proptest can pick valid retarget edges.
type StrategyMirror = (NodeId, Vec<NodeId>);

/// Builds a random two-level case: a root goal over `rules.len()`
/// strategies (AnyOf/AllOf per flag), each over two evidence leaves
/// with confidences cycled from `confs`, plus an optional assumption.
/// Every label is prefixed so two builds can differ only in labels.
fn build_case(
    label: &str,
    rules: &[bool],
    confs: &[f64],
    assumption: Option<f64>,
) -> (Case, Vec<NodeId>, Vec<StrategyMirror>) {
    let mut case = Case::new(format!("{label}-case"));
    let g = case.add_goal(format!("{label}G"), format!("{label} top")).unwrap();
    let mut leaves = Vec::new();
    let mut strats = Vec::new();
    let mut li = 0usize;
    for (si, &any_of) in rules.iter().enumerate() {
        let rule = if any_of { Combination::AnyOf } else { Combination::AllOf };
        let s = case.add_strategy(format!("{label}S{si}"), format!("{label} s"), rule).unwrap();
        case.support(g, s).unwrap();
        let mut children = Vec::new();
        for k in 0..2 {
            let conf = confs[(li + k) % confs.len()];
            let e =
                case.add_evidence(format!("{label}E{si}_{k}"), format!("{label} e"), conf).unwrap();
            case.support(s, e).unwrap();
            children.push(e);
            leaves.push(e);
        }
        li += 2;
        strats.push((s, children));
    }
    if let Some(ac) = assumption {
        let a =
            case.add_assumption(format!("{label}A"), format!("{label} assumption"), ac).unwrap();
        case.support(g, a).unwrap();
        leaves.push(a);
    }
    (case, leaves, strats)
}

/// True when the session agrees bit-for-bit with a from-scratch
/// propagation of its current case, including the maintained hash.
fn consistent(session: &Incremental) -> bool {
    let fresh = match session.case().propagate() {
        Ok(report) => report,
        Err(_) => return false,
    };
    for (id, _) in session.case().iter() {
        match (session.confidence(id), fresh.confidence(id)) {
            (Some(a), Some(b)) => {
                if a.independent.to_bits() != b.independent.to_bits()
                    || a.worst_case.to_bits() != b.worst_case.to_bits()
                    || a.best_case.to_bits() != b.best_case.to_bits()
                {
                    return false;
                }
            }
            (None, None) => {}
            _ => return false,
        }
    }
    session.case_hash() == session.case().content_hash()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Any sequence of edits keeps the session bit-identical to a full
    /// recompute; rejected edits leave it untouched and consistent.
    #[test]
    fn random_edit_sequences_stay_bit_identical(
        rules in proptest::collection::vec(any::<bool>(), 1..4),
        confs in proptest::collection::vec(0.0f64..1.0, 2..8),
        assumption in proptest::option::of(0.0f64..1.0),
        edits in proptest::collection::vec((any::<u8>(), any::<u8>(), 0.0f64..1.0), 1..12),
    ) {
        let (case, mut leaves, mut strats) = build_case("r", &rules, &confs, assumption);
        let mut session = Incremental::new(case).unwrap();
        prop_assert!(consistent(&session));
        for (step, &(sel, pick, conf)) in edits.iter().enumerate() {
            match sel % 3 {
                0 => {
                    let id = leaves[pick as usize % leaves.len()];
                    session.set_confidence(id, conf).unwrap();
                }
                1 => {
                    let si = pick as usize % strats.len();
                    let (parent, children) = &mut strats[si];
                    let kind =
                        if pick % 2 == 0 { LeafKind::Evidence } else { LeafKind::Assumption };
                    let (id, _) = session
                        .add_leaf(*parent, format!("new{step}"), "grown", kind, conf)
                        .unwrap();
                    children.push(id);
                    leaves.push(id);
                }
                _ => {
                    let si = pick as usize % strats.len();
                    let (parent, children) = &mut strats[si];
                    let from = children[sel as usize % children.len()];
                    let to = leaves[(pick as usize / 3) % leaves.len()];
                    // Re-wiring may be legitimately rejected (duplicate
                    // edge, leaf parent); either way the session must
                    // stay consistent, which the check below asserts.
                    if session.retarget(*parent, from, to).is_ok() {
                        let slot = children.iter().position(|&c| c == from).unwrap();
                        children[slot] = to;
                    }
                }
            }
            prop_assert!(consistent(&session), "after edit {step}");
        }
    }

    /// The hash ignores labels, tracks confidences, and round-trips
    /// through an undo — the old `content_hash` contract, now answered
    /// by the IR's subtree hashes.
    #[test]
    fn subtree_hash_honors_the_content_hash_contract(
        rules in proptest::collection::vec(any::<bool>(), 1..4),
        confs in proptest::collection::vec(0.0f64..1.0, 2..8),
        assumption in proptest::option::of(0.0f64..1.0),
        delta in 0.001f64..0.5,
    ) {
        let (a, leaves, _) = build_case("x", &rules, &confs, assumption);
        let (b, _, _) = build_case("relabelled", &rules, &confs, assumption);
        prop_assert_eq!(a.content_hash(), b.content_hash());

        let mut session = Incremental::new(a).unwrap();
        let before = session.case_hash();
        let nudged = (confs[0] + delta).min(1.0);
        session.set_confidence(leaves[0], nudged).unwrap();
        prop_assert_ne!(session.case_hash(), before);
        // Undoing the nudge restores the exact hash, and the restored
        // values come straight from the subtree-hash memo.
        let undo = session.set_confidence(leaves[0], confs[0]).unwrap();
        prop_assert_eq!(session.case_hash(), before);
        prop_assert_eq!(undo.nodes_recomputed, 0);
        prop_assert!(undo.nodes_reused >= 1);
    }
}
