//! Numeric moment computation for arbitrary distributions.
//!
//! Closed-form moments exist for the parametric families; these quadrature
//! fallbacks serve the composite distributions (mixtures, posteriors) and
//! double as an independent cross-check in the test suite — the paper's
//! observation that "the quantified SIL definition requires the pdf to be
//! integrated to arrive at the mean" made executable.

use crate::error::Result;
use crate::traits::Distribution;
use depcase_numerics::integrate::{adaptive_simpson, integrate_to_infinity};

/// Computes the mean of `dist` by integrating `x·f(x)` over its support.
///
/// Handles finite supports and supports of the form `[lo, ∞)`.
///
/// # Errors
///
/// Propagates quadrature failures.
///
/// # Examples
///
/// ```
/// use depcase_distributions::{moments, Distribution, LogNormal};
///
/// let d = LogNormal::from_mode_mean(0.003, 0.01)?;
/// let numeric = moments::numeric_mean(&d, 1e-10)?;
/// assert!((numeric - 0.01).abs() < 1e-6);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn numeric_mean<D: Distribution + ?Sized>(dist: &D, tol: f64) -> Result<f64> {
    let s = dist.support();
    let lo = if s.lo.is_finite() { s.lo } else { dist.quantile(1e-12)? };
    if s.hi.is_finite() {
        Ok(adaptive_simpson(|x| x * dist.pdf(x), lo, s.hi, tol)?.value)
    } else {
        Ok(integrate_to_infinity(|x| x * dist.pdf(x), lo, tol)?.value)
    }
}

/// Computes the variance of `dist` by integrating `(x − μ)²·f(x)`.
///
/// # Errors
///
/// Propagates quadrature failures.
pub fn numeric_variance<D: Distribution + ?Sized>(dist: &D, tol: f64) -> Result<f64> {
    let m = numeric_mean(dist, tol)?;
    let s = dist.support();
    let lo = if s.lo.is_finite() { s.lo } else { dist.quantile(1e-12)? };
    let f = move |x: f64| (x - m) * (x - m) * dist.pdf(x);
    if s.hi.is_finite() {
        Ok(adaptive_simpson(f, lo, s.hi, tol)?.value)
    } else {
        Ok(integrate_to_infinity(f, lo, tol)?.value)
    }
}

/// Verifies that the density integrates to 1 over the support, returning
/// the computed total mass.
///
/// # Errors
///
/// Propagates quadrature failures.
pub fn total_mass<D: Distribution + ?Sized>(dist: &D, tol: f64) -> Result<f64> {
    let s = dist.support();
    let lo = if s.lo.is_finite() { s.lo } else { dist.quantile(1e-12)? };
    if s.hi.is_finite() {
        Ok(adaptive_simpson(|x| dist.pdf(x), lo, s.hi, tol)?.value)
    } else {
        Ok(integrate_to_infinity(|x| dist.pdf(x), lo, tol)?.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Gamma, LogNormal, Normal, Triangular, Uniform};
    use depcase_numerics::float::approx_eq;

    #[test]
    fn mean_uniform() {
        let u = Uniform::new(1.0, 5.0).unwrap();
        assert!(approx_eq(numeric_mean(&u, 1e-11).unwrap(), 3.0, 1e-9, 1e-9));
    }

    #[test]
    fn mean_lognormal_matches_closed_form() {
        let d = LogNormal::new(-5.0, 1.0).unwrap();
        assert!(approx_eq(numeric_mean(&d, 1e-12).unwrap(), d.mean(), 1e-6, 1e-10));
    }

    #[test]
    fn variance_gamma_matches_closed_form() {
        let g = Gamma::new(3.0, 0.01).unwrap();
        assert!(approx_eq(numeric_variance(&g, 1e-13).unwrap(), g.variance(), 1e-5, 1e-10));
    }

    #[test]
    fn variance_triangular() {
        let t = Triangular::new(0.0, 1.0, 4.0).unwrap();
        assert!(approx_eq(numeric_variance(&t, 1e-11).unwrap(), t.variance(), 1e-7, 1e-9));
    }

    #[test]
    fn total_mass_is_one() {
        let d = LogNormal::from_mode_mean(0.003, 0.01).unwrap();
        assert!(approx_eq(total_mass(&d, 1e-11).unwrap(), 1.0, 1e-6, 1e-7));
        let n = Normal::new(0.0, 1.0).unwrap();
        assert!(approx_eq(total_mass(&n, 1e-11).unwrap(), 1.0, 1e-6, 1e-7));
    }

    #[test]
    fn works_through_trait_object() {
        let d: Box<dyn crate::Distribution> = Box::new(Uniform::unit());
        assert!(approx_eq(numeric_mean(d.as_ref(), 1e-11).unwrap(), 0.5, 1e-8, 1e-9));
    }
}
