//! Truncation (conditioning on an interval) of any distribution.
//!
//! The crudest form of the paper's "attack the high-failure-rate tail":
//! conditioning the belief on `X ≤ hi` after, say, exhaustive analysis
//! rules out rates above `hi`. The gentler evidence-weighted version is
//! [`crate::SurvivalWeighted`].

use crate::error::{DistError, Result};
use crate::traits::{Distribution, Support};
use rand::RngCore;

/// A distribution conditioned on the interval `[lo, hi]`.
///
/// # Examples
///
/// ```
/// use depcase_distributions::{Distribution, LogNormal, Truncated};
///
/// let belief = LogNormal::from_mode_sigma(0.003, 1.0)?;
/// // Condition on the rate being below 0.01 (SIL2 or better):
/// let cut = Truncated::upper(belief, 0.01)?;
/// assert!(cut.cdf(0.01) > 1.0 - 1e-12);
/// assert!(cut.mean() < belief.mean());
/// # Ok::<(), depcase_distributions::DistError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Truncated<D> {
    inner: D,
    lo: f64,
    hi: f64,
    // Cached normalization: P(lo < X ≤ hi) under the parent.
    mass: f64,
    cdf_lo: f64,
}

impl<D: Distribution> Truncated<D> {
    /// Conditions `inner` on `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// [`DistError::InvalidParameter`] if `lo >= hi` or the parent puts
    /// no mass on the interval.
    pub fn new(inner: D, lo: f64, hi: f64) -> Result<Self> {
        if !(lo < hi) {
            return Err(DistError::InvalidParameter(format!(
                "truncation requires lo < hi, got [{lo}, {hi}]"
            )));
        }
        let cdf_lo = inner.cdf(lo);
        let mass = inner.cdf(hi) - cdf_lo;
        if !(mass > 0.0) {
            return Err(DistError::InvalidParameter(format!(
                "parent distribution has no mass on [{lo}, {hi}]"
            )));
        }
        Ok(Self { inner, lo, hi, mass, cdf_lo })
    }

    /// Conditions on `X ≤ hi` (the tail cut-off form).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Truncated::new`].
    pub fn upper(inner: D, hi: f64) -> Result<Self> {
        let lo = inner.support().lo;
        let lo = if lo.is_finite() { lo - 1.0 } else { f64::NEG_INFINITY };
        // Use a lo strictly below the support so no lower mass is lost.
        if lo == f64::NEG_INFINITY {
            // Delegate with an explicit very low bound that the parent
            // CDF treats as zero mass below.
            let cdf_lo = 0.0;
            let mass = inner.cdf(hi);
            if !(mass > 0.0) {
                return Err(DistError::InvalidParameter(format!(
                    "parent distribution has no mass below {hi}"
                )));
            }
            return Ok(Self { inner, lo, hi, mass, cdf_lo });
        }
        Self::new(inner, lo, hi)
    }

    /// The conditioning interval.
    #[must_use]
    pub fn bounds(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    /// The probability mass the parent assigned to the interval —
    /// how much of the original belief survived the conditioning.
    #[must_use]
    pub fn retained_mass(&self) -> f64 {
        self.mass
    }

    /// The parent distribution.
    #[must_use]
    pub fn inner(&self) -> &D {
        &self.inner
    }

    fn numeric_mean(&self) -> f64 {
        // E[X | lo < X ≤ hi] by quadrature over the conditioned density.
        let lo = self.lo.max(self.inner.support().lo);
        let hi = if self.hi.is_finite() { self.hi } else { self.inner.support().hi };
        if !hi.is_finite() {
            // Should not happen: truncation bounds are finite by then.
            return f64::NAN;
        }
        let lo = if lo.is_finite() { lo } else { self.inner.quantile(1e-12).unwrap_or(0.0) };
        depcase_numerics::integrate::adaptive_simpson(|x| x * self.pdf(x), lo, hi, 1e-12)
            .map(|r| r.value)
            .unwrap_or(f64::NAN)
    }
}

impl<D: Distribution> Distribution for Truncated<D> {
    fn support(&self) -> Support {
        let parent = self.inner.support();
        Support { lo: parent.lo.max(self.lo), hi: parent.hi.min(self.hi) }
    }

    fn pdf(&self, x: f64) -> f64 {
        if x < self.lo || x > self.hi {
            0.0
        } else {
            self.inner.pdf(x) / self.mass
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < self.lo {
            0.0
        } else if x >= self.hi {
            1.0
        } else {
            ((self.inner.cdf(x) - self.cdf_lo) / self.mass).clamp(0.0, 1.0)
        }
    }

    fn quantile(&self, p: f64) -> Result<f64> {
        if !(0.0..=1.0).contains(&p) {
            return Err(DistError::InvalidProbability(p));
        }
        let target = self.cdf_lo + p * self.mass;
        let q = self.inner.quantile(target.clamp(0.0, 1.0))?;
        Ok(q.clamp(self.support().lo, self.support().hi))
    }

    fn mean(&self) -> f64 {
        self.numeric_mean()
    }

    fn variance(&self) -> f64 {
        let m = self.mean();
        let lo = self.support().lo;
        let hi = self.support().hi;
        if !lo.is_finite() || !hi.is_finite() {
            return f64::NAN;
        }
        depcase_numerics::integrate::adaptive_simpson(
            |x| (x - m) * (x - m) * self.pdf(x),
            lo,
            hi,
            1e-12,
        )
        .map(|r| r.value)
        .unwrap_or(f64::NAN)
    }

    fn mode(&self) -> Option<f64> {
        self.inner.mode().map(|m| m.clamp(self.support().lo, self.support().hi))
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        // Rejection from the parent; efficient as long as the retained
        // mass is not minuscule, which construction guarantees is > 0.
        for _ in 0..10_000 {
            let x = self.inner.sample(rng);
            if x >= self.lo && x <= self.hi {
                return x;
            }
        }
        // Fall back to inverse-CDF sampling.
        let u = crate::sampler::open_unit(rng);
        self.quantile(u).unwrap_or(self.support().lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LogNormal, Normal, Uniform};
    use depcase_numerics::float::approx_eq;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validation() {
        let u = Uniform::unit();
        assert!(Truncated::new(u, 0.5, 0.5).is_err());
        assert!(Truncated::new(u, 0.8, 0.2).is_err());
        assert!(Truncated::new(u, 2.0, 3.0).is_err()); // no mass there
    }

    #[test]
    fn truncated_uniform_is_uniform() {
        let t = Truncated::new(Uniform::unit(), 0.2, 0.6).unwrap();
        assert!(approx_eq(t.pdf(0.4), 2.5, 1e-13, 0.0));
        assert!(approx_eq(t.cdf(0.4), 0.5, 1e-13, 0.0));
        assert!(approx_eq(t.mean(), 0.4, 1e-9, 0.0));
        assert!(approx_eq(t.retained_mass(), 0.4, 1e-13, 0.0));
    }

    #[test]
    fn upper_truncation_cuts_tail() {
        let belief = LogNormal::from_mode_sigma(0.003, 1.0).unwrap();
        let cut = Truncated::upper(belief, 0.01).unwrap();
        assert_eq!(cut.cdf(0.01), 1.0);
        assert_eq!(cut.cdf(0.02), 1.0);
        assert!(cut.mean() < belief.mean());
        // Mode preserved when inside the kept region.
        assert!(approx_eq(cut.mode().unwrap(), 0.003, 1e-12, 0.0));
    }

    #[test]
    fn quantile_round_trip() {
        let t = Truncated::new(Normal::new(0.0, 1.0).unwrap(), -1.0, 2.0).unwrap();
        for p in [0.01, 0.3, 0.5, 0.9, 0.99] {
            let x = t.quantile(p).unwrap();
            assert!(approx_eq(t.cdf(x), p, 1e-9, 1e-10), "p = {p}");
        }
        assert!(t.quantile(1.2).is_err());
    }

    #[test]
    fn pdf_outside_window_zero() {
        let t = Truncated::new(Normal::new(0.0, 1.0).unwrap(), -1.0, 1.0).unwrap();
        assert_eq!(t.pdf(-1.5), 0.0);
        assert_eq!(t.pdf(1.5), 0.0);
        assert_eq!(t.cdf(-1.5), 0.0);
        assert_eq!(t.cdf(1.5), 1.0);
    }

    #[test]
    fn variance_shrinks_under_truncation() {
        let n = Normal::new(0.0, 1.0).unwrap();
        let t = Truncated::new(n, -1.0, 1.0).unwrap();
        assert!(t.variance() < n.variance());
        assert!(t.variance() > 0.0);
    }

    #[test]
    fn samples_stay_in_window() {
        let t =
            Truncated::new(LogNormal::from_mode_sigma(0.003, 1.0).unwrap(), 0.001, 0.01).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        for x in t.sample_n(&mut rng, 2000) {
            assert!((0.001..=0.01).contains(&x));
        }
    }

    #[test]
    fn mean_matches_monte_carlo() {
        let t = Truncated::upper(LogNormal::from_mode_sigma(0.003, 0.9).unwrap(), 0.01).unwrap();
        let mut rng = StdRng::seed_from_u64(123);
        let acc: depcase_numerics::stats::Accumulator =
            t.sample_n(&mut rng, 60_000).into_iter().collect();
        assert!(
            (acc.mean() - t.mean()).abs() < 3e-4,
            "mc = {}, numeric = {}",
            acc.mean(),
            t.mean()
        );
    }
}
