//! Primitive samplers built from scratch on top of a uniform RNG.
//!
//! The offline crate set does not include `rand_distr`, so the classic
//! transforms are implemented here: polar Box–Muller for the normal,
//! Marsaglia–Tsang squeeze for the gamma, and the two-gamma construction
//! for the beta.

use rand::Rng;
use rand::RngCore;

/// Draws a uniform variate in the open interval `(0, 1)`.
///
/// Never returns exactly 0 or 1, so logs and quantile transforms are safe.
pub fn open_unit(rng: &mut dyn RngCore) -> f64 {
    loop {
        let u: f64 = rng.gen();
        if u > 0.0 && u < 1.0 {
            return u;
        }
    }
}

/// Draws a standard normal variate (polar Box–Muller / Marsaglia polar
/// method).
///
/// # Examples
///
/// ```
/// use depcase_distributions::sampler::standard_normal;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let z = standard_normal(&mut rng);
/// assert!(z.is_finite());
/// ```
pub fn standard_normal(rng: &mut dyn RngCore) -> f64 {
    loop {
        let u = 2.0 * open_unit(rng) - 1.0;
        let v = 2.0 * open_unit(rng) - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Draws a Gamma(shape, 1) variate by the Marsaglia–Tsang method (2000),
/// with the standard `U^{1/shape}` boost for `shape < 1`.
///
/// # Panics
///
/// Panics if `shape` is not strictly positive — callers construct
/// distributions through validated constructors, so this indicates a bug.
pub fn standard_gamma(rng: &mut dyn RngCore, shape: f64) -> f64 {
    assert!(shape > 0.0, "gamma shape must be positive, got {shape}");
    if shape < 1.0 {
        // Boost: if X ~ Gamma(shape+1) and U ~ Uniform(0,1),
        // X * U^{1/shape} ~ Gamma(shape).
        let x = standard_gamma(rng, shape + 1.0);
        let u = open_unit(rng);
        return x * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let (x, v) = loop {
            let x = standard_normal(rng);
            let v = 1.0 + c * x;
            if v > 0.0 {
                break (x, v * v * v);
            }
        };
        let u = open_unit(rng);
        if u < 1.0 - 0.0331 * x.powi(4) {
            return d * v;
        }
        if u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

/// Draws a Beta(a, b) variate via two gamma draws.
///
/// # Panics
///
/// Panics if either shape is not strictly positive.
pub fn standard_beta(rng: &mut dyn RngCore, a: f64, b: f64) -> f64 {
    let x = standard_gamma(rng, a);
    let y = standard_gamma(rng, b);
    x / (x + y)
}

/// Draws an exponential variate with rate 1 by inversion.
pub fn standard_exponential(rng: &mut dyn RngCore) -> f64 {
    -open_unit(rng).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use depcase_numerics::stats::Accumulator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const N: usize = 40_000;

    fn collect(mut f: impl FnMut(&mut StdRng) -> f64) -> Accumulator {
        let mut rng = StdRng::seed_from_u64(0xDEC0DE);
        (0..N).map(|_| f(&mut rng)).collect()
    }

    #[test]
    fn open_unit_stays_open() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let u = open_unit(&mut rng);
            assert!(u > 0.0 && u < 1.0);
        }
    }

    #[test]
    fn normal_moments() {
        let acc = collect(|r| standard_normal(r));
        assert!(acc.mean().abs() < 0.02, "mean {}", acc.mean());
        assert!((acc.sample_variance() - 1.0).abs() < 0.05, "var {}", acc.sample_variance());
    }

    #[test]
    fn gamma_moments_shape_above_one() {
        let shape = 4.2;
        let acc = collect(|r| standard_gamma(r, shape));
        assert!((acc.mean() - shape).abs() < 0.08, "mean {}", acc.mean());
        assert!((acc.sample_variance() - shape).abs() < 0.3, "var {}", acc.sample_variance());
    }

    #[test]
    fn gamma_moments_shape_below_one() {
        let shape = 0.4;
        let acc = collect(|r| standard_gamma(r, shape));
        assert!((acc.mean() - shape).abs() < 0.03, "mean {}", acc.mean());
        assert!((acc.sample_variance() - shape).abs() < 0.1, "var {}", acc.sample_variance());
        assert!(acc.min() > 0.0);
    }

    #[test]
    #[should_panic(expected = "gamma shape must be positive")]
    fn gamma_rejects_nonpositive_shape() {
        let mut rng = StdRng::seed_from_u64(2);
        let _ = standard_gamma(&mut rng, 0.0);
    }

    #[test]
    fn beta_moments() {
        let (a, b) = (2.0, 5.0);
        let acc = collect(|r| standard_beta(r, a, b));
        let want_mean = a / (a + b);
        let want_var = a * b / ((a + b) * (a + b) * (a + b + 1.0));
        assert!((acc.mean() - want_mean).abs() < 0.01);
        assert!((acc.sample_variance() - want_var).abs() < 0.01);
        assert!(acc.min() >= 0.0 && acc.max() <= 1.0);
    }

    #[test]
    fn exponential_moments() {
        let acc = collect(|r| standard_exponential(r));
        assert!((acc.mean() - 1.0).abs() < 0.03);
        assert!((acc.sample_variance() - 1.0).abs() < 0.1);
        assert!(acc.min() > 0.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(99);
        let mut b = StdRng::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(standard_normal(&mut a), standard_normal(&mut b));
        }
    }
}
