//! The log-normal distribution — the paper's model of judged pfd.
//!
//! Section 3.1 of the paper parameterizes the assessor's belief about a
//! failure rate by its *mode* (the "most likely" judged value) and a
//! spread σ, and leans on the identity
//!
//! ```text
//! log10(mean / mode) = 1.5 · log10(e) · σ² ≈ 0.65 σ²
//! ```
//!
//! — the mean sits a full decade above the mode at σ ≈ 1.24 and two
//! decades above at σ ≈ 1.75. The constructors here expose every
//! parameterization the paper (and reactor-safety practice) uses:
//! (μ, σ), (mode, σ), (mode, mean), (mode, confidence-at-bound) and
//! (median, error factor).

use crate::error::{DistError, Result};
use crate::sampler::standard_normal;
use crate::traits::{Distribution, Support};
use depcase_numerics::special::{norm_cdf, norm_pdf, norm_quantile, norm_sf};
use rand::RngCore;

/// A log-normal distribution: `ln X ~ N(mu, sigma²)`.
///
/// # Examples
///
/// The paper's Figure 1 judgements — mode pinned at 0.003 (mid-SIL2) with
/// increasing spread:
///
/// ```
/// use depcase_distributions::{Distribution, LogNormal};
///
/// let narrow = LogNormal::from_mode_sigma(0.003, 0.5)?;
/// let wide = LogNormal::from_mode_sigma(0.003, 1.7)?;
/// // Same most-likely value...
/// assert!((narrow.mode().unwrap() - 0.003).abs() < 1e-12);
/// assert!((wide.mode().unwrap() - 0.003).abs() < 1e-12);
/// // ...but the wide judgement's mean has migrated ~two decades up:
/// assert!(wide.mean() > 50.0 * narrow.mode().unwrap());
/// # Ok::<(), depcase_distributions::DistError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal from the log-space parameters `mu`, `sigma`.
    ///
    /// # Errors
    ///
    /// [`DistError::InvalidParameter`] unless `mu` is finite and
    /// `sigma > 0` finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self> {
        if !mu.is_finite() || !(sigma > 0.0) || !sigma.is_finite() {
            return Err(DistError::InvalidParameter(format!(
                "LogNormal requires finite mu and sigma > 0; got mu = {mu}, sigma = {sigma}"
            )));
        }
        Ok(Self { mu, sigma })
    }

    /// Creates a log-normal with the given *mode* (peak of the density)
    /// and log-space spread `sigma` — the paper's primary
    /// parameterization (`μ = ln mode + σ²`).
    ///
    /// # Errors
    ///
    /// [`DistError::InvalidParameter`] unless `mode > 0` and `sigma > 0`.
    pub fn from_mode_sigma(mode: f64, sigma: f64) -> Result<Self> {
        if !(mode > 0.0) || !mode.is_finite() {
            return Err(DistError::InvalidParameter(format!(
                "mode must be positive and finite, got {mode}"
            )));
        }
        Self::new(mode.ln() + sigma * sigma, sigma)
    }

    /// Creates a log-normal with the given mode *and* mean.
    ///
    /// Solves the paper's Section 3.1 relations
    /// `ln mean = μ + σ²/2`, `ln mode = μ − σ²`, i.e.
    /// `σ² = (2/3)·ln(mean/mode)`.
    ///
    /// # Errors
    ///
    /// [`DistError::Infeasible`] unless `mean > mode > 0` (a log-normal's
    /// mean always exceeds its mode).
    pub fn from_mode_mean(mode: f64, mean: f64) -> Result<Self> {
        if !(mode > 0.0) || !mode.is_finite() || !mean.is_finite() {
            return Err(DistError::InvalidParameter(format!(
                "mode and mean must be positive finite, got mode = {mode}, mean = {mean}"
            )));
        }
        if !(mean > mode) {
            return Err(DistError::Infeasible(format!(
                "a log-normal's mean strictly exceeds its mode; got mode = {mode}, mean = {mean}"
            )));
        }
        let sigma2 = 2.0 / 3.0 * (mean / mode).ln();
        Self::from_mode_sigma(mode, sigma2.sqrt())
    }

    /// Creates a log-normal with the given mode such that
    /// `P(X ≤ bound) = confidence` — the inverse problem behind the
    /// paper's Figure 3 ("how wide must my judgement be if I hold this
    /// much one-sided confidence in the SIL bound?").
    ///
    /// Solving `Φ((ln bound − ln mode − σ²)/σ) = confidence` gives the
    /// positive root `σ = (−z + sqrt(z² + 4d))/2` with
    /// `z = Φ⁻¹(confidence)` and `d = ln(bound/mode)`.
    ///
    /// # Errors
    ///
    /// [`DistError::Infeasible`] when no positive spread satisfies the
    /// pair — e.g. a bound *above* the mode held with confidence ≤ 1/2,
    /// or a bound *below* the mode held with confidence ≥ 1/2.
    ///
    /// # Examples
    ///
    /// ```
    /// use depcase_distributions::{Distribution, LogNormal};
    ///
    /// // Mode mid-SIL2; 90% confident the pfd is below the SIL2 upper bound.
    /// let d = LogNormal::from_mode_confidence(0.003, 1e-2, 0.90)?;
    /// assert!((d.cdf(1e-2) - 0.90).abs() < 1e-10);
    /// # Ok::<(), depcase_distributions::DistError>(())
    /// ```
    pub fn from_mode_confidence(mode: f64, bound: f64, confidence: f64) -> Result<Self> {
        if !(mode > 0.0) || !(bound > 0.0) || !mode.is_finite() || !bound.is_finite() {
            return Err(DistError::InvalidParameter(format!(
                "mode and bound must be positive finite; got mode = {mode}, bound = {bound}"
            )));
        }
        if !(0.0 < confidence && confidence < 1.0) {
            return Err(DistError::InvalidParameter(format!(
                "confidence must lie strictly inside (0, 1), got {confidence}"
            )));
        }
        let z = norm_quantile(confidence);
        let d = (bound / mode).ln();
        let disc = z * z + 4.0 * d;
        if disc < 0.0 {
            return Err(DistError::Infeasible(format!(
                "no spread gives P(X <= {bound}) = {confidence} with mode {mode}"
            )));
        }
        let sigma = 0.5 * (-z + disc.sqrt());
        if !(sigma > 0.0) {
            return Err(DistError::Infeasible(format!(
                "required spread is non-positive for mode = {mode}, bound = {bound}, confidence = {confidence}"
            )));
        }
        Self::from_mode_sigma(mode, sigma)
    }

    /// Creates a log-normal from its median and an *error factor* — the
    /// ratio of the `quantile_level` quantile to the median — the
    /// parameterization customary in probabilistic risk assessment
    /// (Apostolakis, Science 1990, cited by the paper).
    ///
    /// # Errors
    ///
    /// [`DistError::InvalidParameter`] unless `median > 0`,
    /// `error_factor > 1` and `quantile_level ∈ (0.5, 1)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use depcase_distributions::{Distribution, LogNormal};
    ///
    /// // Median 1e-3 with a 95th-percentile error factor of 10.
    /// let d = LogNormal::from_median_error_factor(1e-3, 10.0, 0.95)?;
    /// assert!((d.quantile(0.95)? / 1e-3 - 10.0).abs() < 1e-9);
    /// # Ok::<(), depcase_distributions::DistError>(())
    /// ```
    pub fn from_median_error_factor(
        median: f64,
        error_factor: f64,
        quantile_level: f64,
    ) -> Result<Self> {
        if !(median > 0.0) || !median.is_finite() {
            return Err(DistError::InvalidParameter(format!(
                "median must be positive finite, got {median}"
            )));
        }
        if !(error_factor > 1.0) || !error_factor.is_finite() {
            return Err(DistError::InvalidParameter(format!(
                "error factor must exceed 1, got {error_factor}"
            )));
        }
        if !(0.5 < quantile_level && quantile_level < 1.0) {
            return Err(DistError::InvalidParameter(format!(
                "quantile level must lie in (0.5, 1), got {quantile_level}"
            )));
        }
        let z = norm_quantile(quantile_level);
        Self::new(median.ln(), error_factor.ln() / z)
    }

    /// Log-space location parameter μ.
    #[must_use]
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Log-space spread parameter σ.
    #[must_use]
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Median, `exp(μ)`.
    #[must_use]
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }

    /// Number of *decades* separating the mean from the mode — the
    /// paper's `log10(mean/mode) = 0.65σ²` identity, computed exactly as
    /// `1.5 · σ² · log10 e`.
    ///
    /// # Examples
    ///
    /// ```
    /// use depcase_distributions::LogNormal;
    ///
    /// let d = LogNormal::from_mode_sigma(0.003, 1.2)?;
    /// // σ = 1.2 puts the mean roughly one decade above the mode.
    /// assert!((d.mean_mode_decades() - 0.94).abs() < 0.01);
    /// # Ok::<(), depcase_distributions::DistError>(())
    /// ```
    #[must_use]
    pub fn mean_mode_decades(&self) -> f64 {
        1.5 * self.sigma * self.sigma * std::f64::consts::LOG10_E
    }

    /// The spread σ that places the mean exactly `decades` decades above
    /// the mode (inverse of [`LogNormal::mean_mode_decades`]).
    ///
    /// # Errors
    ///
    /// [`DistError::InvalidParameter`] for non-positive `decades`.
    pub fn sigma_for_decades(decades: f64) -> Result<f64> {
        if !(decades > 0.0) || !decades.is_finite() {
            return Err(DistError::InvalidParameter(format!(
                "decades must be positive finite, got {decades}"
            )));
        }
        Ok((decades / (1.5 * std::f64::consts::LOG10_E)).sqrt())
    }

    fn z(&self, x: f64) -> f64 {
        (x.ln() - self.mu) / self.sigma
    }
}

impl Distribution for LogNormal {
    fn support(&self) -> Support {
        Support::non_negative()
    }

    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        norm_pdf(self.z(x)) / (x * self.sigma)
    }

    fn ln_pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return f64::NEG_INFINITY;
        }
        let z = self.z(x);
        -0.5 * z * z - x.ln() - self.sigma.ln() - 0.5 * (2.0 * std::f64::consts::PI).ln()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        norm_cdf(self.z(x))
    }

    fn sf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 1.0;
        }
        norm_sf(self.z(x))
    }

    fn quantile(&self, p: f64) -> Result<f64> {
        if !(0.0..=1.0).contains(&p) {
            return Err(DistError::InvalidProbability(p));
        }
        if p == 0.0 {
            return Ok(0.0);
        }
        if p == 1.0 {
            return Ok(f64::INFINITY);
        }
        Ok((self.mu + self.sigma * norm_quantile(p)).exp())
    }

    fn mean(&self) -> f64 {
        (self.mu + 0.5 * self.sigma * self.sigma).exp()
    }

    fn variance(&self) -> f64 {
        let s2 = self.sigma * self.sigma;
        (s2.exp() - 1.0) * (2.0 * self.mu + s2).exp()
    }

    fn mode(&self) -> Option<f64> {
        Some((self.mu - self.sigma * self.sigma).exp())
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use depcase_numerics::float::approx_eq;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validation() {
        assert!(LogNormal::new(0.0, 0.0).is_err());
        assert!(LogNormal::new(f64::NAN, 1.0).is_err());
        assert!(LogNormal::from_mode_sigma(0.0, 1.0).is_err());
        assert!(LogNormal::from_mode_sigma(-1.0, 1.0).is_err());
        assert!(LogNormal::from_mode_sigma(1.0, 0.0).is_err());
    }

    #[test]
    fn mode_mean_relations() {
        let d = LogNormal::new(-4.6, 1.2).unwrap();
        let mode = d.mode().unwrap();
        let mean = d.mean();
        // ln mean − ln mode = 1.5 σ²
        assert!(approx_eq((mean / mode).ln(), 1.5 * 1.2 * 1.2, 1e-12, 1e-12));
    }

    #[test]
    fn from_mode_sigma_pins_mode() {
        for sigma in [0.3, 0.8, 1.2, 1.7] {
            let d = LogNormal::from_mode_sigma(0.003, sigma).unwrap();
            assert!(approx_eq(d.mode().unwrap(), 0.003, 1e-12, 0.0), "sigma = {sigma}");
        }
    }

    #[test]
    fn from_mode_mean_round_trip() {
        let d = LogNormal::from_mode_mean(0.003, 0.01).unwrap();
        assert!(approx_eq(d.mode().unwrap(), 0.003, 1e-12, 0.0));
        assert!(approx_eq(d.mean(), 0.01, 1e-12, 0.0));
    }

    #[test]
    fn from_mode_mean_rejects_mean_below_mode() {
        assert!(LogNormal::from_mode_mean(0.01, 0.003).is_err());
        assert!(LogNormal::from_mode_mean(0.01, 0.01).is_err());
    }

    #[test]
    fn paper_identity_065_sigma_squared() {
        // The paper: log10(mean/mode) = 0.65 σ² — 0.65 is the rounded
        // value of 1.5·log10(e) = 0.6514.
        let d = LogNormal::from_mode_sigma(1.0, 1.0).unwrap();
        assert!(approx_eq(d.mean_mode_decades(), 0.6514, 1e-3, 0.0));
    }

    #[test]
    fn paper_decade_claims() {
        // "the mean failure rate is one decade greater than the mode if
        // σ = 1.2, and two decades greater if σ = 1.7"
        let one = LogNormal::from_mode_sigma(0.003, 1.2).unwrap();
        assert!((one.mean_mode_decades() - 1.0).abs() < 0.07, "{}", one.mean_mode_decades());
        let two = LogNormal::from_mode_sigma(0.003, 1.7).unwrap();
        assert!((two.mean_mode_decades() - 2.0).abs() < 0.13, "{}", two.mean_mode_decades());
    }

    #[test]
    fn sigma_for_decades_inverts_identity() {
        for dec in [0.5, 1.0, 2.0] {
            let sigma = LogNormal::sigma_for_decades(dec).unwrap();
            let d = LogNormal::from_mode_sigma(1.0, sigma).unwrap();
            assert!(approx_eq(d.mean_mode_decades(), dec, 1e-12, 1e-12));
        }
        assert!(LogNormal::sigma_for_decades(0.0).is_err());
        assert!(LogNormal::sigma_for_decades(-1.0).is_err());
    }

    #[test]
    fn paper_figure1_means() {
        // Figure 1: judgements with mode 0.003. The dashed (narrow) curve
        // has mean 0.004; the solid (wide) curve has mean 0.01, i.e. in
        // SIL1 territory.
        let narrow = LogNormal::from_mode_mean(0.003, 0.004).unwrap();
        assert!(narrow.sigma() < 0.5);
        let wide = LogNormal::from_mode_mean(0.003, 0.01).unwrap();
        assert!(wide.sigma() > 0.8);
        assert!(wide.mean() > 1e-2 - 1e-12); // mean in SIL1 band [1e-2, 1e-1)
    }

    #[test]
    fn from_mode_confidence_round_trip() {
        let d = LogNormal::from_mode_confidence(0.003, 1e-2, 0.67).unwrap();
        assert!(approx_eq(d.cdf(1e-2), 0.67, 1e-10, 0.0));
        assert!(approx_eq(d.mode().unwrap(), 0.003, 1e-10, 0.0));
    }

    #[test]
    fn from_mode_confidence_low_confidence_wide_spread() {
        // Lower confidence in the same bound forces a wider judgement.
        let lo = LogNormal::from_mode_confidence(0.003, 1e-2, 0.60).unwrap();
        let hi = LogNormal::from_mode_confidence(0.003, 1e-2, 0.95).unwrap();
        assert!(lo.sigma() > hi.sigma());
    }

    #[test]
    fn from_mode_confidence_infeasible_cases() {
        // Bound below the mode with confidence >= 1/2 is impossible.
        assert!(LogNormal::from_mode_confidence(0.01, 0.003, 0.9).is_err());
        // Degenerate confidence levels rejected.
        assert!(LogNormal::from_mode_confidence(0.003, 0.01, 0.0).is_err());
        assert!(LogNormal::from_mode_confidence(0.003, 0.01, 1.0).is_err());
    }

    #[test]
    fn from_mode_confidence_bound_below_mode_low_confidence() {
        // With the mode pinned at 0.01, P(X <= 0.003) is maximized at
        // sigma = sqrt(-d) where it reaches Φ(−2√−d) ≈ 0.014 — so 1.4%
        // is feasible but 20% is not.
        let d = LogNormal::from_mode_confidence(0.01, 0.003, 0.01).unwrap();
        assert!(approx_eq(d.cdf(0.003), 0.01, 1e-9, 0.0));
        assert!(LogNormal::from_mode_confidence(0.01, 0.003, 0.2).is_err());
    }

    #[test]
    fn from_median_error_factor() {
        let d = LogNormal::from_median_error_factor(1e-3, 3.0, 0.95).unwrap();
        assert!(approx_eq(d.median(), 1e-3, 1e-12, 0.0));
        assert!(approx_eq(d.quantile(0.95).unwrap(), 3e-3, 1e-9, 0.0));
        // 5th percentile is median / EF by symmetry.
        assert!(approx_eq(d.quantile(0.05).unwrap(), 1e-3 / 3.0, 1e-9, 0.0));
    }

    #[test]
    fn from_median_error_factor_validation() {
        assert!(LogNormal::from_median_error_factor(0.0, 3.0, 0.95).is_err());
        assert!(LogNormal::from_median_error_factor(1e-3, 1.0, 0.95).is_err());
        assert!(LogNormal::from_median_error_factor(1e-3, 3.0, 0.5).is_err());
        assert!(LogNormal::from_median_error_factor(1e-3, 3.0, 1.0).is_err());
    }

    #[test]
    fn pdf_zero_outside_support() {
        let d = LogNormal::new(0.0, 1.0).unwrap();
        assert_eq!(d.pdf(0.0), 0.0);
        assert_eq!(d.pdf(-1.0), 0.0);
        assert_eq!(d.ln_pdf(-1.0), f64::NEG_INFINITY);
        assert_eq!(d.cdf(0.0), 0.0);
        assert_eq!(d.sf(-1.0), 1.0);
    }

    #[test]
    fn density_tends_to_zero_at_origin() {
        // The paper: "we would expect the distribution's density function
        // to tend to zero as the rate λ→0".
        let d = LogNormal::from_mode_sigma(0.003, 1.7).unwrap();
        assert!(d.pdf(1e-12) < d.pdf(1e-6));
        assert!(d.pdf(1e-6) < d.pdf(0.003));
    }

    #[test]
    fn cdf_quantile_round_trip() {
        let d = LogNormal::new(-4.6, 1.3).unwrap();
        for p in [1e-8, 0.01, 0.25, 0.5, 0.75, 0.99, 1.0 - 1e-9] {
            let x = d.quantile(p).unwrap();
            assert!(approx_eq(d.cdf(x), p, 1e-10, 1e-12), "p = {p}");
        }
        assert_eq!(d.quantile(0.0).unwrap(), 0.0);
        assert_eq!(d.quantile(1.0).unwrap(), f64::INFINITY);
        assert!(d.quantile(2.0).is_err());
    }

    #[test]
    fn median_is_exp_mu() {
        let d = LogNormal::new(-3.0, 0.7).unwrap();
        assert!(approx_eq(d.median(), (-3.0_f64).exp(), 1e-12, 0.0));
        assert!(approx_eq(d.quantile(0.5).unwrap(), d.median(), 1e-10, 0.0));
    }

    #[test]
    fn variance_matches_formula() {
        let d = LogNormal::new(-2.0, 0.9).unwrap();
        let s2 = 0.81_f64;
        let want = (s2.exp() - 1.0) * f64::exp(2.0 * -2.0 + s2);
        assert!(approx_eq(d.variance(), want, 1e-12, 0.0));
        assert!(approx_eq(d.std(), want.sqrt(), 1e-12, 0.0));
    }

    #[test]
    fn numeric_mean_matches_closed_form() {
        let d = LogNormal::from_mode_sigma(0.003, 1.2).unwrap();
        let numeric = crate::moments::numeric_mean(&d, 1e-10).unwrap();
        assert!(approx_eq(numeric, d.mean(), 1e-6, 1e-9), "numeric {numeric} vs {}", d.mean());
    }

    #[test]
    fn sampling_moments() {
        let d = LogNormal::new(-4.0, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let xs = d.sample_n(&mut rng, 50_000);
        let log_acc: depcase_numerics::stats::Accumulator = xs.iter().map(|x| x.ln()).collect();
        assert!((log_acc.mean() + 4.0).abs() < 0.01);
        assert!((log_acc.sample_std() - 0.5).abs() < 0.01);
        assert!(xs.iter().all(|&x| x > 0.0));
    }
}
