//! The Weibull distribution.
//!
//! Included for reliability-growth workloads in the extended examples:
//! time-to-failure of hardware channels in multi-leg arguments is
//! conventionally Weibull.

use crate::error::{DistError, Result};
use crate::sampler::open_unit;
use crate::traits::{Distribution, Support};
use depcase_numerics::special::ln_gamma;
use rand::RngCore;

/// A Weibull distribution with shape `k` and scale `lambda`.
///
/// # Examples
///
/// ```
/// use depcase_distributions::{Distribution, Weibull};
///
/// let w = Weibull::new(1.0, 2.0)?; // shape 1 is Exponential(1/2)
/// assert!((w.sf(2.0) - (-1.0_f64).exp()).abs() < 1e-14);
/// # Ok::<(), depcase_distributions::DistError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    shape: f64,
    scale: f64,
}

impl Weibull {
    /// Creates a Weibull distribution.
    ///
    /// # Errors
    ///
    /// [`DistError::InvalidParameter`] unless both parameters are
    /// positive finite.
    pub fn new(shape: f64, scale: f64) -> Result<Self> {
        if !(shape > 0.0) || !shape.is_finite() || !(scale > 0.0) || !scale.is_finite() {
            return Err(DistError::InvalidParameter(format!(
                "Weibull requires shape > 0 and scale > 0; got shape = {shape}, scale = {scale}"
            )));
        }
        Ok(Self { shape, scale })
    }

    /// Shape parameter `k`.
    #[must_use]
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Scale parameter `λ`.
    #[must_use]
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

impl Distribution for Weibull {
    fn support(&self) -> Support {
        Support::non_negative()
    }

    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 0.0;
        }
        if x == 0.0 {
            return if self.shape < 1.0 {
                f64::INFINITY
            } else if self.shape == 1.0 {
                1.0 / self.scale
            } else {
                0.0
            };
        }
        let z = x / self.scale;
        (self.shape / self.scale) * z.powf(self.shape - 1.0) * (-z.powf(self.shape)).exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            -(-(x / self.scale).powf(self.shape)).exp_m1()
        }
    }

    fn sf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            1.0
        } else {
            (-(x / self.scale).powf(self.shape)).exp()
        }
    }

    fn quantile(&self, p: f64) -> Result<f64> {
        if !(0.0..=1.0).contains(&p) {
            return Err(DistError::InvalidProbability(p));
        }
        if p == 1.0 {
            return Ok(f64::INFINITY);
        }
        Ok(self.scale * (-(-p).ln_1p()).powf(1.0 / self.shape))
    }

    fn mean(&self) -> f64 {
        self.scale * (ln_gamma(1.0 + 1.0 / self.shape)).exp()
    }

    fn variance(&self) -> f64 {
        let g2 = ln_gamma(1.0 + 2.0 / self.shape).exp();
        let g1 = ln_gamma(1.0 + 1.0 / self.shape).exp();
        self.scale * self.scale * (g2 - g1 * g1)
    }

    fn mode(&self) -> Option<f64> {
        if self.shape > 1.0 {
            Some(self.scale * ((self.shape - 1.0) / self.shape).powf(1.0 / self.shape))
        } else {
            Some(0.0)
        }
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        let u = open_unit(rng);
        self.scale * (-u.ln()).powf(1.0 / self.shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use depcase_numerics::float::approx_eq;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validation() {
        assert!(Weibull::new(0.0, 1.0).is_err());
        assert!(Weibull::new(1.0, 0.0).is_err());
        assert!(Weibull::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn exponential_special_case() {
        let w = Weibull::new(1.0, 2.0).unwrap();
        assert!(approx_eq(w.mean(), 2.0, 1e-12, 0.0));
        assert!(approx_eq(w.cdf(2.0), 1.0 - (-1.0_f64).exp(), 1e-13, 0.0));
        assert_eq!(w.mode(), Some(0.0));
    }

    #[test]
    fn rayleigh_special_case() {
        // k = 2 is Rayleigh; mean = λ·sqrt(π)/2.
        let w = Weibull::new(2.0, 3.0).unwrap();
        assert!(approx_eq(w.mean(), 3.0 * std::f64::consts::PI.sqrt() / 2.0, 1e-12, 0.0));
    }

    #[test]
    fn quantile_round_trip() {
        let w = Weibull::new(1.7, 0.4).unwrap();
        for p in [1e-9, 0.2, 0.5, 0.95] {
            let x = w.quantile(p).unwrap();
            assert!(approx_eq(w.cdf(x), p, 1e-12, 1e-14), "p = {p}");
        }
    }

    #[test]
    fn mode_interior_for_large_shape() {
        let w = Weibull::new(3.0, 1.0).unwrap();
        let m = w.mode().unwrap();
        // Density at mode should exceed nearby values.
        assert!(w.pdf(m) > w.pdf(m * 0.8));
        assert!(w.pdf(m) > w.pdf(m * 1.2));
    }

    #[test]
    fn pdf_origin_conventions() {
        assert_eq!(Weibull::new(0.5, 1.0).unwrap().pdf(0.0), f64::INFINITY);
        assert_eq!(Weibull::new(2.0, 1.0).unwrap().pdf(0.0), 0.0);
        assert!(approx_eq(Weibull::new(1.0, 4.0).unwrap().pdf(0.0), 0.25, 1e-14, 0.0));
    }

    #[test]
    fn sampling_moments() {
        let w = Weibull::new(2.0, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let acc: depcase_numerics::stats::Accumulator =
            w.sample_n(&mut rng, 40_000).into_iter().collect();
        assert!((acc.mean() - w.mean()).abs() < 0.01);
    }
}
