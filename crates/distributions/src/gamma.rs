//! The gamma distribution — the paper's sensitivity check.
//!
//! Section 3 notes that the headline results "only require a
//! non-symmetric distribution" and that the authors "repeated some of the
//! results for a gamma distribution to illustrate the (low) sensitivity
//! to the log-normal assumptions". The constructors here mirror the
//! log-normal's mode-pinned parameterizations so the G1 experiment can
//! swap families without touching the harness.

use crate::error::{DistError, Result};
use crate::sampler::standard_gamma;
use crate::traits::{Distribution, Support};
use depcase_numerics::roots::{brent, RootConfig};
use depcase_numerics::special::{inv_reg_gamma_p, ln_gamma, reg_gamma_p, reg_gamma_q};
use rand::RngCore;

/// A gamma distribution with shape `k` and scale `theta`.
///
/// # Examples
///
/// ```
/// use depcase_distributions::{Distribution, Gamma};
///
/// let g = Gamma::new(2.0, 0.5)?;
/// assert!((g.mean() - 1.0).abs() < 1e-14);
/// assert!((g.variance() - 0.5).abs() < 1e-14);
/// # Ok::<(), depcase_distributions::DistError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// Creates a gamma distribution with the given shape and scale.
    ///
    /// # Errors
    ///
    /// [`DistError::InvalidParameter`] unless both parameters are
    /// positive finite.
    pub fn new(shape: f64, scale: f64) -> Result<Self> {
        if !(shape > 0.0) || !shape.is_finite() || !(scale > 0.0) || !scale.is_finite() {
            return Err(DistError::InvalidParameter(format!(
                "Gamma requires shape > 0 and scale > 0; got shape = {shape}, scale = {scale}"
            )));
        }
        Ok(Self { shape, scale })
    }

    /// Creates a gamma distribution with the given *mode* and shape
    /// (`mode = (k − 1)·θ`, so this needs `shape > 1`).
    ///
    /// # Errors
    ///
    /// [`DistError::InvalidParameter`] unless `mode > 0` and `shape > 1`.
    pub fn from_mode_shape(mode: f64, shape: f64) -> Result<Self> {
        if !(mode > 0.0) || !mode.is_finite() {
            return Err(DistError::InvalidParameter(format!(
                "mode must be positive finite, got {mode}"
            )));
        }
        if !(shape > 1.0) {
            return Err(DistError::InvalidParameter(format!(
                "a gamma has an interior mode only for shape > 1, got {shape}"
            )));
        }
        Self::new(shape, mode / (shape - 1.0))
    }

    /// Creates a gamma distribution with the given mode *and* mean
    /// (`mean = kθ`, `mode = (k−1)θ` ⇒ `θ = mean − mode`).
    ///
    /// This is the gamma analogue of
    /// [`crate::LogNormal::from_mode_mean`], used by the G1 sensitivity
    /// experiment.
    ///
    /// # Errors
    ///
    /// [`DistError::Infeasible`] unless `mean > mode > 0`.
    pub fn from_mode_mean(mode: f64, mean: f64) -> Result<Self> {
        if !(mode > 0.0) || !mode.is_finite() || !mean.is_finite() {
            return Err(DistError::InvalidParameter(format!(
                "mode and mean must be positive finite, got mode = {mode}, mean = {mean}"
            )));
        }
        if !(mean > mode) {
            return Err(DistError::Infeasible(format!(
                "a gamma's mean strictly exceeds its mode (shape > 1); got mode = {mode}, mean = {mean}"
            )));
        }
        let scale = mean - mode;
        let shape = mean / scale;
        Self::new(shape, scale)
    }

    /// Creates a gamma distribution with the given mode such that
    /// `P(X ≤ bound) = confidence` — solved numerically over the shape
    /// parameter; the gamma counterpart of
    /// [`crate::LogNormal::from_mode_confidence`].
    ///
    /// # Errors
    ///
    /// [`DistError::Infeasible`] when no `shape > 1` satisfies the pair
    /// (e.g. requesting less confidence in a bound above the mode than
    /// even the widest admissible gamma gives).
    pub fn from_mode_confidence(mode: f64, bound: f64, confidence: f64) -> Result<Self> {
        if !(mode > 0.0) || !(bound > mode) {
            return Err(DistError::InvalidParameter(format!(
                "requires 0 < mode < bound; got mode = {mode}, bound = {bound}"
            )));
        }
        if !(0.0 < confidence && confidence < 1.0) {
            return Err(DistError::InvalidParameter(format!(
                "confidence must lie strictly inside (0, 1), got {confidence}"
            )));
        }
        // As shape → ∞ the distribution concentrates at the mode, so
        // cdf(bound) → 1; as shape → 1⁺ it is widest. cdf(bound) is
        // monotone increasing in shape for bound > mode, so bracket and
        // solve.
        let g = |shape: f64| -> f64 {
            let scale = mode / (shape - 1.0);
            reg_gamma_p(shape, bound / scale).map_or(f64::NAN, |p| p - confidence)
        };
        let lo = 1.0 + 1e-9;
        let mut hi = 2.0;
        let glo = g(lo);
        if glo > 0.0 {
            return Err(DistError::Infeasible(format!(
                "even the widest mode-{mode} gamma has P(X <= {bound}) > {confidence}"
            )));
        }
        let mut expansions = 0;
        while g(hi) < 0.0 {
            hi *= 2.0;
            expansions += 1;
            if expansions > 60 {
                return Err(DistError::Infeasible(format!(
                    "no shape achieves P(X <= {bound}) = {confidence} with mode {mode}"
                )));
            }
        }
        let shape = brent(g, lo, hi, RootConfig { f_tol: 1e-12, ..RootConfig::default() })
            .map_err(DistError::Numerics)?;
        Self::from_mode_shape(mode, shape)
    }

    /// Shape parameter `k`.
    #[must_use]
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Scale parameter `θ`.
    #[must_use]
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Rate parameter `1/θ`.
    #[must_use]
    pub fn rate(&self) -> f64 {
        1.0 / self.scale
    }
}

impl Distribution for Gamma {
    fn support(&self) -> Support {
        Support::non_negative()
    }

    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 0.0;
        }
        if x == 0.0 {
            // Density limit at the origin depends on the shape.
            return if self.shape < 1.0 {
                f64::INFINITY
            } else if self.shape == 1.0 {
                1.0 / self.scale
            } else {
                0.0
            };
        }
        self.ln_pdf(x).exp()
    }

    fn ln_pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return f64::NEG_INFINITY;
        }
        let z = x / self.scale;
        (self.shape - 1.0) * z.ln() - z - ln_gamma(self.shape) - self.scale.ln()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        reg_gamma_p(self.shape, x / self.scale).unwrap_or(f64::NAN)
    }

    fn sf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 1.0;
        }
        reg_gamma_q(self.shape, x / self.scale).unwrap_or(f64::NAN)
    }

    fn quantile(&self, p: f64) -> Result<f64> {
        if !(0.0..=1.0).contains(&p) {
            return Err(DistError::InvalidProbability(p));
        }
        Ok(self.scale * inv_reg_gamma_p(self.shape, p)?)
    }

    fn mean(&self) -> f64 {
        self.shape * self.scale
    }

    fn variance(&self) -> f64 {
        self.shape * self.scale * self.scale
    }

    fn mode(&self) -> Option<f64> {
        if self.shape >= 1.0 {
            Some((self.shape - 1.0) * self.scale)
        } else {
            Some(0.0)
        }
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        self.scale * standard_gamma(rng, self.shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use depcase_numerics::float::approx_eq;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validation() {
        assert!(Gamma::new(0.0, 1.0).is_err());
        assert!(Gamma::new(1.0, 0.0).is_err());
        assert!(Gamma::new(-1.0, 1.0).is_err());
        assert!(Gamma::new(f64::INFINITY, 1.0).is_err());
    }

    #[test]
    fn exponential_special_case() {
        // Gamma(1, θ) is Exponential(1/θ).
        let g = Gamma::new(1.0, 2.0).unwrap();
        assert!(approx_eq(g.cdf(2.0), 1.0 - (-1.0_f64).exp(), 1e-13, 0.0));
        assert!(approx_eq(g.pdf(0.0), 0.5, 1e-14, 0.0));
    }

    #[test]
    fn from_mode_shape_pins_mode() {
        let g = Gamma::from_mode_shape(0.003, 3.0).unwrap();
        assert!(approx_eq(g.mode().unwrap(), 0.003, 1e-14, 0.0));
        assert!(Gamma::from_mode_shape(0.003, 1.0).is_err());
        assert!(Gamma::from_mode_shape(0.0, 2.0).is_err());
    }

    #[test]
    fn from_mode_mean_round_trip() {
        let g = Gamma::from_mode_mean(0.003, 0.01).unwrap();
        assert!(approx_eq(g.mode().unwrap(), 0.003, 1e-12, 0.0));
        assert!(approx_eq(g.mean(), 0.01, 1e-12, 0.0));
        assert!(Gamma::from_mode_mean(0.01, 0.003).is_err());
    }

    #[test]
    fn from_mode_confidence_round_trip() {
        let g = Gamma::from_mode_confidence(0.003, 1e-2, 0.8).unwrap();
        assert!(approx_eq(g.cdf(1e-2), 0.8, 1e-9, 0.0));
        assert!(approx_eq(g.mode().unwrap(), 0.003, 1e-9, 0.0));
    }

    #[test]
    fn from_mode_confidence_infeasible_low_confidence() {
        // Even the widest (shape→1) mode-0.003 gamma puts *some* mass
        // below the bound, so only absurdly small confidences are
        // infeasible — but they are.
        assert!(Gamma::from_mode_confidence(0.003, 0.99, 1e-12).is_err());
        // Whereas modest low confidence is feasible (very flat gamma).
        let g = Gamma::from_mode_confidence(0.003, 0.99, 0.1).unwrap();
        assert!(approx_eq(g.cdf(0.99), 0.1, 1e-8, 0.0));
    }

    #[test]
    fn from_mode_confidence_validation() {
        assert!(Gamma::from_mode_confidence(0.01, 0.003, 0.9).is_err()); // bound < mode
        assert!(Gamma::from_mode_confidence(0.003, 0.01, 0.0).is_err());
    }

    #[test]
    fn asymmetry_mean_exceeds_mode() {
        // The paper's requirement: an asymmetric judgement whose mean
        // exceeds its most-likely value.
        let g = Gamma::from_mode_shape(0.003, 1.5).unwrap();
        assert!(g.mean() > g.mode().unwrap());
    }

    #[test]
    fn cdf_quantile_round_trip() {
        let g = Gamma::new(2.5, 0.004).unwrap();
        for p in [1e-6, 0.05, 0.3, 0.5, 0.9, 0.999] {
            let x = g.quantile(p).unwrap();
            assert!(approx_eq(g.cdf(x), p, 1e-8, 1e-10), "p = {p}");
        }
    }

    #[test]
    fn quantile_validation() {
        let g = Gamma::new(2.0, 1.0).unwrap();
        assert!(g.quantile(-0.5).is_err());
        assert_eq!(g.quantile(0.0).unwrap(), 0.0);
    }

    #[test]
    fn pdf_edge_at_origin() {
        assert_eq!(Gamma::new(0.5, 1.0).unwrap().pdf(0.0), f64::INFINITY);
        assert_eq!(Gamma::new(2.0, 1.0).unwrap().pdf(0.0), 0.0);
        assert_eq!(Gamma::new(2.0, 1.0).unwrap().pdf(-1.0), 0.0);
    }

    #[test]
    fn mode_for_small_shape_is_origin() {
        assert_eq!(Gamma::new(0.7, 1.0).unwrap().mode(), Some(0.0));
    }

    #[test]
    fn sf_complements_cdf() {
        let g = Gamma::new(3.0, 2.0).unwrap();
        for x in [0.5, 2.0, 10.0, 40.0] {
            assert!(approx_eq(g.cdf(x) + g.sf(x), 1.0, 1e-12, 1e-12), "x = {x}");
        }
    }

    #[test]
    fn sampling_moments() {
        let g = Gamma::new(3.0, 0.01).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let acc: depcase_numerics::stats::Accumulator =
            g.sample_n(&mut rng, 40_000).into_iter().collect();
        assert!((acc.mean() - 0.03).abs() < 0.001);
        assert!((acc.sample_variance() - 3e-4).abs() < 3e-5);
    }

    #[test]
    fn numeric_mean_matches_closed_form() {
        let g = Gamma::from_mode_mean(0.003, 0.01).unwrap();
        let numeric = crate::moments::numeric_mean(&g, 1e-11).unwrap();
        assert!(approx_eq(numeric, 0.01, 1e-6, 1e-9), "numeric = {numeric}");
    }
}
