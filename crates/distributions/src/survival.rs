//! Survival-weighted posteriors — the paper's Section 4.1 tail cut-off.
//!
//! "Operating experience or statistical testing can 'cut off' this tail
//! so the distribution gets modified by the survival probability and
//! renormalized." For demand-based systems the survival probability of
//! `n` failure-free demands at pfd `p` is `(1−p)ⁿ`, giving the posterior
//!
//! ```text
//! f(p | n failure-free demands) ∝ f(p) · (1−p)ⁿ     on [0, 1]
//! ```
//!
//! ([`SurvivalWeighted`]); for continuously operating systems surviving
//! time `t` at rate `λ` it is `e^{−λt}` ([`RateSurvivalWeighted`]).

use crate::error::{DistError, Result};
use crate::traits::{Distribution, Support};
use depcase_numerics::integrate::{adaptive_simpson, integrate_to_infinity};
use depcase_numerics::optimize::golden_section_max;
use depcase_numerics::roots::{brent, RootConfig};
use rand::RngCore;

const QUAD_TOL: f64 = 1e-10;

/// Quantile levels whose prior quantiles become integration knots.
///
/// Belief priors over failure rates concentrate orders of magnitude of
/// structure near zero; uniform seed panels over `[0, 1]` (let alone
/// `[0, ∞)`) would sail straight past the mass. Splitting at the prior's
/// own quantiles guarantees every panel holds a bounded fraction of the
/// prior mass, so the adaptive rule always sees the peak.
const KNOT_LEVELS: [f64; 15] =
    [1e-12, 1e-9, 1e-6, 1e-4, 1e-3, 0.01, 0.05, 0.15, 0.30, 0.50, 0.70, 0.85, 0.95, 0.99, 0.9999];

/// Builds sorted, deduplicated integration knots inside `[lo, hi]` from a
/// prior's quantiles, always including both endpoints.
fn prior_knots<D: Distribution + ?Sized>(prior: &D, lo: f64, hi: f64) -> Vec<f64> {
    let mut ks = vec![lo];
    for &q in &KNOT_LEVELS {
        if let Ok(x) = prior.quantile(q) {
            if x.is_finite() && x > lo && x < hi {
                ks.push(x);
            }
        }
    }
    ks.push(hi);
    ks.sort_by(|a, b| a.partial_cmp(b).expect("finite knots"));
    ks.dedup_by(|a, b| (*a - *b).abs() <= f64::EPSILON * a.abs().max(1e-300));
    ks
}

/// Locates the mode of a unimodal density by coarse scan over the knot
/// grid (subdivided) followed by golden-section refinement in the
/// bracketing segment.
fn knotted_mode<F: Fn(f64) -> f64>(pdf: F, knots: &[f64]) -> Option<f64> {
    const SUBDIV: usize = 8;
    let mut grid = Vec::with_capacity(knots.len() * SUBDIV);
    for w in knots.windows(2) {
        for k in 0..SUBDIV {
            grid.push(w[0] + (w[1] - w[0]) * k as f64 / SUBDIV as f64);
        }
    }
    grid.push(*knots.last()?);
    let (best, _) = grid
        .iter()
        .enumerate()
        .map(|(i, &x)| (i, pdf(x)))
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite density"))?;
    let lo = if best == 0 { grid[0] } else { grid[best - 1] };
    let hi = if best + 1 >= grid.len() { grid[grid.len() - 1] } else { grid[best + 1] };
    if hi <= lo {
        return Some(grid[best]);
    }
    golden_section_max(&pdf, lo, hi, 1e-14 * (hi - lo).max(1e-300)).ok().map(|r| r.x)
}

/// Integrates `f` over `[lo, hi]` piecewise between the knots.
fn integrate_knotted<F: Fn(f64) -> f64>(f: &F, knots: &[f64], lo: f64, hi: f64) -> f64 {
    if hi <= lo {
        return 0.0;
    }
    let mut acc = 0.0;
    for w in knots.windows(2) {
        let (a, b) = (w[0].max(lo), w[1].min(hi));
        if b <= a {
            continue;
        }
        acc += adaptive_simpson(f, a, b, QUAD_TOL).map(|r| r.value).unwrap_or(0.0);
        if w[1] >= hi {
            break;
        }
    }
    acc
}

/// Posterior belief about a pfd after `n` failure-free demands.
///
/// # Examples
///
/// ```
/// use depcase_distributions::{Distribution, LogNormal, SurvivalWeighted};
///
/// let prior = LogNormal::from_mode_mean(0.003, 0.01)?;
/// let post = SurvivalWeighted::new(prior, 1000)?;
/// // Failure-free demands increase SIL2 confidence and shrink the mean:
/// assert!(post.cdf(1e-2) > 0.9);
/// assert!(post.mean() < 0.01);
/// # Ok::<(), depcase_distributions::DistError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SurvivalWeighted<D> {
    prior: D,
    demands: u64,
    norm: f64,
    knots: Vec<f64>,
}

impl<D: Distribution> SurvivalWeighted<D> {
    /// Builds the posterior from a prior pfd belief and a count of
    /// failure-free demands.
    ///
    /// The prior is implicitly conditioned on `[0, 1]` (a pfd cannot
    /// exceed 1); priors like the log-normal that carry stray mass above
    /// 1 lose it here, exactly as the paper's renormalization intends.
    ///
    /// # Errors
    ///
    /// [`DistError::InvalidParameter`] if the prior has no mass on
    /// `[0, 1]`; numerical errors if normalization fails.
    pub fn new(prior: D, demands: u64) -> Result<Self> {
        let knots = prior_knots(&prior, 0.0, 1.0);
        let w = |p: f64| {
            if !(0.0..=1.0).contains(&p) {
                return 0.0;
            }
            prior.pdf(p) * ((demands as f64) * (-p).ln_1p()).exp()
        };
        let norm = integrate_knotted(&w, &knots, 0.0, 1.0);
        if !(norm > 0.0) || !norm.is_finite() {
            return Err(DistError::InvalidParameter(format!(
                "prior has no usable mass on [0, 1] after weighting with {demands} demands"
            )));
        }
        Ok(Self { prior, demands, norm, knots })
    }

    /// The prior belief.
    #[must_use]
    pub fn prior(&self) -> &D {
        &self.prior
    }

    /// Number of failure-free demands folded in.
    #[must_use]
    pub fn demands(&self) -> u64 {
        self.demands
    }

    /// The marginal likelihood of surviving the demands — the
    /// normalization constant `∫ f(p)(1−p)ⁿ dp`.
    #[must_use]
    pub fn survival_probability(&self) -> f64 {
        self.norm
    }

    fn weight(&self, p: f64) -> f64 {
        ((self.demands as f64) * (-p).ln_1p()).exp()
    }
}

impl<D: Distribution> Distribution for SurvivalWeighted<D> {
    fn support(&self) -> Support {
        let parent = self.prior.support();
        Support { lo: parent.lo.max(0.0), hi: parent.hi.min(1.0) }
    }

    fn pdf(&self, p: f64) -> f64 {
        if !(0.0..=1.0).contains(&p) {
            return 0.0;
        }
        self.prior.pdf(p) * self.weight(p) / self.norm
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        if x >= 1.0 {
            return 1.0;
        }
        let f = |p: f64| self.pdf(p);
        integrate_knotted(&f, &self.knots, 0.0, x).clamp(0.0, 1.0)
    }

    fn quantile(&self, p: f64) -> Result<f64> {
        if !(0.0..=1.0).contains(&p) {
            return Err(DistError::InvalidProbability(p));
        }
        if p == 0.0 {
            return Ok(self.support().lo);
        }
        if p == 1.0 {
            return Ok(self.support().hi);
        }
        let f = |x: f64| self.cdf(x) - p;
        Ok(brent(f, 0.0, 1.0, RootConfig { x_tol: 1e-14, f_tol: 1e-12, max_iter: 200 })?)
    }

    fn mean(&self) -> f64 {
        let f = |p: f64| p * self.pdf(p);
        integrate_knotted(&f, &self.knots, 0.0, 1.0)
    }

    fn variance(&self) -> f64 {
        let m = self.mean();
        let f = |p: f64| (p - m) * (p - m) * self.pdf(p);
        integrate_knotted(&f, &self.knots, 0.0, 1.0)
    }

    fn mode(&self) -> Option<f64> {
        knotted_mode(|p| self.pdf(p), &self.knots)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        // Exact rejection: the weight (1−p)ⁿ is a probability, so
        // accepting a prior draw p with probability (1−p)ⁿ yields the
        // posterior. Falls back to inverse-CDF if acceptance stalls.
        for _ in 0..100_000 {
            let p = self.prior.sample(rng);
            if !(0.0..=1.0).contains(&p) {
                continue;
            }
            if crate::sampler::open_unit(rng) < self.weight(p) {
                return p;
            }
        }
        let u = crate::sampler::open_unit(rng);
        self.quantile(u).unwrap_or(self.support().lo)
    }
}

/// Posterior belief about a failure *rate* after surviving operating time
/// `t` without failure: `f(λ | t) ∝ f(λ) e^{−λt}`.
///
/// # Examples
///
/// ```
/// use depcase_distributions::{Distribution, LogNormal, RateSurvivalWeighted};
///
/// // Judged dangerous-failure rate (per hour), then a year of failure-free
/// // operation:
/// let prior = LogNormal::from_mode_mean(3e-4, 1e-3)?;
/// let post = RateSurvivalWeighted::new(prior, 8760.0)?;
/// assert!(post.mean() < 1e-3);
/// # Ok::<(), depcase_distributions::DistError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RateSurvivalWeighted<D> {
    prior: D,
    time: f64,
    norm: f64,
    knots: Vec<f64>,
}

impl<D: Distribution> RateSurvivalWeighted<D> {
    /// Builds the posterior from a prior rate belief and a failure-free
    /// operating time `t ≥ 0` (in the rate's inverse units).
    ///
    /// # Errors
    ///
    /// [`DistError::InvalidParameter`] for negative/non-finite time or a
    /// prior without usable mass on `[0, ∞)`.
    pub fn new(prior: D, time: f64) -> Result<Self> {
        if !(time >= 0.0) || !time.is_finite() {
            return Err(DistError::InvalidParameter(format!(
                "operating time must be non-negative finite, got {time}"
            )));
        }
        let w = |l: f64| if l < 0.0 { 0.0 } else { prior.pdf(l) * (-l * time).exp() };
        // Knots from the prior's quantiles cover all the prior mass; the
        // weighted tail beyond the last knot is mopped up by an improper
        // integral.
        let last = prior.quantile(1.0 - 1e-9).unwrap_or(f64::INFINITY);
        let last = if last.is_finite() { last } else { 1e12 };
        let knots = prior_knots(&prior, 0.0, last);
        let norm = integrate_knotted(&w, &knots, 0.0, last)
            + integrate_to_infinity(w, last, QUAD_TOL).map(|r| r.value).unwrap_or(0.0);
        if !(norm > 0.0) || !norm.is_finite() {
            return Err(DistError::InvalidParameter(
                "prior has no usable mass on [0, ∞) after survival weighting".into(),
            ));
        }
        Ok(Self { prior, time, norm, knots })
    }

    /// The prior belief.
    #[must_use]
    pub fn prior(&self) -> &D {
        &self.prior
    }

    /// Failure-free operating time folded in.
    #[must_use]
    pub fn time(&self) -> f64 {
        self.time
    }

    /// The marginal survival probability `∫ f(λ) e^{−λt} dλ`.
    #[must_use]
    pub fn survival_probability(&self) -> f64 {
        self.norm
    }
}

impl<D: Distribution> Distribution for RateSurvivalWeighted<D> {
    fn support(&self) -> Support {
        let parent = self.prior.support();
        Support { lo: parent.lo.max(0.0), hi: parent.hi }
    }

    fn pdf(&self, l: f64) -> f64 {
        if l < 0.0 {
            return 0.0;
        }
        self.prior.pdf(l) * (-l * self.time).exp() / self.norm
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let f = |l: f64| self.pdf(l);
        let last = *self.knots.last().expect("knots nonempty");
        let mut acc = integrate_knotted(&f, &self.knots, 0.0, x.min(last));
        if x > last {
            acc += adaptive_simpson(f, last, x, QUAD_TOL).map(|r| r.value).unwrap_or(0.0);
        }
        acc.clamp(0.0, 1.0)
    }

    fn quantile(&self, p: f64) -> Result<f64> {
        if !(0.0..=1.0).contains(&p) {
            return Err(DistError::InvalidProbability(p));
        }
        if p == 0.0 {
            return Ok(0.0);
        }
        if p == 1.0 {
            return Ok(f64::INFINITY);
        }
        // The posterior is stochastically dominated by the prior
        // (survival weighting moves mass left), so the posterior
        // p-quantile is at most the prior p-quantile.
        let hi = self.prior.quantile(p)?.max(1e-300);
        let f = |x: f64| self.cdf(x) - p;
        Ok(brent(f, 0.0, hi * 1.0001, RootConfig { x_tol: 1e-15, f_tol: 1e-12, max_iter: 200 })?)
    }

    fn mean(&self) -> f64 {
        let f = |l: f64| l * self.pdf(l);
        let last = *self.knots.last().expect("knots nonempty");
        integrate_knotted(&f, &self.knots, 0.0, last)
            + integrate_to_infinity(f, last, QUAD_TOL).map(|r| r.value).unwrap_or(0.0)
    }

    fn variance(&self) -> f64 {
        let m = self.mean();
        let f = |l: f64| (l - m) * (l - m) * self.pdf(l);
        let last = *self.knots.last().expect("knots nonempty");
        integrate_knotted(&f, &self.knots, 0.0, last)
            + integrate_to_infinity(f, last, QUAD_TOL).map(|r| r.value).unwrap_or(0.0)
    }

    fn mode(&self) -> Option<f64> {
        knotted_mode(|l| self.pdf(l), &self.knots)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        for _ in 0..100_000 {
            let l = self.prior.sample(rng);
            if l < 0.0 {
                continue;
            }
            if crate::sampler::open_unit(rng) < (-l * self.time).exp() {
                return l;
            }
        }
        let u = crate::sampler::open_unit(rng);
        self.quantile(u).unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Beta, Distribution, Exponential, LogNormal, Uniform};
    use depcase_numerics::float::approx_eq;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_demands_is_identity_on_unit_priors() {
        let prior = Beta::new(2.0, 5.0).unwrap();
        let post = SurvivalWeighted::new(prior, 0).unwrap();
        for x in [0.1, 0.3, 0.7] {
            assert!(approx_eq(post.cdf(x), prior.cdf(x), 1e-7, 1e-8), "x = {x}");
        }
        assert!(approx_eq(post.survival_probability(), 1.0, 1e-9, 0.0));
    }

    #[test]
    fn conjugate_beta_agreement() {
        // Survival weighting a Beta(a,b) prior with n demands must equal
        // the conjugate Beta(a, b+n) posterior.
        let prior = Beta::new(1.5, 3.0).unwrap();
        let post = SurvivalWeighted::new(prior, 50).unwrap();
        let conj = Beta::new(1.5, 53.0).unwrap();
        for x in [1e-3, 0.01, 0.05, 0.2, 0.5] {
            assert!(
                approx_eq(post.cdf(x), conj.cdf(x), 1e-6, 1e-8),
                "x = {x}: {} vs {}",
                post.cdf(x),
                conj.cdf(x)
            );
        }
        assert!(approx_eq(post.mean(), conj.mean(), 1e-6, 1e-9));
    }

    #[test]
    fn survival_probability_uniform_prior() {
        // ∫₀¹ (1−p)ⁿ dp = 1/(n+1).
        let post = SurvivalWeighted::new(Uniform::unit(), 9).unwrap();
        assert!(approx_eq(post.survival_probability(), 0.1, 1e-8, 1e-10));
    }

    #[test]
    fn testing_cuts_the_tail_and_shrinks_the_mean() {
        // The paper's claim: "tests rapidly increase confidence and
        // reduce the mean".
        let prior = LogNormal::from_mode_mean(0.003, 0.01).unwrap();
        let prior_conf = prior.cdf(1e-2);
        let prior_mean = 0.01;
        let mut last_conf = prior_conf;
        let mut last_mean = prior_mean;
        for n in [10, 100, 1000] {
            let post = SurvivalWeighted::new(prior, n).unwrap();
            let conf = post.cdf(1e-2);
            let mean = post.mean();
            assert!(conf > last_conf, "n = {n}: conf {conf} <= {last_conf}");
            assert!(mean < last_mean, "n = {n}: mean {mean} >= {last_mean}");
            last_conf = conf;
            last_mean = mean;
        }
        assert!(last_conf > 0.95);
    }

    #[test]
    fn mode_shifts_left_with_testing() {
        let prior = LogNormal::from_mode_mean(0.003, 0.01).unwrap();
        let post = SurvivalWeighted::new(prior, 2000).unwrap();
        let m = post.mode().unwrap();
        assert!(m < 0.003, "mode = {m}");
        assert!(m > 0.0);
    }

    #[test]
    fn quantile_round_trip() {
        let prior = LogNormal::from_mode_mean(0.003, 0.01).unwrap();
        let post = SurvivalWeighted::new(prior, 100).unwrap();
        for p in [0.1, 0.5, 0.9, 0.99] {
            let x = post.quantile(p).unwrap();
            assert!(approx_eq(post.cdf(x), p, 1e-6, 1e-8), "p = {p}");
        }
        assert!(post.quantile(-0.1).is_err());
        assert_eq!(post.quantile(0.0).unwrap(), 0.0);
    }

    #[test]
    fn sampling_matches_posterior_mean() {
        let prior = Beta::new(2.0, 8.0).unwrap();
        let post = SurvivalWeighted::new(prior, 20).unwrap();
        let mut rng = StdRng::seed_from_u64(66);
        let acc: depcase_numerics::stats::Accumulator =
            post.sample_n(&mut rng, 30_000).into_iter().collect();
        assert!(
            (acc.mean() - post.mean()).abs() < 0.003,
            "mc = {}, numeric = {}",
            acc.mean(),
            post.mean()
        );
    }

    #[test]
    fn rate_version_conjugate_gamma_check() {
        // Exponential(rate r) prior is Gamma(1, 1/r); weighting by
        // e^{−λt} gives Gamma(1, 1/(r+t)), i.e. Exponential(r + t).
        let prior = Exponential::new(100.0).unwrap();
        let post = RateSurvivalWeighted::new(prior, 900.0).unwrap();
        let conj = Exponential::new(1000.0).unwrap();
        for x in [1e-4, 1e-3, 5e-3] {
            assert!(
                approx_eq(post.cdf(x), conj.cdf(x), 1e-5, 1e-7),
                "x = {x}: {} vs {}",
                post.cdf(x),
                conj.cdf(x)
            );
        }
        assert!(approx_eq(post.mean(), 1e-3, 1e-5, 1e-8));
    }

    #[test]
    fn rate_version_validation() {
        let prior = Exponential::new(1.0).unwrap();
        assert!(RateSurvivalWeighted::new(prior, -1.0).is_err());
        assert!(RateSurvivalWeighted::new(prior, f64::INFINITY).is_err());
    }

    #[test]
    fn rate_survival_probability_is_laplace_transform() {
        // For Exponential(r) prior: ∫ r e^{−rλ} e^{−λt} dλ = r/(r+t).
        let prior = Exponential::new(2.0).unwrap();
        let post = RateSurvivalWeighted::new(prior, 3.0).unwrap();
        assert!(approx_eq(post.survival_probability(), 0.4, 1e-7, 1e-9));
    }

    #[test]
    fn rate_quantile_round_trip() {
        let prior = LogNormal::from_mode_mean(3e-4, 1e-3).unwrap();
        let post = RateSurvivalWeighted::new(prior, 1000.0).unwrap();
        for p in [0.1, 0.5, 0.95] {
            let x = post.quantile(p).unwrap();
            assert!(approx_eq(post.cdf(x), p, 1e-5, 1e-7), "p = {p}");
        }
    }
}
