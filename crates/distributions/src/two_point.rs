//! The two-point worst-case belief distribution of the paper's
//! Section 3.4 (Figure 6b).
//!
//! When an expert will only state `P(pfd < y) = 1 − x`, the *most
//! conservative* belief consistent with that statement concentrates all
//! the mass of `[0, y)` at `y` and all the mass of `[y, 1]` at 1. Its
//! mean is exactly the paper's bound `(1 − x)·y + x = x + y − xy`.

use crate::error::{DistError, Result};
use crate::traits::{Distribution, Support};
use rand::Rng;
use rand::RngCore;

/// A two-atom distribution: mass `1 − doubt` at `claim` and mass `doubt`
/// at `worst`.
///
/// In the paper's construction `claim = y` (the claimed pfd bound),
/// `worst = 1` (certain failure) and `doubt = x`.
///
/// # Examples
///
/// ```
/// use depcase_distributions::{Distribution, TwoPoint};
///
/// // "pfd < 1e-4 with 99.91% confidence", conservatively:
/// let w = TwoPoint::worst_case(1e-4, 0.0009)?;
/// // Mean equals the paper's x + y − xy bound:
/// let (x, y) = (0.0009, 1e-4);
/// assert!((w.mean() - (x + y - x * y)).abs() < 1e-18);
/// # Ok::<(), depcase_distributions::DistError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoPoint {
    claim: f64,
    worst: f64,
    doubt: f64,
}

impl TwoPoint {
    /// Creates a general two-point law with mass `1 − doubt` at `claim`
    /// and `doubt` at `worst`.
    ///
    /// # Errors
    ///
    /// [`DistError::InvalidParameter`] unless `claim < worst`, both
    /// finite, and `doubt ∈ [0, 1]`.
    pub fn new(claim: f64, worst: f64, doubt: f64) -> Result<Self> {
        if !claim.is_finite() || !worst.is_finite() || !(claim < worst) {
            return Err(DistError::InvalidParameter(format!(
                "TwoPoint requires finite claim < worst; got claim = {claim}, worst = {worst}"
            )));
        }
        if !(0.0..=1.0).contains(&doubt) {
            return Err(DistError::InvalidParameter(format!(
                "doubt must be a probability, got {doubt}"
            )));
        }
        Ok(Self { claim, worst, doubt })
    }

    /// The paper's worst-case law on the pfd scale: mass `1 − doubt` at
    /// the claimed bound `y` and mass `doubt` at 1 (certain failure).
    ///
    /// # Errors
    ///
    /// [`DistError::InvalidParameter`] unless `0 ≤ y < 1` and
    /// `doubt ∈ [0, 1]`.
    pub fn worst_case(claim_bound: f64, doubt: f64) -> Result<Self> {
        if !(0.0..1.0).contains(&claim_bound) {
            return Err(DistError::InvalidParameter(format!(
                "a pfd claim bound must lie in [0, 1), got {claim_bound}"
            )));
        }
        Self::new(claim_bound, 1.0, doubt)
    }

    /// Location of the "claim holds" atom.
    #[must_use]
    pub fn claim(&self) -> f64 {
        self.claim
    }

    /// Location of the "claim fails" atom.
    #[must_use]
    pub fn worst(&self) -> f64 {
        self.worst
    }

    /// Probability mass on the "claim fails" atom.
    #[must_use]
    pub fn doubt(&self) -> f64 {
        self.doubt
    }
}

impl Distribution for TwoPoint {
    fn support(&self) -> Support {
        Support { lo: self.claim, hi: self.worst }
    }

    fn pdf(&self, x: f64) -> f64 {
        if (x == self.claim && self.doubt < 1.0) || (x == self.worst && self.doubt > 0.0) {
            f64::INFINITY
        } else {
            0.0
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < self.claim {
            0.0
        } else if x < self.worst {
            1.0 - self.doubt
        } else {
            1.0
        }
    }

    fn quantile(&self, p: f64) -> Result<f64> {
        if !(0.0..=1.0).contains(&p) {
            return Err(DistError::InvalidProbability(p));
        }
        if p <= 1.0 - self.doubt {
            Ok(self.claim)
        } else {
            Ok(self.worst)
        }
    }

    fn mean(&self) -> f64 {
        (1.0 - self.doubt) * self.claim + self.doubt * self.worst
    }

    fn variance(&self) -> f64 {
        let d = self.worst - self.claim;
        self.doubt * (1.0 - self.doubt) * d * d
    }

    fn mode(&self) -> Option<f64> {
        if self.doubt > 0.5 {
            Some(self.worst)
        } else if self.doubt < 0.5 {
            Some(self.claim)
        } else {
            None
        }
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        if rng.gen::<f64>() < self.doubt {
            self.worst
        } else {
            self.claim
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use depcase_numerics::float::approx_eq;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validation() {
        assert!(TwoPoint::new(1.0, 1.0, 0.5).is_err());
        assert!(TwoPoint::new(2.0, 1.0, 0.5).is_err());
        assert!(TwoPoint::new(0.0, 1.0, 1.5).is_err());
        assert!(TwoPoint::worst_case(1.0, 0.1).is_err());
        assert!(TwoPoint::worst_case(-0.1, 0.1).is_err());
    }

    #[test]
    fn mean_is_paper_bound() {
        // P(failure on random demand) ≤ x + y − xy, Eq. (5) in the paper.
        for &(y, x) in &[(1e-3, 0.0), (0.0, 1e-3), (1e-4, 9e-4), (0.01, 0.05)] {
            let w = TwoPoint::worst_case(y, x).unwrap();
            assert!(
                approx_eq(w.mean(), x + y - x * y, 1e-15, 1e-18),
                "y = {y}, x = {x}: mean = {}",
                w.mean()
            );
        }
    }

    #[test]
    fn example1_certain_claim() {
        // Paper Example 1: x* = 0, y* = 1e-3 — certain the pfd ≤ 1e-3.
        let w = TwoPoint::worst_case(1e-3, 0.0).unwrap();
        assert!(approx_eq(w.mean(), 1e-3, 1e-15, 0.0));
        assert_eq!(w.cdf(1e-3), 1.0);
    }

    #[test]
    fn example2_perfection_claim() {
        // Paper Example 2: x* = 1e-3, y* = 0 — 99.9% confident in a
        // perfect system; worst case is a 1e-3 chance of certain failure.
        let w = TwoPoint::worst_case(0.0, 1e-3).unwrap();
        assert!(approx_eq(w.mean(), 1e-3, 1e-15, 0.0));
    }

    #[test]
    fn cdf_steps() {
        let w = TwoPoint::worst_case(1e-3, 0.1).unwrap();
        assert_eq!(w.cdf(1e-4), 0.0);
        assert_eq!(w.cdf(1e-3), 0.9);
        assert_eq!(w.cdf(0.5), 0.9);
        assert_eq!(w.cdf(1.0), 1.0);
    }

    #[test]
    fn quantile_steps() {
        let w = TwoPoint::worst_case(1e-3, 0.1).unwrap();
        assert_eq!(w.quantile(0.5).unwrap(), 1e-3);
        assert_eq!(w.quantile(0.9).unwrap(), 1e-3);
        assert_eq!(w.quantile(0.95).unwrap(), 1.0);
        assert_eq!(w.quantile(1.0).unwrap(), 1.0);
    }

    #[test]
    fn mode_by_dominant_atom() {
        assert_eq!(TwoPoint::worst_case(0.1, 0.2).unwrap().mode(), Some(0.1));
        assert_eq!(TwoPoint::worst_case(0.1, 0.8).unwrap().mode(), Some(1.0));
        assert_eq!(TwoPoint::worst_case(0.1, 0.5).unwrap().mode(), None);
    }

    #[test]
    fn variance_bernoulli_scaled() {
        let w = TwoPoint::new(0.0, 1.0, 0.25).unwrap();
        assert!(approx_eq(w.variance(), 0.25 * 0.75, 1e-15, 0.0));
    }

    #[test]
    fn sampling_hits_both_atoms() {
        let w = TwoPoint::worst_case(1e-3, 0.3).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let xs = w.sample_n(&mut rng, 10_000);
        let ones = xs.iter().filter(|&&x| x == 1.0).count();
        assert!(xs.iter().all(|&x| x == 1.0 || x == 1e-3));
        let frac = ones as f64 / xs.len() as f64;
        assert!((frac - 0.3).abs() < 0.02, "frac = {frac}");
    }
}
