//! The triangular distribution.
//!
//! The standard "quick elicitation" shape: an expert states a minimum, a
//! most-likely value and a maximum. The elicitation simulator uses it for
//! experts who think in linear (not log) space.

use crate::error::{DistError, Result};
use crate::sampler::open_unit;
use crate::traits::{Distribution, Support};
use rand::RngCore;

/// A triangular distribution on `[lo, hi]` with mode `peak`.
///
/// # Examples
///
/// ```
/// use depcase_distributions::{Distribution, Triangular};
///
/// let t = Triangular::new(0.0, 1.0, 4.0)?;
/// assert_eq!(t.mode(), Some(1.0));
/// assert!((t.mean() - 5.0 / 3.0).abs() < 1e-14);
/// # Ok::<(), depcase_distributions::DistError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triangular {
    lo: f64,
    peak: f64,
    hi: f64,
}

impl Triangular {
    /// Creates a triangular distribution from `lo ≤ peak ≤ hi`,
    /// `lo < hi`.
    ///
    /// # Errors
    ///
    /// [`DistError::InvalidParameter`] if the ordering fails or any value
    /// is non-finite.
    pub fn new(lo: f64, peak: f64, hi: f64) -> Result<Self> {
        if !lo.is_finite() || !peak.is_finite() || !hi.is_finite() {
            return Err(DistError::InvalidParameter(format!(
                "Triangular requires finite parameters; got ({lo}, {peak}, {hi})"
            )));
        }
        if !(lo <= peak && peak <= hi && lo < hi) {
            return Err(DistError::InvalidParameter(format!(
                "Triangular requires lo <= peak <= hi and lo < hi; got ({lo}, {peak}, {hi})"
            )));
        }
        Ok(Self { lo, peak, hi })
    }

    /// Lower endpoint.
    #[must_use]
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Most-likely value.
    #[must_use]
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Upper endpoint.
    #[must_use]
    pub fn hi(&self) -> f64 {
        self.hi
    }
}

impl Distribution for Triangular {
    fn support(&self) -> Support {
        Support { lo: self.lo, hi: self.hi }
    }

    fn pdf(&self, x: f64) -> f64 {
        let (a, c, b) = (self.lo, self.peak, self.hi);
        if x < a || x > b {
            0.0
        } else if x < c {
            2.0 * (x - a) / ((b - a) * (c - a))
        } else if x == c {
            2.0 / (b - a)
        } else {
            2.0 * (b - x) / ((b - a) * (b - c))
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        let (a, c, b) = (self.lo, self.peak, self.hi);
        if x <= a {
            0.0
        } else if x < c {
            (x - a) * (x - a) / ((b - a) * (c - a))
        } else if x >= b {
            1.0
        } else {
            1.0 - (b - x) * (b - x) / ((b - a) * (b - c))
        }
    }

    fn quantile(&self, p: f64) -> Result<f64> {
        if !(0.0..=1.0).contains(&p) {
            return Err(DistError::InvalidProbability(p));
        }
        let (a, c, b) = (self.lo, self.peak, self.hi);
        let fc = if b == a { 0.0 } else { (c - a) / (b - a) };
        if p <= fc {
            Ok(a + (p * (b - a) * (c - a)).sqrt())
        } else {
            Ok(b - ((1.0 - p) * (b - a) * (b - c)).sqrt())
        }
    }

    fn mean(&self) -> f64 {
        (self.lo + self.peak + self.hi) / 3.0
    }

    fn variance(&self) -> f64 {
        let (a, c, b) = (self.lo, self.peak, self.hi);
        (a * a + b * b + c * c - a * b - a * c - b * c) / 18.0
    }

    fn mode(&self) -> Option<f64> {
        Some(self.peak)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        self.quantile(open_unit(rng)).expect("open_unit stays in (0,1)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use depcase_numerics::float::approx_eq;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validation() {
        assert!(Triangular::new(0.0, 2.0, 1.0).is_err());
        assert!(Triangular::new(1.0, 1.0, 1.0).is_err());
        assert!(Triangular::new(f64::NAN, 0.5, 1.0).is_err());
        assert!(Triangular::new(0.0, 0.0, 1.0).is_ok()); // peak at endpoint ok
    }

    #[test]
    fn density_integrates_to_one() {
        let t = Triangular::new(0.0, 1.0, 4.0).unwrap();
        let r =
            depcase_numerics::integrate::adaptive_simpson(|x| t.pdf(x), 0.0, 4.0, 1e-10).unwrap();
        assert!(approx_eq(r.value, 1.0, 1e-8, 1e-8));
    }

    #[test]
    fn cdf_quantile_round_trip() {
        let t = Triangular::new(-1.0, 0.5, 2.0).unwrap();
        for p in [0.0, 0.1, 0.4, 0.5, 0.8, 1.0] {
            let x = t.quantile(p).unwrap();
            assert!(approx_eq(t.cdf(x), p, 1e-12, 1e-13), "p = {p}");
        }
    }

    #[test]
    fn peak_at_endpoint_degenerate_sides() {
        let t = Triangular::new(0.0, 0.0, 1.0).unwrap();
        assert!(approx_eq(t.cdf(0.5), 0.75, 1e-13, 0.0));
        let q = t.quantile(0.75).unwrap();
        assert!(approx_eq(q, 0.5, 1e-12, 0.0));
    }

    #[test]
    fn moments() {
        let t = Triangular::new(0.0, 1.0, 4.0).unwrap();
        assert!(approx_eq(t.mean(), 5.0 / 3.0, 1e-14, 0.0));
        let want_var = (0.0 + 16.0 + 1.0 - 0.0 - 0.0 - 4.0) / 18.0;
        assert!(approx_eq(t.variance(), want_var, 1e-14, 0.0));
    }

    #[test]
    fn sampling_moments() {
        let t = Triangular::new(0.0, 1.0, 4.0).unwrap();
        let mut rng = StdRng::seed_from_u64(31);
        let acc: depcase_numerics::stats::Accumulator =
            t.sample_n(&mut rng, 40_000).into_iter().collect();
        assert!((acc.mean() - 5.0 / 3.0).abs() < 0.02);
        assert!(acc.min() >= 0.0 && acc.max() <= 4.0);
    }
}
