//! The [`Distribution`] trait and its support descriptor.

use crate::error::Result;
use rand::RngCore;

/// The (closed) support of a univariate distribution.
///
/// Endpoints may be infinite. Atoms at the endpoints are allowed (e.g.
/// the worst-case [`crate::TwoPoint`] law has all its mass on the two
/// endpoints).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Support {
    /// Smallest value in the support (may be `−∞`).
    pub lo: f64,
    /// Largest value in the support (may be `+∞`).
    pub hi: f64,
}

impl Support {
    /// The non-negative half line `[0, ∞)` — failure rates live here.
    #[must_use]
    pub fn non_negative() -> Self {
        Self { lo: 0.0, hi: f64::INFINITY }
    }

    /// The closed unit interval `[0, 1]` — probabilities of failure on
    /// demand live here.
    #[must_use]
    pub fn unit_interval() -> Self {
        Self { lo: 0.0, hi: 1.0 }
    }

    /// The whole real line.
    #[must_use]
    pub fn real_line() -> Self {
        Self { lo: f64::NEG_INFINITY, hi: f64::INFINITY }
    }

    /// Returns `true` when `x` lies inside the support (inclusive).
    #[must_use]
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo && x <= self.hi
    }

    /// Width of the support (`∞` for unbounded supports).
    #[must_use]
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

/// A univariate belief distribution.
///
/// The trait is object-safe: heterogeneous collections of beliefs (an
/// atom of "perfection" probability at zero plus a continuous body, as in
/// the paper's Section 3.4 footnote) are represented as
/// `Mixture` over `Box<dyn Distribution>` components.
///
/// Semantics follow the usual measure-theoretic conventions:
///
/// - [`Distribution::cdf`] is right-continuous: `cdf(x) = P(X ≤ x)`;
/// - [`Distribution::pdf`] is a density w.r.t. Lebesgue measure where one
///   exists; at an atom the density is reported as `+∞`;
/// - [`Distribution::quantile`] returns the generalized inverse
///   `inf { x : cdf(x) ≥ p }`.
pub trait Distribution: std::fmt::Debug + Send + Sync {
    /// The support of the distribution.
    fn support(&self) -> Support;

    /// Probability density at `x` (zero outside the support, `+∞` at an
    /// atom).
    fn pdf(&self, x: f64) -> f64;

    /// Natural log of [`Distribution::pdf`]; `−∞` where the density is 0.
    fn ln_pdf(&self, x: f64) -> f64 {
        self.pdf(x).ln()
    }

    /// Cumulative distribution function `P(X ≤ x)`.
    fn cdf(&self, x: f64) -> f64;

    /// Survival function `P(X > x)`.
    ///
    /// The default computes `1 − cdf(x)`; heavy-tailed implementations
    /// override it to keep relative precision in the far tail.
    fn sf(&self, x: f64) -> f64 {
        (1.0 - self.cdf(x)).max(0.0)
    }

    /// Quantile function: the generalized inverse CDF at level `p`.
    ///
    /// # Errors
    ///
    /// Returns an error when `p ∉ [0, 1]` or the inversion fails to
    /// converge.
    fn quantile(&self, p: f64) -> Result<f64>;

    /// Mean of the distribution.
    fn mean(&self) -> f64;

    /// Variance of the distribution.
    fn variance(&self) -> f64;

    /// Standard deviation.
    fn std(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Mode (a global maximizer of the density), when one is defined.
    fn mode(&self) -> Option<f64> {
        None
    }

    /// Draws one sample using the supplied RNG.
    fn sample(&self, rng: &mut dyn RngCore) -> f64;

    /// Draws `n` samples into a fresh vector.
    fn sample_n(&self, rng: &mut dyn RngCore, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// Probability mass assigned to the interval `(lo, hi]`.
    ///
    /// This is the quantity the paper integrates to get SIL-band
    /// membership probabilities.
    fn interval_prob(&self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return 0.0;
        }
        (self.cdf(hi) - self.cdf(lo)).clamp(0.0, 1.0)
    }

    /// Evaluates the CDF at every point of `xs` — the batched entry
    /// point parameter sweeps drive, amortizing dynamic dispatch over
    /// the whole grid.
    fn cdf_many(&self, xs: &[f64]) -> Vec<f64> {
        xs.iter().map(|&x| self.cdf(x)).collect()
    }

    /// Evaluates the survival function at every point of `xs`.
    fn sf_many(&self, xs: &[f64]) -> Vec<f64> {
        xs.iter().map(|&x| self.sf(x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn support_constructors() {
        let nn = Support::non_negative();
        assert_eq!(nn.lo, 0.0);
        assert_eq!(nn.hi, f64::INFINITY);
        let ui = Support::unit_interval();
        assert_eq!((ui.lo, ui.hi), (0.0, 1.0));
        let rl = Support::real_line();
        assert_eq!(rl.lo, f64::NEG_INFINITY);
    }

    #[test]
    fn support_contains_inclusive() {
        let ui = Support::unit_interval();
        assert!(ui.contains(0.0));
        assert!(ui.contains(1.0));
        assert!(ui.contains(0.5));
        assert!(!ui.contains(-0.001));
        assert!(!ui.contains(1.001));
    }

    #[test]
    fn support_width() {
        assert_eq!(Support::unit_interval().width(), 1.0);
        assert_eq!(Support::non_negative().width(), f64::INFINITY);
    }

    #[test]
    fn distribution_is_object_safe() {
        fn _takes_dyn(_: &dyn Distribution) {}
    }

    /// Uniform(0, 1): just enough to exercise the default methods.
    #[derive(Debug)]
    struct Unit;

    impl Distribution for Unit {
        fn support(&self) -> Support {
            Support::unit_interval()
        }
        fn pdf(&self, x: f64) -> f64 {
            f64::from(u8::from((0.0..=1.0).contains(&x)))
        }
        fn cdf(&self, x: f64) -> f64 {
            x.clamp(0.0, 1.0)
        }
        fn quantile(&self, p: f64) -> crate::error::Result<f64> {
            Ok(p)
        }
        fn mean(&self) -> f64 {
            0.5
        }
        fn variance(&self) -> f64 {
            1.0 / 12.0
        }
        fn sample(&self, rng: &mut dyn RngCore) -> f64 {
            rand::Rng::gen::<f64>(rng)
        }
    }

    #[test]
    fn cdf_many_matches_pointwise_cdf() {
        let d = Unit;
        let xs = [-0.5, 0.0, 0.25, 0.75, 1.0, 2.0];
        let batch = d.cdf_many(&xs);
        assert_eq!(batch.len(), xs.len());
        for (&x, &c) in xs.iter().zip(&batch) {
            assert_eq!(c, d.cdf(x));
        }
        let sf = d.sf_many(&xs);
        for (&x, &s) in xs.iter().zip(&sf) {
            assert_eq!(s, d.sf(x));
        }
        // Works through a trait object too.
        let dynd: &dyn Distribution = &d;
        assert_eq!(dynd.cdf_many(&xs), batch);
    }
}
