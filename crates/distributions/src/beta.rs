//! The beta distribution — conjugate posterior for pfd under demand-based
//! testing evidence.
//!
//! The "tail cut-off" strategy of the paper's Section 4.1 has an exact
//! conjugate counterpart: if the prior belief about a pfd is Beta(a, b)
//! and `n` further demands are survived without failure, the posterior is
//! Beta(a, b + n). [`Beta::update_failure_free`] implements exactly that.

use crate::error::{DistError, Result};
use crate::sampler::standard_beta;
use crate::traits::{Distribution, Support};
use depcase_numerics::special::{inv_reg_inc_beta, ln_beta, reg_inc_beta};
use rand::RngCore;

/// A beta distribution on `[0, 1]` with shape parameters `a`, `b`.
///
/// # Examples
///
/// ```
/// use depcase_distributions::{Beta, Distribution};
///
/// // Uniform prior on the pfd, then 4602 failure-free demands:
/// let prior = Beta::new(1.0, 1.0)?;
/// let post = prior.update_failure_free(4602);
/// // P(pfd < 1e-3) is now about 99%:
/// assert!((post.cdf(1e-3) - 0.99).abs() < 0.002);
/// # Ok::<(), depcase_distributions::DistError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Beta {
    a: f64,
    b: f64,
}

impl Beta {
    /// Creates a beta distribution.
    ///
    /// # Errors
    ///
    /// [`DistError::InvalidParameter`] unless both shapes are positive
    /// finite.
    pub fn new(a: f64, b: f64) -> Result<Self> {
        if !(a > 0.0) || !a.is_finite() || !(b > 0.0) || !b.is_finite() {
            return Err(DistError::InvalidParameter(format!(
                "Beta requires a > 0 and b > 0; got a = {a}, b = {b}"
            )));
        }
        Ok(Self { a, b })
    }

    /// The uniform distribution on `[0, 1]` (`Beta(1, 1)`) — the
    /// "know nothing" prior about a pfd.
    #[must_use]
    pub fn uniform_prior() -> Self {
        Self { a: 1.0, b: 1.0 }
    }

    /// The Jeffreys prior `Beta(1/2, 1/2)`.
    #[must_use]
    pub fn jeffreys_prior() -> Self {
        Self { a: 0.5, b: 0.5 }
    }

    /// First shape parameter.
    #[must_use]
    pub fn a(&self) -> f64 {
        self.a
    }

    /// Second shape parameter.
    #[must_use]
    pub fn b(&self) -> f64 {
        self.b
    }

    /// Posterior after observing `n` failure-free demands: Beta(a, b + n).
    ///
    /// This is the conjugate shortcut for the survival weighting
    /// `f(p) · (1−p)ⁿ` of the paper's Section 4.1 — benchmarked against
    /// the numeric route as an ablation.
    #[must_use]
    pub fn update_failure_free(&self, n: u64) -> Self {
        Self { a: self.a, b: self.b + n as f64 }
    }

    /// Posterior after observing `failures` failures in `demands` demands:
    /// Beta(a + failures, b + demands − failures).
    ///
    /// # Errors
    ///
    /// [`DistError::InvalidParameter`] if `failures > demands`.
    pub fn update_demands(&self, demands: u64, failures: u64) -> Result<Self> {
        if failures > demands {
            return Err(DistError::InvalidParameter(format!(
                "failures ({failures}) cannot exceed demands ({demands})"
            )));
        }
        Ok(Self { a: self.a + failures as f64, b: self.b + (demands - failures) as f64 })
    }
}

impl Distribution for Beta {
    fn support(&self) -> Support {
        Support::unit_interval()
    }

    fn pdf(&self, x: f64) -> f64 {
        if !(0.0..=1.0).contains(&x) {
            return 0.0;
        }
        if x == 0.0 {
            return match self.a.partial_cmp(&1.0).expect("finite shape") {
                std::cmp::Ordering::Less => f64::INFINITY,
                std::cmp::Ordering::Equal => self.b,
                std::cmp::Ordering::Greater => 0.0,
            };
        }
        if x == 1.0 {
            return match self.b.partial_cmp(&1.0).expect("finite shape") {
                std::cmp::Ordering::Less => f64::INFINITY,
                std::cmp::Ordering::Equal => self.a,
                std::cmp::Ordering::Greater => 0.0,
            };
        }
        self.ln_pdf(x).exp()
    }

    fn ln_pdf(&self, x: f64) -> f64 {
        if !(0.0 < x && x < 1.0) {
            return self.pdf(x).ln();
        }
        (self.a - 1.0) * x.ln() + (self.b - 1.0) * (-x).ln_1p() - ln_beta(self.a, self.b)
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        if x >= 1.0 {
            return 1.0;
        }
        reg_inc_beta(self.a, self.b, x).unwrap_or(f64::NAN)
    }

    fn sf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 1.0;
        }
        if x >= 1.0 {
            return 0.0;
        }
        // Symmetry keeps tail precision: 1 − I_x(a,b) = I_{1−x}(b,a).
        reg_inc_beta(self.b, self.a, 1.0 - x).unwrap_or(f64::NAN)
    }

    fn quantile(&self, p: f64) -> Result<f64> {
        if !(0.0..=1.0).contains(&p) {
            return Err(DistError::InvalidProbability(p));
        }
        Ok(inv_reg_inc_beta(self.a, self.b, p)?)
    }

    fn mean(&self) -> f64 {
        self.a / (self.a + self.b)
    }

    fn variance(&self) -> f64 {
        let s = self.a + self.b;
        self.a * self.b / (s * s * (s + 1.0))
    }

    fn mode(&self) -> Option<f64> {
        if self.a > 1.0 && self.b > 1.0 {
            Some((self.a - 1.0) / (self.a + self.b - 2.0))
        } else if self.a <= 1.0 && self.b > 1.0 {
            Some(0.0)
        } else if self.a > 1.0 && self.b <= 1.0 {
            Some(1.0)
        } else {
            None // bimodal (a < 1, b < 1) or flat (a = b = 1)
        }
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        standard_beta(rng, self.a, self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use depcase_numerics::float::approx_eq;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validation() {
        assert!(Beta::new(0.0, 1.0).is_err());
        assert!(Beta::new(1.0, -1.0).is_err());
        assert!(Beta::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn uniform_prior_is_flat() {
        let u = Beta::uniform_prior();
        assert!(approx_eq(u.pdf(0.3), 1.0, 1e-13, 0.0));
        assert!(approx_eq(u.cdf(0.3), 0.3, 1e-13, 0.0));
        assert_eq!(u.mode(), None);
    }

    #[test]
    fn jeffreys_is_bimodal() {
        let j = Beta::jeffreys_prior();
        assert_eq!(j.mode(), None);
        assert_eq!(j.pdf(0.0), f64::INFINITY);
        assert_eq!(j.pdf(1.0), f64::INFINITY);
    }

    #[test]
    fn moments() {
        let b = Beta::new(2.0, 5.0).unwrap();
        assert!(approx_eq(b.mean(), 2.0 / 7.0, 1e-14, 0.0));
        assert!(approx_eq(b.variance(), 10.0 / (49.0 * 8.0), 1e-14, 0.0));
        assert!(approx_eq(b.mode().unwrap(), 0.2, 1e-14, 0.0));
    }

    #[test]
    fn edge_modes() {
        assert_eq!(Beta::new(1.0, 3.0).unwrap().mode(), Some(0.0));
        assert_eq!(Beta::new(3.0, 1.0).unwrap().mode(), Some(1.0));
    }

    #[test]
    fn cdf_quantile_round_trip() {
        let b = Beta::new(1.0, 4602.0).unwrap();
        for p in [0.01, 0.5, 0.9, 0.99] {
            let x = b.quantile(p).unwrap();
            assert!(approx_eq(b.cdf(x), p, 1e-7, 1e-9), "p = {p}");
        }
    }

    #[test]
    fn failure_free_update_closed_form() {
        // With Beta(1,1) prior and n failure-free demands,
        // P(pfd ≤ y) = 1 − (1−y)^{n+1}.
        let post = Beta::uniform_prior().update_failure_free(1000);
        let y = 1e-3_f64;
        let want = 1.0 - (1.0 - y).powi(1001);
        assert!(approx_eq(post.cdf(y), want, 1e-10, 1e-12));
    }

    #[test]
    fn failure_free_update_shrinks_mean() {
        let prior = Beta::uniform_prior();
        let post = prior.update_failure_free(100);
        assert!(post.mean() < prior.mean());
        assert!(approx_eq(post.mean(), 1.0 / 102.0, 1e-13, 0.0));
    }

    #[test]
    fn update_demands_with_failures() {
        let post = Beta::uniform_prior().update_demands(10, 2).unwrap();
        assert_eq!((post.a(), post.b()), (3.0, 9.0));
        assert!(Beta::uniform_prior().update_demands(5, 6).is_err());
    }

    #[test]
    fn sf_keeps_tail_precision() {
        let b = Beta::new(1.0, 1e6).unwrap();
        // P(pfd > 2e-5) = (1 − 2e-5)^{1e6} ≈ e^{-20}
        let got = b.sf(2e-5);
        let want = (1.0_f64 - 2e-5).powf(1e6);
        assert!(approx_eq(got, want, 1e-6, 0.0), "got {got:e}, want {want:e}");
    }

    #[test]
    fn pdf_outside_support_is_zero() {
        let b = Beta::new(2.0, 2.0).unwrap();
        assert_eq!(b.pdf(-0.1), 0.0);
        assert_eq!(b.pdf(1.1), 0.0);
        assert_eq!(b.cdf(-0.1), 0.0);
        assert_eq!(b.cdf(1.1), 1.0);
    }

    #[test]
    fn pdf_endpoint_conventions() {
        assert_eq!(Beta::new(0.5, 2.0).unwrap().pdf(0.0), f64::INFINITY);
        assert!(approx_eq(Beta::new(1.0, 2.0).unwrap().pdf(0.0), 2.0, 1e-13, 0.0));
        assert_eq!(Beta::new(2.0, 2.0).unwrap().pdf(0.0), 0.0);
        assert_eq!(Beta::new(2.0, 0.5).unwrap().pdf(1.0), f64::INFINITY);
        assert!(approx_eq(Beta::new(2.0, 1.0).unwrap().pdf(1.0), 2.0, 1e-13, 0.0));
    }

    #[test]
    fn sampling_moments() {
        let b = Beta::new(3.0, 7.0).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let acc: depcase_numerics::stats::Accumulator =
            b.sample_n(&mut rng, 40_000).into_iter().collect();
        assert!((acc.mean() - 0.3).abs() < 0.005);
        assert!((acc.sample_variance() - b.variance()).abs() < 0.002);
    }
}
