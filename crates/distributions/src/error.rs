//! Error type for distribution construction and evaluation.

use depcase_numerics::NumericsError;
use std::fmt;

/// Error produced by distribution constructors and fallible queries.
#[derive(Debug, Clone, PartialEq)]
pub enum DistError {
    /// A constructor argument was invalid (non-positive scale, probability
    /// outside the unit interval, …).
    InvalidParameter(String),
    /// A quantile was requested outside `[0, 1]`.
    InvalidProbability(f64),
    /// An underlying numerical routine failed.
    Numerics(NumericsError),
    /// The requested construction is infeasible (e.g. no spread satisfies
    /// the stated mode/confidence pair).
    Infeasible(String),
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            DistError::InvalidProbability(p) => {
                write!(f, "probability level {p} outside [0, 1]")
            }
            DistError::Numerics(e) => write!(f, "numerical failure: {e}"),
            DistError::Infeasible(msg) => write!(f, "infeasible construction: {msg}"),
        }
    }
}

impl std::error::Error for DistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DistError::Numerics(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NumericsError> for DistError {
    fn from(e: NumericsError) -> Self {
        DistError::Numerics(e)
    }
}

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, DistError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(DistError::InvalidParameter("sigma".into()).to_string().contains("sigma"));
        assert!(DistError::InvalidProbability(1.5).to_string().contains("1.5"));
        assert!(DistError::Infeasible("no sigma".into()).to_string().contains("no sigma"));
    }

    #[test]
    fn from_numerics_preserves_source() {
        use std::error::Error;
        let e: DistError = NumericsError::Domain("x".into()).into();
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DistError>();
    }
}
