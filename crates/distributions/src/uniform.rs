//! The continuous uniform distribution.

use crate::error::{DistError, Result};
use crate::traits::{Distribution, Support};
use rand::Rng;
use rand::RngCore;

/// A uniform distribution on `[lo, hi]`.
///
/// # Examples
///
/// ```
/// use depcase_distributions::{Distribution, Uniform};
///
/// let u = Uniform::new(0.0, 4.0)?;
/// assert_eq!(u.mean(), 2.0);
/// assert_eq!(u.cdf(1.0), 0.25);
/// # Ok::<(), depcase_distributions::DistError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates a uniform distribution on `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// [`DistError::InvalidParameter`] unless `lo < hi` and both finite.
    pub fn new(lo: f64, hi: f64) -> Result<Self> {
        if !lo.is_finite() || !hi.is_finite() || !(lo < hi) {
            return Err(DistError::InvalidParameter(format!(
                "Uniform requires finite lo < hi; got [{lo}, {hi}]"
            )));
        }
        Ok(Self { lo, hi })
    }

    /// The standard uniform on `[0, 1]`.
    #[must_use]
    pub fn unit() -> Self {
        Self { lo: 0.0, hi: 1.0 }
    }

    /// Lower endpoint.
    #[must_use]
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper endpoint.
    #[must_use]
    pub fn hi(&self) -> f64 {
        self.hi
    }
}

impl Distribution for Uniform {
    fn support(&self) -> Support {
        Support { lo: self.lo, hi: self.hi }
    }

    fn pdf(&self, x: f64) -> f64 {
        if x < self.lo || x > self.hi {
            0.0
        } else {
            1.0 / (self.hi - self.lo)
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= self.lo {
            0.0
        } else if x >= self.hi {
            1.0
        } else {
            (x - self.lo) / (self.hi - self.lo)
        }
    }

    fn quantile(&self, p: f64) -> Result<f64> {
        if !(0.0..=1.0).contains(&p) {
            return Err(DistError::InvalidProbability(p));
        }
        Ok(self.lo + p * (self.hi - self.lo))
    }

    fn mean(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    fn variance(&self) -> f64 {
        let w = self.hi - self.lo;
        w * w / 12.0
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        self.lo + (self.hi - self.lo) * rng.gen::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use depcase_numerics::float::approx_eq;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validation() {
        assert!(Uniform::new(1.0, 1.0).is_err());
        assert!(Uniform::new(2.0, 1.0).is_err());
        assert!(Uniform::new(f64::NEG_INFINITY, 0.0).is_err());
    }

    #[test]
    fn density_and_cdf() {
        let u = Uniform::new(-1.0, 3.0).unwrap();
        assert_eq!(u.pdf(0.0), 0.25);
        assert_eq!(u.pdf(-2.0), 0.0);
        assert_eq!(u.pdf(4.0), 0.0);
        assert!(approx_eq(u.cdf(1.0), 0.5, 1e-15, 0.0));
    }

    #[test]
    fn quantile_round_trip() {
        let u = Uniform::unit();
        for p in [0.0, 0.2, 0.5, 1.0] {
            assert!(approx_eq(u.cdf(u.quantile(p).unwrap()), p, 1e-14, 1e-14));
        }
        assert!(u.quantile(1.5).is_err());
    }

    #[test]
    fn moments() {
        let u = Uniform::new(2.0, 8.0).unwrap();
        assert_eq!(u.mean(), 5.0);
        assert!(approx_eq(u.variance(), 3.0, 1e-14, 0.0));
        assert_eq!(u.mode(), None); // no unique mode
    }

    #[test]
    fn sampling_in_range() {
        let u = Uniform::new(5.0, 6.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for x in u.sample_n(&mut rng, 1000) {
            assert!((5.0..=6.0).contains(&x));
        }
    }
}
