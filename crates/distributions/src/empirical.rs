//! Empirical distributions built from samples.
//!
//! The elicitation experiment (paper Section 3.3) produces per-expert pfd
//! judgements; pooling them yields an empirical belief distribution whose
//! quantiles and band probabilities feed the same SIL machinery as the
//! parametric families.

use crate::error::{DistError, Result};
use crate::traits::{Distribution, Support};
use depcase_numerics::stats::Ecdf;
use rand::Rng;
use rand::RngCore;

/// The empirical distribution of a finite sample.
///
/// The CDF is the usual step function; quantiles interpolate linearly
/// between order statistics (type-7); sampling draws uniformly from the
/// stored observations (the bootstrap distribution).
///
/// # Examples
///
/// ```
/// use depcase_distributions::{Distribution, Empirical};
///
/// let judged = Empirical::new(vec![1e-3, 3e-3, 1e-2, 3e-3])?;
/// assert_eq!(judged.cdf(3e-3), 0.75);
/// assert!((judged.mean() - 4.25e-3).abs() < 1e-12);
/// # Ok::<(), depcase_distributions::DistError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Empirical {
    ecdf: Ecdf,
    mean: f64,
    variance: f64,
}

impl Empirical {
    /// Builds the empirical distribution of `samples`.
    ///
    /// # Errors
    ///
    /// [`DistError::InvalidParameter`] for an empty or non-finite sample.
    pub fn new(samples: Vec<f64>) -> Result<Self> {
        if samples.is_empty() {
            return Err(DistError::InvalidParameter("empirical sample must be non-empty".into()));
        }
        if samples.iter().any(|v| !v.is_finite()) {
            return Err(DistError::InvalidParameter("empirical sample must be finite".into()));
        }
        let acc: depcase_numerics::stats::Accumulator = samples.iter().copied().collect();
        let ecdf = Ecdf::new(samples).map_err(DistError::Numerics)?;
        Ok(Self { ecdf, mean: acc.mean(), variance: acc.sample_variance() })
    }

    /// Number of underlying observations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ecdf.len()
    }

    /// Always `false`; construction rejects empty samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The sorted underlying observations.
    #[must_use]
    pub fn samples(&self) -> &[f64] {
        self.ecdf.samples()
    }
}

impl Distribution for Empirical {
    fn support(&self) -> Support {
        let s = self.ecdf.samples();
        Support { lo: s[0], hi: *s.last().expect("nonempty") }
    }

    fn pdf(&self, x: f64) -> f64 {
        // Purely atomic: infinite density on observed points.
        if self.ecdf.samples().binary_search_by(|v| v.partial_cmp(&x).expect("finite")).is_ok() {
            f64::INFINITY
        } else {
            0.0
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        self.ecdf.eval(x)
    }

    fn quantile(&self, p: f64) -> Result<f64> {
        if !(0.0..=1.0).contains(&p) {
            return Err(DistError::InvalidProbability(p));
        }
        Ok(depcase_numerics::stats::quantile(self.ecdf.samples(), p)?)
    }

    fn mean(&self) -> f64 {
        self.mean
    }

    fn variance(&self) -> f64 {
        self.variance
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        let s = self.ecdf.samples();
        s[rng.gen_range(0..s.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use depcase_numerics::float::approx_eq;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validation() {
        assert!(Empirical::new(vec![]).is_err());
        assert!(Empirical::new(vec![1.0, f64::NAN]).is_err());
        assert!(Empirical::new(vec![1.0, f64::INFINITY]).is_err());
    }

    #[test]
    fn cdf_steps() {
        let e = Empirical::new(vec![1.0, 2.0, 2.0, 4.0]).unwrap();
        assert_eq!(e.cdf(0.5), 0.0);
        assert_eq!(e.cdf(1.0), 0.25);
        assert_eq!(e.cdf(2.0), 0.75);
        assert_eq!(e.cdf(4.0), 1.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let e = Empirical::new(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(e.quantile(0.5).unwrap(), 2.5);
        assert_eq!(e.quantile(0.0).unwrap(), 1.0);
        assert_eq!(e.quantile(1.0).unwrap(), 4.0);
        assert!(e.quantile(1.5).is_err());
    }

    #[test]
    fn moments_match_sample() {
        let e = Empirical::new(vec![2.0, 4.0, 6.0]).unwrap();
        assert!(approx_eq(e.mean(), 4.0, 1e-15, 0.0));
        assert!(approx_eq(e.variance(), 4.0, 1e-13, 0.0));
    }

    #[test]
    fn pdf_is_atomic() {
        let e = Empirical::new(vec![1.0, 3.0]).unwrap();
        assert_eq!(e.pdf(1.0), f64::INFINITY);
        assert_eq!(e.pdf(2.0), 0.0);
    }

    #[test]
    fn support_spans_sample() {
        let e = Empirical::new(vec![5.0, -1.0, 3.0]).unwrap();
        let s = e.support();
        assert_eq!((s.lo, s.hi), (-1.0, 5.0));
    }

    #[test]
    fn bootstrap_sampling() {
        let e = Empirical::new(vec![1.0, 2.0, 3.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        let xs = e.sample_n(&mut rng, 3000);
        assert!(xs.iter().all(|x| [1.0, 2.0, 3.0].contains(x)));
        let ones = xs.iter().filter(|&&x| x == 1.0).count() as f64 / 3000.0;
        assert!((ones - 1.0 / 3.0).abs() < 0.05);
    }
}
