//! Finite mixtures of heterogeneous components.
//!
//! The paper's Section 3.4 footnote — an expert holding probability `p₀`
//! that the system is *perfect* (pfd exactly 0) alongside a continuous
//! belief about the imperfect case — is a two-component [`Mixture`]: a
//! [`crate::PointMass`] at 0 and a continuous body.

use crate::error::{DistError, Result};
use crate::traits::{Distribution, Support};
use rand::Rng;
use rand::RngCore;

/// One weighted component of a [`Mixture`].
#[derive(Debug)]
pub struct Component {
    /// Mixing weight (weights are normalized at construction).
    pub weight: f64,
    /// The component distribution.
    pub dist: Box<dyn Distribution>,
}

impl Component {
    /// Creates a component from a weight and any distribution.
    pub fn new(weight: f64, dist: impl Distribution + 'static) -> Self {
        Self { weight, dist: Box::new(dist) }
    }
}

/// A finite mixture distribution over boxed components.
///
/// # Examples
///
/// The perfection-probability belief from the paper's footnote 3:
///
/// ```
/// use depcase_distributions::{Component, Distribution, LogNormal, Mixture, PointMass};
///
/// let p0 = 0.2; // probability the system is perfect
/// let body = LogNormal::from_mode_sigma(1e-4, 1.0)?;
/// let belief = Mixture::new(vec![
///     Component::new(p0, PointMass::new(0.0)?),
///     Component::new(1.0 - p0, body),
/// ])?;
/// // The atom contributes to the CDF at zero:
/// assert!((belief.cdf(0.0) - 0.2).abs() < 1e-12);
/// # Ok::<(), depcase_distributions::DistError>(())
/// ```
#[derive(Debug)]
pub struct Mixture {
    components: Vec<Component>,
}

impl Mixture {
    /// Creates a mixture, normalizing the weights to sum to 1.
    ///
    /// # Errors
    ///
    /// [`DistError::InvalidParameter`] if no components are given, any
    /// weight is negative/non-finite, or all weights are zero.
    pub fn new(mut components: Vec<Component>) -> Result<Self> {
        if components.is_empty() {
            return Err(DistError::InvalidParameter("mixture needs at least one component".into()));
        }
        let total: f64 = components.iter().map(|c| c.weight).sum();
        if components.iter().any(|c| !(c.weight >= 0.0) || !c.weight.is_finite()) {
            return Err(DistError::InvalidParameter(
                "mixture weights must be non-negative and finite".into(),
            ));
        }
        if !(total > 0.0) {
            return Err(DistError::InvalidParameter("mixture weights sum to zero".into()));
        }
        for c in &mut components {
            c.weight /= total;
        }
        Ok(Self { components })
    }

    /// The normalized components.
    #[must_use]
    pub fn components(&self) -> &[Component] {
        &self.components
    }
}

impl Distribution for Mixture {
    fn support(&self) -> Support {
        let lo = self.components.iter().map(|c| c.dist.support().lo).fold(f64::INFINITY, f64::min);
        let hi =
            self.components.iter().map(|c| c.dist.support().hi).fold(f64::NEG_INFINITY, f64::max);
        Support { lo, hi }
    }

    fn pdf(&self, x: f64) -> f64 {
        self.components.iter().map(|c| c.weight * c.dist.pdf(x)).sum()
    }

    fn cdf(&self, x: f64) -> f64 {
        self.components.iter().map(|c| c.weight * c.dist.cdf(x)).sum()
    }

    fn sf(&self, x: f64) -> f64 {
        self.components.iter().map(|c| c.weight * c.dist.sf(x)).sum()
    }

    fn quantile(&self, p: f64) -> Result<f64> {
        if !(0.0..=1.0).contains(&p) {
            return Err(DistError::InvalidProbability(p));
        }
        // Bracket using component quantiles, then bisect the mixture CDF.
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for c in &self.components {
            if c.weight == 0.0 {
                continue;
            }
            let q = c.dist.quantile(p)?;
            lo = lo.min(q);
            hi = hi.max(q);
        }
        if lo == hi {
            return Ok(lo);
        }
        // The generalized inverse lies in [lo, hi]; bisect on cdf ≥ p.
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) >= p {
                hi = mid;
            } else {
                lo = mid;
            }
            if hi - lo <= 1e-15 * hi.abs().max(1.0) {
                break;
            }
        }
        Ok(hi)
    }

    fn mean(&self) -> f64 {
        self.components.iter().map(|c| c.weight * c.dist.mean()).sum()
    }

    fn variance(&self) -> f64 {
        let m = self.mean();
        self.components
            .iter()
            .map(|c| {
                let mi = c.dist.mean();
                c.weight * (c.dist.variance() + (mi - m) * (mi - m))
            })
            .sum()
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        let mut u: f64 = rng.gen();
        for c in &self.components {
            if u < c.weight {
                return c.dist.sample(rng);
            }
            u -= c.weight;
        }
        // Floating-point slack: fall back to the last component.
        self.components.last().expect("nonempty").dist.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LogNormal, Normal, PointMass, Uniform};
    use depcase_numerics::float::approx_eq;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn perfection_mix(p0: f64) -> Mixture {
        Mixture::new(vec![
            Component::new(p0, PointMass::new(0.0).unwrap()),
            Component::new(1.0 - p0, LogNormal::from_mode_sigma(1e-4, 1.0).unwrap()),
        ])
        .unwrap()
    }

    #[test]
    fn construction_validation() {
        assert!(Mixture::new(vec![]).is_err());
        assert!(Mixture::new(vec![Component::new(-1.0, Uniform::unit())]).is_err());
        assert!(Mixture::new(vec![Component::new(0.0, Uniform::unit())]).is_err());
        assert!(Mixture::new(vec![Component::new(f64::NAN, Uniform::unit())]).is_err());
    }

    #[test]
    fn weights_are_normalized() {
        let m = Mixture::new(vec![
            Component::new(2.0, Uniform::unit()),
            Component::new(6.0, Uniform::unit()),
        ])
        .unwrap();
        let ws: Vec<f64> = m.components().iter().map(|c| c.weight).collect();
        assert!(approx_eq(ws[0], 0.25, 1e-15, 0.0));
        assert!(approx_eq(ws[1], 0.75, 1e-15, 0.0));
    }

    #[test]
    fn perfection_atom_shows_in_cdf() {
        let m = perfection_mix(0.3);
        assert!(approx_eq(m.cdf(0.0), 0.3, 1e-14, 0.0));
        assert!(m.cdf(1e-4) > 0.3);
    }

    #[test]
    fn mean_is_weighted_mean() {
        let m = Mixture::new(vec![
            Component::new(0.5, Normal::new(0.0, 1.0).unwrap()),
            Component::new(0.5, Normal::new(4.0, 1.0).unwrap()),
        ])
        .unwrap();
        assert!(approx_eq(m.mean(), 2.0, 1e-14, 0.0));
        // Law of total variance: 1 + 4 = 5.
        assert!(approx_eq(m.variance(), 5.0, 1e-13, 0.0));
    }

    #[test]
    fn perfection_reduces_mean_proportionally() {
        let body_mean = LogNormal::from_mode_sigma(1e-4, 1.0).unwrap().mean();
        let m = perfection_mix(0.25);
        assert!(approx_eq(m.mean(), 0.75 * body_mean, 1e-13, 0.0));
    }

    #[test]
    fn quantile_inverts_cdf() {
        let m = Mixture::new(vec![
            Component::new(0.4, Uniform::new(0.0, 1.0).unwrap()),
            Component::new(0.6, Uniform::new(2.0, 3.0).unwrap()),
        ])
        .unwrap();
        for p in [0.1, 0.39, 0.5, 0.9] {
            let x = m.quantile(p).unwrap();
            assert!(approx_eq(m.cdf(x), p, 1e-9, 1e-9), "p = {p}, x = {x}");
        }
        assert!(m.quantile(-0.1).is_err());
    }

    #[test]
    fn quantile_lands_in_gap_boundary() {
        // Between the two uniform blocks the CDF is flat at 0.4; the
        // generalized inverse at p = 0.4 is the left block's right edge.
        let m = Mixture::new(vec![
            Component::new(0.4, Uniform::new(0.0, 1.0).unwrap()),
            Component::new(0.6, Uniform::new(2.0, 3.0).unwrap()),
        ])
        .unwrap();
        let x = m.quantile(0.4).unwrap();
        assert!((1.0 - 1e-9..=1.0 + 1e-6).contains(&x), "x = {x}");
    }

    #[test]
    fn support_is_union_hull() {
        let m = perfection_mix(0.5);
        let s = m.support();
        assert_eq!(s.lo, 0.0);
        assert_eq!(s.hi, f64::INFINITY);
    }

    #[test]
    fn sampling_respects_weights() {
        let m = perfection_mix(0.3);
        let mut rng = StdRng::seed_from_u64(77);
        let xs = m.sample_n(&mut rng, 20_000);
        let zeros = xs.iter().filter(|&&x| x == 0.0).count() as f64 / xs.len() as f64;
        assert!((zeros - 0.3).abs() < 0.02, "zeros = {zeros}");
    }

    #[test]
    fn pdf_sums_components() {
        let m = Mixture::new(vec![
            Component::new(0.5, Uniform::new(0.0, 1.0).unwrap()),
            Component::new(0.5, Uniform::new(0.5, 1.5).unwrap()),
        ])
        .unwrap();
        assert!(approx_eq(m.pdf(0.25), 0.5, 1e-14, 0.0));
        assert!(approx_eq(m.pdf(0.75), 1.0, 1e-14, 0.0));
        assert!(approx_eq(m.pdf(1.25), 0.5, 1e-14, 0.0));
    }
}
