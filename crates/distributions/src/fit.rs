//! Fitting parametric belief distributions to elicited quantiles.
//!
//! Experts rarely hand over a full distribution (the paper: "some would
//! argue that describing this as elicitation begs the question that the
//! expert really does 'have' a complete distribution"). What they do
//! state is a handful of quantiles. These fitters turn stated quantiles
//! into the parametric families the rest of the workspace consumes.

use crate::error::{DistError, Result};
use crate::gamma::Gamma;
use crate::lognormal::LogNormal;
use crate::traits::Distribution;
use depcase_numerics::special::norm_quantile;

fn check_pair(p1: f64, x1: f64, p2: f64, x2: f64) -> Result<()> {
    if !(0.0 < p1 && p1 < p2 && p2 < 1.0) {
        return Err(DistError::InvalidParameter(format!(
            "quantile levels must satisfy 0 < p1 < p2 < 1; got ({p1}, {p2})"
        )));
    }
    if !(x1 > 0.0) || !(x2 > x1) || !x2.is_finite() {
        return Err(DistError::InvalidParameter(format!(
            "quantile values must satisfy 0 < x1 < x2 finite; got ({x1}, {x2})"
        )));
    }
    Ok(())
}

/// Fits a log-normal through two stated quantiles
/// `P(X ≤ x1) = p1`, `P(X ≤ x2) = p2`.
///
/// Closed form: `σ = (ln x2 − ln x1)/(z2 − z1)`, `μ = ln x1 − σ z1`.
///
/// # Errors
///
/// [`DistError::InvalidParameter`] unless `0 < p1 < p2 < 1` and
/// `0 < x1 < x2`.
///
/// # Examples
///
/// ```
/// use depcase_distributions::{fit::lognormal_from_quantiles, Distribution};
///
/// // "90% confident the pfd is between 1e-4 and 1e-2."
/// let d = lognormal_from_quantiles(0.05, 1e-4, 0.95, 1e-2)?;
/// assert!((d.cdf(1e-4) - 0.05).abs() < 1e-10);
/// assert!((d.cdf(1e-2) - 0.95).abs() < 1e-10);
/// # Ok::<(), depcase_distributions::DistError>(())
/// ```
pub fn lognormal_from_quantiles(p1: f64, x1: f64, p2: f64, x2: f64) -> Result<LogNormal> {
    check_pair(p1, x1, p2, x2)?;
    let z1 = norm_quantile(p1);
    let z2 = norm_quantile(p2);
    let sigma = (x2.ln() - x1.ln()) / (z2 - z1);
    let mu = x1.ln() - sigma * z1;
    LogNormal::new(mu, sigma)
}

/// Fits a gamma through two stated quantiles by root-finding the shape
/// (the quantile *ratio* `x2/x1` is strictly decreasing in the shape) and
/// then matching the scale.
///
/// # Errors
///
/// [`DistError::InvalidParameter`] for malformed pairs;
/// [`DistError::Infeasible`] when no shape in `[1e-3, 1e6]` reproduces
/// the stated ratio.
///
/// # Examples
///
/// ```
/// use depcase_distributions::{fit::gamma_from_quantiles, Distribution};
///
/// let d = gamma_from_quantiles(0.05, 1e-4, 0.95, 1e-2)?;
/// assert!((d.cdf(1e-4) - 0.05).abs() < 1e-6);
/// assert!((d.cdf(1e-2) - 0.95).abs() < 1e-6);
/// # Ok::<(), depcase_distributions::DistError>(())
/// ```
pub fn gamma_from_quantiles(p1: f64, x1: f64, p2: f64, x2: f64) -> Result<Gamma> {
    check_pair(p1, x1, p2, x2)?;
    let target = (x2 / x1).ln();
    // Ratio of standard-gamma quantiles as a function of ln(shape).
    let ratio = |ln_shape: f64| -> f64 {
        let shape = ln_shape.exp();
        let q1 = depcase_numerics::special::inv_reg_gamma_p(shape, p1).unwrap_or(f64::NAN);
        let q2 = depcase_numerics::special::inv_reg_gamma_p(shape, p2).unwrap_or(f64::NAN);
        if !(q1 > 0.0) || !q2.is_finite() {
            return f64::NAN;
        }
        (q2 / q1).ln() - target
    };
    // Shapes below ~e^{-4.5} already give quantile ratios around e^250;
    // going lower only underflows the tiny-quantile computation.
    let (mut lo, mut hi) = (-4.5, 14.0);
    let mut rlo = ratio(lo);
    // Walk the lower edge up out of any underflow pocket.
    let mut guard = 0;
    while !rlo.is_finite() && lo < hi && guard < 40 {
        lo += 0.5;
        rlo = ratio(lo);
        guard += 1;
    }
    let rhi = ratio(hi);
    if !(rlo.is_finite() && rhi.is_finite()) || rlo.signum() == rhi.signum() {
        return Err(DistError::Infeasible(format!(
            "no gamma shape reproduces the quantile ratio {:.3e}",
            (x2 / x1)
        )));
    }
    // Monotone in shape: bisect for robustness against NaN pockets.
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        let r = ratio(mid);
        if r.is_nan() {
            break;
        }
        if r.signum() == rlo.signum() {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-12 {
            break;
        }
    }
    let shape = (0.5 * (lo + hi)).exp();
    let q1 = depcase_numerics::special::inv_reg_gamma_p(shape, p1)?;
    Gamma::new(shape, x1 / q1)
}

/// Fits a log-normal to the classic three-point elicitation
/// (5th percentile, median, 95th percentile) by matching the outer pair
/// exactly and reporting the discrepancy at the median — a measure of
/// how non-log-normal the expert's belief is.
///
/// Returns the fitted distribution and the *median discrepancy factor*
/// `stated_median / fitted_median` (1 = perfectly consistent).
///
/// # Errors
///
/// [`DistError::InvalidParameter`] unless `0 < q05 < q50 < q95`.
///
/// # Examples
///
/// ```
/// use depcase_distributions::fit::lognormal_from_three_points;
///
/// // A symmetric-in-log expert: median at the geometric mid.
/// let (d, disc) = lognormal_from_three_points(1e-4, 1e-3, 1e-2)?;
/// assert!((disc - 1.0).abs() < 1e-10);
/// assert!((d.median() - 1e-3).abs() < 1e-12);
/// # Ok::<(), depcase_distributions::DistError>(())
/// ```
pub fn lognormal_from_three_points(q05: f64, q50: f64, q95: f64) -> Result<(LogNormal, f64)> {
    if !(0.0 < q05 && q05 < q50 && q50 < q95 && q95.is_finite()) {
        return Err(DistError::InvalidParameter(format!(
            "need 0 < q05 < q50 < q95; got ({q05}, {q50}, {q95})"
        )));
    }
    let d = lognormal_from_quantiles(0.05, q05, 0.95, q95)?;
    let fitted_median = d.median();
    Ok((d, q50 / fitted_median))
}

/// Fits both families to the same quantile pair and returns the one
/// whose *third* stated quantile is better honoured — a tiny model
/// selection step for elicitation pipelines.
///
/// # Errors
///
/// Propagates fitting failures; both families must fit the outer pair.
pub fn best_of_families(
    q05: f64,
    q50: f64,
    q95: f64,
) -> Result<(Box<dyn Distribution>, &'static str)> {
    if !(0.0 < q05 && q05 < q50 && q50 < q95 && q95.is_finite()) {
        return Err(DistError::InvalidParameter(format!(
            "need 0 < q05 < q50 < q95; got ({q05}, {q50}, {q95})"
        )));
    }
    let ln = lognormal_from_quantiles(0.05, q05, 0.95, q95)?;
    let ga = gamma_from_quantiles(0.05, q05, 0.95, q95)?;
    let ln_err = (ln.cdf(q50) - 0.5).abs();
    let ga_err = (ga.cdf(q50) - 0.5).abs();
    if ln_err <= ga_err {
        Ok((Box::new(ln), "log-normal"))
    } else {
        Ok((Box::new(ga), "gamma"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use depcase_numerics::float::approx_eq;

    #[test]
    fn lognormal_quantile_fit_round_trip() {
        let d = lognormal_from_quantiles(0.1, 2e-4, 0.9, 5e-3).unwrap();
        assert!(approx_eq(d.cdf(2e-4), 0.1, 1e-10, 1e-12));
        assert!(approx_eq(d.cdf(5e-3), 0.9, 1e-10, 1e-12));
    }

    #[test]
    fn lognormal_fit_validation() {
        assert!(lognormal_from_quantiles(0.9, 1e-4, 0.1, 1e-2).is_err()); // p order
        assert!(lognormal_from_quantiles(0.1, 1e-2, 0.9, 1e-4).is_err()); // x order
        assert!(lognormal_from_quantiles(0.0, 1e-4, 0.9, 1e-2).is_err());
        assert!(lognormal_from_quantiles(0.1, 0.0, 0.9, 1e-2).is_err());
    }

    #[test]
    fn gamma_quantile_fit_round_trip() {
        for &(p1, x1, p2, x2) in
            &[(0.05, 1e-4, 0.95, 1e-2), (0.25, 0.5, 0.75, 2.0), (0.1, 1.0, 0.9, 3.0)]
        {
            let d = gamma_from_quantiles(p1, x1, p2, x2).unwrap();
            assert!(approx_eq(d.cdf(x1), p1, 1e-5, 1e-7), "({p1}, {x1})");
            assert!(approx_eq(d.cdf(x2), p2, 1e-5, 1e-7), "({p2}, {x2})");
        }
    }

    #[test]
    fn gamma_fit_infeasible_ratio() {
        // A ratio of 1+epsilon at wide levels requires an absurd shape.
        assert!(gamma_from_quantiles(0.05, 1.0, 0.95, 1.0 + 1e-13).is_err());
    }

    #[test]
    fn three_point_discrepancy_detects_skew() {
        // Median dragged toward the upper quantile: log-normal underfits.
        let (_, disc) = lognormal_from_three_points(1e-4, 5e-3, 1e-2).unwrap();
        assert!(disc > 1.0, "disc = {disc}");
        let (_, disc) = lognormal_from_three_points(1e-4, 2e-4, 1e-2).unwrap();
        assert!(disc < 1.0, "disc = {disc}");
    }

    #[test]
    fn three_point_validation() {
        assert!(lognormal_from_three_points(1e-3, 1e-4, 1e-2).is_err());
        assert!(lognormal_from_three_points(0.0, 1e-3, 1e-2).is_err());
    }

    #[test]
    fn best_of_families_picks_the_honest_one() {
        // Build stated quantiles *from* a gamma, then check the selector
        // prefers gamma.
        let truth = Gamma::new(2.0, 1e-3).unwrap();
        let q05 = truth.quantile(0.05).unwrap();
        let q50 = truth.quantile(0.50).unwrap();
        let q95 = truth.quantile(0.95).unwrap();
        let (_, name) = best_of_families(q05, q50, q95).unwrap();
        assert_eq!(name, "gamma");
        // And the reverse for a log-normal source.
        let truth = LogNormal::new(-6.0, 1.2).unwrap();
        let (_, name) = best_of_families(
            truth.quantile(0.05).unwrap(),
            truth.quantile(0.50).unwrap(),
            truth.quantile(0.95).unwrap(),
        )
        .unwrap();
        assert_eq!(name, "log-normal");
    }
}
