//! The normal (Gaussian) distribution.
//!
//! Appears in the paper's discussion as the *counterexample*: "if the
//! failure rate was normally distributed … changing the confidence by
//! narrowing the distribution would not affect the mean value". Having a
//! first-class normal lets the test suite and benches demonstrate exactly
//! that symmetry.

use crate::error::{DistError, Result};
use crate::sampler::standard_normal;
use crate::traits::{Distribution, Support};
use depcase_numerics::special::{norm_cdf, norm_pdf, norm_quantile, norm_sf};
use rand::RngCore;

/// A normal distribution with mean `mu` and standard deviation `sigma`.
///
/// # Examples
///
/// ```
/// use depcase_distributions::{Distribution, Normal};
///
/// let n = Normal::new(0.0, 2.0)?;
/// assert_eq!(n.mean(), 0.0);
/// assert!((n.cdf(0.0) - 0.5).abs() < 1e-14);
/// # Ok::<(), depcase_distributions::DistError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mu: f64,
    sigma: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Errors
    ///
    /// [`DistError::InvalidParameter`] unless `mu` is finite and
    /// `sigma > 0` finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self> {
        if !mu.is_finite() || !(sigma > 0.0) || !sigma.is_finite() {
            return Err(DistError::InvalidParameter(format!(
                "Normal requires finite mu and sigma > 0; got mu = {mu}, sigma = {sigma}"
            )));
        }
        Ok(Self { mu, sigma })
    }

    /// The standard normal `N(0, 1)`.
    #[must_use]
    pub fn standard() -> Self {
        Self { mu: 0.0, sigma: 1.0 }
    }

    /// Location parameter (the mean).
    #[must_use]
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Scale parameter (the standard deviation).
    #[must_use]
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    fn z(&self, x: f64) -> f64 {
        (x - self.mu) / self.sigma
    }
}

impl Distribution for Normal {
    fn support(&self) -> Support {
        Support::real_line()
    }

    fn pdf(&self, x: f64) -> f64 {
        norm_pdf(self.z(x)) / self.sigma
    }

    fn ln_pdf(&self, x: f64) -> f64 {
        let z = self.z(x);
        -0.5 * z * z - self.sigma.ln() - 0.5 * (2.0 * std::f64::consts::PI).ln()
    }

    fn cdf(&self, x: f64) -> f64 {
        norm_cdf(self.z(x))
    }

    fn sf(&self, x: f64) -> f64 {
        norm_sf(self.z(x))
    }

    fn quantile(&self, p: f64) -> Result<f64> {
        if !(0.0..=1.0).contains(&p) {
            return Err(DistError::InvalidProbability(p));
        }
        Ok(self.mu + self.sigma * norm_quantile(p))
    }

    fn mean(&self) -> f64 {
        self.mu
    }

    fn variance(&self) -> f64 {
        self.sigma * self.sigma
    }

    fn mode(&self) -> Option<f64> {
        Some(self.mu)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        self.mu + self.sigma * standard_normal(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use depcase_numerics::float::approx_eq;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validation() {
        assert!(Normal::new(0.0, 0.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, f64::INFINITY).is_err());
        assert!(Normal::new(3.0, 2.0).is_ok());
    }

    #[test]
    fn standard_matches_new() {
        let s = Normal::standard();
        assert_eq!(s.mu(), 0.0);
        assert_eq!(s.sigma(), 1.0);
    }

    #[test]
    fn pdf_peak_and_symmetry() {
        let n = Normal::new(1.0, 0.5).unwrap();
        assert!(approx_eq(n.pdf(0.5), n.pdf(1.5), 1e-14, 0.0));
        assert!(n.pdf(1.0) > n.pdf(1.4));
        assert_eq!(n.mode(), Some(1.0));
    }

    #[test]
    fn ln_pdf_consistent_with_pdf() {
        let n = Normal::new(-2.0, 3.0).unwrap();
        for x in [-8.0, -2.0, 0.0, 5.0] {
            assert!(approx_eq(n.ln_pdf(x), n.pdf(x).ln(), 1e-12, 1e-12), "x = {x}");
        }
    }

    #[test]
    fn cdf_quantile_round_trip() {
        let n = Normal::new(5.0, 2.0).unwrap();
        for p in [1e-8, 0.01, 0.3, 0.5, 0.9, 0.999] {
            let x = n.quantile(p).unwrap();
            assert!(approx_eq(n.cdf(x), p, 1e-10, 1e-12), "p = {p}");
        }
    }

    #[test]
    fn quantile_rejects_bad_levels() {
        let n = Normal::standard();
        assert!(n.quantile(-0.1).is_err());
        assert!(n.quantile(1.1).is_err());
    }

    #[test]
    fn narrowing_does_not_move_mean() {
        // The paper's point about symmetric distributions: confidence can
        // rise (spread shrink) with the mean untouched.
        let wide = Normal::new(0.003, 0.002).unwrap();
        let narrow = Normal::new(0.003, 0.0005).unwrap();
        assert_eq!(wide.mean(), narrow.mean());
        assert!(narrow.cdf(0.005) > wide.cdf(0.005));
    }

    #[test]
    fn sf_complements_cdf_in_tail() {
        let n = Normal::standard();
        assert!(approx_eq(n.sf(3.0) + n.cdf(3.0), 1.0, 1e-14, 1e-14));
        assert!(n.sf(8.0) > 0.0); // retains tail precision
    }

    #[test]
    fn interval_prob_between_sigmas() {
        let n = Normal::standard();
        let one_sigma = n.interval_prob(-1.0, 1.0);
        assert!(approx_eq(one_sigma, 0.682689492137086, 1e-10, 0.0));
    }

    #[test]
    fn sampling_moments() {
        let n = Normal::new(10.0, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let acc: depcase_numerics::stats::Accumulator =
            n.sample_n(&mut rng, 30_000).into_iter().collect();
        assert!((acc.mean() - 10.0).abs() < 0.1);
        assert!((acc.sample_std() - 3.0).abs() < 0.1);
    }

    #[test]
    fn common_traits_present() {
        let n = Normal::standard();
        let m = n;
        assert_eq!(n, m);
        let _ = format!("{n:?}");
    }
}
