//! The log-uniform (reciprocal) distribution.
//!
//! The conventional "order-of-magnitude ignorance" prior over failure
//! rates: uniform in `log λ` between two decade bounds. Useful as a
//! deliberately weak prior in ACARP planning, against which the paper's
//! log-normal judgements can be compared.

use crate::error::{DistError, Result};
use crate::sampler::open_unit;
use crate::traits::{Distribution, Support};
use rand::RngCore;

/// A log-uniform distribution on `[lo, hi]`, `0 < lo < hi`.
///
/// # Examples
///
/// ```
/// use depcase_distributions::{Distribution, LogUniform};
///
/// // "Somewhere between 1e-5 and 1e-1, every decade equally likely."
/// let d = LogUniform::new(1e-5, 1e-1)?;
/// assert!((d.cdf(1e-3) - 0.5).abs() < 1e-12);
/// # Ok::<(), depcase_distributions::DistError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogUniform {
    lo: f64,
    hi: f64,
    ln_lo: f64,
    ln_ratio: f64,
}

impl LogUniform {
    /// Creates a log-uniform distribution on `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// [`DistError::InvalidParameter`] unless `0 < lo < hi` finite.
    pub fn new(lo: f64, hi: f64) -> Result<Self> {
        if !(lo > 0.0) || !(hi > lo) || !hi.is_finite() {
            return Err(DistError::InvalidParameter(format!(
                "LogUniform requires 0 < lo < hi finite; got [{lo}, {hi}]"
            )));
        }
        Ok(Self { lo, hi, ln_lo: lo.ln(), ln_ratio: (hi / lo).ln() })
    }

    /// Lower endpoint.
    #[must_use]
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper endpoint.
    #[must_use]
    pub fn hi(&self) -> f64 {
        self.hi
    }
}

impl Distribution for LogUniform {
    fn support(&self) -> Support {
        Support { lo: self.lo, hi: self.hi }
    }

    fn pdf(&self, x: f64) -> f64 {
        if x < self.lo || x > self.hi {
            0.0
        } else {
            1.0 / (x * self.ln_ratio)
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= self.lo {
            0.0
        } else if x >= self.hi {
            1.0
        } else {
            (x.ln() - self.ln_lo) / self.ln_ratio
        }
    }

    fn quantile(&self, p: f64) -> Result<f64> {
        if !(0.0..=1.0).contains(&p) {
            return Err(DistError::InvalidProbability(p));
        }
        Ok((self.ln_lo + p * self.ln_ratio).exp())
    }

    fn mean(&self) -> f64 {
        (self.hi - self.lo) / self.ln_ratio
    }

    fn variance(&self) -> f64 {
        let m = self.mean();
        (self.hi * self.hi - self.lo * self.lo) / (2.0 * self.ln_ratio) - m * m
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        (self.ln_lo + open_unit(rng) * self.ln_ratio).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use depcase_numerics::float::approx_eq;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validation() {
        assert!(LogUniform::new(0.0, 1.0).is_err());
        assert!(LogUniform::new(1.0, 1.0).is_err());
        assert!(LogUniform::new(2.0, 1.0).is_err());
        assert!(LogUniform::new(1.0, f64::INFINITY).is_err());
    }

    #[test]
    fn decades_are_equiprobable() {
        let d = LogUniform::new(1e-5, 1e-1).unwrap();
        for k in 0..4 {
            let lo = 1e-5 * 10f64.powi(k);
            let mass = d.interval_prob(lo, lo * 10.0);
            assert!(approx_eq(mass, 0.25, 1e-12, 0.0), "decade {k}: {mass}");
        }
    }

    #[test]
    fn quantile_round_trip() {
        let d = LogUniform::new(1e-6, 1e-2).unwrap();
        for p in [0.0, 0.1, 0.5, 0.9, 1.0] {
            let x = d.quantile(p).unwrap();
            assert!(approx_eq(d.cdf(x), p, 1e-12, 1e-13), "p = {p}");
        }
        assert!(d.quantile(-0.1).is_err());
    }

    #[test]
    fn mean_matches_quadrature() {
        let d = LogUniform::new(1e-4, 1e-1).unwrap();
        let numeric = crate::moments::numeric_mean(&d, 1e-11).unwrap();
        assert!(approx_eq(numeric, d.mean(), 1e-7, 1e-10));
        let nvar = crate::moments::numeric_variance(&d, 1e-11).unwrap();
        assert!(approx_eq(nvar, d.variance(), 1e-5, 1e-10));
    }

    #[test]
    fn density_is_reciprocal() {
        let d = LogUniform::new(0.1, 10.0).unwrap();
        assert!(approx_eq(d.pdf(1.0) / d.pdf(2.0), 2.0, 1e-12, 0.0));
        assert_eq!(d.pdf(0.01), 0.0);
        assert_eq!(d.pdf(20.0), 0.0);
    }

    #[test]
    fn samples_in_range_log_spread() {
        let d = LogUniform::new(1e-5, 1e-1).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let xs = d.sample_n(&mut rng, 20_000);
        assert!(xs.iter().all(|&x| (1e-5..=1e-1).contains(&x)));
        // Fraction below the log-midpoint 1e-3 should be ~1/2.
        let frac = xs.iter().filter(|&&x| x < 1e-3).count() as f64 / xs.len() as f64;
        assert!((frac - 0.5).abs() < 0.02, "frac = {frac}");
    }
}
