//! The exponential distribution.
//!
//! The likelihood kernel for *time-based* operating experience: surviving
//! time `t` at constant failure rate `λ` has probability `e^{−λt}`, which
//! is what [`crate::RateSurvivalWeighted`] folds into a rate prior.

use crate::error::{DistError, Result};
use crate::sampler::standard_exponential;
use crate::traits::{Distribution, Support};
use rand::RngCore;

/// An exponential distribution with rate `lambda`.
///
/// # Examples
///
/// ```
/// use depcase_distributions::{Distribution, Exponential};
///
/// let e = Exponential::new(2.0)?;
/// assert_eq!(e.mean(), 0.5);
/// assert!((e.sf(1.0) - (-2.0_f64).exp()).abs() < 1e-15);
/// # Ok::<(), depcase_distributions::DistError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given rate.
    ///
    /// # Errors
    ///
    /// [`DistError::InvalidParameter`] unless `rate > 0` finite.
    pub fn new(rate: f64) -> Result<Self> {
        if !(rate > 0.0) || !rate.is_finite() {
            return Err(DistError::InvalidParameter(format!(
                "Exponential requires rate > 0, got {rate}"
            )));
        }
        Ok(Self { rate })
    }

    /// The rate parameter λ.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl Distribution for Exponential {
    fn support(&self) -> Support {
        Support::non_negative()
    }

    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            self.rate * (-self.rate * x).exp()
        }
    }

    fn ln_pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            f64::NEG_INFINITY
        } else {
            self.rate.ln() - self.rate * x
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            -(-self.rate * x).exp_m1()
        }
    }

    fn sf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            1.0
        } else {
            (-self.rate * x).exp()
        }
    }

    fn quantile(&self, p: f64) -> Result<f64> {
        if !(0.0..=1.0).contains(&p) {
            return Err(DistError::InvalidProbability(p));
        }
        if p == 1.0 {
            return Ok(f64::INFINITY);
        }
        Ok(-(-p).ln_1p() / self.rate)
    }

    fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    fn variance(&self) -> f64 {
        1.0 / (self.rate * self.rate)
    }

    fn mode(&self) -> Option<f64> {
        Some(0.0)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        standard_exponential(rng) / self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use depcase_numerics::float::approx_eq;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validation() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(-1.0).is_err());
        assert!(Exponential::new(f64::INFINITY).is_err());
    }

    #[test]
    fn memoryless_property() {
        let e = Exponential::new(0.7).unwrap();
        // P(X > s + t) = P(X > s) P(X > t)
        let (s, t) = (1.3, 2.1);
        assert!(approx_eq(e.sf(s + t), e.sf(s) * e.sf(t), 1e-13, 1e-15));
    }

    #[test]
    fn quantile_round_trip_and_tiny_levels() {
        let e = Exponential::new(3.0).unwrap();
        for p in [1e-15, 0.1, 0.5, 0.9, 0.999] {
            let x = e.quantile(p).unwrap();
            assert!(approx_eq(e.cdf(x), p, 1e-12, 1e-16), "p = {p}");
        }
        assert_eq!(e.quantile(1.0).unwrap(), f64::INFINITY);
    }

    #[test]
    fn moments_and_mode() {
        let e = Exponential::new(4.0).unwrap();
        assert_eq!(e.mean(), 0.25);
        assert_eq!(e.variance(), 0.0625);
        assert_eq!(e.mode(), Some(0.0));
    }

    #[test]
    fn pdf_outside_support() {
        let e = Exponential::new(1.0).unwrap();
        assert_eq!(e.pdf(-0.5), 0.0);
        assert_eq!(e.cdf(-0.5), 0.0);
        assert_eq!(e.sf(-0.5), 1.0);
    }

    #[test]
    fn sampling_moments() {
        let e = Exponential::new(2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let acc: depcase_numerics::stats::Accumulator =
            e.sample_n(&mut rng, 40_000).into_iter().collect();
        assert!((acc.mean() - 0.5).abs() < 0.01);
    }
}
