//! Belief distributions over failure rates and probabilities of failure
//! on demand (pfd).
//!
//! The DSN'07 paper models an assessor's uncertain judgement of a
//! system's pfd as a probability distribution — log-normal in the paper's
//! worked examples (Section 3.1), gamma as a sensitivity check, two-point
//! and atom-carrying mixtures for the conservative worst-case reasoning
//! of Section 3.4, and survival-weighted posteriors for the
//! "cut off the tail with operating experience" strategy of Section 4.1.
//! This crate implements all of them behind one object-safe
//! [`Distribution`] trait.
//!
//! # Examples
//!
//! The paper's central construction — a log-normal belief about a pfd
//! with the *mode* (most likely value) pinned and the spread expressing
//! (lack of) confidence:
//!
//! ```
//! use depcase_distributions::{Distribution, LogNormal};
//!
//! // The paper's widest Figure 1 judgement: mode in the middle of the
//! // SIL2 band, mean dragged up to the SIL2/SIL1 boundary.
//! let belief = LogNormal::from_mode_mean(0.003, 0.01)?;
//! // One-sided confidence the system is SIL2 or better is about 67%:
//! let conf = belief.cdf(1e-2);
//! assert!(conf > 0.6 && conf < 0.75);
//! // ...and the chance of SIL1-or-better is about 99.9%.
//! assert!(belief.cdf(1e-1) > 0.995);
//! # Ok::<(), depcase_distributions::DistError>(())
//! ```

// `!(x > 0.0)`-style checks deliberately treat NaN as invalid input; the
// lint's suggested `x <= 0.0` would let NaN through the validation.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
// Reference constants are quoted at full printed precision.
#![allow(clippy::excessive_precision)]
#![deny(missing_docs)]
#![deny(unsafe_code)]

mod beta;
mod discretized;
mod empirical;
mod error;
mod exponential;
pub mod fit;
mod gamma;
mod log_uniform;
mod lognormal;
mod mixture;
pub mod moments;
mod normal;
mod point_mass;
pub mod sampler;
mod survival;
mod traits;
mod triangular;
mod truncated;
mod two_point;
mod uniform;
mod weibull;

pub use beta::Beta;
pub use discretized::Discretized;
pub use empirical::Empirical;
pub use error::DistError;
pub use exponential::Exponential;
pub use gamma::Gamma;
pub use log_uniform::LogUniform;
pub use lognormal::LogNormal;
pub use mixture::{Component, Mixture};
pub use normal::Normal;
pub use point_mass::PointMass;
pub use survival::{RateSurvivalWeighted, SurvivalWeighted};
pub use traits::{Distribution, Support};
pub use triangular::Triangular;
pub use truncated::Truncated;
pub use two_point::TwoPoint;
pub use uniform::Uniform;
pub use weibull::Weibull;
