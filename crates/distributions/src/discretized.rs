//! Grid-discretized view of a distribution.
//!
//! Composite posteriors pay a quadrature per CDF call; sweeps (Figure 3
//! evaluates hundreds of judgements, ACARP bisection evaluates dozens of
//! posteriors) amortize better through a precomputed quantile table.
//! [`Discretized`] snapshots any [`Distribution`] onto a monotone
//! CDF table once, then answers `cdf`/`quantile` by interpolation in
//! O(log n) — traded against a controllable discretization error. The
//! `ablation_posterior` bench quantifies the trade.

use crate::error::{DistError, Result};
use crate::traits::{Distribution, Support};
use depcase_numerics::interp::LinearInterp;
use rand::RngCore;

/// A distribution snapshotted onto an `n`-point quantile grid.
///
/// # Examples
///
/// ```
/// use depcase_distributions::{Discretized, Distribution, LogNormal, SurvivalWeighted};
///
/// let prior = LogNormal::from_mode_mean(0.003, 0.01)?;
/// let post = SurvivalWeighted::new(prior, 500)?;   // quadrature-backed
/// let fast = Discretized::from_distribution(&post, 512)?; // table-backed
/// // Close agreement at a fraction of the evaluation cost:
/// assert!((fast.cdf(1e-2) - post.cdf(1e-2)).abs() < 1e-3);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Discretized {
    table: LinearInterp,
    mean: f64,
    variance: f64,
    mode: Option<f64>,
}

impl Discretized {
    /// Builds the table by probing `source.quantile` at `n` levels
    /// (`n >= 8`), plus the extreme tails.
    ///
    /// # Errors
    ///
    /// [`DistError::InvalidParameter`] for `n < 8`; propagates quantile
    /// failures from the source.
    pub fn from_distribution<D: Distribution + ?Sized>(source: &D, n: usize) -> Result<Self> {
        if n < 8 {
            return Err(DistError::InvalidParameter(format!(
                "discretization needs at least 8 grid points, got {n}"
            )));
        }
        let mut xs = Vec::with_capacity(n + 2);
        let mut ps = Vec::with_capacity(n + 2);
        let mut push = |p: f64, x: f64| {
            if x.is_finite() && xs.last().is_none_or(|&last| x > last) {
                xs.push(x);
                ps.push(p);
            }
        };
        push(1e-9, source.quantile(1e-9)?);
        for i in 0..n {
            let p = (i as f64 + 0.5) / n as f64;
            push(p, source.quantile(p)?);
        }
        push(1.0 - 1e-9, source.quantile(1.0 - 1e-9)?);
        if xs.len() < 2 {
            return Err(DistError::InvalidParameter(
                "source quantiles collapse to a point; discretization is meaningless".into(),
            ));
        }
        let table = LinearInterp::new(xs, ps)?;
        Ok(Self { table, mean: source.mean(), variance: source.variance(), mode: source.mode() })
    }

    /// Number of stored grid points.
    #[must_use]
    pub fn grid_len(&self) -> usize {
        self.table.xs().len()
    }
}

impl Distribution for Discretized {
    fn support(&self) -> Support {
        let xs = self.table.xs();
        Support { lo: xs[0], hi: *xs.last().expect("nonempty") }
    }

    fn pdf(&self, x: f64) -> f64 {
        // Finite-difference density over the local grid cell.
        let xs = self.table.xs();
        let h = (xs[xs.len() - 1] - xs[0]) / xs.len() as f64 * 0.5;
        if h <= 0.0 {
            return 0.0;
        }
        ((self.cdf(x + h) - self.cdf(x - h)) / (2.0 * h)).max(0.0)
    }

    fn cdf(&self, x: f64) -> f64 {
        self.table.eval(x).clamp(0.0, 1.0)
    }

    fn quantile(&self, p: f64) -> Result<f64> {
        if !(0.0..=1.0).contains(&p) {
            return Err(DistError::InvalidProbability(p));
        }
        Ok(self.table.eval_inverse(p)?)
    }

    fn mean(&self) -> f64 {
        self.mean
    }

    fn variance(&self) -> f64 {
        self.variance
    }

    fn mode(&self) -> Option<f64> {
        self.mode
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        let u = crate::sampler::open_unit(rng);
        self.table.eval_inverse(u).unwrap_or(self.support().lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Beta, LogNormal, Normal};
    use depcase_numerics::float::approx_eq;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validation() {
        let d = Normal::standard();
        assert!(Discretized::from_distribution(&d, 4).is_err());
        assert!(Discretized::from_distribution(&d, 64).is_ok());
    }

    #[test]
    fn cdf_tracks_source() {
        let src = LogNormal::from_mode_mean(0.003, 0.01).unwrap();
        let disc = Discretized::from_distribution(&src, 1024).unwrap();
        for x in [1e-4, 1e-3, 3e-3, 1e-2, 5e-2] {
            assert!(
                (disc.cdf(x) - src.cdf(x)).abs() < 2e-3,
                "x = {x}: {} vs {}",
                disc.cdf(x),
                src.cdf(x)
            );
        }
    }

    #[test]
    fn quantile_round_trip() {
        let src = Beta::new(2.0, 30.0).unwrap();
        let disc = Discretized::from_distribution(&src, 512).unwrap();
        for p in [0.05, 0.3, 0.5, 0.9, 0.99] {
            let x = disc.quantile(p).unwrap();
            assert!(approx_eq(disc.cdf(x), p, 1e-6, 1e-6), "p = {p}");
        }
        assert!(disc.quantile(1.5).is_err());
    }

    #[test]
    fn moments_are_snapshotted_exactly() {
        let src = Normal::new(3.0, 2.0).unwrap();
        let disc = Discretized::from_distribution(&src, 128).unwrap();
        assert_eq!(disc.mean(), 3.0);
        assert_eq!(disc.variance(), 4.0);
        assert_eq!(disc.mode(), Some(3.0));
    }

    #[test]
    fn refinement_improves_accuracy() {
        let src = LogNormal::new(-5.0, 1.0).unwrap();
        let coarse = Discretized::from_distribution(&src, 16).unwrap();
        let fine = Discretized::from_distribution(&src, 2048).unwrap();
        let x = src.quantile(0.731).unwrap();
        let e_coarse = (coarse.cdf(x) - 0.731).abs();
        let e_fine = (fine.cdf(x) - 0.731).abs();
        assert!(e_fine <= e_coarse, "{e_fine} vs {e_coarse}");
        assert!(fine.grid_len() > coarse.grid_len());
    }

    #[test]
    fn sampling_matches_source_mean() {
        let src = Beta::new(3.0, 9.0).unwrap();
        let disc = Discretized::from_distribution(&src, 512).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let acc: depcase_numerics::stats::Accumulator =
            disc.sample_n(&mut rng, 30_000).into_iter().collect();
        assert!((acc.mean() - src.mean()).abs() < 0.01);
    }

    #[test]
    fn pdf_is_nonnegative_and_peaks_near_mode() {
        let src = LogNormal::from_mode_sigma(0.003, 0.9).unwrap();
        let disc = Discretized::from_distribution(&src, 1024).unwrap();
        assert!(disc.pdf(0.003) > disc.pdf(0.05));
        assert!(disc.pdf(1e-9) >= 0.0);
    }
}
