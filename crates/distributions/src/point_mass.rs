//! A degenerate distribution: all mass at one point.
//!
//! The building block for the paper's Section 3.4 footnote — "the expert
//! believes there is a probability p₀ that the system is *perfect*
//! (pfd = 0)" is a [`PointMass`] at 0 mixed with a continuous body.

use crate::error::{DistError, Result};
use crate::traits::{Distribution, Support};
use rand::RngCore;

/// A point mass (Dirac) at `at`.
///
/// # Examples
///
/// ```
/// use depcase_distributions::{Distribution, PointMass};
///
/// let perfect = PointMass::new(0.0)?;
/// assert_eq!(perfect.cdf(0.0), 1.0);
/// assert_eq!(perfect.mean(), 0.0);
/// # Ok::<(), depcase_distributions::DistError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointMass {
    at: f64,
}

impl PointMass {
    /// Creates a point mass at `at`.
    ///
    /// # Errors
    ///
    /// [`DistError::InvalidParameter`] for a non-finite location.
    pub fn new(at: f64) -> Result<Self> {
        if !at.is_finite() {
            return Err(DistError::InvalidParameter(format!(
                "PointMass location must be finite, got {at}"
            )));
        }
        Ok(Self { at })
    }

    /// The location of the atom.
    #[must_use]
    pub fn at(&self) -> f64 {
        self.at
    }
}

impl Distribution for PointMass {
    fn support(&self) -> Support {
        Support { lo: self.at, hi: self.at }
    }

    fn pdf(&self, x: f64) -> f64 {
        if x == self.at {
            f64::INFINITY
        } else {
            0.0
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x >= self.at {
            1.0
        } else {
            0.0
        }
    }

    fn quantile(&self, p: f64) -> Result<f64> {
        if !(0.0..=1.0).contains(&p) {
            return Err(DistError::InvalidProbability(p));
        }
        Ok(self.at)
    }

    fn mean(&self) -> f64 {
        self.at
    }

    fn variance(&self) -> f64 {
        0.0
    }

    fn mode(&self) -> Option<f64> {
        Some(self.at)
    }

    fn sample(&self, _rng: &mut dyn RngCore) -> f64 {
        self.at
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validation() {
        assert!(PointMass::new(f64::NAN).is_err());
        assert!(PointMass::new(f64::INFINITY).is_err());
        assert!(PointMass::new(0.0).is_ok());
    }

    #[test]
    fn cdf_is_right_continuous_step() {
        let p = PointMass::new(2.0).unwrap();
        assert_eq!(p.cdf(1.999), 0.0);
        assert_eq!(p.cdf(2.0), 1.0);
        assert_eq!(p.cdf(2.001), 1.0);
    }

    #[test]
    fn density_conventions() {
        let p = PointMass::new(1.0).unwrap();
        assert_eq!(p.pdf(1.0), f64::INFINITY);
        assert_eq!(p.pdf(0.999), 0.0);
    }

    #[test]
    fn all_quantiles_at_atom() {
        let p = PointMass::new(-3.0).unwrap();
        assert_eq!(p.quantile(0.0).unwrap(), -3.0);
        assert_eq!(p.quantile(0.5).unwrap(), -3.0);
        assert_eq!(p.quantile(1.0).unwrap(), -3.0);
        assert!(p.quantile(1.5).is_err());
    }

    #[test]
    fn degenerate_moments_and_sampling() {
        let p = PointMass::new(7.0).unwrap();
        assert_eq!(p.mean(), 7.0);
        assert_eq!(p.variance(), 0.0);
        assert_eq!(p.mode(), Some(7.0));
        let mut rng = StdRng::seed_from_u64(1);
        assert!(p.sample_n(&mut rng, 10).iter().all(|&x| x == 7.0));
    }
}
