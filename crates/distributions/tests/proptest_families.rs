//! Property tests shared by every distribution family: CDF laws,
//! quantile inversion, support discipline, sampling ranges.

use depcase_distributions::{
    Beta, Distribution, Exponential, Gamma, LogNormal, Normal, Triangular, TwoPoint, Uniform,
    Weibull,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn families(seedlings: (f64, f64, f64)) -> Vec<Box<dyn Distribution>> {
    let (a, b, c) = seedlings;
    // Map three raw positives into valid parameters for each family.
    vec![
        Box::new(Normal::new(a - b, 0.1 + c).unwrap()),
        Box::new(LogNormal::new(-(a + 1.0), 0.1 + 0.5 * c).unwrap()),
        Box::new(Gamma::new(0.3 + a, 0.01 + 0.1 * b).unwrap()),
        Box::new(Beta::new(0.3 + a, 0.3 + b).unwrap()),
        Box::new(Uniform::new(-b, -b + 0.5 + c).unwrap()),
        Box::new(Exponential::new(0.1 + a).unwrap()),
        Box::new(Weibull::new(0.3 + a, 0.1 + b).unwrap()),
        Box::new(Triangular::new(0.0, 0.5 * c.min(1.9), 2.0).unwrap()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// CDFs are monotone non-decreasing, bounded in [0,1], and agree
    /// with interval_prob.
    #[test]
    fn cdf_laws(
        a in 0.1f64..4.0,
        b in 0.1f64..4.0,
        c in 0.1f64..2.0,
        x in -5.0f64..5.0,
        dx in 0.0f64..3.0,
    ) {
        for d in families((a, b, c)) {
            let f1 = d.cdf(x);
            let f2 = d.cdf(x + dx);
            prop_assert!((0.0..=1.0).contains(&f1), "{d:?} cdf({x}) = {f1}");
            prop_assert!(f2 >= f1 - 1e-12, "{d:?} not monotone");
            let ip = d.interval_prob(x, x + dx);
            prop_assert!((ip - (f2 - f1)).abs() < 1e-12, "{d:?} interval_prob");
            // sf complements cdf.
            prop_assert!((d.sf(x) + d.cdf(x) - 1.0).abs() < 1e-9, "{d:?} sf");
        }
    }

    /// Quantile and CDF are inverse (up to generalized-inverse slack at
    /// atoms, so only continuous families here).
    #[test]
    fn quantile_round_trip(
        a in 0.1f64..4.0,
        b in 0.1f64..4.0,
        c in 0.1f64..2.0,
        p in 0.01f64..0.99,
    ) {
        for d in families((a, b, c)) {
            let q = d.quantile(p).unwrap();
            let back = d.cdf(q);
            prop_assert!((back - p).abs() < 1e-6, "{d:?}: p = {p}, back = {back}");
        }
    }

    /// Quantiles are monotone in the level.
    #[test]
    fn quantile_monotone(
        a in 0.1f64..4.0,
        b in 0.1f64..4.0,
        c in 0.1f64..2.0,
        p1 in 0.01f64..0.98,
        dp in 0.001f64..0.01,
    ) {
        for d in families((a, b, c)) {
            let q1 = d.quantile(p1).unwrap();
            let q2 = d.quantile(p1 + dp).unwrap();
            prop_assert!(q2 >= q1 - 1e-12, "{d:?}");
        }
    }

    /// Samples land inside the support; the pdf is non-negative there.
    #[test]
    fn samples_in_support(
        a in 0.1f64..4.0,
        b in 0.1f64..4.0,
        c in 0.1f64..2.0,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        for d in families((a, b, c)) {
            let s = d.support();
            for x in d.sample_n(&mut rng, 32) {
                prop_assert!(s.contains(x), "{d:?}: sample {x} outside [{}, {}]", s.lo, s.hi);
                prop_assert!(d.pdf(x) >= 0.0);
            }
        }
    }

    /// Two-point laws: mean interpolates the atoms, cdf steps at them.
    #[test]
    fn two_point_laws(y in 0.0f64..0.5, x in 0.0f64..1.0) {
        let w = TwoPoint::worst_case(y, x).unwrap();
        prop_assert!(w.mean() >= y - 1e-15);
        prop_assert!(w.mean() <= 1.0);
        prop_assert!((w.cdf(y) - (1.0 - x)).abs() < 1e-15);
        prop_assert!((w.cdf(1.0) - 1.0).abs() < 1e-15);
    }

    /// The generic numeric mean agrees with each family's closed form
    /// (where the support is manageable).
    #[test]
    fn numeric_mean_agrees(
        a in 0.3f64..3.0,
        b in 0.3f64..3.0,
    ) {
        let gam = Gamma::new(a + 1.0, 0.1 * b).unwrap();
        let num = depcase_distributions::moments::numeric_mean(&gam, 1e-11).unwrap();
        prop_assert!((num - gam.mean()).abs() < 1e-4 * gam.mean());
        // Bounded-density betas only: endpoint singularities (shape < 1)
        // are integrable but defeat tight quadrature tolerances.
        let bet = Beta::new(a + 1.0, b + 1.0).unwrap();
        let num = depcase_distributions::moments::numeric_mean(&bet, 1e-11).unwrap();
        prop_assert!((num - bet.mean()).abs() < 1e-6);
    }
}
