//! Property tests for the special-function kernels.

use depcase_numerics::special::{
    erf, erfc, inv_erf, inv_erfc, ln_gamma, norm_cdf, norm_quantile, reg_gamma_p, reg_gamma_q,
    reg_inc_beta,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn erf_is_odd_and_bounded(x in -6.0f64..6.0) {
        prop_assert!((erf(x) + erf(-x)).abs() < 1e-14);
        prop_assert!(erf(x).abs() <= 1.0);
    }

    #[test]
    fn erf_is_monotone(x in -6.0f64..6.0, dx in 1e-6f64..1.0) {
        prop_assert!(erf(x + dx) >= erf(x));
    }

    #[test]
    fn erf_erfc_complement(x in -6.0f64..6.0) {
        prop_assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-13);
    }

    #[test]
    fn inv_erf_round_trip(x in -0.9999f64..0.9999) {
        prop_assert!((erf(inv_erf(x)) - x).abs() < 1e-10);
    }

    #[test]
    fn inv_erfc_round_trip(log_x in -250.0f64..-0.01) {
        let x = log_x.exp();
        let y = inv_erfc(x);
        let back = erfc(y);
        prop_assert!((back / x - 1.0).abs() < 1e-7, "x = {x:e}, back = {back:e}");
    }

    #[test]
    fn norm_quantile_cdf_round_trip(p in 1e-10f64..1.0) {
        let p = p.min(1.0 - 1e-10);
        let z = norm_quantile(p);
        prop_assert!((norm_cdf(z) - p).abs() < 1e-10);
    }

    #[test]
    fn ln_gamma_recurrence(x in 0.1f64..50.0) {
        // ln Γ(x+1) = ln Γ(x) + ln x
        let lhs = ln_gamma(x + 1.0);
        let rhs = ln_gamma(x) + x.ln();
        prop_assert!((lhs - rhs).abs() < 1e-10 * lhs.abs().max(1.0));
    }

    #[test]
    fn gamma_p_q_sum_to_one(a in 0.1f64..50.0, x in 0.0f64..100.0) {
        let p = reg_gamma_p(a, x).unwrap();
        let q = reg_gamma_q(a, x).unwrap();
        prop_assert!((p + q - 1.0).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn gamma_p_monotone_in_x(a in 0.1f64..20.0, x in 0.0f64..50.0, dx in 1e-4f64..5.0) {
        let p1 = reg_gamma_p(a, x).unwrap();
        let p2 = reg_gamma_p(a, x + dx).unwrap();
        prop_assert!(p2 >= p1 - 1e-13);
    }

    #[test]
    fn inc_beta_symmetry(a in 0.2f64..20.0, b in 0.2f64..20.0, x in 0.0f64..1.0) {
        let lhs = reg_inc_beta(a, b, x).unwrap();
        let rhs = 1.0 - reg_inc_beta(b, a, 1.0 - x).unwrap();
        prop_assert!((lhs - rhs).abs() < 1e-10);
    }

    #[test]
    fn inc_beta_monotone(a in 0.2f64..20.0, b in 0.2f64..20.0, x in 0.0f64..0.99) {
        let p1 = reg_inc_beta(a, b, x).unwrap();
        let p2 = reg_inc_beta(a, b, (x + 0.01).min(1.0)).unwrap();
        prop_assert!(p2 >= p1 - 1e-13);
    }
}
