//! Property tests for quadrature and root finding.

use depcase_numerics::integrate::{adaptive_simpson, GaussLegendre};
use depcase_numerics::roots::{bisect, brent, RootConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Adaptive Simpson integrates random cubics exactly (up to
    /// tolerance): Simpson is exact on cubics.
    #[test]
    fn simpson_exact_on_cubics(
        c0 in -5.0f64..5.0,
        c1 in -5.0f64..5.0,
        c2 in -5.0f64..5.0,
        c3 in -5.0f64..5.0,
        a in -3.0f64..0.0,
        b in 0.1f64..3.0,
    ) {
        let f = |x: f64| c0 + c1 * x + c2 * x * x + c3 * x * x * x;
        let anti = |x: f64| c0 * x + c1 * x * x / 2.0 + c2 * x * x * x / 3.0 + c3 * x * x * x * x / 4.0;
        let r = adaptive_simpson(f, a, b, 1e-11).unwrap();
        let truth = anti(b) - anti(a);
        prop_assert!((r.value - truth).abs() < 1e-8 * truth.abs().max(1.0));
    }

    /// Additivity: ∫ₐᵇ = ∫ₐᵐ + ∫ₘᵇ.
    #[test]
    fn simpson_additive(
        a in -2.0f64..0.0,
        b in 0.1f64..2.0,
        t in 0.1f64..0.9,
    ) {
        let m = a + t * (b - a);
        let f = |x: f64| (x * 1.3).sin() + 0.2 * x;
        let whole = adaptive_simpson(f, a, b, 1e-11).unwrap().value;
        let parts = adaptive_simpson(f, a, m, 1e-11).unwrap().value
            + adaptive_simpson(f, m, b, 1e-11).unwrap().value;
        prop_assert!((whole - parts).abs() < 1e-8);
    }

    /// Gauss–Legendre of order n is exact for monomials up to 2n−1.
    #[test]
    fn gauss_exactness_degree(n in 2usize..12, k in 0usize..8) {
        prop_assume!(k < 2 * n);
        let rule = GaussLegendre::new(n).unwrap();
        let v = rule.integrate(|x| x.powi(k as i32), -1.0, 1.0);
        let truth = if k % 2 == 1 { 0.0 } else { 2.0 / (k as f64 + 1.0) };
        prop_assert!((v - truth).abs() < 1e-11, "n = {n}, k = {k}: {v} vs {truth}");
    }

    /// Brent agrees with bisection on monotone functions.
    #[test]
    fn brent_matches_bisect(root in -5.0f64..5.0, scale in 0.1f64..4.0) {
        let f = move |x: f64| scale * (x - root) + 0.3 * (x - root).powi(3);
        let cfg = RootConfig { x_tol: 1e-12, f_tol: 0.0, max_iter: 300 };
        let rb = brent(f, root - 7.0, root + 9.0, cfg).unwrap();
        let ri = bisect(f, root - 7.0, root + 9.0, cfg).unwrap();
        prop_assert!((rb - root).abs() < 1e-8);
        prop_assert!((rb - ri).abs() < 1e-7);
    }

    /// Brent residual is tiny at the reported root.
    #[test]
    fn brent_residual_small(root in -3.0f64..3.0) {
        let f = move |x: f64| (x - root).tanh();
        let cfg = RootConfig { x_tol: 1e-13, f_tol: 0.0, max_iter: 300 };
        let r = brent(f, root - 2.0, root + 5.0, cfg).unwrap();
        prop_assert!(f(r).abs() < 1e-10);
    }
}
