//! Gauss–Legendre quadrature with nodes computed at construction time.

use crate::error::{NumericsError, Result};

/// A Gauss–Legendre rule of fixed order.
///
/// Nodes and weights on the canonical interval `[-1, 1]` are computed once
/// by Newton iteration on the Legendre polynomial (the classic `gauleg`
/// construction) and reused across integrations — the cheap path for the
/// repeated band-probability integrals in the benchmark harness.
///
/// # Examples
///
/// ```
/// use depcase_numerics::integrate::GaussLegendre;
///
/// let rule = GaussLegendre::new(16)?;
/// let v = rule.integrate(|x| x.exp(), 0.0, 1.0);
/// assert!((v - (std::f64::consts::E - 1.0)).abs() < 1e-12);
/// # Ok::<(), depcase_numerics::NumericsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GaussLegendre {
    nodes: Vec<f64>,
    weights: Vec<f64>,
}

impl GaussLegendre {
    /// Builds a rule with `n` nodes (`n >= 1`).
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::Domain`] for `n == 0` and
    /// [`NumericsError::NoConvergence`] if a node's Newton iteration fails
    /// (not observed for n ≤ several thousand).
    pub fn new(n: usize) -> Result<Self> {
        if n == 0 {
            return Err(NumericsError::Domain("Gauss-Legendre order must be >= 1".into()));
        }
        let mut nodes = vec![0.0; n];
        let mut weights = vec![0.0; n];
        let m = n.div_ceil(2);
        for i in 0..m {
            // Chebyshev-based initial guess for the i-th root.
            let mut z = (std::f64::consts::PI * (i as f64 + 0.75) / (n as f64 + 0.5)).cos();
            let mut pp = 0.0;
            let mut converged = false;
            for _ in 0..100 {
                // Evaluate P_n(z) and P'_n(z) by the three-term recurrence.
                let mut p1 = 1.0;
                let mut p2 = 0.0;
                for j in 0..n {
                    let p3 = p2;
                    p2 = p1;
                    p1 = ((2.0 * j as f64 + 1.0) * z * p2 - j as f64 * p3) / (j as f64 + 1.0);
                }
                pp = n as f64 * (z * p1 - p2) / (z * z - 1.0);
                let z1 = z;
                z = z1 - p1 / pp;
                if (z - z1).abs() < 1e-15 {
                    converged = true;
                    break;
                }
            }
            if !converged {
                return Err(NumericsError::NoConvergence {
                    routine: "gauss_legendre_nodes",
                    max_iter: 100,
                });
            }
            nodes[i] = -z;
            nodes[n - 1 - i] = z;
            let w = 2.0 / ((1.0 - z * z) * pp * pp);
            weights[i] = w;
            weights[n - 1 - i] = w;
        }
        Ok(Self { nodes, weights })
    }

    /// Number of nodes in the rule.
    #[must_use]
    pub fn order(&self) -> usize {
        self.nodes.len()
    }

    /// Nodes on the canonical interval `[-1, 1]`, ascending.
    #[must_use]
    pub fn nodes(&self) -> &[f64] {
        &self.nodes
    }

    /// Weights matching [`GaussLegendre::nodes`].
    #[must_use]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Integrates `f` over `[a, b]` with this rule.
    ///
    /// Exact for polynomials of degree `2n − 1`; no error estimate is
    /// produced (use [`crate::integrate::adaptive_simpson`] when error
    /// control matters).
    pub fn integrate<F>(&self, f: F, a: f64, b: f64) -> f64
    where
        F: Fn(f64) -> f64,
    {
        let half = 0.5 * (b - a);
        let mid = 0.5 * (a + b);
        let mut acc = 0.0;
        for (&x, &w) in self.nodes.iter().zip(&self.weights) {
            let v = f(mid + half * x);
            if v.is_finite() {
                acc += w * v;
            }
        }
        acc * half
    }

    /// Integrates `f` over `[a, b]` split into `panels` equal panels,
    /// applying the rule on each — a cheap way to raise accuracy for
    /// integrands rougher than the rule order handles.
    pub fn integrate_composite<F>(&self, f: F, a: f64, b: f64, panels: usize) -> f64
    where
        F: Fn(f64) -> f64,
    {
        let panels = panels.max(1);
        let h = (b - a) / panels as f64;
        (0..panels)
            .map(|i| {
                let lo = a + i as f64 * h;
                self.integrate(&f, lo, lo + h)
            })
            .sum()
    }
}

/// One-shot Gauss–Legendre integration of order `n` over `[a, b]`.
///
/// Prefer constructing a [`GaussLegendre`] rule once when integrating
/// repeatedly.
///
/// # Errors
///
/// Same conditions as [`GaussLegendre::new`].
///
/// # Examples
///
/// ```
/// use depcase_numerics::integrate::gauss_legendre;
///
/// let v = gauss_legendre(|x| x.powi(3), -1.0, 1.0, 8)?;
/// assert!(v.abs() < 1e-15); // odd integrand over symmetric interval
/// # Ok::<(), depcase_numerics::NumericsError>(())
/// ```
pub fn gauss_legendre<F>(f: F, a: f64, b: f64, n: usize) -> Result<f64>
where
    F: Fn(f64) -> f64,
{
    Ok(GaussLegendre::new(n)?.integrate(f, a, b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::float::approx_eq;

    #[test]
    fn order_zero_rejected() {
        assert!(GaussLegendre::new(0).is_err());
    }

    #[test]
    fn nodes_symmetric_and_weights_sum_to_two() {
        for n in [1, 2, 3, 5, 8, 16, 33] {
            let rule = GaussLegendre::new(n).unwrap();
            assert_eq!(rule.order(), n);
            let wsum: f64 = rule.weights().iter().sum();
            assert!(approx_eq(wsum, 2.0, 1e-12, 1e-12), "n = {n}: weights sum {wsum}");
            for (i, &x) in rule.nodes().iter().enumerate() {
                let mirror = rule.nodes()[n - 1 - i];
                assert!(approx_eq(x, -mirror, 1e-12, 1e-12), "n = {n}: node symmetry");
            }
        }
    }

    #[test]
    fn known_nodes_order_two() {
        let rule = GaussLegendre::new(2).unwrap();
        let inv_sqrt3 = 1.0 / 3.0_f64.sqrt();
        assert!(approx_eq(rule.nodes()[0], -inv_sqrt3, 1e-14, 1e-14));
        assert!(approx_eq(rule.nodes()[1], inv_sqrt3, 1e-14, 1e-14));
        assert!(approx_eq(rule.weights()[0], 1.0, 1e-14, 1e-14));
    }

    #[test]
    fn exact_for_degree_2n_minus_1() {
        // Order 4 is exact for degree-7 polynomials.
        let rule = GaussLegendre::new(4).unwrap();
        let v = rule.integrate(|x| x.powi(7) + x.powi(6), -1.0, 1.0);
        assert!(approx_eq(v, 2.0 / 7.0, 1e-13, 1e-14), "got {v}");
    }

    #[test]
    fn general_interval() {
        let rule = GaussLegendre::new(20).unwrap();
        let v = rule.integrate(f64::exp, 1.0, 3.0);
        assert!(approx_eq(v, 3.0_f64.exp() - 1.0_f64.exp(), 1e-13, 1e-13));
    }

    #[test]
    fn composite_converges_on_oscillatory_integrand() {
        let rule = GaussLegendre::new(8).unwrap();
        let v = rule.integrate_composite(|x| (20.0 * x).sin(), 0.0, 1.0, 16);
        let truth = (1.0 - (20.0_f64).cos()) / 20.0;
        assert!(approx_eq(v, truth, 1e-10, 1e-10), "got {v}, want {truth}");
    }

    #[test]
    fn composite_zero_panels_treated_as_one() {
        let rule = GaussLegendre::new(8).unwrap();
        let a = rule.integrate_composite(|x| x, 0.0, 1.0, 0);
        let b = rule.integrate(|x| x, 0.0, 1.0);
        assert!(approx_eq(a, b, 1e-15, 1e-15));
    }

    #[test]
    fn one_shot_helper() {
        let v = gauss_legendre(|x| x * x, 0.0, 3.0, 10).unwrap();
        assert!(approx_eq(v, 9.0, 1e-12, 1e-12));
    }
}
