//! Adaptive Simpson quadrature with error control.

use crate::error::{NumericsError, Result};

/// Result of a quadrature: the integral estimate together with an error
/// estimate and the number of integrand evaluations spent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuadratureResult {
    /// Estimated value of the integral.
    pub value: f64,
    /// Estimated absolute error of [`QuadratureResult::value`].
    pub error_estimate: f64,
    /// Number of integrand evaluations performed.
    pub evaluations: usize,
}

const MAX_DEPTH: usize = 60;

/// One panel of Simpson's rule over `[a, b]` given endpoint/midpoint values.
fn simpson_panel(fa: f64, fm: f64, fb: f64, h: f64) -> f64 {
    h / 6.0 * (fa + 4.0 * fm + fb)
}

struct Adaptive<'f, F> {
    f: &'f F,
    evals: usize,
    err_acc: f64,
}

impl<F: Fn(f64) -> f64> Adaptive<'_, F> {
    fn eval(&mut self, x: f64) -> f64 {
        self.evals += 1;
        let v = (self.f)(x);
        if v.is_finite() {
            v
        } else {
            0.0
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn recurse(
        &mut self,
        a: f64,
        b: f64,
        fa: f64,
        fm: f64,
        fb: f64,
        whole: f64,
        tol: f64,
        depth: usize,
    ) -> f64 {
        let m = 0.5 * (a + b);
        let lm = 0.5 * (a + m);
        let rm = 0.5 * (m + b);
        let flm = self.eval(lm);
        let frm = self.eval(rm);
        let left = simpson_panel(fa, flm, fm, m - a);
        let right = simpson_panel(fm, frm, fb, b - m);
        let delta = left + right - whole;
        // Richardson: error of the refined estimate ≈ delta / 15. Also
        // stop at the machine-precision floor — when the disagreement is
        // at rounding level relative to the panel's own magnitude (or the
        // panel has collapsed to adjacent floats), further refinement
        // cannot improve the estimate and would only recurse to the depth
        // cap on every sub-panel.
        let scale = left.abs() + right.abs();
        if depth >= MAX_DEPTH
            || delta.abs() <= 15.0 * tol
            || delta.abs() <= 64.0 * f64::EPSILON * scale
            || (b - a) <= f64::EPSILON * (a.abs() + b.abs())
        {
            self.err_acc += delta.abs() / 15.0;
            return left + right + delta / 15.0;
        }
        self.recurse(a, m, fa, flm, fm, left, 0.5 * tol, depth + 1)
            + self.recurse(m, b, fm, frm, fb, right, 0.5 * tol, depth + 1)
    }
}

/// Adaptive Simpson integration of `f` over the finite interval `[a, b]`
/// to absolute tolerance `tol`.
///
/// Non-finite integrand values are treated as zero (integrable endpoint
/// singularities of probability densities then behave sensibly).
/// Reversed limits negate the result, matching the Riemann convention.
///
/// # Errors
///
/// Returns [`NumericsError::Domain`] if a limit is NaN or `tol` is not
/// positive-finite.
///
/// # Examples
///
/// ```
/// use depcase_numerics::integrate::adaptive_simpson;
///
/// let r = adaptive_simpson(|x| x * x, 0.0, 1.0, 1e-12)?;
/// assert!((r.value - 1.0 / 3.0).abs() < 1e-10);
/// # Ok::<(), depcase_numerics::NumericsError>(())
/// ```
pub fn adaptive_simpson<F>(f: F, a: f64, b: f64, tol: f64) -> Result<QuadratureResult>
where
    F: Fn(f64) -> f64,
{
    if a.is_nan() || b.is_nan() || !(tol > 0.0) || !tol.is_finite() {
        return Err(NumericsError::Domain(format!(
            "adaptive_simpson requires finite limits and tol > 0; got a = {a}, b = {b}, tol = {tol}"
        )));
    }
    if a == b {
        return Ok(QuadratureResult { value: 0.0, error_estimate: 0.0, evaluations: 0 });
    }
    if a > b {
        let mut r = adaptive_simpson(f, b, a, tol)?;
        r.value = -r.value;
        return Ok(r);
    }

    let mut ctx = Adaptive { f: &f, evals: 0, err_acc: 0.0 };
    // Seed the recursion with several initial panels so narrow features
    // between the first sample points cannot be missed entirely.
    const SEED_PANELS: usize = 8;
    let h = (b - a) / SEED_PANELS as f64;
    let mut value = 0.0;
    let panel_tol = tol / SEED_PANELS as f64;
    for i in 0..SEED_PANELS {
        let lo = a + i as f64 * h;
        let hi = if i + 1 == SEED_PANELS { b } else { lo + h };
        let flo = ctx.eval(lo);
        let m = 0.5 * (lo + hi);
        let fm = ctx.eval(m);
        let fhi = ctx.eval(hi);
        let whole = simpson_panel(flo, fm, fhi, hi - lo);
        value += ctx.recurse(lo, hi, flo, fm, fhi, whole, panel_tol, 0);
    }
    Ok(QuadratureResult { value, error_estimate: ctx.err_acc, evaluations: ctx.evals })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::float::approx_eq;

    #[test]
    fn polynomial_exact() {
        // Simpson is exact on cubics; the adaptive wrapper should nail it.
        let r = adaptive_simpson(|x| 3.0 * x * x + 2.0 * x + 1.0, -1.0, 2.0, 1e-12).unwrap();
        // ∫ = x³ + x² + x from −1 to 2 = (8+4+2) − (−1+1−1) = 15
        assert!(approx_eq(r.value, 15.0, 1e-12, 1e-12));
    }

    #[test]
    fn transcendental() {
        let r = adaptive_simpson(f64::sin, 0.0, std::f64::consts::PI, 1e-12).unwrap();
        assert!(approx_eq(r.value, 2.0, 1e-10, 1e-10), "got {}", r.value);
    }

    #[test]
    fn sharp_peak_requires_adaptivity() {
        // Narrow Gaussian bump at 0.37: σ = 1e-3.
        let s = 1e-3_f64;
        let c = 0.37;
        let norm = 1.0 / (s * (2.0 * std::f64::consts::PI).sqrt());
        let f = |x: f64| norm * (-0.5 * ((x - c) / s).powi(2)).exp();
        let r = adaptive_simpson(f, 0.0, 1.0, 1e-10).unwrap();
        assert!(approx_eq(r.value, 1.0, 1e-7, 1e-7), "got {}", r.value);
        assert!(r.evaluations > 100, "peak should force refinement");
    }

    #[test]
    fn zero_width_interval() {
        let r = adaptive_simpson(|x| x.exp(), 2.0, 2.0, 1e-10).unwrap();
        assert_eq!(r.value, 0.0);
        assert_eq!(r.evaluations, 0);
    }

    #[test]
    fn reversed_limits_negate() {
        let fwd = adaptive_simpson(|x| x, 0.0, 1.0, 1e-12).unwrap();
        let rev = adaptive_simpson(|x| x, 1.0, 0.0, 1e-12).unwrap();
        assert!(approx_eq(fwd.value, -rev.value, 1e-14, 1e-15));
    }

    #[test]
    fn integrable_endpoint_singularity_is_tolerated() {
        // 1/sqrt(x) on (0, 1] integrates to 2; f(0) = inf is zeroed.
        let r = adaptive_simpson(|x| 1.0 / x.sqrt(), 0.0, 1.0, 1e-10).unwrap();
        assert!(approx_eq(r.value, 2.0, 1e-3, 1e-3), "got {}", r.value);
    }

    #[test]
    fn domain_errors() {
        assert!(adaptive_simpson(|x| x, f64::NAN, 1.0, 1e-9).is_err());
        assert!(adaptive_simpson(|x| x, 0.0, 1.0, 0.0).is_err());
        assert!(adaptive_simpson(|x| x, 0.0, 1.0, -1.0).is_err());
        assert!(adaptive_simpson(|x| x, 0.0, 1.0, f64::INFINITY).is_err());
    }

    #[test]
    fn error_estimate_bounds_true_error() {
        let r = adaptive_simpson(|x| (5.0 * x).cos(), 0.0, 2.0, 1e-9).unwrap();
        let truth = (10.0_f64).sin() / 5.0;
        assert!((r.value - truth).abs() <= (r.error_estimate + 1e-12) * 10.0 + 1e-9);
    }
}
