//! Numerical quadrature.
//!
//! Band-membership probabilities in the paper are integrals of belief
//! densities over SIL bands; means are first moments of those densities.
//! Two complementary engines are provided:
//!
//! - [`adaptive_simpson`] — robust, error-controlled, good default for
//!   the smooth unimodal densities used throughout the workspace;
//! - [`gauss_legendre`] / [`GaussLegendre`] — fixed-order rules with
//!   precomputable nodes, used on hot paths (benchmarked in
//!   `depcase-bench` as an ablation).
//!
//! [`integrate_to_infinity`] and [`integrate_real_line`] handle improper
//! intervals through algebraic variable changes.

mod gauss;
mod simpson;

pub use gauss::{gauss_legendre, GaussLegendre};
pub use simpson::{adaptive_simpson, QuadratureResult};

use crate::error::Result;

/// Integrates `f` over `[a, ∞)` by mapping `x = a + t/(1−t)` onto
/// `t ∈ [0, 1)` and applying adaptive Simpson.
///
/// The integrand must decay fast enough for the transformed integrand to
/// vanish as `t → 1` (any density with finite mean qualifies).
///
/// # Errors
///
/// Propagates quadrature failures from [`adaptive_simpson`].
///
/// # Examples
///
/// ```
/// use depcase_numerics::integrate::integrate_to_infinity;
///
/// // ∫₀^∞ e^{−x} dx = 1
/// let v = integrate_to_infinity(|x| (-x).exp(), 0.0, 1e-10)?;
/// assert!((v.value - 1.0).abs() < 1e-8);
/// # Ok::<(), depcase_numerics::NumericsError>(())
/// ```
pub fn integrate_to_infinity<F>(f: F, a: f64, tol: f64) -> Result<QuadratureResult>
where
    F: Fn(f64) -> f64,
{
    let g = move |t: f64| {
        if t >= 1.0 {
            return 0.0;
        }
        let one_minus = 1.0 - t;
        let x = a + t / one_minus;
        let jac = 1.0 / (one_minus * one_minus);
        let v = f(x) * jac;
        if v.is_finite() {
            v
        } else {
            0.0
        }
    };
    adaptive_simpson(g, 0.0, 1.0, tol)
}

/// Integrates `f` over the whole real line via `x = t/(1−t²)`,
/// `t ∈ (−1, 1)`.
///
/// # Errors
///
/// Propagates quadrature failures from [`adaptive_simpson`].
///
/// # Examples
///
/// ```
/// use depcase_numerics::integrate::integrate_real_line;
///
/// // ∫ φ(x) dx = 1 for the standard normal density.
/// let phi = |x: f64| (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt();
/// let v = integrate_real_line(phi, 1e-10)?;
/// assert!((v.value - 1.0).abs() < 1e-8);
/// # Ok::<(), depcase_numerics::NumericsError>(())
/// ```
pub fn integrate_real_line<F>(f: F, tol: f64) -> Result<QuadratureResult>
where
    F: Fn(f64) -> f64,
{
    let g = move |t: f64| {
        if t.abs() >= 1.0 {
            return 0.0;
        }
        let d = 1.0 - t * t;
        let x = t / d;
        let jac = (1.0 + t * t) / (d * d);
        let v = f(x) * jac;
        if v.is_finite() {
            v
        } else {
            0.0
        }
    };
    adaptive_simpson(g, -1.0, 1.0, tol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::float::approx_eq;

    #[test]
    fn improper_gaussian_moment() {
        // ∫₀^∞ x e^{−x²/2} dx = 1
        let v = integrate_to_infinity(|x| x * (-0.5 * x * x).exp(), 0.0, 1e-11).unwrap();
        assert!(approx_eq(v.value, 1.0, 1e-8, 1e-8), "got {}", v.value);
    }

    #[test]
    fn improper_shifted_lower_limit() {
        // ∫₂^∞ e^{−x} dx = e^{−2}
        let v = integrate_to_infinity(|x| (-x).exp(), 2.0, 1e-11).unwrap();
        assert!(approx_eq(v.value, (-2.0_f64).exp(), 1e-8, 1e-10));
    }

    #[test]
    fn real_line_cauchy_like_fails_gracefully_or_converges() {
        // Integrand with finite integral: 1/(1+x²), ∫ = π.
        let v = integrate_real_line(|x| 1.0 / (1.0 + x * x), 1e-9).unwrap();
        assert!(approx_eq(v.value, std::f64::consts::PI, 1e-6, 1e-6), "got {}", v.value);
    }
}
