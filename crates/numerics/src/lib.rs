//! Numerical substrate for the `depcase` workspace.
//!
//! The DSN'07 paper this workspace reproduces ("Confidence: its role in
//! dependability cases for risk assessment", Bloomfield, Littlewood &
//! Wright) rests on elementary but precise probability computations:
//! log-normal and gamma tail probabilities, quantile inversion, and
//! integrals of belief densities over safety-integrity bands. Rust's
//! probabilistic ecosystem is thin, so this crate provides the required
//! machinery from scratch:
//!
//! - [`special`] — error function family, (incomplete) gamma and beta
//!   functions with inverses, digamma/trigamma;
//! - [`integrate`] — adaptive Simpson and Gauss–Legendre quadrature, with
//!   transforms for improper intervals;
//! - [`roots`] — bisection, Brent, and safeguarded Newton root finding;
//! - [`optimize`] — golden-section minimization;
//! - [`interp`] — interpolation over tabulated monotone data;
//! - [`stats`] — descriptive statistics, ECDF and histograms;
//! - [`float`] — floating-point comparison and log-space helpers.
//!
//! # Examples
//!
//! Confidence that a log-normally distributed failure rate is below a
//! bound reduces to an error-function evaluation:
//!
//! ```
//! use depcase_numerics::special::erf;
//!
//! // P(Z < z) for a standard normal Z.
//! let z = 1.0_f64;
//! let phi = 0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2));
//! assert!((phi - 0.841344746).abs() < 1e-8);
//! ```

// `!(x > 0.0)`-style checks deliberately treat NaN as invalid input; the
// lint's suggested `x <= 0.0` would let NaN through the validation.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
// Reference constants are quoted at full printed precision.
#![allow(clippy::excessive_precision)]
#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod error;
pub mod float;
pub mod integrate;
pub mod interp;
pub mod optimize;
pub mod roots;
pub mod special;
pub mod stats;

pub use error::NumericsError;
