//! Floating-point comparison and log-space helpers.

/// Returns `true` when `a` and `b` are equal within a combined
/// relative/absolute tolerance.
///
/// Two values compare equal when `|a - b| <= abs_tol + rel_tol * max(|a|, |b|)`.
/// This is the comparison used throughout the workspace's tests and
/// convergence checks.
///
/// # Examples
///
/// ```
/// use depcase_numerics::float::approx_eq;
///
/// assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-9, 1e-9));
/// assert!(!approx_eq(1.0, 1.1, 1e-9, 1e-9));
/// ```
#[must_use]
pub fn approx_eq(a: f64, b: f64, rel_tol: f64, abs_tol: f64) -> bool {
    if a == b {
        return true;
    }
    if !a.is_finite() || !b.is_finite() {
        return false;
    }
    (a - b).abs() <= abs_tol + rel_tol * a.abs().max(b.abs())
}

/// Numerically stable `ln(exp(a) + exp(b))`.
///
/// # Examples
///
/// ```
/// use depcase_numerics::float::log_add_exp;
///
/// let s = log_add_exp(-1000.0, -1000.0);
/// assert!((s - (-1000.0 + std::f64::consts::LN_2)).abs() < 1e-12);
/// ```
#[must_use]
pub fn log_add_exp(a: f64, b: f64) -> f64 {
    if a == f64::NEG_INFINITY {
        return b;
    }
    if b == f64::NEG_INFINITY {
        return a;
    }
    let m = a.max(b);
    m + ((a - m).exp() + (b - m).exp()).ln()
}

/// Numerically stable `ln(sum_i exp(x_i))` over a slice.
///
/// Returns negative infinity for an empty slice (the log of an empty sum).
///
/// # Examples
///
/// ```
/// use depcase_numerics::float::log_sum_exp;
///
/// let xs = [-1000.0, -1000.0, -1000.0, -1000.0];
/// assert!((log_sum_exp(&xs) - (-1000.0 + 4.0_f64.ln())).abs() < 1e-12);
/// ```
#[must_use]
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let m = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if m == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    m + xs.iter().map(|&x| (x - m).exp()).sum::<f64>().ln()
}

/// Clamps `x` into the closed unit interval `[0, 1]`.
///
/// Useful after probability arithmetic that may stray slightly outside the
/// unit interval through rounding.
#[must_use]
pub fn clamp_unit(x: f64) -> f64 {
    x.clamp(0.0, 1.0)
}

/// Returns `true` when `x` is a valid probability: finite and in `[0, 1]`.
#[must_use]
pub fn is_probability(x: f64) -> bool {
    x.is_finite() && (0.0..=1.0).contains(&x)
}

/// Computes `ln(1 - exp(x))` for `x < 0` without catastrophic cancellation.
///
/// Uses the standard split at `ln 2` recommended by Mächler's `log1mexp`
/// note: `ln(-expm1(x))` for `x > -ln 2`, `ln1p(-exp(x))` otherwise.
///
/// # Panics
///
/// Does not panic; returns NaN for `x > 0` (where `1 - e^x` is negative).
#[must_use]
pub fn log1m_exp(x: f64) -> f64 {
    if x >= 0.0 {
        if x == 0.0 {
            return f64::NEG_INFINITY;
        }
        return f64::NAN;
    }
    if x > -std::f64::consts::LN_2 {
        (-x.exp_m1()).ln()
    } else {
        (-x.exp()).ln_1p()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_exact() {
        assert!(approx_eq(0.0, 0.0, 0.0, 0.0));
        assert!(approx_eq(f64::INFINITY, f64::INFINITY, 1e-9, 1e-9));
    }

    #[test]
    fn approx_eq_nan_is_never_equal() {
        assert!(!approx_eq(f64::NAN, f64::NAN, 1e-9, 1e-9));
        assert!(!approx_eq(f64::NAN, 1.0, 1e-9, 1e-9));
    }

    #[test]
    fn approx_eq_infinities_of_opposite_sign() {
        assert!(!approx_eq(f64::INFINITY, f64::NEG_INFINITY, 1e-9, 1e-9));
    }

    #[test]
    fn log_add_exp_handles_neg_infinity() {
        assert_eq!(log_add_exp(f64::NEG_INFINITY, -3.0), -3.0);
        assert_eq!(log_add_exp(-3.0, f64::NEG_INFINITY), -3.0);
        assert_eq!(log_add_exp(f64::NEG_INFINITY, f64::NEG_INFINITY), f64::NEG_INFINITY);
    }

    #[test]
    fn log_add_exp_matches_direct_in_safe_range() {
        let a = -2.0_f64;
        let b = 0.5_f64;
        let direct = (a.exp() + b.exp()).ln();
        assert!(approx_eq(log_add_exp(a, b), direct, 1e-12, 1e-12));
    }

    #[test]
    fn log_sum_exp_empty_is_neg_infinity() {
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn log_sum_exp_single() {
        assert!(approx_eq(log_sum_exp(&[-5.0]), -5.0, 1e-15, 1e-15));
    }

    #[test]
    fn clamp_unit_clamps() {
        assert_eq!(clamp_unit(-0.1), 0.0);
        assert_eq!(clamp_unit(1.1), 1.0);
        assert_eq!(clamp_unit(0.4), 0.4);
    }

    #[test]
    fn is_probability_checks_range_and_finiteness() {
        assert!(is_probability(0.0));
        assert!(is_probability(1.0));
        assert!(is_probability(0.5));
        assert!(!is_probability(-0.01));
        assert!(!is_probability(1.01));
        assert!(!is_probability(f64::NAN));
        assert!(!is_probability(f64::INFINITY));
    }

    #[test]
    fn log1m_exp_agrees_with_naive_in_safe_range() {
        for &x in &[-0.1_f64, -0.5, -1.0, -3.0, -10.0] {
            let naive = (1.0 - x.exp()).ln();
            assert!(approx_eq(log1m_exp(x), naive, 1e-10, 1e-12), "x={x}");
        }
    }

    #[test]
    fn log1m_exp_at_zero() {
        assert_eq!(log1m_exp(0.0), f64::NEG_INFINITY);
    }

    #[test]
    fn log1m_exp_positive_is_nan() {
        assert!(log1m_exp(0.5).is_nan());
    }

    #[test]
    fn log1m_exp_tiny_argument_is_accurate() {
        // 1 - exp(-1e-12) ≈ 1e-12; the naive form loses all precision.
        let x = -1e-12;
        let v = log1m_exp(x);
        assert!(approx_eq(v, (1e-12_f64).ln(), 1e-6, 0.0));
    }
}
