//! Scalar root finding: bisection, Brent's method, safeguarded Newton.
//!
//! Quantile inversion for the distributions without closed-form inverses
//! (survival-weighted posteriors, mixtures) is done by bracketing the CDF
//! and handing the bracket to [`brent`].

use crate::error::{NumericsError, Result};

/// Convergence criteria for the root finders.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RootConfig {
    /// Absolute tolerance on the root location.
    pub x_tol: f64,
    /// Absolute tolerance on the residual `|f(x)|`.
    pub f_tol: f64,
    /// Iteration budget.
    pub max_iter: usize,
}

impl Default for RootConfig {
    fn default() -> Self {
        Self { x_tol: 1e-12, f_tol: 1e-12, max_iter: 200 }
    }
}

/// Finds a root of `f` in `[a, b]` by bisection.
///
/// Slow but unconditionally convergent; used as the fallback of last
/// resort and in tests as the reference implementation.
///
/// # Errors
///
/// [`NumericsError::NoBracket`] if `f(a)` and `f(b)` have the same sign,
/// [`NumericsError::Domain`] for non-finite limits.
///
/// # Examples
///
/// ```
/// use depcase_numerics::roots::{bisect, RootConfig};
///
/// let r = bisect(|x| x * x - 2.0, 0.0, 2.0, RootConfig::default())?;
/// assert!((r - std::f64::consts::SQRT_2).abs() < 1e-10);
/// # Ok::<(), depcase_numerics::NumericsError>(())
/// ```
pub fn bisect<F>(f: F, a: f64, b: f64, cfg: RootConfig) -> Result<f64>
where
    F: Fn(f64) -> f64,
{
    if !a.is_finite() || !b.is_finite() {
        return Err(NumericsError::Domain(format!(
            "bisect requires finite limits, got [{a}, {b}]"
        )));
    }
    let (mut lo, mut hi) = if a <= b { (a, b) } else { (b, a) };
    let mut flo = f(lo);
    let fhi = f(hi);
    if flo == 0.0 {
        return Ok(lo);
    }
    if fhi == 0.0 {
        return Ok(hi);
    }
    if flo.signum() == fhi.signum() {
        return Err(NumericsError::NoBracket { a: lo, b: hi });
    }
    for _ in 0..cfg.max_iter {
        let mid = 0.5 * (lo + hi);
        let fmid = f(mid);
        if fmid == 0.0 || (hi - lo) < cfg.x_tol || fmid.abs() < cfg.f_tol {
            return Ok(mid);
        }
        if fmid.signum() == flo.signum() {
            lo = mid;
            flo = fmid;
        } else {
            hi = mid;
        }
    }
    Err(NumericsError::NoConvergence { routine: "bisect", max_iter: cfg.max_iter })
}

/// Finds a root of `f` in `[a, b]` by Brent's method (inverse quadratic
/// interpolation with bisection safeguards).
///
/// The workhorse root finder of the workspace.
///
/// # Errors
///
/// [`NumericsError::NoBracket`] if the interval does not bracket a sign
/// change, [`NumericsError::Domain`] for non-finite limits,
/// [`NumericsError::NoConvergence`] on iteration exhaustion.
///
/// # Examples
///
/// ```
/// use depcase_numerics::roots::{brent, RootConfig};
///
/// let r = brent(|x| x.cos() - x, 0.0, 1.0, RootConfig::default())?;
/// assert!((r - 0.7390851332151607).abs() < 1e-12);
/// # Ok::<(), depcase_numerics::NumericsError>(())
/// ```
pub fn brent<F>(f: F, a: f64, b: f64, cfg: RootConfig) -> Result<f64>
where
    F: Fn(f64) -> f64,
{
    if !a.is_finite() || !b.is_finite() {
        return Err(NumericsError::Domain(format!("brent requires finite limits, got [{a}, {b}]")));
    }
    let mut a = a;
    let mut b = b;
    let mut fa = f(a);
    let mut fb = f(b);
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa.signum() == fb.signum() {
        return Err(NumericsError::NoBracket { a, b });
    }
    let mut c = a;
    let mut fc = fa;
    let mut d = b - a;
    let mut e = d;
    for _ in 0..cfg.max_iter {
        if fb.abs() > fc.abs() {
            // Ensure b is the best estimate.
            a = b;
            b = c;
            c = a;
            fa = fb;
            fb = fc;
            fc = fa;
        }
        let tol1 = 2.0 * f64::EPSILON * b.abs() + 0.5 * cfg.x_tol;
        let xm = 0.5 * (c - b);
        if xm.abs() <= tol1 || fb == 0.0 || fb.abs() < cfg.f_tol {
            return Ok(b);
        }
        if e.abs() >= tol1 && fa.abs() > fb.abs() {
            // Attempt inverse quadratic interpolation / secant.
            let s = fb / fa;
            let (mut p, mut q);
            if a == c {
                p = 2.0 * xm * s;
                q = 1.0 - s;
            } else {
                let q0 = fa / fc;
                let r = fb / fc;
                p = s * (2.0 * xm * q0 * (q0 - r) - (b - a) * (r - 1.0));
                q = (q0 - 1.0) * (r - 1.0) * (s - 1.0);
            }
            if p > 0.0 {
                q = -q;
            }
            p = p.abs();
            let min1 = 3.0 * xm * q - (tol1 * q).abs();
            let min2 = (e * q).abs();
            if 2.0 * p < min1.min(min2) {
                e = d;
                d = p / q;
            } else {
                d = xm;
                e = d;
            }
        } else {
            d = xm;
            e = d;
        }
        a = b;
        fa = fb;
        b += if d.abs() > tol1 { d } else { tol1.copysign(xm) };
        fb = f(b);
        if fb.signum() == fc.signum() {
            c = a;
            fc = fa;
            d = b - a;
            e = d;
        }
    }
    Err(NumericsError::NoConvergence { routine: "brent", max_iter: cfg.max_iter })
}

/// Newton's method safeguarded by a bracketing interval: if a Newton step
/// leaves `[a, b]` (or makes too little progress) it falls back to
/// bisection, so convergence is guaranteed while retaining quadratic
/// convergence near the root.
///
/// `fdf` returns the pair `(f(x), f'(x))`.
///
/// # Errors
///
/// Same conditions as [`brent`].
///
/// # Examples
///
/// ```
/// use depcase_numerics::roots::{newton_safeguarded, RootConfig};
///
/// let fdf = |x: f64| (x * x - 2.0, 2.0 * x);
/// let r = newton_safeguarded(fdf, 0.0, 2.0, RootConfig::default())?;
/// assert!((r - std::f64::consts::SQRT_2).abs() < 1e-12);
/// # Ok::<(), depcase_numerics::NumericsError>(())
/// ```
pub fn newton_safeguarded<F>(fdf: F, a: f64, b: f64, cfg: RootConfig) -> Result<f64>
where
    F: Fn(f64) -> (f64, f64),
{
    if !a.is_finite() || !b.is_finite() {
        return Err(NumericsError::Domain(format!(
            "newton_safeguarded requires finite limits, got [{a}, {b}]"
        )));
    }
    let (fa, _) = fdf(a);
    let (fb, _) = fdf(b);
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa.signum() == fb.signum() {
        return Err(NumericsError::NoBracket { a, b });
    }
    // Orient so that f(lo) < 0.
    let (mut lo, mut hi) = if fa < 0.0 { (a, b) } else { (b, a) };
    let mut x = 0.5 * (a + b);
    let mut dx_old = (b - a).abs();
    let mut dx = dx_old;
    let (mut fx, mut dfx) = fdf(x);
    for _ in 0..cfg.max_iter {
        let newton_ok = {
            let num = (x - hi) * dfx - fx;
            let num2 = (x - lo) * dfx - fx;
            num * num2 < 0.0 && (2.0 * fx).abs() <= (dx_old * dfx).abs()
        };
        if newton_ok {
            dx_old = dx;
            dx = fx / dfx;
            x -= dx;
        } else {
            dx_old = dx;
            dx = 0.5 * (hi - lo);
            x = lo + dx;
        }
        if dx.abs() < cfg.x_tol {
            return Ok(x);
        }
        let pair = fdf(x);
        fx = pair.0;
        dfx = pair.1;
        if fx.abs() < cfg.f_tol {
            return Ok(x);
        }
        if fx < 0.0 {
            lo = x;
        } else {
            hi = x;
        }
    }
    Err(NumericsError::NoConvergence { routine: "newton_safeguarded", max_iter: cfg.max_iter })
}

/// Expands an initial guess geometrically until `[lo, hi]` brackets a sign
/// change of `f`, searching in both directions from `x0` over at most
/// `max_expand` doublings.
///
/// Returns the bracketing interval.
///
/// # Errors
///
/// [`NumericsError::NoBracket`] if no sign change was found.
///
/// # Examples
///
/// ```
/// use depcase_numerics::roots::expand_bracket;
///
/// let (lo, hi) = expand_bracket(|x| x - 100.0, 1.0, 1.0, 60)?;
/// assert!(lo <= 100.0 && 100.0 <= hi);
/// # Ok::<(), depcase_numerics::NumericsError>(())
/// ```
pub fn expand_bracket<F>(f: F, x0: f64, initial_step: f64, max_expand: usize) -> Result<(f64, f64)>
where
    F: Fn(f64) -> f64,
{
    let f0 = f(x0);
    if f0 == 0.0 {
        return Ok((x0, x0));
    }
    let mut step = initial_step.abs().max(f64::MIN_POSITIVE);
    for _ in 0..max_expand {
        let lo = x0 - step;
        let hi = x0 + step;
        let flo = f(lo);
        let fhi = f(hi);
        if flo.is_finite() && flo.signum() != f0.signum() {
            return Ok((lo, x0));
        }
        if fhi.is_finite() && fhi.signum() != f0.signum() {
            return Ok((x0, hi));
        }
        step *= 2.0;
    }
    Err(NumericsError::NoBracket { a: x0 - step, b: x0 + step })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::float::approx_eq;

    #[test]
    fn bisect_sqrt2() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, RootConfig::default()).unwrap();
        assert!(approx_eq(r, std::f64::consts::SQRT_2, 1e-10, 1e-10));
    }

    #[test]
    fn bisect_reversed_interval() {
        let r = bisect(|x| x - 0.25, 1.0, 0.0, RootConfig::default()).unwrap();
        assert!(approx_eq(r, 0.25, 1e-10, 1e-10));
    }

    #[test]
    fn bisect_root_at_endpoint() {
        let r = bisect(|x| x, 0.0, 1.0, RootConfig::default()).unwrap();
        assert_eq!(r, 0.0);
    }

    #[test]
    fn bisect_no_bracket() {
        let e = bisect(|x| x * x + 1.0, -1.0, 1.0, RootConfig::default());
        assert!(matches!(e, Err(NumericsError::NoBracket { .. })));
    }

    #[test]
    fn brent_transcendental() {
        let r = brent(|x| x.cos() - x, 0.0, 1.0, RootConfig::default()).unwrap();
        assert!(approx_eq(r, 0.739_085_133_215_160_7, 1e-12, 1e-13));
    }

    #[test]
    fn brent_flat_then_steep() {
        // x^9 is very flat near 0 — a classic Brent stress case. Disable
        // the residual tolerance so only the abscissa tolerance applies.
        let cfg = RootConfig { f_tol: 0.0, ..RootConfig::default() };
        let r = brent(|x| x.powi(9) - 1e-9, 0.0, 2.0, cfg).unwrap();
        assert!(approx_eq(r, 1e-1, 1e-6, 1e-8), "got {r}");
    }

    #[test]
    fn brent_matches_bisect() {
        let f = |x: f64| (x - 0.3) * (x * x + 1.0);
        let cfg = RootConfig::default();
        let rb = brent(f, -1.0, 1.0, cfg).unwrap();
        let ri = bisect(f, -1.0, 1.0, cfg).unwrap();
        assert!(approx_eq(rb, ri, 1e-8, 1e-8));
    }

    #[test]
    fn brent_no_bracket_and_domain() {
        assert!(matches!(
            brent(|x| x * x + 1.0, -1.0, 1.0, RootConfig::default()),
            Err(NumericsError::NoBracket { .. })
        ));
        assert!(brent(|x| x, f64::NAN, 1.0, RootConfig::default()).is_err());
        assert!(brent(|x| x, 0.0, f64::INFINITY, RootConfig::default()).is_err());
    }

    #[test]
    fn newton_quadratic_convergence() {
        let fdf = |x: f64| (x.exp() - 3.0, x.exp());
        let r = newton_safeguarded(fdf, 0.0, 3.0, RootConfig::default()).unwrap();
        assert!(approx_eq(r, 3.0_f64.ln(), 1e-12, 1e-13));
    }

    #[test]
    fn newton_falls_back_when_derivative_misleads() {
        // f has an inflection that throws raw Newton out of the interval.
        let fdf = |x: f64| (x.powi(3) - 2.0 * x + 2.0, 3.0 * x * x - 2.0);
        // Root near -1.7693; bracket it.
        let r = newton_safeguarded(fdf, -3.0, 0.0, RootConfig::default()).unwrap();
        assert!(approx_eq(r, -1.769_292_354_238_631_4, 1e-10, 1e-10), "got {r}");
    }

    #[test]
    fn newton_no_bracket() {
        let fdf = |x: f64| (x * x + 1.0, 2.0 * x);
        assert!(matches!(
            newton_safeguarded(fdf, -1.0, 1.0, RootConfig::default()),
            Err(NumericsError::NoBracket { .. })
        ));
    }

    #[test]
    fn expand_bracket_finds_distant_root() {
        let (lo, hi) = expand_bracket(|x| x - 1000.0, 0.0, 1.0, 60).unwrap();
        assert!(lo <= 1000.0 && 1000.0 <= hi);
        let r = brent(|x| x - 1000.0, lo, hi, RootConfig::default()).unwrap();
        assert!(approx_eq(r, 1000.0, 1e-9, 1e-9));
    }

    #[test]
    fn expand_bracket_zero_at_start() {
        let (lo, hi) = expand_bracket(|x| x, 0.0, 1.0, 10).unwrap();
        assert_eq!((lo, hi), (0.0, 0.0));
    }

    #[test]
    fn expand_bracket_failure() {
        assert!(matches!(
            expand_bracket(|_| 1.0, 0.0, 1.0, 8),
            Err(NumericsError::NoBracket { .. })
        ));
    }

    #[test]
    fn root_config_default_is_sane() {
        let cfg = RootConfig::default();
        assert!(cfg.x_tol > 0.0 && cfg.f_tol > 0.0 && cfg.max_iter >= 50);
    }
}
