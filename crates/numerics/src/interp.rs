//! Interpolation over tabulated data.
//!
//! Empirical distributions (expert judgements, Monte-Carlo output) expose
//! their CDFs as monotone tables; quantiles come from inverse linear
//! interpolation over those tables.

use crate::error::{NumericsError, Result};

/// Piecewise-linear interpolant over strictly increasing abscissae.
///
/// # Examples
///
/// ```
/// use depcase_numerics::interp::LinearInterp;
///
/// let li = LinearInterp::new(vec![0.0, 1.0, 2.0], vec![0.0, 10.0, 40.0])?;
/// assert_eq!(li.eval(0.5), 5.0);
/// assert_eq!(li.eval(1.5), 25.0);
/// # Ok::<(), depcase_numerics::NumericsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinearInterp {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl LinearInterp {
    /// Builds an interpolant from matching `xs`/`ys` tables.
    ///
    /// # Errors
    ///
    /// [`NumericsError::Domain`] if the tables differ in length, contain
    /// fewer than two points, contain non-finite values, or `xs` is not
    /// strictly increasing.
    pub fn new(xs: Vec<f64>, ys: Vec<f64>) -> Result<Self> {
        if xs.len() != ys.len() {
            return Err(NumericsError::Domain(format!(
                "interpolation tables must match in length: {} vs {}",
                xs.len(),
                ys.len()
            )));
        }
        if xs.len() < 2 {
            return Err(NumericsError::Domain("need at least two interpolation points".into()));
        }
        if xs.iter().chain(ys.iter()).any(|v| !v.is_finite()) {
            return Err(NumericsError::Domain("interpolation tables must be finite".into()));
        }
        if xs.windows(2).any(|w| w[0] >= w[1]) {
            return Err(NumericsError::Domain("abscissae must be strictly increasing".into()));
        }
        Ok(Self { xs, ys })
    }

    /// Evaluates the interpolant; clamps to the end values outside the
    /// table range.
    #[must_use]
    pub fn eval(&self, x: f64) -> f64 {
        if x <= self.xs[0] {
            return self.ys[0];
        }
        if x >= *self.xs.last().expect("nonempty") {
            return *self.ys.last().expect("nonempty");
        }
        let i = match self.xs.binary_search_by(|v| v.partial_cmp(&x).expect("finite")) {
            Ok(i) => return self.ys[i],
            Err(i) => i,
        };
        let (x0, x1) = (self.xs[i - 1], self.xs[i]);
        let (y0, y1) = (self.ys[i - 1], self.ys[i]);
        y0 + (y1 - y0) * (x - x0) / (x1 - x0)
    }

    /// The tabulated abscissae.
    #[must_use]
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// The tabulated ordinates.
    #[must_use]
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// Inverse interpolation for monotone non-decreasing `ys`: finds `x`
    /// with `eval(x) = y`, clamping outside the value range.
    ///
    /// # Errors
    ///
    /// [`NumericsError::Domain`] if `ys` is not non-decreasing.
    pub fn eval_inverse(&self, y: f64) -> Result<f64> {
        if self.ys.windows(2).any(|w| w[0] > w[1]) {
            return Err(NumericsError::Domain(
                "inverse interpolation requires non-decreasing ordinates".into(),
            ));
        }
        if y <= self.ys[0] {
            return Ok(self.xs[0]);
        }
        if y > *self.ys.last().expect("nonempty") {
            return Ok(*self.xs.last().expect("nonempty"));
        }
        // Find the first segment whose right ordinate reaches y.
        let i = self.ys.partition_point(|&v| v < y);
        let (y0, y1) = (self.ys[i - 1], self.ys[i]);
        let (x0, x1) = (self.xs[i - 1], self.xs[i]);
        if y1 == y0 {
            return Ok(x0);
        }
        Ok(x0 + (x1 - x0) * (y - y0) / (y1 - y0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::float::approx_eq;

    fn table() -> LinearInterp {
        LinearInterp::new(vec![0.0, 1.0, 3.0], vec![0.0, 2.0, 2.0]).unwrap()
    }

    #[test]
    fn eval_interior() {
        let li = table();
        assert!(approx_eq(li.eval(0.5), 1.0, 1e-15, 0.0));
        assert!(approx_eq(li.eval(2.0), 2.0, 1e-15, 0.0));
    }

    #[test]
    fn eval_at_knots() {
        let li = table();
        assert_eq!(li.eval(0.0), 0.0);
        assert_eq!(li.eval(1.0), 2.0);
        assert_eq!(li.eval(3.0), 2.0);
    }

    #[test]
    fn eval_clamps_outside() {
        let li = table();
        assert_eq!(li.eval(-5.0), 0.0);
        assert_eq!(li.eval(10.0), 2.0);
    }

    #[test]
    fn construction_errors() {
        assert!(LinearInterp::new(vec![0.0], vec![1.0]).is_err());
        assert!(LinearInterp::new(vec![0.0, 1.0], vec![1.0]).is_err());
        assert!(LinearInterp::new(vec![1.0, 0.0], vec![0.0, 1.0]).is_err());
        assert!(LinearInterp::new(vec![0.0, 0.0], vec![0.0, 1.0]).is_err());
        assert!(LinearInterp::new(vec![0.0, f64::NAN], vec![0.0, 1.0]).is_err());
    }

    #[test]
    fn inverse_round_trip() {
        let li = LinearInterp::new(vec![0.0, 1.0, 2.0], vec![0.0, 0.3, 1.0]).unwrap();
        for y in [0.0, 0.1, 0.3, 0.6, 1.0] {
            let x = li.eval_inverse(y).unwrap();
            assert!(approx_eq(li.eval(x), y, 1e-12, 1e-12), "y = {y}");
        }
    }

    #[test]
    fn inverse_clamps() {
        let li = LinearInterp::new(vec![0.0, 1.0], vec![0.2, 0.8]).unwrap();
        assert_eq!(li.eval_inverse(0.0).unwrap(), 0.0);
        assert_eq!(li.eval_inverse(1.0).unwrap(), 1.0);
    }

    #[test]
    fn inverse_flat_segment_returns_left_edge() {
        let li = table(); // flat on [1, 3]
        let x = li.eval_inverse(2.0).unwrap();
        assert!(approx_eq(x, 1.0, 1e-12, 1e-12), "got {x}");
    }

    #[test]
    fn inverse_rejects_decreasing() {
        let li = LinearInterp::new(vec![0.0, 1.0], vec![1.0, 0.0]).unwrap();
        assert!(li.eval_inverse(0.5).is_err());
    }
}
