//! Error type shared by the numerical routines.

use std::fmt;

/// Error returned by numerical routines in this crate.
///
/// The variants are deliberately coarse: callers almost always either
/// propagate the error or treat any failure as "the computation did not
/// converge / the input was out of range".
#[derive(Debug, Clone, PartialEq)]
pub enum NumericsError {
    /// An input argument was outside the domain of the function.
    ///
    /// Carries a human-readable description of the violated requirement.
    Domain(String),
    /// An iterative method failed to converge within its iteration budget.
    ///
    /// Carries the routine name and the iteration budget that was exhausted.
    NoConvergence {
        /// Name of the routine that failed to converge.
        routine: &'static str,
        /// Iteration budget that was exhausted.
        max_iter: usize,
    },
    /// A bracketing method was given an interval that does not bracket a
    /// root (the function has the same sign at both ends).
    NoBracket {
        /// Left end of the offending interval.
        a: f64,
        /// Right end of the offending interval.
        b: f64,
    },
    /// A quadrature routine could not reach the requested tolerance.
    ToleranceNotReached {
        /// Error estimate actually achieved.
        achieved: f64,
        /// Tolerance that was requested.
        requested: f64,
    },
}

impl fmt::Display for NumericsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericsError::Domain(msg) => write!(f, "domain error: {msg}"),
            NumericsError::NoConvergence { routine, max_iter } => {
                write!(f, "{routine} failed to converge within {max_iter} iterations")
            }
            NumericsError::NoBracket { a, b } => {
                write!(f, "interval [{a}, {b}] does not bracket a root")
            }
            NumericsError::ToleranceNotReached { achieved, requested } => write!(
                f,
                "quadrature error estimate {achieved:e} exceeds requested tolerance {requested:e}"
            ),
        }
    }
}

impl std::error::Error for NumericsError {}

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, NumericsError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_domain() {
        let e = NumericsError::Domain("x must be positive".into());
        assert_eq!(e.to_string(), "domain error: x must be positive");
    }

    #[test]
    fn display_no_convergence() {
        let e = NumericsError::NoConvergence { routine: "brent", max_iter: 100 };
        assert!(e.to_string().contains("brent"));
        assert!(e.to_string().contains("100"));
    }

    #[test]
    fn display_no_bracket() {
        let e = NumericsError::NoBracket { a: 0.0, b: 1.0 };
        assert!(e.to_string().contains("[0, 1]"));
    }

    #[test]
    fn display_tolerance() {
        let e = NumericsError::ToleranceNotReached { achieved: 1e-3, requested: 1e-9 };
        let s = e.to_string();
        assert!(
            s.contains("1e-3") || s.contains("1e-3") || s.contains("0.001") || s.contains("1e-3")
        );
        assert!(s.contains("tolerance"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NumericsError>();
    }
}
