//! Descriptive statistics: summaries, sample quantiles, ECDF, histograms.
//!
//! The elicitation simulator and the Monte-Carlo checks in the test suite
//! reduce samples through these routines.

use crate::error::{NumericsError, Result};

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use depcase_numerics::stats::Accumulator;
///
/// let mut acc = Accumulator::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     acc.push(x);
/// }
/// assert_eq!(acc.mean(), 2.5);
/// assert!((acc.sample_variance() - 5.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Accumulator {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations pushed so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (0 for an empty accumulator).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (`n − 1` denominator); 0 when fewer than
    /// two observations have been pushed.
    #[must_use]
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn sample_std(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest observation (`+∞` when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`−∞` when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Accumulator) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl FromIterator<f64> for Accumulator {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut acc = Accumulator::new();
        for x in iter {
            acc.push(x);
        }
        acc
    }
}

impl Extend<f64> for Accumulator {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

/// Sample quantile with linear interpolation between order statistics
/// (type-7, the R/NumPy default). `q ∈ [0, 1]`.
///
/// # Errors
///
/// [`NumericsError::Domain`] for an empty sample or `q` outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use depcase_numerics::stats::quantile;
///
/// let xs = [3.0, 1.0, 2.0, 4.0];
/// assert_eq!(quantile(&xs, 0.5)?, 2.5);
/// # Ok::<(), depcase_numerics::NumericsError>(())
/// ```
pub fn quantile(xs: &[f64], q: f64) -> Result<f64> {
    if xs.is_empty() {
        return Err(NumericsError::Domain("quantile of empty sample".into()));
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(NumericsError::Domain(format!("quantile level must be in [0,1], got {q}")));
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let h = q * (sorted.len() - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        Ok(sorted[lo])
    } else {
        Ok(sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo]))
    }
}

/// Median shortcut for [`quantile`] at `q = 0.5`.
///
/// # Errors
///
/// [`NumericsError::Domain`] for an empty sample.
pub fn median(xs: &[f64]) -> Result<f64> {
    quantile(xs, 0.5)
}

/// Geometric mean of strictly positive samples.
///
/// The natural pooling statistic for order-of-magnitude quantities like
/// failure rates.
///
/// # Errors
///
/// [`NumericsError::Domain`] for an empty sample or any non-positive value.
///
/// # Examples
///
/// ```
/// use depcase_numerics::stats::geometric_mean;
///
/// let g = geometric_mean(&[1e-4, 1e-2])?;
/// assert!((g - 1e-3).abs() < 1e-15);
/// # Ok::<(), depcase_numerics::NumericsError>(())
/// ```
pub fn geometric_mean(xs: &[f64]) -> Result<f64> {
    if xs.is_empty() {
        return Err(NumericsError::Domain("geometric mean of empty sample".into()));
    }
    if xs.iter().any(|&x| !(x > 0.0)) {
        return Err(NumericsError::Domain("geometric mean requires positive samples".into()));
    }
    let log_mean = xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64;
    Ok(log_mean.exp())
}

/// Empirical cumulative distribution function of a sample.
///
/// # Examples
///
/// ```
/// use depcase_numerics::stats::Ecdf;
///
/// let e = Ecdf::new(vec![1.0, 2.0, 2.0, 5.0])?;
/// assert_eq!(e.eval(0.0), 0.0);
/// assert_eq!(e.eval(2.0), 0.75);
/// assert_eq!(e.eval(5.0), 1.0);
/// # Ok::<(), depcase_numerics::NumericsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds the ECDF from a sample.
    ///
    /// # Errors
    ///
    /// [`NumericsError::Domain`] for an empty sample or non-finite values.
    pub fn new(mut xs: Vec<f64>) -> Result<Self> {
        if xs.is_empty() {
            return Err(NumericsError::Domain("ECDF of empty sample".into()));
        }
        if xs.iter().any(|v| !v.is_finite()) {
            return Err(NumericsError::Domain("ECDF requires finite samples".into()));
        }
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Ok(Self { sorted: xs })
    }

    /// `P(X ≤ x)` under the empirical measure.
    #[must_use]
    pub fn eval(&self, x: f64) -> f64 {
        let k = self.sorted.partition_point(|&v| v <= x);
        k as f64 / self.sorted.len() as f64
    }

    /// Number of underlying observations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always `false`: construction rejects empty samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The sorted underlying sample.
    #[must_use]
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }
}

/// A histogram over explicit bin edges.
///
/// # Examples
///
/// ```
/// use depcase_numerics::stats::Histogram;
///
/// let mut h = Histogram::new(vec![0.0, 1.0, 2.0])?;
/// h.add(0.5);
/// h.add(1.5);
/// h.add(1.7);
/// assert_eq!(h.counts(), &[1, 2]);
/// # Ok::<(), depcase_numerics::NumericsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    edges: Vec<f64>,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Builds a histogram with the given strictly increasing bin edges
    /// (`n+1` edges define `n` bins).
    ///
    /// # Errors
    ///
    /// [`NumericsError::Domain`] for fewer than two edges or non-monotone
    /// edges.
    pub fn new(edges: Vec<f64>) -> Result<Self> {
        if edges.len() < 2 {
            return Err(NumericsError::Domain("histogram needs at least two edges".into()));
        }
        if edges.windows(2).any(|w| w[0] >= w[1]) {
            return Err(NumericsError::Domain(
                "histogram edges must be strictly increasing".into(),
            ));
        }
        let bins = edges.len() - 1;
        Ok(Self { edges, counts: vec![0; bins], underflow: 0, overflow: 0 })
    }

    /// Builds log-spaced edges covering `[lo, hi]` with `bins` bins —
    /// the natural binning for failure rates spanning decades.
    ///
    /// # Errors
    ///
    /// [`NumericsError::Domain`] unless `0 < lo < hi` and `bins >= 1`.
    pub fn log_spaced(lo: f64, hi: f64, bins: usize) -> Result<Self> {
        if !(lo > 0.0) || !(hi > lo) || bins == 0 {
            return Err(NumericsError::Domain(format!(
                "log_spaced requires 0 < lo < hi and bins >= 1; got lo = {lo}, hi = {hi}, bins = {bins}"
            )));
        }
        let llo = lo.ln();
        let lhi = hi.ln();
        let edges =
            (0..=bins).map(|i| (llo + (lhi - llo) * i as f64 / bins as f64).exp()).collect();
        Self::new(edges)
    }

    /// Adds one observation. Values left of the first edge count as
    /// underflow, values at/right of the last edge as overflow.
    pub fn add(&mut self, x: f64) {
        if x < self.edges[0] {
            self.underflow += 1;
            return;
        }
        if x >= *self.edges.last().expect("nonempty") {
            self.overflow += 1;
            return;
        }
        let i = self.edges.partition_point(|&e| e <= x) - 1;
        self.counts[i] += 1;
    }

    /// Per-bin counts.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Bin edges.
    #[must_use]
    pub fn edges(&self) -> &[f64] {
        &self.edges
    }

    /// Observations below the first edge.
    #[must_use]
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the last edge.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations added, including under/overflow.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Normalized bin densities (count / (total · width)); empty histogram
    /// yields zeros.
    #[must_use]
    pub fn densities(&self) -> Vec<f64> {
        let total = self.total();
        if total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .zip(self.edges.windows(2))
            .map(|(&c, w)| c as f64 / (total as f64 * (w[1] - w[0])))
            .collect()
    }
}

impl Extend<f64> for Histogram {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.add(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::float::approx_eq;

    #[test]
    fn accumulator_basic() {
        let acc: Accumulator = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].into_iter().collect();
        assert_eq!(acc.count(), 8);
        assert!(approx_eq(acc.mean(), 5.0, 1e-15, 0.0));
        // population variance is 4 → sample variance is 32/7
        assert!(approx_eq(acc.sample_variance(), 32.0 / 7.0, 1e-13, 0.0));
        assert_eq!(acc.min(), 2.0);
        assert_eq!(acc.max(), 9.0);
    }

    #[test]
    fn accumulator_empty_and_single() {
        let acc = Accumulator::new();
        assert_eq!(acc.count(), 0);
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.sample_variance(), 0.0);
        let mut acc = Accumulator::new();
        acc.push(3.0);
        assert_eq!(acc.sample_variance(), 0.0);
        assert_eq!(acc.mean(), 3.0);
    }

    #[test]
    fn accumulator_merge_matches_sequential() {
        let xs = [1.0, 5.0, 2.0, 8.0, 3.0, 3.0, 9.0];
        let mut a: Accumulator = xs[..3].iter().copied().collect();
        let b: Accumulator = xs[3..].iter().copied().collect();
        a.merge(&b);
        let full: Accumulator = xs.iter().copied().collect();
        assert!(approx_eq(a.mean(), full.mean(), 1e-13, 1e-14));
        assert!(approx_eq(a.sample_variance(), full.sample_variance(), 1e-13, 1e-14));
        assert_eq!(a.count(), full.count());
    }

    #[test]
    fn accumulator_merge_with_empty() {
        let mut a = Accumulator::new();
        let b: Accumulator = [1.0, 2.0].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.count(), 2);
        let mut c: Accumulator = [1.0, 2.0].into_iter().collect();
        c.merge(&Accumulator::new());
        assert_eq!(c.count(), 2);
    }

    #[test]
    fn quantile_type7() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&xs, 1.0).unwrap(), 4.0);
        assert_eq!(quantile(&xs, 0.5).unwrap(), 2.5);
        assert!(approx_eq(quantile(&xs, 0.25).unwrap(), 1.75, 1e-15, 0.0));
    }

    #[test]
    fn quantile_errors() {
        assert!(quantile(&[], 0.5).is_err());
        assert!(quantile(&[1.0], -0.1).is_err());
        assert!(quantile(&[1.0], 1.1).is_err());
    }

    #[test]
    fn median_odd_sample() {
        assert_eq!(median(&[5.0, 1.0, 3.0]).unwrap(), 3.0);
    }

    #[test]
    fn geometric_mean_decades() {
        let g = geometric_mean(&[1e-5, 1e-3, 1e-1]).unwrap();
        assert!(approx_eq(g, 1e-3, 1e-12, 0.0));
    }

    #[test]
    fn geometric_mean_errors() {
        assert!(geometric_mean(&[]).is_err());
        assert!(geometric_mean(&[1.0, 0.0]).is_err());
        assert!(geometric_mean(&[1.0, -2.0]).is_err());
    }

    #[test]
    fn ecdf_step_behaviour() {
        let e = Ecdf::new(vec![3.0, 1.0, 2.0]).unwrap();
        assert_eq!(e.eval(0.9), 0.0);
        assert!(approx_eq(e.eval(1.0), 1.0 / 3.0, 1e-15, 0.0));
        assert!(approx_eq(e.eval(2.5), 2.0 / 3.0, 1e-15, 0.0));
        assert_eq!(e.eval(3.0), 1.0);
        assert_eq!(e.len(), 3);
        assert!(!e.is_empty());
    }

    #[test]
    fn ecdf_errors() {
        assert!(Ecdf::new(vec![]).is_err());
        assert!(Ecdf::new(vec![1.0, f64::NAN]).is_err());
    }

    #[test]
    fn histogram_counts_and_flows() {
        let mut h = Histogram::new(vec![0.0, 1.0, 2.0, 3.0]).unwrap();
        h.extend([0.5, 1.5, 1.9, 2.2, -1.0, 3.0, 100.0]);
        assert_eq!(h.counts(), &[1, 2, 1]);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 7);
    }

    #[test]
    fn histogram_densities_integrate_to_coverage() {
        let mut h = Histogram::new(vec![0.0, 0.5, 1.0]).unwrap();
        h.extend([0.1, 0.2, 0.7, 0.9]);
        let mass: f64 =
            h.densities().iter().zip(h.edges().windows(2)).map(|(d, w)| d * (w[1] - w[0])).sum();
        assert!(approx_eq(mass, 1.0, 1e-12, 0.0));
    }

    #[test]
    fn histogram_log_spaced_covers_decades() {
        let h = Histogram::log_spaced(1e-5, 1e-1, 4).unwrap();
        let edges = h.edges();
        assert!(approx_eq(edges[0], 1e-5, 1e-12, 0.0));
        assert!(approx_eq(edges[4], 1e-1, 1e-12, 0.0));
        assert!(approx_eq(edges[1], 1e-4, 1e-9, 0.0));
    }

    #[test]
    fn histogram_errors() {
        assert!(Histogram::new(vec![0.0]).is_err());
        assert!(Histogram::new(vec![1.0, 0.0]).is_err());
        assert!(Histogram::log_spaced(0.0, 1.0, 3).is_err());
        assert!(Histogram::log_spaced(1.0, 0.5, 3).is_err());
        assert!(Histogram::log_spaced(1.0, 2.0, 0).is_err());
    }

    #[test]
    fn histogram_empty_densities() {
        let h = Histogram::new(vec![0.0, 1.0]).unwrap();
        assert_eq!(h.densities(), vec![0.0]);
    }
}
