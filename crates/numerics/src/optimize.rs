//! One-dimensional minimization.
//!
//! Used for mode-finding of posterior densities (e.g. the survival-weighted
//! posteriors of Section 4.1, whose mode shifts left as failure-free
//! operating experience accumulates).

use crate::error::{NumericsError, Result};

/// Result of a scalar minimization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MinResult {
    /// Abscissa of the located minimum.
    pub x: f64,
    /// Function value at [`MinResult::x`].
    pub f: f64,
    /// Number of function evaluations spent.
    pub evaluations: usize,
}

const INV_GOLD: f64 = 0.618_033_988_749_894_8; // (sqrt(5) - 1) / 2

/// Golden-section minimization of a unimodal `f` over `[a, b]`.
///
/// Converges linearly but unconditionally for unimodal functions; for the
/// smooth low-dimensional problems in this workspace that is plenty.
///
/// # Errors
///
/// [`NumericsError::Domain`] for non-finite limits or non-positive
/// tolerance.
///
/// # Examples
///
/// ```
/// use depcase_numerics::optimize::golden_section_min;
///
/// let r = golden_section_min(|x| (x - 1.3) * (x - 1.3), 0.0, 3.0, 1e-10)?;
/// assert!((r.x - 1.3).abs() < 1e-8);
/// # Ok::<(), depcase_numerics::NumericsError>(())
/// ```
pub fn golden_section_min<F>(f: F, a: f64, b: f64, x_tol: f64) -> Result<MinResult>
where
    F: Fn(f64) -> f64,
{
    if !a.is_finite() || !b.is_finite() || !(x_tol > 0.0) {
        return Err(NumericsError::Domain(format!(
            "golden_section_min requires finite limits and x_tol > 0; got [{a}, {b}], x_tol = {x_tol}"
        )));
    }
    let (mut lo, mut hi) = if a <= b { (a, b) } else { (b, a) };
    let mut evals: usize = 0;
    let mut x1 = hi - INV_GOLD * (hi - lo);
    let mut x2 = lo + INV_GOLD * (hi - lo);
    let mut f1 = f(x1);
    let mut f2 = f(x2);
    evals += 2;
    while (hi - lo) > x_tol {
        if f1 < f2 {
            hi = x2;
            x2 = x1;
            f2 = f1;
            x1 = hi - INV_GOLD * (hi - lo);
            f1 = f(x1);
        } else {
            lo = x1;
            x1 = x2;
            f1 = f2;
            x2 = lo + INV_GOLD * (hi - lo);
            f2 = f(x2);
        }
        evals += 1;
        if evals > 10_000 {
            break;
        }
    }
    let x = 0.5 * (lo + hi);
    let fx = f(x);
    evals += 1;
    Ok(MinResult { x, f: fx, evaluations: evals })
}

/// Maximizes a unimodal `f` over `[a, b]` (golden section on `−f`).
///
/// # Errors
///
/// Same conditions as [`golden_section_min`].
///
/// # Examples
///
/// ```
/// use depcase_numerics::optimize::golden_section_max;
///
/// let r = golden_section_max(|x: f64| -(x - 0.2_f64).powi(2), -1.0, 1.0, 1e-10)?;
/// assert!((r.x - 0.2).abs() < 1e-8);
/// # Ok::<(), depcase_numerics::NumericsError>(())
/// ```
pub fn golden_section_max<F>(f: F, a: f64, b: f64, x_tol: f64) -> Result<MinResult>
where
    F: Fn(f64) -> f64,
{
    let r = golden_section_min(|x| -f(x), a, b, x_tol)?;
    Ok(MinResult { x: r.x, f: -r.f, evaluations: r.evaluations })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::float::approx_eq;

    #[test]
    fn quadratic_minimum() {
        let r = golden_section_min(|x| (x - 2.5) * (x - 2.5) + 1.0, 0.0, 10.0, 1e-10).unwrap();
        assert!(approx_eq(r.x, 2.5, 1e-7, 1e-7));
        assert!(approx_eq(r.f, 1.0, 1e-10, 1e-10));
    }

    #[test]
    fn reversed_interval_accepted() {
        let r = golden_section_min(|x| x.abs(), 1.0, -1.0, 1e-10).unwrap();
        assert!(r.x.abs() < 1e-7);
    }

    #[test]
    fn minimum_at_boundary() {
        let r = golden_section_min(|x| x, 0.0, 1.0, 1e-10).unwrap();
        assert!(r.x < 1e-7);
    }

    #[test]
    fn maximize_lognormal_like_density() {
        // x * exp(-ln(x)^2) has its max where d/dx [ln x − ln²x] = 0 ⇒ x = e^{1/2}.
        let f = |x: f64| x * (-(x.ln() * x.ln())).exp();
        let r = golden_section_max(f, 0.1, 10.0, 1e-12).unwrap();
        assert!(approx_eq(r.x, (0.5_f64).exp(), 1e-6, 1e-6), "got {}", r.x);
    }

    #[test]
    fn domain_errors() {
        assert!(golden_section_min(|x| x, f64::NAN, 1.0, 1e-9).is_err());
        assert!(golden_section_min(|x| x, 0.0, 1.0, 0.0).is_err());
        assert!(golden_section_min(|x| x, 0.0, f64::INFINITY, 1e-9).is_err());
    }

    #[test]
    fn evaluation_count_reported() {
        let r = golden_section_min(|x| x * x, -1.0, 1.0, 1e-8).unwrap();
        assert!(r.evaluations > 10 && r.evaluations < 200);
    }
}
