//! Error function family and the standard normal distribution kernels.
//!
//! `erf`/`erfc` follow W. J. Cody's rational minimax approximations
//! (Cody, "Rational Chebyshev approximation for the error function",
//! Math. Comp. 23 (1969); the `CALERF` netlib routine), which are accurate
//! to close to machine precision across the whole real line.
//!
//! The inverse normal quantile uses Acklam's rational approximation with a
//! single Halley refinement step, giving relative error near 1e-15.

use std::f64::consts::{FRAC_1_SQRT_2, PI};

/// `1/sqrt(pi)`.
const FRAC_1_SQRT_PI: f64 = 0.564_189_583_547_756_3;

/// Coefficients for `erf(x)`, `|x| <= 0.46875`.
const ERF_A: [f64; 5] = [
    3.161_123_743_870_565_6e0,
    1.138_641_541_510_501_6e2,
    3.774_852_376_853_020_2e2,
    3.209_377_589_138_469_4e3,
    1.857_777_061_846_031_5e-1,
];
const ERF_B: [f64; 4] = [
    2.360_129_095_234_412_1e1,
    2.440_246_379_344_441_7e2,
    1.282_616_526_077_372_3e3,
    2.844_236_833_439_170_6e3,
];

/// Coefficients for `erfc(x)`, `0.46875 <= x <= 4`.
const ERF_C: [f64; 9] = [
    5.641_884_969_886_700_9e-1,
    8.883_149_794_388_375_9e0,
    6.611_919_063_714_162_9e1,
    2.986_351_381_974_001_3e2,
    8.819_522_212_417_690_9e2,
    1.712_047_612_634_070_6e3,
    2.051_078_377_826_071_5e3,
    1.230_339_354_797_997_2e3,
    2.153_115_354_744_038_5e-8,
];
const ERF_D: [f64; 8] = [
    1.574_492_611_070_983_5e1,
    1.176_939_508_913_125e2,
    5.371_811_018_620_098_6e2,
    1.621_389_574_566_690_2e3,
    3.290_799_235_733_459_6e3,
    4.362_619_090_143_247e3,
    3.439_367_674_143_721_6e3,
    1.230_339_354_803_749_4e3,
];

/// Coefficients for `erfc(x)`, `x > 4`.
const ERF_P: [f64; 6] = [
    3.053_266_349_612_323_4e-1,
    3.603_448_999_498_044_4e-1,
    1.257_817_261_112_292_5e-1,
    1.608_378_514_874_227_7e-2,
    6.587_491_615_298_378e-4,
    1.631_538_713_730_209_8e-2,
];
const ERF_Q: [f64; 5] = [
    2.568_520_192_289_822_4e0,
    1.872_952_849_923_460_4e0,
    5.279_051_029_514_284_1e-1,
    6.051_834_131_244_131_9e-2,
    2.335_204_976_268_691_8e-3,
];

/// Core of Cody's algorithm: `erfc(y) * exp(y^2)` scaled pieces for
/// `y >= 0.46875`. Returns `erfc(y)`.
fn erfc_large(y: f64) -> f64 {
    debug_assert!(y >= 0.46875);
    let result = if y <= 4.0 {
        let mut xnum = ERF_C[8] * y;
        let mut xden = y;
        for i in 0..7 {
            xnum = (xnum + ERF_C[i]) * y;
            xden = (xden + ERF_D[i]) * y;
        }
        (xnum + ERF_C[7]) / (xden + ERF_D[7])
    } else {
        // For extremely large y the result underflows to exactly 0.
        if y >= 26.6 {
            return 0.0;
        }
        let ysq = 1.0 / (y * y);
        let mut xnum = ERF_P[5] * ysq;
        let mut xden = ysq;
        for i in 0..4 {
            xnum = (xnum + ERF_P[i]) * ysq;
            xden = (xden + ERF_Q[i]) * ysq;
        }
        let r = ysq * (xnum + ERF_P[4]) / (xden + ERF_Q[4]);
        (FRAC_1_SQRT_PI - r) / y
    };
    // Split exp(-y^2) to preserve accuracy: y2 is y rounded to 1/16.
    let ysq16 = (y * 16.0).trunc() / 16.0;
    let del = (y - ysq16) * (y + ysq16);
    (-ysq16 * ysq16).exp() * (-del).exp() * result
}

/// The error function `erf(x) = (2/sqrt(pi)) ∫₀ˣ e^{−t²} dt`.
///
/// Accurate to close to machine precision for all finite `x`.
///
/// # Examples
///
/// ```
/// use depcase_numerics::special::erf;
///
/// assert!((erf(1.0) - 0.8427007929497149).abs() < 1e-14);
/// assert_eq!(erf(0.0), 0.0);
/// ```
#[must_use]
pub fn erf(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    let y = x.abs();
    if y <= 0.46875 {
        let ysq = if y > 1e-300 { y * y } else { 0.0 };
        let mut xnum = ERF_A[4] * ysq;
        let mut xden = ysq;
        for i in 0..3 {
            xnum = (xnum + ERF_A[i]) * ysq;
            xden = (xden + ERF_B[i]) * ysq;
        }
        x * (xnum + ERF_A[3]) / (xden + ERF_B[3])
    } else {
        let e = 1.0 - erfc_large(y);
        if x < 0.0 {
            -e
        } else {
            e
        }
    }
}

/// The complementary error function `erfc(x) = 1 − erf(x)`.
///
/// Unlike computing `1 - erf(x)` directly, this retains full relative
/// accuracy in the far tail (`x` large), which is exactly where
/// high-confidence dependability claims live.
///
/// # Examples
///
/// ```
/// use depcase_numerics::special::erfc;
///
/// let rel = (erfc(2.0) / 0.0046777349810472645 - 1.0).abs();
/// assert!(rel < 1e-12);
/// // Far tail retains relative precision:
/// assert!(erfc(10.0) > 0.0 && erfc(10.0) < 3e-45);
/// ```
#[must_use]
pub fn erfc(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    let y = x.abs();
    if y <= 0.46875 {
        1.0 - erf(x)
    } else if x < 0.0 {
        2.0 - erfc_large(y)
    } else {
        erfc_large(y)
    }
}

/// Standard normal probability density function.
///
/// # Examples
///
/// ```
/// use depcase_numerics::special::norm_pdf;
///
/// let phi0 = norm_pdf(0.0);
/// assert!((phi0 - 0.3989422804014327).abs() < 1e-15);
/// ```
#[must_use]
pub fn norm_pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * PI).sqrt()
}

/// Standard normal cumulative distribution function `Φ(z)`.
///
/// # Examples
///
/// ```
/// use depcase_numerics::special::norm_cdf;
///
/// assert!((norm_cdf(0.0) - 0.5).abs() < 1e-15);
/// assert!((norm_cdf(1.6448536269514722) - 0.95).abs() < 1e-12);
/// ```
#[must_use]
pub fn norm_cdf(z: f64) -> f64 {
    0.5 * erfc(-z * FRAC_1_SQRT_2)
}

/// Standard normal survival function `1 − Φ(z)`, accurate in the upper tail.
///
/// # Examples
///
/// ```
/// use depcase_numerics::special::norm_sf;
///
/// // 6-sigma events keep their relative precision.
/// let p = norm_sf(6.0);
/// assert!(p > 9.8e-10 && p < 9.9e-10);
/// ```
#[must_use]
pub fn norm_sf(z: f64) -> f64 {
    0.5 * erfc(z * FRAC_1_SQRT_2)
}

// Acklam's inverse-normal-CDF coefficients.
const ACK_A: [f64; 6] = [
    -3.969_683_028_665_376e1,
    2.209_460_984_245_205e2,
    -2.759_285_104_469_687e2,
    1.383_577_518_672_69e2,
    -3.066_479_806_614_716e1,
    2.506_628_277_459_239e0,
];
const ACK_B: [f64; 5] = [
    -5.447_609_879_822_406e1,
    1.615_858_368_580_409e2,
    -1.556_989_798_598_866e2,
    6.680_131_188_771_972e1,
    -1.328_068_155_288_572e1,
];
const ACK_C: [f64; 6] = [
    -7.784_894_002_430_293e-3,
    -3.223_964_580_411_365e-1,
    -2.400_758_277_161_838e0,
    -2.549_732_539_343_734e0,
    4.374_664_141_464_968e0,
    2.938_163_982_698_783e0,
];
const ACK_D: [f64; 4] = [
    7.784_695_709_041_462e-3,
    3.224_671_290_700_398e-1,
    2.445_134_137_142_996e0,
    3.754_408_661_907_416e0,
];

/// Standard normal quantile function `Φ⁻¹(p)`.
///
/// Returns negative/positive infinity at `p = 0` / `p = 1` and NaN
/// outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use depcase_numerics::special::norm_quantile;
///
/// assert!((norm_quantile(0.975) - 1.959963984540054).abs() < 1e-12);
/// assert_eq!(norm_quantile(0.5), 0.0);
/// ```
#[must_use]
pub fn norm_quantile(p: f64) -> f64 {
    if p.is_nan() || !(0.0..=1.0).contains(&p) {
        return f64::NAN;
    }
    if p == 0.0 {
        return f64::NEG_INFINITY;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }
    if p == 0.5 {
        return 0.0;
    }

    const P_LOW: f64 = 0.02425;
    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((ACK_C[0] * q + ACK_C[1]) * q + ACK_C[2]) * q + ACK_C[3]) * q + ACK_C[4]) * q
            + ACK_C[5])
            / ((((ACK_D[0] * q + ACK_D[1]) * q + ACK_D[2]) * q + ACK_D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((ACK_A[0] * r + ACK_A[1]) * r + ACK_A[2]) * r + ACK_A[3]) * r + ACK_A[4]) * r
            + ACK_A[5])
            * q
            / (((((ACK_B[0] * r + ACK_B[1]) * r + ACK_B[2]) * r + ACK_B[3]) * r + ACK_B[4]) * r
                + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((ACK_C[0] * q + ACK_C[1]) * q + ACK_C[2]) * q + ACK_C[3]) * q + ACK_C[4]) * q
            + ACK_C[5])
            / ((((ACK_D[0] * q + ACK_D[1]) * q + ACK_D[2]) * q + ACK_D[3]) * q + 1.0)
    };

    // One Halley refinement step using the full-precision CDF.
    let e = norm_cdf(x) - p;
    let u = e * (2.0 * PI).sqrt() * (0.5 * x * x).exp();
    x - u / (1.0 + 0.5 * x * u)
}

/// Inverse error function: solves `erf(y) = x` for `y`, `x ∈ (−1, 1)`.
///
/// Returns ±infinity at `x = ∓1`/`±1` and NaN outside `[-1, 1]`.
///
/// # Examples
///
/// ```
/// use depcase_numerics::special::{erf, inv_erf};
///
/// let x = 0.3;
/// assert!((erf(inv_erf(x)) - x).abs() < 1e-14);
/// ```
#[must_use]
pub fn inv_erf(x: f64) -> f64 {
    if x.is_nan() || !(-1.0..=1.0).contains(&x) {
        return f64::NAN;
    }
    // erf(y) = 2*Phi(y*sqrt2) - 1  =>  y = Phi^{-1}((x+1)/2) / sqrt2
    norm_quantile(0.5 * (x + 1.0)) * FRAC_1_SQRT_2
}

/// Inverse complementary error function: solves `erfc(y) = x` for `y`.
///
/// Retains accuracy for very small `x` (deep upper tail), where
/// `inv_erf(1 - x)` would lose all precision.
///
/// # Examples
///
/// ```
/// use depcase_numerics::special::{erfc, inv_erfc};
///
/// let x = 1e-20;
/// let y = inv_erfc(x);
/// assert!((erfc(y) / x - 1.0).abs() < 1e-10);
/// ```
#[must_use]
pub fn inv_erfc(x: f64) -> f64 {
    if x.is_nan() || !(0.0..=2.0).contains(&x) {
        return f64::NAN;
    }
    if x == 0.0 {
        return f64::INFINITY;
    }
    if x == 2.0 {
        return f64::NEG_INFINITY;
    }
    if x >= 0.5 {
        return inv_erf(1.0 - x);
    }
    // erfc(y) = x  =>  y = -Phi^{-1}(x/2) / sqrt2 (via the lower-tail branch
    // of the quantile, which is accurate for tiny arguments).
    -norm_quantile(0.5 * x) * FRAC_1_SQRT_2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::float::approx_eq;

    // Reference values computed with mpmath at 30 digits.
    const ERF_REFS: &[(f64, f64)] = &[
        (0.0, 0.0),
        (0.1, 0.112462916018284892203275071744),
        (0.25, 0.276326390168236932985068267764),
        (0.5, 0.520499877813046537682746653892),
        (1.0, 0.842700792949714869341220635083),
        (1.5, 0.966105146475310727066976261646),
        (2.0, 0.995322265018952734162069256367),
        (3.0, 0.999977909503001414558627223870),
        (4.0, 0.999999984582742099719981147840),
    ];

    #[test]
    fn erf_reference_values() {
        for &(x, want) in ERF_REFS {
            let got = erf(x);
            assert!(approx_eq(got, want, 1e-14, 1e-15), "erf({x}) = {got}, want {want}");
        }
    }

    #[test]
    fn erf_is_odd() {
        for &(x, _) in ERF_REFS {
            assert!(approx_eq(erf(-x), -erf(x), 1e-15, 1e-18));
        }
    }

    #[test]
    fn erfc_reference_values() {
        // erfc in the far tail, mpmath references.
        let refs: &[(f64, f64)] = &[
            (2.0, 4.67773498104726583793074363275e-3),
            (3.0, 2.20904969985854413727761295823e-5),
            (5.0, 1.53745979442803485018834348538e-12),
            (8.0, 1.12242971729829270799678884432e-29),
            (10.0, 2.08848758376254469074050709018e-45),
        ];
        for &(x, want) in refs {
            let got = erfc(x);
            assert!(approx_eq(got, want, 1e-12, 0.0), "erfc({x}) = {got:e}, want {want:e}");
        }
    }

    #[test]
    fn erfc_negative_arguments() {
        assert!(approx_eq(erfc(-1.0), 2.0 - erfc(1.0), 1e-15, 1e-16));
        assert!(approx_eq(erfc(-3.0), 1.999977909503001414, 1e-15, 1e-16));
    }

    #[test]
    fn erf_plus_erfc_is_one() {
        for x in [-3.0, -1.0, -0.3, 0.0, 0.2, 0.46875, 0.5, 1.0, 2.5, 4.0, 6.0] {
            assert!(
                approx_eq(erf(x) + erfc(x), 1.0, 1e-14, 1e-14),
                "x = {x}: {} + {}",
                erf(x),
                erfc(x)
            );
        }
    }

    #[test]
    fn erfc_underflows_to_zero_smoothly() {
        assert_eq!(erfc(27.0), 0.0);
        assert!(erfc(26.0) > 0.0);
    }

    #[test]
    fn erf_nan_propagates() {
        assert!(erf(f64::NAN).is_nan());
        assert!(erfc(f64::NAN).is_nan());
    }

    #[test]
    fn erf_saturates_at_infinity() {
        assert_eq!(erf(f64::INFINITY), 1.0);
        assert_eq!(erf(f64::NEG_INFINITY), -1.0);
        assert_eq!(erfc(f64::INFINITY), 0.0);
        assert_eq!(erfc(f64::NEG_INFINITY), 2.0);
    }

    #[test]
    fn norm_cdf_reference_values() {
        let refs: &[(f64, f64)] = &[
            (-3.0, 1.34989803163009452665181477827e-3),
            (-1.0, 0.158655253931457051414767454368),
            (0.0, 0.5),
            (1.0, 0.841344746068542948585232545632),
            (1.959963984540054, 0.975),
            (3.0, 0.998650101968369905473348185222),
        ];
        for &(z, want) in refs {
            assert!(
                approx_eq(norm_cdf(z), want, 1e-12, 1e-15),
                "Phi({z}) = {}, want {want}",
                norm_cdf(z)
            );
        }
    }

    #[test]
    fn norm_sf_complements_cdf() {
        for z in [-4.0, -1.5, 0.0, 0.7, 2.0, 5.0] {
            assert!(approx_eq(norm_sf(z) + norm_cdf(z), 1.0, 1e-14, 1e-14));
        }
    }

    #[test]
    fn norm_quantile_round_trip() {
        for p in [1e-12, 1e-6, 0.01, 0.05, 0.3, 0.5, 0.7, 0.95, 0.999, 1.0 - 1e-9] {
            let z = norm_quantile(p);
            assert!(
                approx_eq(norm_cdf(z), p, 1e-12, 1e-15),
                "p = {p}: Phi(q(p)) = {}",
                norm_cdf(z)
            );
        }
    }

    #[test]
    fn norm_quantile_known_values() {
        assert!(approx_eq(norm_quantile(0.975), 1.959963984540054, 1e-12, 0.0));
        assert!(approx_eq(norm_quantile(0.95), 1.6448536269514722, 1e-12, 0.0));
        assert!(approx_eq(norm_quantile(0.7), 0.5244005127080407, 1e-12, 0.0));
    }

    #[test]
    fn norm_quantile_edges() {
        assert_eq!(norm_quantile(0.0), f64::NEG_INFINITY);
        assert_eq!(norm_quantile(1.0), f64::INFINITY);
        assert!(norm_quantile(-0.1).is_nan());
        assert!(norm_quantile(1.1).is_nan());
    }

    #[test]
    fn norm_quantile_symmetry() {
        for p in [0.001, 0.2, 0.4] {
            assert!(approx_eq(norm_quantile(p), -norm_quantile(1.0 - p), 1e-10, 1e-12));
        }
    }

    #[test]
    fn inv_erf_round_trip() {
        for x in [-0.999, -0.6, -0.1, 0.0, 0.1, 0.5, 0.9, 0.9999] {
            let y = inv_erf(x);
            assert!(approx_eq(erf(y), x, 1e-12, 1e-14), "x = {x}: erf(inv_erf) = {}", erf(y));
        }
    }

    #[test]
    fn inv_erfc_deep_tail_round_trip() {
        for x in [1e-30, 1e-20, 1e-10, 1e-4, 0.3, 1.0, 1.7, 1.999] {
            let y = inv_erfc(x);
            assert!(
                approx_eq(erfc(y), x, 1e-9, 1e-300),
                "x = {x:e}: erfc(inv_erfc) = {:e}",
                erfc(y)
            );
        }
    }

    #[test]
    fn inv_erfc_edges() {
        assert_eq!(inv_erfc(0.0), f64::INFINITY);
        assert_eq!(inv_erfc(2.0), f64::NEG_INFINITY);
        assert!(inv_erfc(-0.5).is_nan());
        assert!(inv_erfc(2.5).is_nan());
    }

    #[test]
    fn norm_pdf_is_symmetric_and_normalized_at_peak() {
        assert!(approx_eq(norm_pdf(1.3), norm_pdf(-1.3), 1e-16, 0.0));
        assert!(approx_eq(norm_pdf(0.0), 1.0 / (2.0 * PI).sqrt(), 1e-16, 0.0));
    }
}
