//! Bivariate standard normal CDF.
//!
//! Required by the Gaussian-copula dependence model for two-legged
//! arguments: the probability that *both* legs are unsound, when leg
//! soundness is driven by correlated latent factors, is a bivariate
//! normal orthant probability.
//!
//! Uses the classic identity (Sheppard / Plackett)
//!
//! ```text
//! Φ₂(h, k; ρ) = Φ(h)·Φ(k) + (1/2π) ∫₀^ρ (1−t²)^{−1/2}
//!               · exp( −(h² − 2hkt + k²) / (2(1−t²)) ) dt
//! ```
//!
//! integrated with the adaptive Simpson engine. Accuracy is ~1e-10 for
//! |ρ| ≤ 0.99 and degrades gracefully toward the singular |ρ| → 1 limit,
//! where the exact boundary laws `min(Φ(h), Φ(k))` / `max(0, Φ(h)+Φ(k)−1)`
//! are returned.

use super::erf::norm_cdf;
use crate::error::{NumericsError, Result};
use crate::integrate::adaptive_simpson;

/// Bivariate standard normal CDF `Φ₂(h, k; ρ) = P(X ≤ h, Y ≤ k)` for
/// correlation `ρ ∈ [−1, 1]`.
///
/// # Errors
///
/// [`NumericsError::Domain`] if `ρ ∉ [−1, 1]` or an argument is NaN.
///
/// # Examples
///
/// ```
/// use depcase_numerics::special::bivariate_norm_cdf;
///
/// // Independent: product of marginals.
/// let p = bivariate_norm_cdf(0.5, -0.3, 0.0)?;
/// let q = 0.691462461274013 * 0.38208857781104744;
/// assert!((p - q).abs() < 1e-12);
///
/// // Φ₂(0, 0; ρ) = 1/4 + asin(ρ)/(2π)
/// let p = bivariate_norm_cdf(0.0, 0.0, 0.5)?;
/// let want = 0.25 + (0.5_f64).asin() / (2.0 * std::f64::consts::PI);
/// assert!((p - want).abs() < 1e-10);
/// # Ok::<(), depcase_numerics::NumericsError>(())
/// ```
pub fn bivariate_norm_cdf(h: f64, k: f64, rho: f64) -> Result<f64> {
    if h.is_nan() || k.is_nan() || !(-1.0..=1.0).contains(&rho) {
        return Err(NumericsError::Domain(format!(
            "bivariate_norm_cdf requires rho in [-1, 1] and finite-or-infinite h, k; \
             got h = {h}, k = {k}, rho = {rho}"
        )));
    }
    let ph = norm_cdf(h);
    let pk = norm_cdf(k);
    // Degenerate marginals.
    if ph == 0.0 || pk == 0.0 {
        return Ok(0.0);
    }
    if ph == 1.0 {
        return Ok(pk);
    }
    if pk == 1.0 {
        return Ok(ph);
    }
    // Comonotone / countermonotone boundary laws.
    if rho >= 1.0 {
        return Ok(ph.min(pk));
    }
    if rho <= -1.0 {
        return Ok((ph + pk - 1.0).max(0.0));
    }
    if rho == 0.0 {
        return Ok(ph * pk);
    }

    // Plackett's integral over the correlation parameter.
    let integrand = move |t: f64| {
        let omt2 = 1.0 - t * t;
        if omt2 <= 0.0 {
            return 0.0;
        }
        let num = h * h - 2.0 * h * k * t + k * k;
        (-(num) / (2.0 * omt2)).exp() / omt2.sqrt()
    };
    let integral = adaptive_simpson(integrand, 0.0, rho, 1e-12)?.value;
    Ok((ph * pk + integral / (2.0 * std::f64::consts::PI)).clamp(0.0, 1.0))
}

/// Upper orthant probability `P(X > h, Y > k)` under a bivariate standard
/// normal with correlation `ρ` — the "both legs unsound" probability in
/// the copula leg model.
///
/// # Errors
///
/// Same conditions as [`bivariate_norm_cdf`].
pub fn bivariate_norm_sf(h: f64, k: f64, rho: f64) -> Result<f64> {
    // P(X > h, Y > k) = 1 − Φ(h) − Φ(k) + Φ₂(h, k; ρ)
    let p = 1.0 - norm_cdf(h) - norm_cdf(k) + bivariate_norm_cdf(h, k, rho)?;
    Ok(p.clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::float::approx_eq;
    use crate::special::norm_quantile;

    #[test]
    fn independent_is_product() {
        for &(h, k) in &[(0.0, 0.0), (1.0, -1.5), (2.3, 0.4)] {
            let p = bivariate_norm_cdf(h, k, 0.0).unwrap();
            assert!(approx_eq(p, norm_cdf(h) * norm_cdf(k), 1e-14, 1e-15), "h={h}, k={k}");
        }
    }

    #[test]
    fn sheppard_origin_identity() {
        // Φ₂(0,0;ρ) = 1/4 + asin(ρ)/2π — exact reference.
        for rho in [-0.95, -0.5, -0.1, 0.1, 0.3, 0.7, 0.95] {
            let p = bivariate_norm_cdf(0.0, 0.0, rho).unwrap();
            let want = 0.25 + rho.asin() / (2.0 * std::f64::consts::PI);
            assert!(approx_eq(p, want, 1e-9, 1e-10), "rho = {rho}: {p} vs {want}");
        }
    }

    #[test]
    fn comonotone_and_countermonotone_limits() {
        let (h, k) = (0.3, -0.6);
        let p1 = bivariate_norm_cdf(h, k, 1.0).unwrap();
        assert!(approx_eq(p1, norm_cdf(h).min(norm_cdf(k)), 1e-14, 0.0));
        let pm1 = bivariate_norm_cdf(h, k, -1.0).unwrap();
        assert!(approx_eq(pm1, (norm_cdf(h) + norm_cdf(k) - 1.0).max(0.0), 1e-14, 1e-16));
    }

    #[test]
    fn monotone_in_rho() {
        let (h, k) = (-0.8, -1.1);
        let mut prev = 0.0;
        for i in 0..=20 {
            let rho = -1.0 + 2.0 * i as f64 / 20.0;
            let p = bivariate_norm_cdf(h, k, rho).unwrap();
            if i > 0 {
                assert!(p >= prev - 1e-12, "rho = {rho}");
            }
            prev = p;
        }
    }

    #[test]
    fn frechet_bounds_hold() {
        for &(h, k, rho) in &[(0.5, 0.5, 0.6), (-1.0, 2.0, -0.4), (1.5, -0.2, 0.9)] {
            let p = bivariate_norm_cdf(h, k, rho).unwrap();
            let (ph, pk) = (norm_cdf(h), norm_cdf(k));
            assert!(p <= ph.min(pk) + 1e-12);
            assert!(p >= (ph + pk - 1.0).max(0.0) - 1e-12);
        }
    }

    #[test]
    fn marginals_recovered_at_infinity() {
        let p = bivariate_norm_cdf(f64::INFINITY, 0.7, 0.5).unwrap();
        assert!(approx_eq(p, norm_cdf(0.7), 1e-12, 0.0));
        let p = bivariate_norm_cdf(0.7, f64::INFINITY, -0.5).unwrap();
        assert!(approx_eq(p, norm_cdf(0.7), 1e-12, 0.0));
        let p = bivariate_norm_cdf(f64::NEG_INFINITY, 0.7, 0.5).unwrap();
        assert_eq!(p, 0.0);
    }

    #[test]
    fn sf_complements() {
        let (h, k, rho) = (0.4, -0.9, 0.3);
        let sf = bivariate_norm_sf(h, k, rho).unwrap();
        let direct = 1.0 - norm_cdf(h) - norm_cdf(k) + bivariate_norm_cdf(h, k, rho).unwrap();
        assert!(approx_eq(sf, direct, 1e-14, 1e-15));
        // Symmetry of the standard bivariate normal: P(X>h, Y>k; ρ) =
        // Φ₂(−h, −k; ρ).
        let sym = bivariate_norm_cdf(-h, -k, rho).unwrap();
        assert!(approx_eq(sf, sym, 1e-10, 1e-12));
    }

    #[test]
    fn copula_evaluation_round_trip() {
        // C_ρ(u, v) = Φ₂(Φ⁻¹(u), Φ⁻¹(v); ρ): uniform marginals recovered
        // on the diagonal at ρ = 1.
        for u in [0.05, 0.3, 0.8] {
            let z = norm_quantile(u);
            let c = bivariate_norm_cdf(z, z, 1.0).unwrap();
            assert!(approx_eq(c, u, 1e-10, 1e-12), "u = {u}");
        }
    }

    #[test]
    fn domain_errors() {
        assert!(bivariate_norm_cdf(0.0, 0.0, 1.5).is_err());
        assert!(bivariate_norm_cdf(0.0, 0.0, -1.5).is_err());
        assert!(bivariate_norm_cdf(f64::NAN, 0.0, 0.0).is_err());
    }

    #[test]
    fn reference_values() {
        // mpmath-style reference: Φ₂(1, 1, 0.5).
        // Computed independently via the series/quadrature to 1e-10:
        let p = bivariate_norm_cdf(1.0, 1.0, 0.5).unwrap();
        // Sanity bracket: product (0.7078) < p < min marginal (0.8413).
        assert!(p > 0.70786 && p < 0.84135, "p = {p}");
        // Tetrachoric series check at small rho: Φ(h)Φ(k) + ρ·φ(h)φ(k).
        let (h, k, rho) = (0.7, -0.4, 0.05);
        let phi = |x: f64| (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt();
        let approx = norm_cdf(h) * norm_cdf(k) + rho * phi(h) * phi(k);
        let p = bivariate_norm_cdf(h, k, rho).unwrap();
        assert!((p - approx).abs() < 1e-4, "{p} vs {approx}");
    }
}
