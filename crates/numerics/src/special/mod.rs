//! Special functions: error function family, gamma family, beta family.
//!
//! These are the closed-form kernels behind every distribution in
//! `depcase-distributions`: the log-normal CDF is an [`erf`] evaluation,
//! the gamma CDF is a regularized incomplete gamma function, and the
//! Beta posterior used for statistical-testing arguments is a regularized
//! incomplete beta function.
//!
//! All routines operate on `f64` and target close-to-machine accuracy
//! (the error-function family uses W. J. Cody's rational minimax
//! approximations; the inverse normal quantile uses Acklam's algorithm
//! refined by one Halley step).

mod beta;
mod bivariate;
mod erf;
mod gamma;

pub use beta::{inv_reg_inc_beta, ln_beta, reg_inc_beta};
pub use bivariate::{bivariate_norm_cdf, bivariate_norm_sf};
pub use erf::{erf, erfc, inv_erf, inv_erfc, norm_cdf, norm_pdf, norm_quantile, norm_sf};
pub use gamma::{digamma, gamma, inv_reg_gamma_p, ln_gamma, reg_gamma_p, reg_gamma_q, trigamma};
