//! Beta function family: `ln B(a, b)`, the regularized incomplete beta
//! function `I_x(a, b)` and its inverse.
//!
//! `I_x(a, b)` is the CDF of the Beta(a, b) distribution, which is the
//! conjugate posterior family for Bernoulli/pfd testing evidence — the
//! machinery behind "how many failure-free demands buy how much
//! confidence" in the paper's Section 4.1.

use super::gamma::ln_gamma;
use crate::error::{NumericsError, Result};

const MAX_ITER: usize = 500;
const EPS: f64 = 1e-15;
const FPMIN: f64 = f64::MIN_POSITIVE / EPS;

/// Natural log of the beta function, `ln B(a, b) = ln Γ(a) + ln Γ(b) − ln Γ(a+b)`.
///
/// # Examples
///
/// ```
/// use depcase_numerics::special::ln_beta;
///
/// // B(1, 1) = 1
/// assert!(ln_beta(1.0, 1.0).abs() < 1e-14);
/// // B(2, 3) = 1/12
/// assert!((ln_beta(2.0, 3.0) - (1.0_f64 / 12.0).ln()).abs() < 1e-12);
/// ```
#[must_use]
pub fn ln_beta(a: f64, b: f64) -> f64 {
    if !(a > 0.0) || !(b > 0.0) {
        return f64::NAN;
    }
    ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b)
}

/// Continued fraction for the incomplete beta (modified Lentz).
fn betacf(a: f64, b: f64, x: f64) -> Result<f64> {
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m_f = m as f64;
        let m2 = 2.0 * m_f;
        let aa = m_f * (b - m_f) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        let aa = -(a + m_f) * (qab + m_f) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            return Ok(h);
        }
    }
    Err(NumericsError::NoConvergence { routine: "betacf", max_iter: MAX_ITER })
}

/// Regularized incomplete beta function `I_x(a, b)` for `a, b > 0`,
/// `x ∈ [0, 1]` — the Beta(a, b) CDF at `x`.
///
/// # Errors
///
/// Returns [`NumericsError::Domain`] unless `a > 0`, `b > 0` and
/// `x ∈ [0, 1]`; [`NumericsError::NoConvergence`] if the continued
/// fraction stalls (not observed for sane arguments).
///
/// # Examples
///
/// ```
/// use depcase_numerics::special::reg_inc_beta;
///
/// // I_x(1, 1) = x (uniform CDF)
/// assert!((reg_inc_beta(1.0, 1.0, 0.3)? - 0.3).abs() < 1e-14);
/// # Ok::<(), depcase_numerics::NumericsError>(())
/// ```
pub fn reg_inc_beta(a: f64, b: f64, x: f64) -> Result<f64> {
    if !(a > 0.0) || !(b > 0.0) || !(0.0..=1.0).contains(&x) {
        return Err(NumericsError::Domain(format!(
            "reg_inc_beta requires a, b > 0 and x in [0,1]; got a = {a}, b = {b}, x = {x}"
        )));
    }
    if x == 0.0 {
        return Ok(0.0);
    }
    if x == 1.0 {
        return Ok(1.0);
    }
    let ln_front = a * x.ln() + b * (1.0 - x).ln() - ln_beta(a, b);
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        Ok(front * betacf(a, b, x)? / a)
    } else {
        Ok(1.0 - front * betacf(b, a, 1.0 - x)? / b)
    }
}

/// Inverse regularized incomplete beta: solves `I_x(a, b) = p` for `x`.
///
/// Numerical Recipes starting guess plus safeguarded Newton iteration.
///
/// # Errors
///
/// Returns [`NumericsError::Domain`] unless `a > 0`, `b > 0`,
/// `p ∈ [0, 1]`.
///
/// # Examples
///
/// ```
/// use depcase_numerics::special::{inv_reg_inc_beta, reg_inc_beta};
///
/// let x = inv_reg_inc_beta(2.0, 5.0, 0.9)?;
/// assert!((reg_inc_beta(2.0, 5.0, x)? - 0.9).abs() < 1e-10);
/// # Ok::<(), depcase_numerics::NumericsError>(())
/// ```
pub fn inv_reg_inc_beta(a: f64, b: f64, p: f64) -> Result<f64> {
    if !(a > 0.0) || !(b > 0.0) || !(0.0..=1.0).contains(&p) {
        return Err(NumericsError::Domain(format!(
            "inv_reg_inc_beta requires a, b > 0 and p in [0,1]; got a = {a}, b = {b}, p = {p}"
        )));
    }
    if p == 0.0 {
        return Ok(0.0);
    }
    if p == 1.0 {
        return Ok(1.0);
    }

    // Starting guess (NR 6.4, invbetai).
    let mut x;
    if a >= 1.0 && b >= 1.0 {
        let pp = if p < 0.5 { p } else { 1.0 - p };
        let t = (-2.0 * pp.ln()).sqrt();
        let mut w = (2.30753 + t * 0.27061) / (1.0 + t * (0.99229 + t * 0.04481)) - t;
        if p < 0.5 {
            w = -w;
        }
        let al = (w * w - 3.0) / 6.0;
        let h = 2.0 / (1.0 / (2.0 * a - 1.0) + 1.0 / (2.0 * b - 1.0));
        let ww = w * (al + h).sqrt() / h
            - (1.0 / (2.0 * b - 1.0) - 1.0 / (2.0 * a - 1.0)) * (al + 5.0 / 6.0 - 2.0 / (3.0 * h));
        x = a / (a + b * (2.0 * ww).exp());
    } else {
        let lna = (a / (a + b)).ln();
        let lnb = (b / (a + b)).ln();
        let t = (a * lna).exp() / a;
        let u = (b * lnb).exp() / b;
        let w = t + u;
        if p < t / w {
            x = (a * w * p).powf(1.0 / a);
        } else {
            x = 1.0 - (b * w * (1.0 - p)).powf(1.0 / b);
        }
    }
    x = x.clamp(1e-300, 1.0 - 1e-16);

    let afac = -ln_beta(a, b);
    let a1 = a - 1.0;
    let b1 = b - 1.0;
    for _ in 0..60 {
        if x == 0.0 || x == 1.0 {
            break;
        }
        let err = reg_inc_beta(a, b, x)? - p;
        let t = (a1 * x.ln() + b1 * (1.0 - x).ln() + afac).exp();
        if t == 0.0 {
            break;
        }
        let u = err / t;
        let step = u / (1.0 - 0.5 * (u * (a1 / x - b1 / (1.0 - x))).min(1.0));
        x -= step;
        if x <= 0.0 {
            x = 0.5 * (x + step);
        }
        if x >= 1.0 {
            x = 0.5 * (x + step + 1.0);
        }
        if step.abs() < 1e-14 * x && x > 0.0 {
            break;
        }
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::float::approx_eq;

    #[test]
    fn ln_beta_known_values() {
        // B(a,b) = Γ(a)Γ(b)/Γ(a+b)
        assert!(approx_eq(ln_beta(1.0, 1.0), 0.0, 0.0, 1e-14));
        assert!(approx_eq(ln_beta(0.5, 0.5), std::f64::consts::PI.ln(), 1e-13, 0.0));
        assert!(approx_eq(ln_beta(3.0, 4.0), (1.0_f64 / 60.0).ln(), 1e-12, 0.0));
    }

    #[test]
    fn ln_beta_symmetry() {
        for &(a, b) in &[(0.3, 2.2), (1.5, 7.0), (10.0, 0.1)] {
            assert!(approx_eq(ln_beta(a, b), ln_beta(b, a), 1e-13, 1e-13));
        }
    }

    #[test]
    fn ln_beta_domain() {
        assert!(ln_beta(0.0, 1.0).is_nan());
        assert!(ln_beta(1.0, -1.0).is_nan());
    }

    #[test]
    fn reg_inc_beta_uniform_case() {
        for x in [0.0, 0.1, 0.5, 0.9, 1.0] {
            assert!(approx_eq(reg_inc_beta(1.0, 1.0, x).unwrap(), x, 1e-14, 1e-15));
        }
    }

    #[test]
    fn reg_inc_beta_power_case() {
        // I_x(a, 1) = x^a
        for &(a, x) in &[(2.0, 0.3), (5.0, 0.9), (0.5, 0.25)] {
            assert!(
                approx_eq(reg_inc_beta(a, 1.0, x).unwrap(), x.powf(a), 1e-13, 1e-14),
                "a = {a}, x = {x}"
            );
        }
    }

    #[test]
    fn reg_inc_beta_reference_values() {
        // mpmath: betainc(2, 3, 0, 0.4, regularized=True) = 0.5248
        assert!(approx_eq(reg_inc_beta(2.0, 3.0, 0.4).unwrap(), 0.5248, 1e-12, 0.0));
        // betainc(0.5, 0.5, 0, 0.5) = 0.5 (arcsine symmetric)
        assert!(approx_eq(reg_inc_beta(0.5, 0.5, 0.5).unwrap(), 0.5, 1e-12, 0.0));
        // betainc(10, 2, 0, 0.8) = 0.3221225471999998 (mpmath 0.322122547199...)
        assert!(approx_eq(reg_inc_beta(10.0, 2.0, 0.8).unwrap(), 0.3221225472, 1e-9, 0.0));
    }

    #[test]
    fn reg_inc_beta_symmetry_identity() {
        // I_x(a, b) = 1 − I_{1−x}(b, a)
        for &(a, b, x) in &[(2.0, 5.0, 0.3), (0.4, 0.9, 0.7), (8.0, 3.0, 0.55)] {
            let lhs = reg_inc_beta(a, b, x).unwrap();
            let rhs = 1.0 - reg_inc_beta(b, a, 1.0 - x).unwrap();
            assert!(approx_eq(lhs, rhs, 1e-12, 1e-13), "a = {a}, b = {b}, x = {x}");
        }
    }

    #[test]
    fn reg_inc_beta_monotone_in_x() {
        let a = 3.0;
        let b = 1.7;
        let mut prev = 0.0;
        for i in 1..=20 {
            let x = i as f64 / 20.0;
            let v = reg_inc_beta(a, b, x).unwrap();
            assert!(v >= prev, "not monotone at x = {x}");
            prev = v;
        }
    }

    #[test]
    fn reg_inc_beta_domain_errors() {
        assert!(reg_inc_beta(0.0, 1.0, 0.5).is_err());
        assert!(reg_inc_beta(1.0, 1.0, -0.1).is_err());
        assert!(reg_inc_beta(1.0, 1.0, 1.1).is_err());
        assert!(reg_inc_beta(f64::NAN, 1.0, 0.5).is_err());
    }

    #[test]
    fn inv_reg_inc_beta_round_trip() {
        for &(a, b) in &[(1.0, 1.0), (2.0, 5.0), (0.5, 0.5), (30.0, 2.0), (0.3, 4.0)] {
            for p in [1e-6, 0.05, 0.3, 0.5, 0.77, 0.99, 1.0 - 1e-8] {
                let x = inv_reg_inc_beta(a, b, p).unwrap();
                let back = reg_inc_beta(a, b, x).unwrap();
                assert!(
                    approx_eq(back, p, 1e-7, 1e-9),
                    "a = {a}, b = {b}, p = {p}: x = {x}, back = {back}"
                );
            }
        }
    }

    #[test]
    fn inv_reg_inc_beta_edges() {
        assert_eq!(inv_reg_inc_beta(2.0, 3.0, 0.0).unwrap(), 0.0);
        assert_eq!(inv_reg_inc_beta(2.0, 3.0, 1.0).unwrap(), 1.0);
        assert!(inv_reg_inc_beta(2.0, 3.0, -0.1).is_err());
        assert!(inv_reg_inc_beta(0.0, 3.0, 0.5).is_err());
    }

    #[test]
    fn beta_posterior_failure_free_demands() {
        // The statistical-testing kernel: with a uniform prior on pfd and
        // n failure-free demands, P(pfd < y) = I_y(1, n+1) = 1 − (1−y)^{n+1}.
        let n = 1000.0;
        let y = 1e-3;
        let got = reg_inc_beta(1.0, n + 1.0, y).unwrap();
        let want = 1.0 - (1.0 - y).powf(n + 1.0);
        assert!(approx_eq(got, want, 1e-10, 1e-12));
    }
}
