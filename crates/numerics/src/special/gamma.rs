//! Gamma function family: `ln Γ`, regularized incomplete gamma `P`/`Q`
//! with inverse, digamma and trigamma.
//!
//! `ln_gamma` uses the Lanczos approximation (g = 7, 9 terms). The
//! regularized incomplete gamma follows the classic series / continued
//! fraction split at `x = a + 1` (Numerical Recipes `gammp`/`gammq`),
//! evaluated with modified Lentz iteration.

use crate::error::{NumericsError, Result};

/// Lanczos coefficients, g = 7, n = 9.
const LANCZOS_G: f64 = 7.0;
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_93,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_13,
    -176.615_029_162_140_59,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_571_6e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural log of the absolute value of the gamma function, `ln |Γ(x)|`,
/// for `x > 0`.
///
/// # Examples
///
/// ```
/// use depcase_numerics::special::ln_gamma;
///
/// // Γ(5) = 24
/// assert!((ln_gamma(5.0) - 24.0_f64.ln()).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Does not panic; returns NaN for `x <= 0` and non-finite inputs other
/// than `+∞` (where it returns `+∞`).
#[must_use]
pub fn ln_gamma(x: f64) -> f64 {
    if x.is_nan() || x <= 0.0 {
        return f64::NAN;
    }
    if x == f64::INFINITY {
        return f64::INFINITY;
    }
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1−x) = π / sin(πx)
        let s = (std::f64::consts::PI * x).sin();
        return std::f64::consts::PI.ln() - s.ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS[0];
    for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// The gamma function `Γ(x)` for `x > 0`.
///
/// Overflows to `+∞` for `x ≳ 171.6`.
///
/// # Examples
///
/// ```
/// use depcase_numerics::special::gamma;
///
/// assert!((gamma(4.0) - 6.0).abs() < 1e-12);
/// assert!((gamma(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-12);
/// ```
#[must_use]
pub fn gamma(x: f64) -> f64 {
    ln_gamma(x).exp()
}

// The series/continued fraction need ~sqrt(a) iterations in the
// transition region x ≈ a; a generous cap keeps huge shapes (millions)
// usable at negligible cost for the common small-shape calls.
const MAX_ITER: usize = 20_000;
const EPS: f64 = 1e-15;
const FPMIN: f64 = f64::MIN_POSITIVE / EPS;

/// Series expansion for the lower regularized incomplete gamma `P(a, x)`,
/// valid (fast-converging) for `x < a + 1`.
fn gamma_p_series(a: f64, x: f64) -> Result<f64> {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            return Ok(sum * (-x + a * x.ln() - ln_gamma(a)).exp());
        }
    }
    Err(NumericsError::NoConvergence { routine: "gamma_p_series", max_iter: MAX_ITER })
}

/// Continued fraction for the upper regularized incomplete gamma `Q(a, x)`,
/// valid for `x >= a + 1` (modified Lentz).
fn gamma_q_cf(a: f64, x: f64) -> Result<f64> {
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            return Ok((-x + a * x.ln() - ln_gamma(a)).exp() * h);
        }
    }
    Err(NumericsError::NoConvergence { routine: "gamma_q_cf", max_iter: MAX_ITER })
}

/// Lower regularized incomplete gamma function
/// `P(a, x) = γ(a, x) / Γ(a)`, for `a > 0`, `x >= 0`.
///
/// This is the CDF of a Gamma(shape `a`, scale 1) random variable.
///
/// # Errors
///
/// Returns [`NumericsError::Domain`] for `a <= 0` or `x < 0`, and
/// [`NumericsError::NoConvergence`] if the series/continued fraction fails
/// to converge (not observed for sane arguments).
///
/// # Examples
///
/// ```
/// use depcase_numerics::special::reg_gamma_p;
///
/// // P(1, x) = 1 - exp(-x)
/// let p = reg_gamma_p(1.0, 2.0)?;
/// assert!((p - (1.0 - (-2.0_f64).exp())).abs() < 1e-14);
/// # Ok::<(), depcase_numerics::NumericsError>(())
/// ```
pub fn reg_gamma_p(a: f64, x: f64) -> Result<f64> {
    if !(a > 0.0) || !(x >= 0.0) {
        return Err(NumericsError::Domain(format!(
            "reg_gamma_p requires a > 0 and x >= 0, got a = {a}, x = {x}"
        )));
    }
    if x == 0.0 {
        return Ok(0.0);
    }
    if x == f64::INFINITY {
        return Ok(1.0);
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        Ok(1.0 - gamma_q_cf(a, x)?)
    }
}

/// Upper regularized incomplete gamma function `Q(a, x) = 1 − P(a, x)`,
/// computed directly in the tail so very small values keep their relative
/// precision.
///
/// # Errors
///
/// Same conditions as [`reg_gamma_p`].
///
/// # Examples
///
/// ```
/// use depcase_numerics::special::reg_gamma_q;
///
/// // Q(1, x) = exp(-x) keeps precision far into the tail.
/// let q = reg_gamma_q(1.0, 50.0)?;
/// assert!((q / (-50.0_f64).exp() - 1.0).abs() < 1e-10);
/// # Ok::<(), depcase_numerics::NumericsError>(())
/// ```
pub fn reg_gamma_q(a: f64, x: f64) -> Result<f64> {
    if !(a > 0.0) || !(x >= 0.0) {
        return Err(NumericsError::Domain(format!(
            "reg_gamma_q requires a > 0 and x >= 0, got a = {a}, x = {x}"
        )));
    }
    if x == 0.0 {
        return Ok(1.0);
    }
    if x == f64::INFINITY {
        return Ok(0.0);
    }
    if x < a + 1.0 {
        Ok(1.0 - gamma_p_series(a, x)?)
    } else {
        gamma_q_cf(a, x)
    }
}

/// Inverse of the lower regularized incomplete gamma: solves
/// `P(a, x) = p` for `x`.
///
/// Uses the Numerical Recipes starting guess followed by safeguarded
/// Halley iteration.
///
/// # Errors
///
/// Returns [`NumericsError::Domain`] unless `a > 0` and `p ∈ [0, 1]`.
///
/// # Examples
///
/// ```
/// use depcase_numerics::special::{inv_reg_gamma_p, reg_gamma_p};
///
/// let x = inv_reg_gamma_p(2.5, 0.7)?;
/// assert!((reg_gamma_p(2.5, x)? - 0.7).abs() < 1e-10);
/// # Ok::<(), depcase_numerics::NumericsError>(())
/// ```
pub fn inv_reg_gamma_p(a: f64, p: f64) -> Result<f64> {
    if !(a > 0.0) || !(0.0..=1.0).contains(&p) {
        return Err(NumericsError::Domain(format!(
            "inv_reg_gamma_p requires a > 0 and p in [0,1], got a = {a}, p = {p}"
        )));
    }
    if p == 0.0 {
        return Ok(0.0);
    }
    if p == 1.0 {
        return Ok(f64::INFINITY);
    }

    // Root-find in log space: g(t) = P(a, e^t) − p is monotone increasing
    // in t, and log space gives uniform *relative* precision on x, which
    // is what far-left-tail quantiles (tiny failure rates) need.
    let g = |t: f64| reg_gamma_p(a, t.exp()).map(|v| v - p);

    // Initial bracket around the mean a, expanded geometrically.
    let mut lo = a.ln();
    let mut hi = lo;
    let mut iters = 0usize;
    while g(lo)? > 0.0 {
        lo -= 2.0_f64.max(1.0);
        iters += 1;
        if iters > 600 {
            return Err(NumericsError::NoConvergence {
                routine: "inv_reg_gamma_p_bracket",
                max_iter: 600,
            });
        }
    }
    iters = 0;
    while g(hi)? < 0.0 {
        hi += 2.0;
        iters += 1;
        if iters > 600 {
            return Err(NumericsError::NoConvergence {
                routine: "inv_reg_gamma_p_bracket",
                max_iter: 600,
            });
        }
    }

    // Bisection on the bracket (robust; the function is monotone).
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if g(mid)? < 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-14 {
            break;
        }
    }
    Ok((0.5 * (lo + hi)).exp())
}

/// Digamma function `ψ(x) = d/dx ln Γ(x)`, for `x > 0`.
///
/// Uses upward recurrence to shift `x` above 6 and the standard
/// asymptotic series.
///
/// # Examples
///
/// ```
/// use depcase_numerics::special::digamma;
///
/// // ψ(1) = −γ (Euler–Mascheroni)
/// assert!((digamma(1.0) + 0.5772156649015329).abs() < 1e-12);
/// ```
#[must_use]
pub fn digamma(x: f64) -> f64 {
    if x.is_nan() || x <= 0.0 {
        return f64::NAN;
    }
    let mut x = x;
    let mut result = 0.0;
    while x < 10.0 {
        result -= 1.0 / x;
        x += 1.0;
    }
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    // Asymptotic series: ln x − 1/(2x) − Σ B₂ₙ/(2n x^{2n}).
    result + x.ln()
        - 0.5 * inv
        - inv2
            * (1.0 / 12.0
                - inv2
                    * (1.0 / 120.0
                        - inv2
                            * (1.0 / 252.0
                                - inv2
                                    * (1.0 / 240.0
                                        - inv2 * (1.0 / 132.0 - inv2 * (691.0 / 32760.0))))))
}

/// Trigamma function `ψ′(x)`, for `x > 0`.
///
/// # Examples
///
/// ```
/// use depcase_numerics::special::trigamma;
///
/// // ψ′(1) = π²/6
/// let want = std::f64::consts::PI.powi(2) / 6.0;
/// assert!((trigamma(1.0) - want).abs() < 1e-10);
/// ```
#[must_use]
pub fn trigamma(x: f64) -> f64 {
    if x.is_nan() || x <= 0.0 {
        return f64::NAN;
    }
    let mut x = x;
    let mut result = 0.0;
    while x < 10.0 {
        result += 1.0 / (x * x);
        x += 1.0;
    }
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    // Asymptotic series: 1/x + 1/(2x²) + Σ B₂ₙ/x^{2n+1}.
    result
        + inv
            * (1.0
                + 0.5 * inv
                + inv2
                    * (1.0 / 6.0
                        - inv2
                            * (1.0 / 30.0
                                - inv2 * (1.0 / 42.0 - inv2 * (1.0 / 30.0 - inv2 * (5.0 / 66.0))))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::float::approx_eq;

    #[test]
    fn ln_gamma_integers() {
        // Γ(n) = (n−1)!
        let facts = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0, 5040.0];
        for (n, &f) in facts.iter().enumerate() {
            let x = (n + 1) as f64;
            assert!(
                approx_eq(ln_gamma(x), f64::ln(f), 1e-13, 1e-13),
                "ln_gamma({x}) = {}, want ln({f})",
                ln_gamma(x)
            );
        }
    }

    #[test]
    fn ln_gamma_half_integers() {
        // Γ(1/2) = sqrt(π), Γ(3/2) = sqrt(π)/2
        let sqrt_pi = std::f64::consts::PI.sqrt();
        assert!(approx_eq(ln_gamma(0.5), sqrt_pi.ln(), 1e-13, 1e-13));
        assert!(approx_eq(ln_gamma(1.5), (sqrt_pi / 2.0).ln(), 1e-13, 1e-13));
        assert!(approx_eq(ln_gamma(2.5), (3.0 * sqrt_pi / 4.0).ln(), 1e-13, 1e-13));
    }

    #[test]
    fn ln_gamma_large_argument_stirling_regime() {
        // mpmath: lgamma(100) = 359.134205369575398776044717891
        assert!(approx_eq(ln_gamma(100.0), 359.134205369575398776, 1e-13, 0.0));
        // lgamma(1e6)
        assert!(approx_eq(ln_gamma(1e6), 12815504.569147882, 1e-12, 0.0));
    }

    #[test]
    fn ln_gamma_small_argument_reflection() {
        // Γ(0.1) = 9.513507698668731836...
        assert!(approx_eq(gamma(0.1), 9.513507698668731836, 1e-12, 0.0));
        assert!(approx_eq(gamma(0.25), 3.625609908221908311, 1e-12, 0.0));
    }

    #[test]
    fn ln_gamma_domain() {
        assert!(ln_gamma(0.0).is_nan());
        assert!(ln_gamma(-1.5).is_nan());
        assert!(ln_gamma(f64::NAN).is_nan());
        assert_eq!(ln_gamma(f64::INFINITY), f64::INFINITY);
    }

    #[test]
    fn gamma_recurrence_property() {
        // Γ(x+1) = x Γ(x)
        for x in [0.3, 0.7, 1.5, 2.2, 5.9, 10.4] {
            assert!(
                approx_eq(gamma(x + 1.0), x * gamma(x), 1e-12, 1e-12),
                "recurrence failed at {x}"
            );
        }
    }

    #[test]
    fn reg_gamma_p_exponential_special_case() {
        // P(1, x) = 1 − e^{−x}
        for x in [0.1, 0.5, 1.0, 3.0, 10.0] {
            let p = reg_gamma_p(1.0, x).unwrap();
            assert!(approx_eq(p, 1.0 - (-x).exp(), 1e-13, 1e-14), "x = {x}");
        }
    }

    #[test]
    fn reg_gamma_p_chisq_special_case() {
        // Chi-square with 2k dof: P(k, x/2). Reference: P(χ²_4 ≤ 5) where
        // a = 2, x = 2.5. mpmath: gammainc(2, 0, 2.5, regularized=True)
        let p = reg_gamma_p(2.0, 2.5).unwrap();
        assert!(approx_eq(p, 0.712702504816354100, 1e-12, 0.0), "got {p}");
    }

    #[test]
    fn reg_gamma_p_q_sum_to_one() {
        for a in [0.2, 1.0, 3.5, 20.0] {
            for x in [0.05, 0.5, 2.0, 5.0, 30.0] {
                let p = reg_gamma_p(a, x).unwrap();
                let q = reg_gamma_q(a, x).unwrap();
                assert!(approx_eq(p + q, 1.0, 1e-13, 1e-13), "a = {a}, x = {x}");
            }
        }
    }

    #[test]
    fn reg_gamma_q_far_tail_relative_precision() {
        // Q(1, x) = e^{−x}
        for x in [30.0, 50.0, 100.0] {
            let q = reg_gamma_q(1.0, x).unwrap();
            assert!(approx_eq(q, (-x).exp(), 1e-10, 0.0), "x = {x}");
        }
    }

    #[test]
    fn reg_gamma_edge_cases() {
        assert_eq!(reg_gamma_p(2.0, 0.0).unwrap(), 0.0);
        assert_eq!(reg_gamma_q(2.0, 0.0).unwrap(), 1.0);
        assert_eq!(reg_gamma_p(2.0, f64::INFINITY).unwrap(), 1.0);
        assert_eq!(reg_gamma_q(2.0, f64::INFINITY).unwrap(), 0.0);
    }

    #[test]
    fn reg_gamma_domain_errors() {
        assert!(reg_gamma_p(0.0, 1.0).is_err());
        assert!(reg_gamma_p(-1.0, 1.0).is_err());
        assert!(reg_gamma_p(1.0, -0.5).is_err());
        assert!(reg_gamma_q(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn inv_reg_gamma_p_round_trip() {
        for a in [0.3, 0.9, 1.0, 2.5, 7.0, 40.0] {
            for p in [1e-6, 0.01, 0.2, 0.5, 0.8, 0.99, 1.0 - 1e-9] {
                let x = inv_reg_gamma_p(a, p).unwrap();
                let back = reg_gamma_p(a, x).unwrap();
                assert!(
                    approx_eq(back, p, 1e-8, 1e-10),
                    "a = {a}, p = {p}: x = {x}, back = {back}"
                );
            }
        }
    }

    #[test]
    fn inv_reg_gamma_p_edges() {
        assert_eq!(inv_reg_gamma_p(2.0, 0.0).unwrap(), 0.0);
        assert_eq!(inv_reg_gamma_p(2.0, 1.0).unwrap(), f64::INFINITY);
        assert!(inv_reg_gamma_p(2.0, 1.5).is_err());
        assert!(inv_reg_gamma_p(-1.0, 0.5).is_err());
    }

    #[test]
    fn digamma_known_values() {
        const EULER: f64 = 0.577_215_664_901_532_9;
        assert!(approx_eq(digamma(1.0), -EULER, 1e-12, 0.0));
        assert!(approx_eq(digamma(2.0), 1.0 - EULER, 1e-12, 0.0));
        // ψ(1/2) = −γ − 2 ln 2
        assert!(approx_eq(digamma(0.5), -EULER - 2.0 * std::f64::consts::LN_2, 1e-12, 0.0));
    }

    #[test]
    fn digamma_recurrence() {
        // ψ(x+1) = ψ(x) + 1/x
        for x in [0.2, 0.9, 3.1, 12.0] {
            assert!(approx_eq(digamma(x + 1.0), digamma(x) + 1.0 / x, 1e-11, 1e-12), "x = {x}");
        }
    }

    #[test]
    fn trigamma_known_values() {
        let pi2_6 = std::f64::consts::PI.powi(2) / 6.0;
        assert!(approx_eq(trigamma(1.0), pi2_6, 1e-10, 0.0));
        // ψ′(1/2) = π²/2
        assert!(approx_eq(trigamma(0.5), std::f64::consts::PI.powi(2) / 2.0, 1e-10, 0.0));
    }

    #[test]
    fn trigamma_recurrence() {
        // ψ′(x+1) = ψ′(x) − 1/x²
        for x in [0.4, 1.7, 8.0] {
            assert!(
                approx_eq(trigamma(x + 1.0), trigamma(x) - 1.0 / (x * x), 1e-10, 1e-12),
                "x = {x}"
            );
        }
    }

    #[test]
    fn digamma_trigamma_domain() {
        assert!(digamma(0.0).is_nan());
        assert!(digamma(-2.0).is_nan());
        assert!(trigamma(0.0).is_nan());
    }
}
