//! Property tests for the worst-case confidence calculus.

use depcase_core::multileg::{combine_with_shared_assumption, Leg};
use depcase_core::testing::{demands_needed_uniform_prior, worst_case_doubt_after_demands};
use depcase_core::{ConfidenceStatement, WorstCaseBound};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Eq. (5) algebra: the bound is a probability, lies between its two
    /// arguments' max and their sum, and is monotone in each argument.
    #[test]
    fn bound_algebra(x in 0.0f64..1.0, y in 0.0f64..1.0, dx in 0.0f64..0.2) {
        let b = WorstCaseBound::bound(x, y).unwrap();
        prop_assert!((0.0..=1.0).contains(&b));
        prop_assert!(b >= x.max(y) - 1e-15);
        prop_assert!(b <= x + y + 1e-15);
        let b2 = WorstCaseBound::bound((x + dx).min(1.0), y).unwrap();
        prop_assert!(b2 >= b - 1e-15, "monotone in doubt");
        let b3 = WorstCaseBound::bound(x, (y + dx).min(1.0)).unwrap();
        prop_assert!(b3 >= b - 1e-15, "monotone in claim bound");
    }

    /// The statement's worst-case probability matches the free function.
    #[test]
    fn statement_consistency(y in 0.0f64..1.0, conf in 0.0f64..1.0) {
        let s = ConfidenceStatement::new(y, conf).unwrap();
        let b = WorstCaseBound::bound(1.0 - conf, y).unwrap();
        prop_assert!((s.worst_case_failure_probability() - b).abs() < 1e-15);
    }

    /// Perfection probability always helps, factor always helps.
    #[test]
    fn refinements_never_hurt(
        x in 0.0f64..0.5,
        y in 0.0f64..0.5,
        p0 in 0.0f64..0.5,
        k in 1.0f64..1e6,
    ) {
        let plain = WorstCaseBound::bound(x, y).unwrap();
        let perf = WorstCaseBound::bound_with_perfection(x, y, p0).unwrap();
        prop_assert!(perf <= plain + 1e-15);
        let fac = WorstCaseBound::bound_with_factor(x, y, k).unwrap();
        prop_assert!(fac <= plain + 1e-15);
    }

    /// required_claim_bound and required_confidence are mutually
    /// consistent.
    #[test]
    fn inverse_solvers_consistent(target in 1e-5f64..0.5, frac in 0.05f64..0.95) {
        let y = target * frac;
        let conf = WorstCaseBound::required_confidence(target, y).unwrap();
        let y_back = WorstCaseBound::required_claim_bound(target, conf).unwrap();
        prop_assert!((y_back - y).abs() < 1e-9 * target.max(y));
    }

    /// The demands-needed closed form is exact: n is minimal.
    #[test]
    fn demands_needed_minimal(
        bound_exp in 1.0f64..4.0,
        conf in 0.5f64..0.999,
    ) {
        let bound = 10f64.powf(-bound_exp);
        let n = demands_needed_uniform_prior(bound, conf).unwrap();
        let post = |n: u64| 1.0 - (1.0 - bound).powf(n as f64 + 1.0);
        prop_assert!(post(n) >= conf - 1e-12);
        if n > 0 {
            prop_assert!(post(n - 1) < conf + 1e-12);
        }
    }

    /// Worst-case doubt updates stay probabilities and decrease in n.
    #[test]
    fn doubt_update_monotone(
        x in 0.001f64..0.9,
        y_exp in 2.0f64..6.0,
        w_mult in 2.0f64..100.0,
        n1 in 0u64..5000,
        dn in 1u64..5000,
    ) {
        let y = 10f64.powf(-y_exp);
        let w = (y * w_mult).min(1.0);
        prop_assume!(w > y);
        let a = worst_case_doubt_after_demands(x, y, w, n1).unwrap();
        let b = worst_case_doubt_after_demands(x, y, w, n1 + dn).unwrap();
        prop_assert!((0.0..=1.0).contains(&a));
        prop_assert!(b <= a + 1e-15);
    }

    /// Shared-assumption combination: result is bracketed by the shared
    /// floor and the weaker leg.
    #[test]
    fn shared_assumption_bracket(
        xa in 0.0f64..1.0,
        xb in 0.0f64..1.0,
        sfrac in 0.0f64..1.0,
    ) {
        let s = sfrac * xa.min(xb);
        let a = Leg::with_doubt(xa).unwrap();
        let b = Leg::with_doubt(xb).unwrap();
        let c = combine_with_shared_assumption(a, b, s).unwrap();
        prop_assert!(c.independent >= s - 1e-12);
        prop_assert!(c.worst_case <= xa.min(xb) + 1e-12);
        prop_assert!(c.best_case >= c.independent - 1e-12 || c.independent >= c.best_case - 1e-12);
        // Full ordering:
        prop_assert!(c.best_case <= c.independent + 1e-12);
        prop_assert!(c.independent <= c.worst_case + 1e-12);
    }
}
