//! Risk-assessment helpers connecting belief distributions to decisions.
//!
//! The paper's Eq. (4): for a belief `f(p)` about the pfd, the
//! probability the system fails on a randomly selected demand is
//! `∫ p f(p) dp` — the *mean* of the belief. "The confidence (or doubt)
//! about the pfd has been turned into a probability of the occurrence of
//! an event," which is what a wider risk assessment consumes.

use crate::claim::ConfidenceStatement;
use crate::error::Result;
use depcase_distributions::Distribution;
use depcase_sil::{DemandMode, SilAssessment, SilLevel};

/// The unconditional probability of failure on a randomly selected
/// demand under the belief `f(p)` — the paper's Eq. (4), `∫ p f(p) dp`.
///
/// For beliefs with closed-form means this is exact; composite beliefs
/// compute it by quadrature internally.
///
/// # Examples
///
/// ```
/// use depcase_core::decision::unconditional_failure_probability;
/// use depcase_distributions::Beta;
///
/// let belief = Beta::new(1.0, 999.0)?;
/// let p = unconditional_failure_probability(&belief);
/// assert!((p - 1e-3).abs() < 1e-12);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn unconditional_failure_probability<D: Distribution + ?Sized>(belief: &D) -> f64 {
    belief.mean()
}

/// Whether the belief meets a system pfd requirement *in expectation*
/// (Eq. (4) reading): `∫ p f(p) dp < requirement`.
#[must_use]
pub fn meets_requirement_in_expectation<D: Distribution + ?Sized>(
    belief: &D,
    requirement: f64,
) -> bool {
    unconditional_failure_probability(belief) < requirement
}

/// A full decision summary for a judged system: the quantities a
/// regulator reading the paper would ask for, in one struct.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionSummary {
    /// Eq. (4): unconditional failure probability (belief mean).
    pub failure_probability: f64,
    /// SIL band of the mean.
    pub sil_of_mean: Option<SilLevel>,
    /// SIL band of the mode (the naive "most likely" rating).
    pub sil_of_mode: Option<SilLevel>,
    /// One-sided confidence in the mode's band (or 0 when no mode band).
    pub confidence_in_mode_band: f64,
    /// The strongest SIL claimable at 70% one-sided confidence — the
    /// IEC 61508 operating-history requirement.
    pub claimable_at_70: Option<SilLevel>,
    /// The strongest SIL claimable at 99% — the paper's "we would need at
    /// least 99% confidence in SIL2" conservative reading.
    pub claimable_at_99: Option<SilLevel>,
}

/// Builds a [`DecisionSummary`] for a pfd belief in low-demand mode.
///
/// # Examples
///
/// ```
/// use depcase_core::decision::summarize;
/// use depcase_distributions::LogNormal;
/// use depcase_sil::SilLevel;
///
/// let belief = LogNormal::from_mode_mean(0.003, 0.01)?;
/// let s = summarize(&belief);
/// assert_eq!(s.sil_of_mode, Some(SilLevel::Sil2));
/// assert_eq!(s.sil_of_mean, Some(SilLevel::Sil1));
/// assert_eq!(s.claimable_at_99, Some(SilLevel::Sil1));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn summarize<D: Distribution + ?Sized>(belief: &D) -> DecisionSummary {
    let a = SilAssessment::new(belief, DemandMode::LowDemand);
    let sil_of_mode = a.sil_of_mode();
    DecisionSummary {
        failure_probability: unconditional_failure_probability(belief),
        sil_of_mean: a.sil_of_mean(),
        sil_of_mode,
        confidence_in_mode_band: sil_of_mode.map_or(0.0, |l| a.confidence_at_least(l)),
        claimable_at_70: a.claimable_at_confidence(0.70),
        claimable_at_99: a.claimable_at_confidence(0.99),
    }
}

/// Strengthens a case iteratively, paper-style: given a system
/// requirement and a sequence of candidate statements the assessor could
/// defend (ordered weakest to strongest), returns the first statement
/// whose worst-case bound meets the requirement.
///
/// Mirrors the informal reasoning quoted in Section 3.4: "I still have a
/// small doubt… so I strengthen my case to make, with high confidence,
/// the stronger claim."
///
/// # Errors
///
/// Never fails today; returns `Ok(None)` when no candidate suffices.
pub fn first_sufficient_statement(
    requirement: f64,
    candidates: &[ConfidenceStatement],
) -> Result<Option<ConfidenceStatement>> {
    Ok(candidates.iter().copied().find(|s| s.supports_system_claim(requirement)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use depcase_distributions::{Beta, LogNormal, TwoPoint};

    #[test]
    fn eq4_is_the_mean() {
        let b = Beta::new(2.0, 998.0).unwrap();
        assert!((unconditional_failure_probability(&b) - 0.002).abs() < 1e-12);
    }

    #[test]
    fn eq4_worst_case_agreement() {
        // On the extremal two-point law, Eq. (4) equals Eq. (5).
        let w = TwoPoint::worst_case(1e-4, 0.0009).unwrap();
        let x = 0.0009;
        let y = 1e-4;
        assert!((unconditional_failure_probability(&w) - (x + y - x * y)).abs() < 1e-15);
    }

    #[test]
    fn requirement_check() {
        let b = Beta::new(1.0, 9999.0).unwrap(); // mean 1e-4
        assert!(meets_requirement_in_expectation(&b, 1e-3));
        assert!(!meets_requirement_in_expectation(&b, 1e-5));
    }

    #[test]
    fn summary_for_paper_judgement() {
        let belief = LogNormal::from_mode_mean(0.003, 0.01).unwrap();
        let s = summarize(&belief);
        assert!((s.failure_probability - 0.01).abs() < 1e-9);
        assert_eq!(s.sil_of_mode, Some(SilLevel::Sil2));
        assert_eq!(s.sil_of_mean, Some(SilLevel::Sil1));
        assert!((s.confidence_in_mode_band - 0.67).abs() < 0.02);
        // 70% > 67% → only SIL1 claimable at the 61508 threshold.
        assert_eq!(s.claimable_at_70, Some(SilLevel::Sil1));
        assert_eq!(s.claimable_at_99, Some(SilLevel::Sil1));
    }

    #[test]
    fn summary_for_tight_judgement() {
        let belief = LogNormal::from_mode_mean(0.003, 0.004).unwrap();
        let s = summarize(&belief);
        assert_eq!(s.sil_of_mean, Some(SilLevel::Sil2));
        assert_eq!(s.claimable_at_70, Some(SilLevel::Sil2));
    }

    #[test]
    fn first_sufficient_statement_scans_in_order() {
        let weak = ConfidenceStatement::new(1e-4, 0.99).unwrap(); // bound ~1.1e-3
        let strong = ConfidenceStatement::new(1e-4, 0.9995).unwrap(); // ~6e-4
        let found = first_sufficient_statement(1e-3, &[weak, strong]).unwrap();
        assert_eq!(found, Some(strong));
        let none = first_sufficient_statement(1e-5, &[weak, strong]).unwrap();
        assert_eq!(none, None);
    }
}
