//! ACARP — As Confident As Reasonably Practicable (paper Section 4.1).
//!
//! The paper (and the HSE study it cites) proposes ACARP as a sister
//! principle to ALARP: beyond driving the *claimed failure rate* down,
//! assurance activity should drive the *confidence in the claim* up.
//! This module plans that activity: given a prior belief and a target
//! confidence statement, how much failure-free operating evidence is
//! "reasonably practicable", and what trajectory does confidence follow
//! along the way — including the provisional-rating strategy ("give the
//! system a provisional SIL from the broad prior, upgrade after an
//! operating period").

use crate::error::{ConfidenceError, Result};
use depcase_distributions::{Distribution, SurvivalWeighted};
use depcase_sil::{DemandMode, SilAssessment, SilLevel};

/// One step of a confidence-building trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrajectoryPoint {
    /// Failure-free demands folded in so far.
    pub demands: u64,
    /// One-sided confidence `P(pfd < bound)` at this point.
    pub confidence: f64,
    /// Posterior mean pfd at this point.
    pub mean: f64,
}

/// A confidence-building plan over failure-free demand evidence.
///
/// Borrows the prior belief; every query re-weights it with the requested
/// amount of evidence.
///
/// # Examples
///
/// ```
/// use depcase_core::acarp::AcarpPlan;
/// use depcase_distributions::LogNormal;
///
/// let prior = LogNormal::from_mode_mean(0.003, 0.01)?;
/// let plan = AcarpPlan::new(&prior, 1e-2);
/// // ~67% SIL2 confidence a priori; testing lifts it:
/// let n = plan.demands_for_confidence(0.95)?;
/// assert!(n > 0 && n < 5000);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct AcarpPlan<'d, D: ?Sized> {
    prior: &'d D,
    bound: f64,
}

impl<'d, D: Distribution + Clone> AcarpPlan<'d, D> {
    /// Creates a plan targeting the claim `pfd < bound`.
    pub fn new(prior: &'d D, bound: f64) -> Self {
        Self { prior, bound }
    }

    /// Confidence in the claim after `n` failure-free demands.
    ///
    /// # Errors
    ///
    /// Propagates posterior-construction failures.
    pub fn confidence_after(&self, demands: u64) -> Result<f64> {
        let post = SurvivalWeighted::new(self.prior.clone(), demands)?;
        Ok(post.cdf(self.bound))
    }

    /// Posterior mean pfd after `n` failure-free demands.
    ///
    /// # Errors
    ///
    /// Propagates posterior-construction failures.
    pub fn mean_after(&self, demands: u64) -> Result<f64> {
        let post = SurvivalWeighted::new(self.prior.clone(), demands)?;
        Ok(post.mean())
    }

    /// The smallest number of failure-free demands reaching the target
    /// confidence (doubling + binary search over the posterior).
    ///
    /// # Errors
    ///
    /// [`ConfidenceError::Infeasible`] if the target is not reachable
    /// within `~4·10⁹` demands (the practical ceiling of "reasonably
    /// practicable").
    pub fn demands_for_confidence(&self, target: f64) -> Result<u64> {
        if !(0.0 < target && target < 1.0) {
            return Err(ConfidenceError::InvalidArgument(format!(
                "target confidence must lie in (0, 1), got {target}"
            )));
        }
        if self.confidence_after(0)? >= target {
            return Ok(0);
        }
        const CEILING: u64 = 1 << 32;
        let mut hi = 1u64;
        while self.confidence_after(hi)? < target {
            hi *= 2;
            if hi > CEILING {
                return Err(ConfidenceError::Infeasible(format!(
                    "confidence {target} in pfd < {} not reachable within {CEILING} demands",
                    self.bound
                )));
            }
        }
        let mut lo = hi / 2;
        while lo + 1 < hi {
            let mid = lo + (hi - lo) / 2;
            if self.confidence_after(mid)? >= target {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Ok(hi)
    }

    /// Samples the confidence/mean trajectory at the given demand counts
    /// — the data behind the C1 experiment's table.
    ///
    /// # Errors
    ///
    /// Propagates posterior failures.
    pub fn trajectory(&self, demand_counts: &[u64]) -> Result<Vec<TrajectoryPoint>> {
        demand_counts
            .iter()
            .map(|&n| {
                let post = SurvivalWeighted::new(self.prior.clone(), n)?;
                Ok(TrajectoryPoint {
                    demands: n,
                    confidence: post.cdf(self.bound),
                    mean: post.mean(),
                })
            })
            .collect()
    }
}

/// A cost model making "reasonably practicable" concrete: testing costs
/// money, residual doubt costs (expected) losses, and the ACARP point is
/// where another demand stops paying for itself.
///
/// The objective minimized is
///
/// ```text
/// total(n) = cost_per_demand · n + doubt_cost · (1 − confidence(n))
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Cost of executing one failure-free test demand.
    pub cost_per_demand: f64,
    /// Cost assigned to a unit of residual doubt in the claim (e.g. the
    /// risk-weighted loss if the claim is wrong).
    pub doubt_cost: f64,
}

impl CostModel {
    /// Total cost of testing to `n` demands given the achieved
    /// confidence.
    #[must_use]
    pub fn total(&self, demands: u64, confidence: f64) -> f64 {
        self.cost_per_demand * demands as f64 + self.doubt_cost * (1.0 - confidence)
    }
}

/// The ACARP stopping point: the demand count minimizing the cost
/// model's total over a doubling grid refined by local search — "as
/// confident as reasonably practicable", literally.
///
/// # Errors
///
/// [`ConfidenceError::InvalidArgument`] for non-positive costs;
/// propagates posterior failures.
///
/// # Examples
///
/// ```
/// use depcase_core::acarp::{acarp_demands, CostModel};
/// use depcase_distributions::LogNormal;
///
/// let prior = LogNormal::from_mode_mean(0.003, 0.01)?;
/// // Cheap testing, expensive doubt → test a lot; and vice versa.
/// let eager = acarp_demands(&prior, 1e-2, CostModel { cost_per_demand: 0.1, doubt_cost: 1e5 })?;
/// let frugal = acarp_demands(&prior, 1e-2, CostModel { cost_per_demand: 100.0, doubt_cost: 1e5 })?;
/// assert!(eager > frugal);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn acarp_demands<D: Distribution + Clone>(
    prior: &D,
    bound: f64,
    costs: CostModel,
) -> Result<u64> {
    if !(costs.cost_per_demand > 0.0) || !(costs.doubt_cost > 0.0) {
        return Err(ConfidenceError::InvalidArgument("cost model entries must be positive".into()));
    }
    let plan = AcarpPlan::new(prior, bound);
    // Coarse scan over a doubling grid.
    let mut best_n = 0u64;
    let mut best_cost = costs.total(0, plan.confidence_after(0)?);
    let mut n = 1u64;
    let mut rises = 0;
    while n <= (1 << 24) {
        let c = costs.total(n, plan.confidence_after(n)?);
        if c < best_cost {
            best_cost = c;
            best_n = n;
            rises = 0;
        } else {
            rises += 1;
            // The confidence term saturates at doubt_cost·0, after which
            // the total is strictly increasing in n; two consecutive
            // rises past the best point end the scan.
            if rises >= 2 {
                break;
            }
        }
        n *= 2;
    }
    // Local refinement between the neighbours of the best grid point.
    let lo = best_n / 2;
    let hi = best_n.saturating_mul(2).max(2);
    let step = ((hi - lo) / 32).max(1);
    let mut m = lo;
    while m <= hi {
        let c = costs.total(m, plan.confidence_after(m)?);
        if c < best_cost {
            best_cost = c;
            best_n = m;
        }
        m += step;
    }
    Ok(best_n)
}

/// The provisional-rating strategy of Section 4.1: rate the system from
/// the broad prior now, and predict the upgraded rating after an
/// operating period of `demands` failure-free demands.
///
/// Returns `(provisional, upgraded)` SIL ratings of the *mean* pfd.
///
/// # Errors
///
/// Propagates posterior-construction failures.
///
/// # Examples
///
/// ```
/// use depcase_core::acarp::provisional_then_upgraded;
/// use depcase_distributions::LogNormal;
/// use depcase_sil::SilLevel;
///
/// let prior = LogNormal::from_mode_mean(0.003, 0.01)?;
/// let (now, later) = provisional_then_upgraded(&prior, 2000)?;
/// assert_eq!(now, Some(SilLevel::Sil1));   // mean 0.01 → SIL1
/// assert!(later >= now);                    // operating period upgrades
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn provisional_then_upgraded<D: Distribution + Clone>(
    prior: &D,
    demands: u64,
) -> Result<(Option<SilLevel>, Option<SilLevel>)> {
    let provisional = SilAssessment::new(prior, DemandMode::LowDemand).sil_of_mean();
    let post = SurvivalWeighted::new(prior.clone(), demands)?;
    let upgraded = SilAssessment::new(&post, DemandMode::LowDemand).sil_of_mean();
    Ok((provisional, upgraded))
}

#[cfg(test)]
mod tests {
    use super::*;
    use depcase_distributions::{Beta, LogNormal};

    fn paper_prior() -> LogNormal {
        LogNormal::from_mode_mean(0.003, 0.01).unwrap()
    }

    #[test]
    fn confidence_is_monotone_in_demands() {
        let prior = paper_prior();
        let plan = AcarpPlan::new(&prior, 1e-2);
        let mut prev = 0.0;
        for n in [0, 10, 100, 1000] {
            let c = plan.confidence_after(n).unwrap();
            assert!(c > prev, "n = {n}: {c} <= {prev}");
            prev = c;
        }
    }

    #[test]
    fn demands_for_confidence_is_minimal() {
        let prior = paper_prior();
        let plan = AcarpPlan::new(&prior, 1e-2);
        let n = plan.demands_for_confidence(0.95).unwrap();
        assert!(plan.confidence_after(n).unwrap() >= 0.95);
        if n > 0 {
            assert!(plan.confidence_after(n - 1).unwrap() < 0.95);
        }
    }

    #[test]
    fn zero_demands_when_prior_already_confident() {
        let prior = Beta::new(1.0, 100_000.0).unwrap();
        let plan = AcarpPlan::new(&prior, 1e-3);
        assert_eq!(plan.demands_for_confidence(0.9).unwrap(), 0);
    }

    #[test]
    fn target_validation() {
        let prior = paper_prior();
        let plan = AcarpPlan::new(&prior, 1e-2);
        assert!(plan.demands_for_confidence(0.0).is_err());
        assert!(plan.demands_for_confidence(1.0).is_err());
    }

    #[test]
    fn trajectory_reports_shrinking_mean() {
        let prior = paper_prior();
        let plan = AcarpPlan::new(&prior, 1e-2);
        let traj = plan.trajectory(&[0, 100, 1000]).unwrap();
        assert_eq!(traj.len(), 3);
        assert!(traj[0].mean > traj[1].mean);
        assert!(traj[1].mean > traj[2].mean);
        assert!(traj[0].confidence < traj[2].confidence);
        assert_eq!(traj[2].demands, 1000);
    }

    #[test]
    fn provisional_rating_upgrades_after_operation() {
        let prior = paper_prior();
        let (now, later) = provisional_then_upgraded(&prior, 5000).unwrap();
        assert_eq!(now, Some(SilLevel::Sil1));
        assert!(later > now, "later = {later:?}");
    }

    #[test]
    fn cost_model_total() {
        let cm = CostModel { cost_per_demand: 2.0, doubt_cost: 1000.0 };
        assert!((cm.total(10, 0.9) - (20.0 + 100.0)).abs() < 1e-12);
    }

    #[test]
    fn acarp_demands_tracks_cost_ratio() {
        let prior = paper_prior();
        let cheap_tests =
            acarp_demands(&prior, 1e-2, CostModel { cost_per_demand: 0.01, doubt_cost: 1e4 })
                .unwrap();
        let dear_tests =
            acarp_demands(&prior, 1e-2, CostModel { cost_per_demand: 10.0, doubt_cost: 1e4 })
                .unwrap();
        assert!(cheap_tests > dear_tests, "{cheap_tests} <= {dear_tests}");
    }

    #[test]
    fn acarp_demands_zero_when_doubt_is_cheap() {
        let prior = paper_prior();
        let n = acarp_demands(&prior, 1e-2, CostModel { cost_per_demand: 100.0, doubt_cost: 1.0 })
            .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn acarp_demands_is_near_optimal_on_grid() {
        let prior = paper_prior();
        let costs = CostModel { cost_per_demand: 1.0, doubt_cost: 5e3 };
        let n = acarp_demands(&prior, 1e-2, costs).unwrap();
        let plan = AcarpPlan::new(&prior, 1e-2);
        let best = costs.total(n, plan.confidence_after(n).unwrap());
        // No point on a coarse audit grid beats the chosen n by > 3%.
        for m in [0u64, 50, 100, 200, 400, 800, 1600, 3200, 6400] {
            let c = costs.total(m, plan.confidence_after(m).unwrap());
            assert!(best <= c * 1.03, "m = {m}: {c} < {best}");
        }
    }

    #[test]
    fn acarp_demands_validation() {
        let prior = paper_prior();
        assert!(acarp_demands(&prior, 1e-2, CostModel { cost_per_demand: 0.0, doubt_cost: 1.0 })
            .is_err());
        assert!(acarp_demands(&prior, 1e-2, CostModel { cost_per_demand: 1.0, doubt_cost: 0.0 })
            .is_err());
    }

    #[test]
    fn mean_after_matches_trajectory() {
        let prior = paper_prior();
        let plan = AcarpPlan::new(&prior, 1e-2);
        let m = plan.mean_after(500).unwrap();
        let t = plan.trajectory(&[500]).unwrap();
        assert!((m - t[0].mean).abs() < 1e-12);
    }
}
