//! Claim reduction: "judged most likely SIL n+1, claimed SIL n".
//!
//! Sections 3.2/3.4 of the paper observe that assessors respond to
//! uncertainty by claiming one SIL below where the evidence points, and
//! that "it is more likely that a better case can be made if the system
//! is judged as most likely a SIL n+1 system and it could then be taken
//! as a SIL n with high confidence". This module turns the heuristic
//! into a report: the per-level confidence ladder, the recommended claim
//! at a stated confidence threshold, and how many levels of reduction
//! the uncertainty actually costs.

use depcase_distributions::Distribution;
use depcase_sil::{DemandMode, SilAssessment, SilLevel};
use serde::{Deserialize, Serialize};

/// One rung of the confidence ladder.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LadderRung {
    /// The level considered.
    pub level: SilLevel,
    /// One-sided confidence of achieving it or better.
    pub confidence: f64,
}

/// The full claim-reduction analysis of one belief.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReductionReport {
    /// SIL band of the most likely (modal) value, if any.
    pub most_likely: Option<SilLevel>,
    /// SIL band of the mean, if any.
    pub mean_level: Option<SilLevel>,
    /// The strongest level claimable at the stated threshold.
    pub recommended_claim: Option<SilLevel>,
    /// Confidence threshold the recommendation used.
    pub threshold: f64,
    /// Confidence at the recommended claim (0 when none).
    pub confidence_at_claim: f64,
    /// Levels of reduction from the most likely band to the
    /// recommendation (`None` when either side is unclassifiable).
    pub levels_reduced: Option<i8>,
    /// The whole ladder, ascending criticality.
    pub ladder: Vec<LadderRung>,
}

impl ReductionReport {
    /// Whether the paper's n+1 → n heuristic exactly describes this
    /// belief: the recommendation sits exactly one level below the most
    /// likely band.
    #[must_use]
    pub fn matches_heuristic(&self) -> bool {
        self.levels_reduced == Some(1)
    }
}

/// Analyses a pfd belief (low-demand mode) at a confidence threshold.
///
/// # Examples
///
/// ```
/// use depcase_core::reduction::analyse;
/// use depcase_distributions::LogNormal;
/// use depcase_sil::SilLevel;
///
/// // The paper's widest judgement: most likely SIL2, 67% confidence.
/// let belief = LogNormal::from_mode_mean(0.003, 0.01)?;
/// let report = analyse(&belief, 0.99);
/// assert_eq!(report.most_likely, Some(SilLevel::Sil2));
/// assert_eq!(report.recommended_claim, Some(SilLevel::Sil1));
/// assert!(report.matches_heuristic());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn analyse<D: Distribution + ?Sized>(belief: &D, threshold: f64) -> ReductionReport {
    let a = SilAssessment::new(belief, DemandMode::LowDemand);
    let ladder: Vec<LadderRung> = SilLevel::ALL
        .iter()
        .map(|&level| LadderRung { level, confidence: a.confidence_at_least(level) })
        .collect();
    let most_likely = a.sil_of_mode();
    let recommended_claim = a.claimable_at_confidence(threshold);
    let confidence_at_claim = recommended_claim.map_or(0.0, |l| a.confidence_at_least(l));
    let levels_reduced = match (most_likely, recommended_claim) {
        (Some(m), Some(r)) => Some(m.index() as i8 - r.index() as i8),
        _ => None,
    };
    ReductionReport {
        most_likely,
        mean_level: a.sil_of_mean(),
        recommended_claim,
        threshold,
        confidence_at_claim,
        levels_reduced,
        ladder,
    }
}

/// Sweeps the reduction analysis over a set of spreads with the mode
/// pinned — "how wide can the judgement get before the claim drops k
/// levels?". Returns `(sigma, levels_reduced)` pairs.
///
/// # Errors
///
/// Propagates belief-construction failures.
pub fn reduction_vs_spread(
    mode: f64,
    sigmas: &[f64],
    threshold: f64,
) -> Result<Vec<(f64, Option<i8>)>, depcase_distributions::DistError> {
    sigmas
        .iter()
        .map(|&sigma| {
            let belief = depcase_distributions::LogNormal::from_mode_sigma(mode, sigma)?;
            Ok((sigma, analyse(&belief, threshold).levels_reduced))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use depcase_distributions::LogNormal;

    #[test]
    fn paper_judgement_reduces_one_level_at_99() {
        let belief = LogNormal::from_mode_mean(0.003, 0.01).unwrap();
        let r = analyse(&belief, 0.99);
        assert_eq!(r.most_likely, Some(SilLevel::Sil2));
        assert_eq!(r.mean_level, Some(SilLevel::Sil1));
        assert_eq!(r.recommended_claim, Some(SilLevel::Sil1));
        assert!(r.matches_heuristic());
        assert!(r.confidence_at_claim >= 0.99);
    }

    #[test]
    fn tight_judgement_needs_no_reduction() {
        let belief = LogNormal::from_mode_sigma(0.003, 0.2).unwrap();
        let r = analyse(&belief, 0.99);
        assert_eq!(r.most_likely, Some(SilLevel::Sil2));
        assert_eq!(r.recommended_claim, Some(SilLevel::Sil2));
        assert_eq!(r.levels_reduced, Some(0));
        assert!(!r.matches_heuristic());
    }

    #[test]
    fn hopeless_judgement_recommends_nothing() {
        // Mode already in the SIL1 band with a wide spread: nothing is
        // claimable at 99%.
        let belief = LogNormal::from_mode_sigma(0.05, 1.5).unwrap();
        let r = analyse(&belief, 0.99);
        assert_eq!(r.recommended_claim, None);
        assert_eq!(r.confidence_at_claim, 0.0);
        assert_eq!(r.levels_reduced, None);
    }

    #[test]
    fn ladder_is_monotone() {
        let belief = LogNormal::from_mode_mean(0.003, 0.006).unwrap();
        let r = analyse(&belief, 0.9);
        for w in r.ladder.windows(2) {
            assert!(w[1].confidence <= w[0].confidence + 1e-12);
        }
        assert_eq!(r.ladder.len(), 4);
    }

    #[test]
    fn reduction_grows_with_spread() {
        let pairs = reduction_vs_spread(0.003, &[0.1, 0.5, 1.0, 1.8], 0.99).unwrap();
        let reductions: Vec<i8> = pairs.iter().map(|(_, r)| r.unwrap_or(4)).collect();
        for w in reductions.windows(2) {
            assert!(w[1] >= w[0], "reduction not monotone: {reductions:?}");
        }
        assert!(reductions[0] == 0);
        assert!(*reductions.last().unwrap() >= 1);
    }

    #[test]
    fn serde_round_trip() {
        let belief = LogNormal::from_mode_mean(0.003, 0.01).unwrap();
        let r = analyse(&belief, 0.99);
        let json = serde_json::to_string(&r).unwrap();
        let back: ReductionReport = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
